"""Overload protection: bounded admission queues and shed policies,
request deadlines end to end (serving -> web -> cluster -> engine),
per-node circuit breakers, token-bucket rate limiting and brownout.

Everything runs on simulated clocks and hashed draws, so every
scenario — including the ones layered on seeded fault injection — is
deterministic and replays bit-identically.
"""

import numpy as np
import pytest

from repro.core import EngineConfig, TextureSearchEngine
from repro.distributed import (
    AdmissionPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    DistributedSearchSystem,
    FaultInjector,
    FaultSpec,
    HealthPolicy,
    Request,
    RetryPolicy,
    TokenBucket,
    WebTier,
)
from repro.errors import ExecutorContractError, ServingError
from repro.obs import (
    Deadline,
    DeadlineFanOut,
    brownout_scope,
    current_brownout,
    current_deadline,
    deadline_scope,
    default_registry,
)
from repro.serving import (
    BatchPolicy,
    FusedEngineExecutor,
    Rejected,
    build_trace,
    simulate_serving,
)
from tests.conftest import make_descriptors, noisy_copy

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)

pytestmark = pytest.mark.overload


def build_engine(n_refs=8, seed=0):
    engine = TextureSearchEngine(CFG)
    descs = [make_descriptors(CFG.n, seed=seed + i) for i in range(n_refs)]
    for i, desc in enumerate(descs):
        engine.add_reference(f"r{i}", desc)
    return engine, descs


def build_cluster(n_nodes, n_refs, **kwargs):
    system = DistributedSearchSystem(n_nodes, CFG, **kwargs)
    descs = [make_descriptors(CFG.n, seed=700 + i) for i in range(n_refs)]
    for i, desc in enumerate(descs):
        system.add(f"r{i}", desc)
    return system, descs


class StubExecutor:
    """Fixed-cost executor: every group takes ``cost_us``."""

    def __init__(self, cost_us=1_000.0):
        self.cost_us = cost_us
        self.calls = []

    def execute(self, queries):
        self.calls.append(list(queries))
        return [f"done:{q}" for q in queries], self.cost_us


# ----------------------------------------------------------------------
# request context: Deadline / DeadlineFanOut / brownout
# ----------------------------------------------------------------------
class TestRequestContext:
    def test_deadline_budget_accounting(self):
        deadline = Deadline(budget_us=100.0)
        assert not deadline.expired
        assert deadline.remaining_us == 100.0
        deadline.charge(60.0)
        assert deadline.remaining_us == pytest.approx(40.0)
        deadline.charge(-5.0)  # negative charges are ignored
        assert deadline.spent_us == pytest.approx(60.0)
        deadline.charge(40.0)
        assert deadline.expired
        assert deadline.remaining_us == 0.0

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            Deadline(budget_us=-1.0)

    def test_scope_sets_and_restores(self):
        assert current_deadline() is None
        with deadline_scope(50.0) as deadline:
            assert current_deadline() is deadline
            with deadline_scope(10.0) as inner:
                assert current_deadline() is inner
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_fanout_charges_only_the_slowest_branch(self):
        with deadline_scope(1_000.0) as deadline:
            deadline.charge(100.0)
            fan = DeadlineFanOut(deadline)
            for branch_cost in (50.0, 300.0, 120.0):
                with fan.branch():
                    # each branch starts from the fan-out's base spend
                    assert deadline.spent_us == pytest.approx(100.0)
                    deadline.charge(branch_cost)
            fan.join()
            # concurrent branches: only the slowest one is charged
            assert deadline.spent_us == pytest.approx(400.0)

    def test_fanout_expired_at_entry(self):
        deadline = Deadline(budget_us=10.0, spent_us=10.0)
        assert DeadlineFanOut(deadline).expired_at_entry
        assert not DeadlineFanOut(Deadline(budget_us=10.0)).expired_at_entry

    def test_fanout_none_deadline_is_noop(self):
        fan = DeadlineFanOut(None)
        assert not fan.expired_at_entry
        with fan.branch():
            pass
        fan.join()  # must not raise

    def test_brownout_scope(self):
        assert current_brownout() is None
        with brownout_scope(0.5):
            assert current_brownout() == 0.5
        assert current_brownout() is None
        with pytest.raises(ValueError):
            with brownout_scope(0.0):
                pass
        with pytest.raises(ValueError):
            with brownout_scope(1.5):
                pass


# ----------------------------------------------------------------------
# serving tier: bounded queue + shed policies + deadlines
# ----------------------------------------------------------------------
class TestBoundedQueue:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_queue_depth=-1)
        with pytest.raises(ValueError):
            BatchPolicy(shed="random")
        assert BatchPolicy(max_queue_depth=4, shed="drop-oldest").shed == "drop-oldest"

    def test_unbounded_queue_never_sheds(self):
        stub = StubExecutor()
        trace = build_trace([0.0] * 32, [f"q{i}" for i in range(32)])
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=4))
        assert report.n_rejected == 0
        assert report.n_requests == 32

    def test_reject_new_bounces_excess_arrivals(self):
        stub = StubExecutor(cost_us=10_000.0)
        # 8 simultaneous arrivals, queue bounded at 4: the first group
        # of 4 is admitted, the rest bounce
        trace = build_trace([0.0] * 8, [f"q{i}" for i in range(8)])
        policy = BatchPolicy(max_batch=4, max_queue_depth=4, shed="reject-new")
        report = simulate_serving(stub, trace, policy)
        assert report.n_requests == 4
        assert report.n_rejected == 4
        assert report.n_offered == 8
        assert report.shed_rate == pytest.approx(0.5)
        assert all(isinstance(r, Rejected) for r in report.rejected)
        assert {r.reason for r in report.rejected} == {"reject-new"}
        # the *new* arrivals bounced: admitted ids are the oldest
        assert [r.request_id for r in report.records] == [0, 1, 2, 3]
        assert [r.request_id for r in report.rejected] == [4, 5, 6, 7]

    def test_drop_oldest_evicts_the_head(self):
        stub = StubExecutor(cost_us=10_000.0)
        trace = build_trace([0.0] * 8, [f"q{i}" for i in range(8)])
        policy = BatchPolicy(max_batch=4, max_queue_depth=4, shed="drop-oldest")
        report = simulate_serving(stub, trace, policy)
        assert report.n_rejected == 4
        assert {r.reason for r in report.rejected} == {"drop-oldest"}
        # the oldest were evicted to make room: the newest survive
        assert [r.request_id for r in report.records] == [4, 5, 6, 7]
        assert [r.request_id for r in report.rejected] == [0, 1, 2, 3]

    def test_retry_after_hint_covers_device_busy_time(self):
        stub = StubExecutor(cost_us=10_000.0)
        # one group executing [0, 10000); arrivals at t=5000 find the
        # bounded queue full and must be told to come back later
        arrivals = [0.0] * 4 + [5_000.0] * 2
        trace = build_trace(arrivals, [f"q{i}" for i in range(6)])
        policy = BatchPolicy(
            max_batch=4, max_wait_us=2_000.0, max_queue_depth=1, shed="reject-new"
        )
        report = simulate_serving(stub, trace, policy)
        late = [r for r in report.rejected if r.arrival_us == 5_000.0]
        assert late
        for rejection in late:
            # device frees at 10000 -> >= 5000 of busy time + wait budget
            assert rejection.retry_after_us >= 5_000.0
            assert rejection.shed_us == pytest.approx(5_000.0)

    def test_shed_counter_by_reason(self):
        reg = default_registry()
        before = reg.value("repro_serving_shed_total", reason="reject-new")
        stub = StubExecutor(cost_us=10_000.0)
        trace = build_trace([0.0] * 6, [f"q{i}" for i in range(6)])
        policy = BatchPolicy(max_batch=2, max_queue_depth=2, shed="reject-new")
        simulate_serving(stub, trace, policy)
        after = reg.value("repro_serving_shed_total", reason="reject-new")
        assert after - before == 4

    def test_queue_depth_gauge_zero_after_drain(self):
        stub = StubExecutor()
        trace = build_trace([0.0] * 5, [f"q{i}" for i in range(5)])
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=2))
        assert default_registry().value("repro_serving_queue_depth") == 0.0
        assert report.meters.peak_queue_depth >= 1


class TestServingDeadlines:
    def test_build_trace_converts_relative_budget_to_absolute(self):
        trace = build_trace([0.0, 100.0], ["a", "b"], deadline_us=500.0)
        assert trace[0].deadline_us == 500.0
        assert trace[1].deadline_us == 600.0
        assert build_trace([0.0], ["a"])[0].deadline_us is None
        with pytest.raises(ValueError):
            build_trace([0.0], ["a"], deadline_us=0.0)

    def test_expired_requests_are_shed_not_dispatched(self):
        stub = StubExecutor(cost_us=10_000.0)
        # group 0 occupies the device for 10000us; the t=1 arrival's
        # 5000us deadline passes while it queues behind it
        trace = build_trace([0.0, 1.0], ["a", "b"], deadline_us=5_000.0)
        policy = BatchPolicy(max_batch=1)
        report = simulate_serving(stub, trace, policy)
        assert report.n_requests == 1
        assert report.n_rejected == 1
        rejection = report.rejected[0]
        assert rejection.reason == "deadline-expired"
        assert rejection.request_id == 1
        assert rejection.retry_after_us == 0.0
        assert len(stub.calls) == 1  # no device time spent on the dead one

    def test_goodput_counts_deadline_meeting_completions(self):
        stub = StubExecutor(cost_us=2_000.0)
        trace = build_trace([0.0, 0.0], ["a", "b"], deadline_us=3_000.0)
        # serial groups: first completes at 2000 (good), second at 4000
        # (dispatched in time, missed its deadline anyway)
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=1))
        assert report.n_requests == 2
        assert report.n_good == 1
        assert report.to_dict()["n_good"] == 1

    def test_group_executes_under_tightest_member_deadline(self):
        seen = []

        class Probe:
            def execute(self, queries):
                deadline = current_deadline()
                seen.append(None if deadline is None else deadline.budget_us)
                return list(queries), 10.0

        trace = [
            # ids follow submission order; both dispatch together at t=0
            *build_trace([0.0, 0.0], ["a", "b"]),
        ]
        trace[0] = trace[0].__class__(0, 0.0, "a", deadline_us=4_000.0)
        trace[1] = trace[1].__class__(1, 0.0, "b", deadline_us=9_000.0)
        simulate_serving(Probe(), trace, BatchPolicy(max_batch=2))
        assert seen == [4_000.0]

    def test_no_deadlines_means_no_scope(self):
        seen = []

        class Probe:
            def execute(self, queries):
                seen.append(current_deadline())
                return list(queries), 10.0

        simulate_serving(Probe(), build_trace([0.0], ["a"]), BatchPolicy())
        assert seen == [None]


# ----------------------------------------------------------------------
# engine: deadline-truncated sweeps
# ----------------------------------------------------------------------
class TestEngineDeadlines:
    def test_expired_deadline_skips_the_whole_sweep(self):
        engine, descs = build_engine()
        query = noisy_copy(descs[0], 8.0, seed=42)
        reg = default_registry()
        before = reg.value("repro_engine_deadline_expired_total")
        with deadline_scope(10.0) as deadline:
            deadline.charge(10.0)  # already expired
            result = engine.search(query)
        assert result.partial
        assert result.images_searched == 0
        assert result.images_skipped == 8
        assert result.matches == []
        assert reg.value("repro_engine_deadline_expired_total") == before + 1

    def test_partial_prefix_is_bit_identical_to_full_search(self):
        engine, descs = build_engine()
        query = noisy_copy(descs[0], 8.0, seed=43)
        full = engine.search(query)
        # budget for roughly one cache batch: the scanned prefix must
        # match the full sweep's results exactly, match for match
        budget = full.elapsed_us / 3.0
        with deadline_scope(budget):
            partial = engine.search(query)
        assert partial.partial
        assert 0 < partial.images_searched < full.images_searched
        assert partial.images_skipped == full.images_searched - partial.images_searched
        full_by_id = {m.reference_id: m.good_matches for m in full.matches}
        for match in partial.matches:
            assert full_by_id[match.reference_id] == match.good_matches

    def test_generous_deadline_changes_nothing(self):
        engine, descs = build_engine()
        query = noisy_copy(descs[0], 8.0, seed=44)
        baseline = engine.search(query)
        with deadline_scope(baseline.elapsed_us * 100):
            result = engine.search(query)
        assert not result.partial
        assert result.images_skipped == 0
        assert result.images_searched == baseline.images_searched
        assert [m.reference_id for m in result.matches] == [
            m.reference_id for m in baseline.matches
        ]

    def test_verify_ignores_deadlines(self):
        engine, descs = build_engine()
        query = noisy_copy(descs[0], 8.0, seed=45)
        with deadline_scope(10.0) as deadline:
            deadline.charge(10.0)
            same, good = engine.verify(descs[0], query)  # 1:1 never sheds
        assert isinstance(same, bool) and good >= 0  # completed, no IndexError

    def test_group_sweep_truncates_too(self):
        engine, descs = build_engine()
        queries = [noisy_copy(descs[i], 8.0, seed=50 + i) for i in range(3)]
        with deadline_scope(1.0):
            group = engine.search_group(queries)
        assert group.partial
        assert group.images_skipped > 0
        for member in group.results:
            assert member.partial


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(window=0)
        with pytest.raises(ValueError):
            BreakerPolicy(min_samples=11, window=10)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_rate=0.0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_ops=0)
        with pytest.raises(ValueError):
            BreakerPolicy(probe_successes=0)

    def test_opens_at_failure_rate(self):
        breaker = CircuitBreaker(
            BreakerPolicy(window=4, min_samples=4, failure_rate=0.5)
        )
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # 1/3 < 0.5
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN  # 2/4 >= 0.5

    def test_open_skips_then_half_opens_after_cooldown(self):
        breaker = CircuitBreaker(
            BreakerPolicy(window=4, min_samples=2, failure_rate=0.5,
                          cooldown_ops=3, probe_successes=2)
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert not breaker.allow()  # third skip completes the cooldown
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # the probe flows
        assert breaker.total_skips == 3

    def test_probe_successes_close_probe_failure_reopens(self):
        policy = BreakerPolicy(window=4, min_samples=2, failure_rate=0.5,
                               cooldown_ops=1, probe_successes=2)
        breaker = CircuitBreaker(policy)
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()  # cooldown of 1 -> half-open
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN  # 1 of 2 probes
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_fraction == 0.0  # window cleared

        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()  # failed probe: straight back to open
        assert breaker.state is BreakerState.OPEN

    def test_deterministic_replay(self):
        def drive(breaker):
            states = []
            outcomes = [False, False, True, False, False, True, True, True]
            for ok in outcomes:
                breaker.allow()
                (breaker.record_success if ok else breaker.record_failure)()
                states.append(breaker.state.value)
            return states

        policy = BreakerPolicy(window=4, min_samples=2, failure_rate=0.5,
                               cooldown_ops=1, probe_successes=2)
        assert drive(CircuitBreaker(policy)) == drive(CircuitBreaker(policy))

    def test_snapshot_shape(self):
        breaker = CircuitBreaker()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["window"] == 1
        assert set(snap["transitions"]) == {"closed", "open", "half-open"}


class TestClusterBreaker:
    def _flaky_cluster(self):
        system, descs = build_cluster(
            3, 6,
            retry_policy=RetryPolicy(max_attempts=1),
            health_policy=HealthPolicy(degraded_after=2, down_after=100),
            breaker_policy=BreakerPolicy(
                window=4, min_samples=2, failure_rate=0.5,
                cooldown_ops=2, probe_successes=1,
            ),
            auto_failover=False,
        )
        # one node is always-transient: its breaker must open
        system.nodes[0].fault_injector = FaultInjector(
            FaultSpec(transient_rate=1.0), seed=1
        )
        return system, descs

    def test_breaker_opens_and_sheds_attempts(self):
        system, descs = self._flaky_cluster()
        sick = system.nodes[0]
        query = noisy_copy(descs[0], 8.0, seed=60)
        reg = default_registry()
        before = reg.value("repro_cluster_breaker_skipped_total")
        for _ in range(2):  # two failures open the breaker
            system.search(query)
        assert sick.breaker.state is BreakerState.OPEN
        result = system.search(query)  # skipped without an attempt
        assert sick.node_id in result.unsearched_shards
        assert result.partial
        assert reg.value("repro_cluster_breaker_skipped_total") == before + 1
        assert sick.breaker.total_skips == 1

    def test_breaker_recovers_through_half_open(self):
        system, descs = self._flaky_cluster()
        sick = system.nodes[0]
        query = noisy_copy(descs[0], 8.0, seed=61)
        for _ in range(2):
            system.search(query)
        assert sick.breaker.state is BreakerState.OPEN
        sick.fault_injector = None  # the node heals
        for _ in range(2):  # cooldown_ops=2 skipped operations
            system.search(query)
        assert sick.breaker.state is BreakerState.HALF_OPEN
        result = system.search(query)  # the probe goes through and works
        assert sick.breaker.state is BreakerState.CLOSED
        assert sick.node_id in result.per_node

    def test_breaker_chaos_is_deterministic(self):
        def run():
            system, descs = self._flaky_cluster()
            query = noisy_copy(descs[0], 8.0, seed=62)
            outcomes = []
            for _ in range(8):
                result = system.search(query)
                outcomes.append(
                    (sorted(result.unsearched_shards), result.retries,
                     system.nodes[0].breaker.state.value)
                )
            return outcomes

        assert run() == run()

    def test_breaker_disabled_by_default(self):
        system, _ = build_cluster(2, 2)
        assert all(node.breaker is None for node in system.nodes)
        assert system.nodes[0].stats()["breaker"] == "disabled"

    def test_breaker_state_in_heartbeat_and_stats(self):
        system, _ = build_cluster(2, 2, breaker_policy=BreakerPolicy())
        beat = system.nodes[0].heartbeat()
        assert beat["breaker"] == "closed"
        assert system.nodes[0].stats()["breaker"] == "closed"
        assert system.add_node().breaker is not None  # policy is inherited


# ----------------------------------------------------------------------
# retry jitter
# ----------------------------------------------------------------------
class TestRetryJitter:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)

    def test_zero_jitter_is_bit_identical_to_legacy_schedule(self):
        policy = RetryPolicy(backoff_us=1_000.0, backoff_multiplier=2.0)
        for retry in range(6):
            expected = 1_000.0 * 2.0**retry
            assert policy.backoff_for(retry) == expected
            # the key must be completely inert at jitter 0
            assert policy.backoff_for(retry, key="gpu-03") == expected

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(
            backoff_us=1_000.0, backoff_multiplier=2.0,
            jitter_fraction=0.5, jitter_seed=7,
        )
        for retry in range(4):
            base = 1_000.0 * 2.0**retry
            wait = policy.backoff_for(retry, key="gpu-00")
            assert base * 0.5 <= wait <= base
            assert wait == policy.backoff_for(retry, key="gpu-00")  # replays

    def test_jitter_decorrelates_nodes_and_seeds(self):
        policy = RetryPolicy(jitter_fraction=1.0, jitter_seed=0)
        waits = {policy.backoff_for(0, key=f"gpu-{i:02d}") for i in range(8)}
        assert len(waits) == 8  # distinct nodes draw distinct waits
        other = RetryPolicy(jitter_fraction=1.0, jitter_seed=1)
        assert other.backoff_for(0, key="gpu-00") != policy.backoff_for(0, key="gpu-00")


# ----------------------------------------------------------------------
# token bucket + web-tier admission
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 4)
        with pytest.raises(ValueError):
            TokenBucket(10.0, 0)
        with pytest.raises(ValueError):
            AdmissionPolicy(rate_per_s=-1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(burst=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(brownout_tokens=1.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(brownout_shard_fraction=0.0)

    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=2)
        assert bucket.fraction == 1.0
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # empty
        assert bucket.retry_after_us(0.0) == pytest.approx(1e6)

    def test_refills_on_simulated_time(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(200_000.0)  # 0.2 s = 2 tokens at 10/s
        # never overfills past burst
        bucket2 = TokenBucket(rate_per_s=1_000.0, burst=2)
        bucket2.try_take(0.0)
        assert bucket2.fraction <= 1.0

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=4)
        bucket.try_take(100_000.0)
        tokens_before = bucket.fraction
        bucket.try_take(0.0)  # out-of-order clock must not refill
        assert bucket.fraction <= tokens_before


class TestWebTierAdmission:
    def _tier(self, admission, n_refs=4, workers=1, **cluster_kwargs):
        system, descs = build_cluster(2, n_refs, **cluster_kwargs)
        tier = WebTier(system, n_workers=workers, admission=admission)
        return tier, descs

    def test_rate_limit_sheds_with_retry_hint(self):
        tier, descs = self._tier(AdmissionPolicy(rate_per_s=1.0, burst=2))
        query = noisy_copy(descs[0], 8.0, seed=70).tolist()
        reg = default_registry()
        before = reg.value("repro_web_rate_limited_total")
        records = [
            tier.handle(Request("POST", "/search", {"descriptors": query}))
            for _ in range(4)
        ]
        statuses = [r.response.status for r in records]
        assert statuses.count(429) >= 1
        assert statuses.count(200) >= 1
        shed = next(r for r in records if r.response.status == 429)
        assert shed.response.body["retry_after_us"] > 0
        # a 429 is cheap: it must not pay the search handling cost
        assert shed.latency_us < 500.0
        assert reg.value("repro_web_rate_limited_total") > before

    def test_non_search_routes_bypass_the_bucket(self):
        tier, _ = self._tier(AdmissionPolicy(rate_per_s=1.0, burst=1))
        for _ in range(5):
            assert tier.handle(Request("GET", "/health")).response.ok
        statuses = {
            tier.handle(Request("GET", "/stats")).response.status for _ in range(3)
        }
        assert statuses == {200}

    def test_brownout_degrades_before_rejecting(self):
        # burst 4, brownout below 75% fill: the 2nd-4th searches run
        # browned out (half the shards), only later ones get 429
        tier, descs = self._tier(
            AdmissionPolicy(
                rate_per_s=1.0, burst=4,
                brownout_tokens=0.75, brownout_shard_fraction=0.5,
            )
        )
        query = noisy_copy(descs[0], 8.0, seed=71).tolist()
        reg = default_registry()
        before = reg.value("repro_web_brownout_total")
        records = [
            tier.handle(Request("POST", "/search", {"descriptors": query}))
            for _ in range(4)
        ]
        assert all(r.response.status == 200 for r in records)
        assert reg.value("repro_web_brownout_total") - before == 3
        browned = records[1].response.body
        assert browned["partial"] is True
        assert len(browned["unsearched_shards"]) == 1  # half of 2 nodes
        assert reg.value("repro_cluster_brownout_shards_skipped_total") >= 1

    def test_brownout_respects_min_shard_fraction(self):
        # min_shard_fraction above the brownout fraction: the floor wins
        # and no DegradedClusterError escapes
        tier, descs = self._tier(
            AdmissionPolicy(
                rate_per_s=1.0, burst=4,
                brownout_tokens=1.0, brownout_shard_fraction=0.25,
            ),
            min_shard_fraction=1.0,
        )
        query = noisy_copy(descs[0], 8.0, seed=72).tolist()
        record = tier.handle(Request("POST", "/search", {"descriptors": query}))
        assert record.response.status == 200
        assert record.response.body["partial"] is False  # floor kept all shards

    def test_no_admission_policy_is_transparent(self):
        tier, descs = self._tier(None)
        query = noisy_copy(descs[0], 8.0, seed=73).tolist()
        for _ in range(6):
            assert tier.handle(
                Request("POST", "/search", {"descriptors": query})
            ).response.ok


# ----------------------------------------------------------------------
# REST deadlines + stats/metrics exposure
# ----------------------------------------------------------------------
class TestRestDeadlines:
    def _tier(self, n_refs=4):
        system, descs = build_cluster(2, n_refs)
        return WebTier(system, n_workers=1), descs

    def test_budget_validation(self):
        tier, descs = self._tier()
        query = noisy_copy(descs[0], 8.0, seed=80).tolist()
        for bad in (0, -5, "soon"):
            response = tier.handle(
                Request("POST", "/search", {"descriptors": query, "budget_us": bad})
            ).response
            assert response.status == 400

    def test_generous_budget_full_result(self):
        tier, descs = self._tier()
        query = noisy_copy(descs[0], 8.0, seed=81).tolist()
        response = tier.handle(
            Request("POST", "/search", {"descriptors": query, "budget_us": 1e12})
        ).response
        assert response.ok
        assert response.body["deadline_expired"] is False
        assert response.body["partial"] is False

    def test_tiny_budget_returns_partial(self):
        # 12 refs over 2 nodes: several cache batches per node, so a
        # microscopic budget must truncate each node's sweep mid-flight
        tier, descs = self._tier(n_refs=12)
        query = noisy_copy(descs[0], 8.0, seed=82).tolist()
        response = tier.handle(
            Request("POST", "/search", {"descriptors": query, "budget_us": 1e-3})
        ).response
        assert response.ok  # partial results, not an error
        assert response.body["deadline_expired"] is True
        assert response.body["partial"] is True
        assert response.body["images_searched"] < 12

    def test_partial_results_are_prefix_identical(self):
        tier, descs = self._tier(n_refs=6)
        query = noisy_copy(descs[0], 8.0, seed=83).tolist()
        full = tier.handle(
            Request("POST", "/search", {"descriptors": query, "top": 6})
        ).response.body
        budget = full["elapsed_us"] / 2.0
        partial = tier.handle(
            Request("POST", "/search",
                    {"descriptors": query, "top": 6, "budget_us": budget})
        ).response.body
        full_scores = {r["id"]: r["good_matches"] for r in full["results"]}
        for row in partial["results"]:
            assert full_scores[row["id"]] == row["good_matches"]

    def test_batch_route_carries_deadline_metadata(self):
        tier, descs = self._tier(n_refs=12)
        queries = [noisy_copy(descs[i], 8.0, seed=84 + i).tolist() for i in range(2)]
        response = tier.handle(
            Request("POST", "/search/batch", {"queries": queries, "budget_us": 1e-3})
        ).response
        assert response.ok
        assert response.body["deadline_expired"] is True
        for member in response.body["queries"]:
            assert member["deadline_expired"] is True
            assert member["partial"] is True

    def test_stats_v3_overload_block_and_metrics_exposition(self):
        tier, descs = self._tier(n_refs=12)
        query = noisy_copy(descs[0], 8.0, seed=85).tolist()
        tier.handle(
            Request("POST", "/search", {"descriptors": query, "budget_us": 1e-3})
        )
        stats = tier.handle(Request("GET", "/stats")).response.body
        assert stats["schema_version"] == 8
        overload = stats["overload"]
        assert overload["deadline_expired_sweeps_total"] >= 1
        assert overload["deadline_skipped_shards_total"] >= 0
        text = tier.handle(Request("GET", "/metrics")).response.body["text"]
        assert "repro_engine_deadline_expired_total" in text
        assert "repro_serving_shed_total" not in text or "reason=" in text


# ----------------------------------------------------------------------
# cluster-level deadline fan-out
# ----------------------------------------------------------------------
class TestClusterDeadlines:
    def test_expired_at_entry_skips_every_shard(self):
        system, descs = build_cluster(3, 6)
        query = noisy_copy(descs[0], 8.0, seed=90)
        reg = default_registry()
        before = reg.value("repro_cluster_deadline_skipped_shards_total")
        with deadline_scope(1.0) as deadline:
            deadline.charge(1.0)
            result = system.search(query)
        assert result.deadline_expired
        assert result.partial
        assert len(result.unsearched_shards) == 3
        assert result.images_searched == 0
        assert reg.value("repro_cluster_deadline_skipped_shards_total") == before + 3

    def test_fanout_charges_slowest_node_not_the_sum(self):
        system, descs = build_cluster(3, 6)
        query = noisy_copy(descs[0], 8.0, seed=91)
        baseline = system.search(query)
        per_node_us = [r.elapsed_us for r in baseline.per_node.values()]
        budget = sum(per_node_us) * 0.9  # < serial sum, >> max node time
        with deadline_scope(budget) as deadline:
            result = system.search(query)
        # concurrent fan-out: only the slowest branch is charged, so a
        # budget below the serial sum but above max(node) must complete
        assert not result.deadline_expired
        assert not result.partial
        assert deadline.spent_us <= max(per_node_us) * 1.5

    def test_group_deadline_expires_every_member(self):
        # 12 refs over 2 nodes -> multiple cache batches per node, so
        # the sweeps truncate instead of finishing in one batch
        system, descs = build_cluster(2, 12)
        queries = [noisy_copy(descs[i], 8.0, seed=92 + i) for i in range(2)]
        with deadline_scope(1e-3):
            group = system.search_group(queries)
        assert group.deadline_expired
        assert group.partial
        for member in group.results:
            assert member.deadline_expired


# ----------------------------------------------------------------------
# bench experiment
# ----------------------------------------------------------------------
class TestOverloadExperiment:
    def test_quick_run_plateaus(self, tmp_path):
        from repro.bench.experiments import overload_bench

        out = tmp_path / "BENCH_overload.json"
        result = overload_bench.run(quick=True, json_path=out)
        assert out.exists()
        assert result.summary["goodput_plateaus"] is True
        assert result.summary["goodput_plateau_ratio"] >= 0.9
        assert result.summary["unprotected_p99_growth_x"] > 1.0
        rows = {row[0] for row in result.rows}
        assert rows == {"protected", "unprotected"}


class TestErrorHierarchy:
    def test_contract_error_is_a_serving_error(self):
        error = ExecutorContractError(expected=4, got=2, executor="Fused")
        assert isinstance(error, ServingError)
        assert error.expected == 4 and error.got == 2
        assert "Fused" in str(error)
        assert "4" in str(error) and "2" in str(error)
