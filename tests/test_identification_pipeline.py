"""The end-to-end IdentificationPipeline (Fig. 2)."""

import numpy as np
import pytest

from repro.core import AsymmetricExtractor, AsymmetricPolicy, EngineConfig, IdentificationPipeline
from repro.data import (
    QUERY_PROFILE,
    REFERENCE_PROFILE,
    CaptureSimulator,
    TeaBrickGenerator,
)


@pytest.fixture(scope="module")
def pipeline_setup():
    """A pipeline enrolled with 5 bricks (128 px images for speed)."""
    config = EngineConfig(m=64, n=96, batch_size=2, min_matches=6, scale_factor=0.25)
    pipeline = IdentificationPipeline(
        config=config,
        extractor=AsymmetricExtractor(
            AsymmetricPolicy(m_reference=64, n_query=96), use_rootsift=False
        ),
        min_inliers=5,
    )
    generator = TeaBrickGenerator(size=128, seed=31)
    factory = CaptureSimulator(REFERENCE_PROFILE)
    canonical = {}
    for brick in range(5):
        canonical[brick] = generator.brick(brick)
        photo = factory.capture(canonical[brick], np.random.default_rng(3000 + brick))
        count = pipeline.enroll(f"brick-{brick}", photo)
        assert count > 10
    return pipeline, canonical, generator


class TestIdentify:
    def test_genuine_photo_accepted(self, pipeline_setup):
        pipeline, canonical, _gen = pipeline_setup
        phone = CaptureSimulator(QUERY_PROFILE)
        photo = phone.capture(canonical[2], np.random.default_rng(31))
        decision = pipeline.identify(photo)
        assert decision.accepted
        assert decision.reference_id == "brick-2"
        assert decision.inliers >= 5
        assert decision.good_matches >= 6

    def test_unenrolled_brick_rejected(self, pipeline_setup):
        pipeline, _canonical, generator = pipeline_setup
        phone = CaptureSimulator(QUERY_PROFILE)
        fake = generator.brick(9999)
        decision = pipeline.identify(phone.capture(fake, np.random.default_rng(32)))
        assert not decision.accepted
        assert decision.reference_id is None
        assert decision.reason

    def test_featureless_image_rejected_early(self, pipeline_setup):
        pipeline, _canonical, _gen = pipeline_setup
        decision = pipeline.identify(np.full((128, 128), 0.5, np.float32))
        assert not decision.accepted
        assert "query features" in decision.reason
        assert decision.candidates_checked == 0


class TestVerify:
    def test_genuine_claim(self, pipeline_setup):
        pipeline, canonical, _gen = pipeline_setup
        phone = CaptureSimulator(QUERY_PROFILE)
        photo = phone.capture(canonical[1], np.random.default_rng(33))
        decision = pipeline.verify("brick-1", photo)
        assert decision.accepted
        assert decision.reference_id == "brick-1"

    def test_false_claim(self, pipeline_setup):
        pipeline, canonical, _gen = pipeline_setup
        phone = CaptureSimulator(QUERY_PROFILE)
        photo = phone.capture(canonical[1], np.random.default_rng(34))
        decision = pipeline.verify("brick-3", photo)
        assert not decision.accepted

    def test_unknown_reference(self, pipeline_setup):
        pipeline, canonical, _gen = pipeline_setup
        decision = pipeline.verify("ghost", canonical[0])
        assert not decision.accepted
        assert "unknown" in decision.reason


class TestManagement:
    def test_remove(self, pipeline_setup):
        pipeline, canonical, _gen = pipeline_setup
        # add a disposable brick, then remove it
        extra = TeaBrickGenerator(size=128, seed=77).brick(0)
        pipeline.enroll("temp", extra)
        n = pipeline.n_references
        assert pipeline.remove("temp")
        assert pipeline.n_references == n - 1
        assert not pipeline.remove("temp")

    def test_validation(self):
        with pytest.raises(ValueError):
            IdentificationPipeline(min_inliers=1)
        with pytest.raises(ValueError):
            IdentificationPipeline(verify_top=0)
