"""Capture-transform details and dataset builder coverage."""

import numpy as np
import pytest

from repro.core import AsymmetricExtractor, AsymmetricPolicy
from repro.data import (
    CaptureProfile,
    CaptureSimulator,
    TeaBrickGenerator,
    build_image_dataset,
)


def identity_profile(**overrides) -> CaptureProfile:
    base = dict(
        max_rotation_deg=0.0, max_scale_delta=0.0, max_shift_frac=0.0,
        max_perspective=0.0, illumination_gain_range=(1.0, 1.0),
        illumination_gradient=0.0, occlusion_prob=0.0, max_occlusion_frac=0.0,
        noise_sigma=0.0, blur_sigma=0.0,
    )
    base.update(overrides)
    return CaptureProfile(**base)


@pytest.fixture(scope="module")
def brick():
    return TeaBrickGenerator(size=96, seed=8).brick(0)


class TestIndividualPerturbations:
    def test_identity_profile_is_near_noop(self, brick):
        out = CaptureSimulator(identity_profile()).capture(brick, np.random.default_rng(0))
        np.testing.assert_allclose(out, brick, atol=1e-4)

    def test_gain_scales_intensity(self, brick):
        profile = identity_profile(illumination_gain_range=(0.5, 0.5))
        out = CaptureSimulator(profile).capture(brick, np.random.default_rng(0))
        np.testing.assert_allclose(out, brick * 0.5, atol=1e-4)

    def test_occlusion_always_fires_at_prob_one(self, brick):
        profile = identity_profile(occlusion_prob=1.0, max_occlusion_frac=0.2)
        out = CaptureSimulator(profile).capture(brick, np.random.default_rng(1))
        assert np.abs(out - brick).max() > 0.1  # a patch was replaced

    def test_noise_changes_pixels_everywhere(self, brick):
        profile = identity_profile(noise_sigma=0.05)
        out = CaptureSimulator(profile).capture(brick, np.random.default_rng(2))
        changed = np.abs(out - brick) > 1e-6
        assert changed.mean() > 0.9

    def test_rotation_moves_content(self, brick):
        profile = identity_profile(max_rotation_deg=10.0)
        rng = np.random.default_rng(3)
        out = CaptureSimulator(profile).capture(brick, rng)
        # centre is roughly preserved, corners shift
        h, w = brick.shape
        centre_err = np.abs(out[h // 2 - 4 : h // 2 + 4, w // 2 - 4 : w // 2 + 4]
                            - brick[h // 2 - 4 : h // 2 + 4, w // 2 - 4 : w // 2 + 4]).mean()
        corner_err = np.abs(out[:8, :8] - brick[:8, :8]).mean()
        assert corner_err > centre_err

    def test_same_rng_state_reproducible(self, brick):
        profile = identity_profile(noise_sigma=0.02, max_rotation_deg=5.0)
        a = CaptureSimulator(profile).capture(brick, np.random.default_rng(42))
        b = CaptureSimulator(profile).capture(brick, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)


class TestImageDatasetBuilder:
    def test_shapes_and_ground_truth(self):
        extractor = AsymmetricExtractor(AsymmetricPolicy(m_reference=24, n_query=32))
        ds = build_image_dataset(3, extractor, queries_per_brick=2, image_size=96, seed=9)
        assert ds.n_bricks == 3
        assert len(ds.queries) == 6
        assert ds.references[0].descriptors.shape == (128, 24)
        assert sorted({q.brick_id for q in ds.queries}) == [0, 1, 2]

    def test_invalid_count(self):
        extractor = AsymmetricExtractor(AsymmetricPolicy(m_reference=8, n_query=8))
        with pytest.raises(ValueError):
            build_image_dataset(0, extractor)
