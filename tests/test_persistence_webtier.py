"""Engine state export/import, KV snapshots, node warm-restart, the
web tier, cluster batched search, and verification metrics."""

import numpy as np
import pytest

from repro.core import EngineConfig, TextureSearchEngine
from repro.data import SyntheticFeatureModel
from repro.distributed import (
    DistributedSearchSystem,
    KVStore,
    Request,
    SearchNode,
    WebTier,
)
from repro.errors import SerializationError
from repro.metrics import evaluate_verification, roc_from_scores
from tests.conftest import make_descriptors, noisy_copy

CFG = EngineConfig(m=32, n=32, batch_size=3, min_matches=5, scale_factor=0.25)


class TestEngineExportImport:
    def test_roundtrip_preserves_search_results(self):
        engine = TextureSearchEngine(CFG)
        descs = {i: make_descriptors(32, seed=1100 + i) for i in range(5)}
        for i, d in descs.items():
            engine.add_reference(f"r{i}", d)
        records = engine.export_records()
        assert len(records) == 5

        clone = TextureSearchEngine(CFG)
        assert clone.import_records(records) == 5
        query = noisy_copy(descs[2], 8.0, seed=111)
        original = engine.search(query)
        restored = clone.search(query)
        assert original.best().reference_id == restored.best().reference_id
        assert original.best().good_matches == restored.best().good_matches

    def test_export_skips_tombstones(self):
        engine = TextureSearchEngine(CFG)
        for i in range(4):
            engine.add_reference(f"r{i}", make_descriptors(32, seed=1200 + i))
        engine.remove_reference("r1")
        ids = {r.ref_id for r in engine.export_records()}
        assert ids == {"r0", "r2", "r3"}

    def test_import_rejects_config_mismatch(self):
        engine = TextureSearchEngine(CFG)
        engine.add_reference("r0", make_descriptors(32, seed=1300))
        records = engine.export_records()
        other = TextureSearchEngine(CFG.with_updates(precision="fp32", use_rootsift=True))
        with pytest.raises(ValueError, match="fp16"):
            other.import_records(records)
        scaled = TextureSearchEngine(CFG.with_updates(scale_factor=0.5))
        with pytest.raises(ValueError, match="scale"):
            scaled.import_records(records)

    def test_add_prepared_validation(self):
        engine = TextureSearchEngine(CFG)
        with pytest.raises(ValueError, match="prepared matrix"):
            engine.add_prepared_reference("x", np.zeros((128, 16), np.float16))
        with pytest.raises(ValueError, match="float16"):
            engine.add_prepared_reference("x", np.zeros((128, 32), np.float32))

    def test_algorithm1_roundtrip(self):
        cfg = CFG.with_updates(use_rootsift=False, precision="fp16", scale_factor=2.0**-7)
        engine = TextureSearchEngine(cfg)
        descs = {i: make_descriptors(32, seed=1400 + i) for i in range(3)}
        for i, d in descs.items():
            engine.add_reference(f"r{i}", d)
        clone = TextureSearchEngine(cfg)
        clone.import_records(engine.export_records())
        query = noisy_copy(descs[1], 8.0, seed=141)
        assert clone.search(query).best().reference_id == "r1"


class TestKvSnapshot:
    def test_dump_restore_roundtrip(self):
        store = KVStore()
        store.set("a", b"alpha")
        store.set("b", b"\x00\xff binary")
        store.hset("h", "f1", b"v1")
        store.hset("h", "f2", b"v2")
        snapshot = store.dump()

        fresh = KVStore()
        loaded = fresh.restore(snapshot)
        assert loaded == 4
        assert fresh.get("a") == b"alpha"
        assert fresh.hgetall("h") == {"f1": b"v1", "f2": b"v2"}

    def test_restore_replaces_contents(self):
        store = KVStore()
        store.set("old", b"x")
        snapshot = store.dump()
        store.set("new", b"y")
        store.restore(snapshot)
        assert store.get("new") is None
        assert store.get("old") == b"x"

    def test_bad_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            KVStore().restore(b"nope")

    def test_truncated(self):
        store = KVStore()
        store.set("key", b"value-value-value")
        snapshot = store.dump()
        with pytest.raises(SerializationError):
            KVStore().restore(snapshot[:-4])


class TestNodeWarmRestart:
    def test_snapshot_restore(self):
        store = KVStore()
        node = SearchNode("n0", CFG)
        descs = {i: make_descriptors(32, seed=1500 + i) for i in range(4)}
        for i, d in descs.items():
            node.add(f"r{i}", d)
        assert node.snapshot_to_store(store) == 4

        replacement = SearchNode("n0", CFG)
        assert replacement.restore_from_store(store) == 4
        query = noisy_copy(descs[3], 8.0, seed=151)
        assert replacement.search(query).best().reference_id == "r3"


class TestClusterSearchMany:
    def test_matches_individual_searches(self):
        system = DistributedSearchSystem(2, CFG)
        descs = {i: make_descriptors(32, seed=1600 + i) for i in range(6)}
        for i, d in descs.items():
            system.add(f"r{i}", d)
        queries = [noisy_copy(descs[1], 8.0, seed=161), noisy_copy(descs[4], 8.0, seed=162)]
        grouped = system.search_many(queries)
        assert grouped[0].best().reference_id == "r1"
        assert grouped[1].best().reference_id == "r4"
        assert grouped[0].elapsed_us == grouped[1].elapsed_us
        assert system.search_many([]) == []


class TestWebTier:
    def _tier(self, policy="round-robin", workers=3):
        system = DistributedSearchSystem(2, CFG)
        descs = {i: make_descriptors(32, seed=1700 + i) for i in range(4)}
        tier = WebTier(system, n_workers=workers, policy=policy)
        for i, d in descs.items():
            record = tier.handle(
                Request("POST", "/textures", {"id": f"r{i}", "descriptors": d.tolist()})
            )
            assert record.response.status == 201
        return tier, descs

    def test_round_robin_distribution(self):
        tier, _descs = self._tier()
        assert tier.requests_handled == [2, 1, 1]

    def test_burst_parallelises_across_workers(self):
        tier, descs = self._tier(workers=2)
        tier.reset_clocks()
        query = noisy_copy(descs[0], 8.0, seed=171).tolist()
        requests = [Request("POST", "/search", {"descriptors": query}) for _ in range(4)]
        records = tier.handle_burst(requests)
        assert all(r.response.status == 200 for r in records)
        # two workers, two requests each: makespan ~ half the serial sum
        serial = sum(r.completed_us - r.started_us for r in records)
        assert tier.makespan_us() < serial * 0.75

    def test_least_loaded_policy(self):
        tier, descs = self._tier(policy="least-loaded")
        tier.reset_clocks()
        query = noisy_copy(descs[0], 8.0, seed=172).tolist()
        tier.handle_burst([Request("POST", "/search", {"descriptors": query})] * 6)
        assert max(tier.requests_handled) - min(tier.requests_handled) <= 2

    def test_validation(self):
        system = DistributedSearchSystem(1, CFG)
        with pytest.raises(ValueError):
            WebTier(system, n_workers=0)
        with pytest.raises(ValueError):
            WebTier(system, policy="random")

    def test_stats_schema_and_observability_counters(self):
        """``GET /stats`` carries a schema version plus the cache and
        fault-tolerance counter blocks fed by the metrics registry."""
        from repro.distributed.cluster import STATS_SCHEMA_VERSION

        tier, descs = self._tier(workers=1)
        # enough extra references that each node seals a full cache
        # batch (batch_size=3), so the cache-add counter moves
        for i in range(4, 10):
            record = tier.handle(
                Request("POST", "/textures",
                        {"id": f"r{i}",
                         "descriptors": make_descriptors(32, seed=1700 + i).tolist()})
            )
            assert record.response.status == 201
        query = noisy_copy(descs[0], 8.0, seed=174).tolist()
        assert tier.handle(
            Request("POST", "/search", {"descriptors": query})
        ).response.ok
        stats = tier.handle(Request("GET", "/stats")).response
        assert stats.ok
        body = stats.body
        assert body["schema_version"] == STATS_SCHEMA_VERSION == 8
        assert body["references"] == 10
        cache = body["cache"]
        assert cache["adds_total"] > 0  # sealed batches entered the cache
        assert cache["sweep_hits_total"] + cache["sweep_misses_total"] > 0
        ft = body["fault_tolerance"]
        assert ft["searches_single_total"] == 1
        assert ft["searches_group_total"] == 0
        assert ft["retries_total"] == 0
        assert ft["partial_results_total"] == 0
        assert ft["failovers_total"] == 0
        overload = body["overload"]
        assert overload["shed_reject_new_total"] == 0
        assert overload["deadline_expired_sweeps_total"] == 0
        assert overload["breaker_skipped_total"] == 0
        assert overload["rate_limited_total"] == 0

    def test_latency_is_delta_not_absolute_clock(self):
        """Regression: ``DispatchRecord.latency_us`` must be the
        completion−start delta.  It used to return the absolute
        worker-clock completion, so a request queued behind others
        reported all their time as its own latency."""
        tier, descs = self._tier(workers=1)
        tier.reset_clocks()
        query = noisy_copy(descs[0], 8.0, seed=173).tolist()
        requests = [Request("POST", "/search", {"descriptors": query})] * 2
        first, second = tier.handle_burst(requests)
        assert first.latency_us == pytest.approx(first.completed_us - first.started_us)
        assert second.started_us == first.completed_us  # queued behind first
        # identical work => identical latency, despite the queueing delay
        assert second.latency_us == pytest.approx(first.latency_us)
        assert second.latency_us < second.completed_us


class TestVerificationMetrics:
    def test_roc_and_eer(self):
        genuine = np.array([20, 25, 30, 4, 40])
        impostor = np.array([0, 1, 0, 2, 6])
        report = roc_from_scores(genuine, impostor)
        assert 0.0 <= report.eer <= 0.5
        point = report.operating_point(8)
        assert point.far == pytest.approx(0.0)
        assert point.frr == pytest.approx(0.2)
        assert point.tar == pytest.approx(0.8)

    def test_best_threshold_separates(self):
        report = roc_from_scores(np.array([30, 40, 50]), np.array([0, 1, 2]))
        t = report.best_threshold()
        assert 3 <= t <= 30
        op = report.operating_point(t)
        assert op.far == 0.0 and op.frr == 0.0

    def test_engine_protocol(self):
        engine = TextureSearchEngine(
            EngineConfig(m=256, n=256, batch_size=8, scale_factor=0.25)
        )
        model = SyntheticFeatureModel(seed=4)
        report = evaluate_verification(engine, model, n_bricks=8, impostors_per_brick=1)
        assert len(report.genuine_scores) == 8
        assert len(report.impostor_scores) == 8
        # genuine scores dominate impostors
        assert np.median(report.genuine_scores) > np.median(report.impostor_scores)
        assert report.eer < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_from_scores(np.array([]), np.array([1.0]))
