"""Dataset substrate: tea-brick generator, transforms, synthetic features."""

import numpy as np
import pytest

from repro.data import (
    CaptureSimulator,
    FeatureModelConfig,
    QUERY_PROFILE,
    REFERENCE_PROFILE,
    SyntheticFeatureModel,
    TeaBrickGenerator,
    build_feature_dataset,
    value_noise,
)


class TestTeaBrick:
    def test_deterministic_per_brick(self):
        gen = TeaBrickGenerator(size=64, seed=1)
        np.testing.assert_array_equal(gen.brick(5), gen.brick(5))

    def test_distinct_bricks(self):
        gen = TeaBrickGenerator(size=64, seed=1)
        a, b = gen.brick(0), gen.brick(1)
        assert np.abs(a - b).mean() > 0.05

    def test_range_and_dtype(self):
        img = TeaBrickGenerator(size=64).brick(0)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert img.shape == (64, 64)

    def test_seed_changes_texture(self):
        a = TeaBrickGenerator(size=64, seed=1).brick(0)
        b = TeaBrickGenerator(size=64, seed=2).brick(0)
        assert np.abs(a - b).mean() > 0.05

    def test_value_noise_shape_and_range(self):
        rng = np.random.default_rng(0)
        noise = value_noise((32, 48), 4, rng)
        assert noise.shape == (32, 48)
        assert 0.0 <= noise.min() and noise.max() <= 1.0

    def test_value_noise_validation(self):
        with pytest.raises(ValueError):
            value_noise((8, 8), 0, np.random.default_rng(0))

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            TeaBrickGenerator(size=8)


class TestCaptureTransforms:
    def test_reference_capture_is_mild(self):
        gen = TeaBrickGenerator(size=96, seed=3)
        img = gen.brick(0)
        cam = CaptureSimulator(REFERENCE_PROFILE)
        out = cam.capture(img, np.random.default_rng(0))
        assert out.shape == img.shape
        # industry camera: small perturbation
        assert np.abs(out - img).mean() < 0.08

    def test_query_capture_is_aggressive(self):
        gen = TeaBrickGenerator(size=96, seed=3)
        img = gen.brick(0)
        ref = CaptureSimulator(REFERENCE_PROFILE).capture(img, np.random.default_rng(1))
        qry = CaptureSimulator(QUERY_PROFILE).capture(img, np.random.default_rng(1))
        assert np.abs(qry - img).mean() > np.abs(ref - img).mean()

    def test_output_clipped(self):
        img = TeaBrickGenerator(size=96, seed=4).brick(1)
        out = CaptureSimulator(QUERY_PROFILE).capture(img, np.random.default_rng(2))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            CaptureSimulator(QUERY_PROFILE).capture(
                np.zeros((4, 4, 3), np.float32), np.random.default_rng(0)
            )


class TestSyntheticFeatures:
    @pytest.fixture(scope="class")
    def model(self):
        return SyntheticFeatureModel(seed=0)

    def test_descriptor_manifold(self, model):
        cap = model.capture(0, "reference")
        d = cap.descriptors
        assert d.shape[0] == 128
        assert (d >= 0).all()
        np.testing.assert_allclose(np.linalg.norm(d, axis=0), 512.0, rtol=1e-3)
        # clip-then-renormalise (as in Lowe/OpenCV) lets entries exceed
        # the 0.2 clip by the renormalisation factor
        assert d.max() <= 0.2 * 512 * 1.10

    def test_deterministic(self, model):
        a = model.capture(3, "query", capture_index=1)
        b = SyntheticFeatureModel(seed=0).capture(3, "query", capture_index=1)
        np.testing.assert_array_equal(a.descriptors, b.descriptors)

    def test_different_captures_differ(self, model):
        a = model.capture(3, "query", capture_index=0)
        b = model.capture(3, "query", capture_index=1)
        assert a.descriptors.shape != b.descriptors.shape or not np.array_equal(
            a.descriptors, b.descriptors
        )

    def test_reference_ranking_follows_strength(self, model):
        """Low ranking noise: reference order correlates with strength."""
        strengths, _ = model.brick_pool(1)
        cap = model.capture(1, "reference")
        observed_strengths = strengths[cap.keypoint_ids]
        # Spearman-ish: the first half should be stronger on average
        half = cap.count // 2
        assert observed_strengths[:half].mean() > observed_strengths[half:].mean()

    def test_query_ranking_noisier_than_reference(self, model):
        strengths, _ = model.brick_pool(2)
        ref = model.capture(2, "reference")
        qry = model.capture(2, "query")

        def rank_corr(cap):
            s = strengths[cap.keypoint_ids]
            return np.corrcoef(np.arange(cap.count), -s)[0, 1]

        assert rank_corr(ref) > rank_corr(qry)

    def test_top_budget(self, model):
        cap = model.capture(0, "reference")
        top = cap.top(10)
        assert top.count == 10
        np.testing.assert_array_equal(top.descriptors, cap.descriptors[:, :10])

    def test_same_brick_matches_better_than_impostor(self, model):
        ref = model.capture(5, "reference").descriptors.astype(np.float64)
        qry = model.capture(5, "query").descriptors.astype(np.float64)
        imp = model.capture(6, "reference").descriptors.astype(np.float64)

        def min_dists(r, q):
            d = (r**2).sum(0)[:, None] + (q**2).sum(0)[None, :] - 2 * r.T @ q
            return np.sqrt(np.maximum(d, 0)).min(axis=0)

        assert np.median(min_dists(ref, qry)) < np.median(min_dists(imp, qry))

    def test_invalid_side(self, model):
        with pytest.raises(ValueError):
            model.capture(0, "probe")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FeatureModelConfig(pool_size=0)
        with pytest.raises(ValueError):
            FeatureModelConfig(word_weight=1.0)
        with pytest.raises(ValueError):
            FeatureModelConfig(n_words=0)


class TestDatasetBuilders:
    def test_feature_dataset_structure(self):
        ds = build_feature_dataset(5, m_reference=32, n_query=48, queries_per_brick=2)
        assert ds.n_bricks == 5
        assert len(ds.queries) == 10
        assert ds.references[0].descriptors.shape == (128, 32)
        assert ds.queries[0].descriptors.shape[1] <= 48
        assert ds.reference_ids() == [0, 1, 2, 3, 4]

    def test_query_fraction(self):
        ds = build_feature_dataset(10, 32, 32, query_brick_fraction=0.5)
        assert len(ds.queries) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            build_feature_dataset(0, 32, 32)
        with pytest.raises(ValueError):
            build_feature_dataset(5, 32, 32, query_brick_fraction=0.0)
