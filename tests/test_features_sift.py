"""SIFT detection, orientation and descriptor properties."""

import numpy as np
import pytest
from scipy import ndimage

from repro.features import (
    DESCRIPTOR_DIM,
    Keypoint,
    SIFTConfig,
    SIFTExtractor,
    assign_orientations,
    build_gaussian_pyramid,
    detect_keypoints,
    image_gradients,
    keypoints_to_arrays,
    orientation_histogram,
    remove_border_keypoints,
)


def texture_image(seed=0, size=160):
    rng = np.random.default_rng(seed)
    img = ndimage.gaussian_filter(rng.random((size, size)).astype(np.float32), 2.0)
    img -= img.min()
    return img / img.max()


@pytest.fixture(scope="module")
def extractor():
    return SIFTExtractor(SIFTConfig(n_features=300))


@pytest.fixture(scope="module")
def base_result(extractor):
    return extractor.extract(texture_image(0))


class TestDetection:
    def test_finds_keypoints_on_texture(self, base_result):
        assert base_result.count > 20

    def test_no_keypoints_on_flat_image(self):
        pyr = build_gaussian_pyramid(np.full((64, 64), 0.5, np.float32))
        assert detect_keypoints(pyr) == []

    def test_responses_positive(self):
        pyr = build_gaussian_pyramid(texture_image(1))
        kps = detect_keypoints(pyr)
        assert all(k.response > 0 for k in kps)

    def test_contrast_threshold_filters(self):
        pyr = build_gaussian_pyramid(texture_image(2))
        loose = detect_keypoints(pyr, contrast_threshold=0.01)
        strict = detect_keypoints(pyr, contrast_threshold=0.06)
        assert len(strict) < len(loose)

    def test_keypoints_inside_image(self):
        img = texture_image(3)
        pyr = build_gaussian_pyramid(img)
        for k in detect_keypoints(pyr):
            assert 0 <= k.x < img.shape[1]
            assert 0 <= k.y < img.shape[0]


class TestOrientation:
    def test_gradients_of_ramp(self):
        ramp = np.tile(np.arange(32, dtype=np.float32), (32, 1))
        mag, ang = image_gradients(ramp)
        np.testing.assert_allclose(mag[1:-1, 1:-1], 1.0, atol=1e-5)
        np.testing.assert_allclose(ang[1:-1, 1:-1], 0.0, atol=1e-5)

    def test_histogram_peak_follows_gradient_direction(self):
        # vertical ramp -> gradient points +y -> angle pi/2
        ramp = np.tile(np.arange(64, dtype=np.float32)[:, None], (1, 64))
        mag, ang = image_gradients(ramp)
        hist = orientation_histogram(mag, ang, 32.0, 32.0, sigma=2.0)
        peak_angle = (np.argmax(hist) + 0.5) / len(hist) * 2 * np.pi
        assert peak_angle == pytest.approx(np.pi / 2, abs=0.2)

    def test_multiple_orientations_capped(self):
        pyr = build_gaussian_pyramid(texture_image(4))
        kps = detect_keypoints(pyr)
        oriented = assign_orientations(pyr, kps, max_orientations=2)
        assert len(oriented) <= 2 * len(kps)
        assert len(oriented) >= len(kps) * 0.9  # most keypoints keep one


class TestDescriptors:
    def test_shape_and_norm(self, base_result):
        d = base_result.descriptors
        assert d.shape[0] == DESCRIPTOR_DIM
        norms = np.linalg.norm(d, axis=0)
        np.testing.assert_allclose(norms, 512.0, rtol=1e-4)

    def test_non_negative(self, base_result):
        assert (base_result.descriptors >= 0).all()

    def test_entries_capped(self, base_result):
        # 0.2 clip before the final renormalisation; allow renorm slack
        assert base_result.descriptors.max() <= 0.3 * 512.0

    def test_translation_matching(self, extractor, base_result):
        """Descriptors of a shifted copy match the originals closely."""
        img2 = np.roll(texture_image(0), 5, axis=0)
        res2 = extractor.extract(img2)
        d1 = base_result.descriptors.astype(np.float64)
        d2 = res2.descriptors.astype(np.float64)
        dist = (
            (d1**2).sum(0)[:, None] + (d2**2).sum(0)[None, :] - 2 * d1.T @ d2
        )
        nn = np.sqrt(np.maximum(dist.min(axis=1), 0))
        # most features find a near-exact counterpart
        assert np.median(nn) < 0.1 * 512

    def test_brightness_invariance(self, extractor, base_result):
        """Gradient normalisation makes descriptors gain-invariant; a
        global gain/offset changes which weak extrema survive detection,
        so we assert on the well-matched quartile, not the median."""
        res2 = extractor.extract(np.clip(texture_image(0) * 0.8 + 0.05, 0, 1))
        d1 = base_result.descriptors.astype(np.float64)
        d2 = res2.descriptors.astype(np.float64)
        dist = (d1**2).sum(0)[:, None] + (d2**2).sum(0)[None, :] - 2 * d1.T @ d2
        nn = np.sqrt(np.maximum(dist.min(axis=1), 0))
        assert np.quantile(nn, 0.25) < 0.15 * 512

    def test_response_ranked_output(self, base_result):
        responses = [k.response for k in base_result.keypoints]
        assert responses == sorted(responses, reverse=True)

    def test_budget_respected(self, extractor):
        res = extractor.extract(texture_image(5), n_features=10)
        assert res.count <= 10

    def test_rgb_input_accepted(self, extractor):
        rgb = np.stack([texture_image(6)] * 3, axis=-1)
        res = extractor.extract(rgb)
        assert res.count > 0

    def test_invalid_budget(self, extractor):
        with pytest.raises(ValueError):
            extractor.extract(texture_image(7), n_features=0)


class TestKeypointHelpers:
    def test_arrays(self):
        kps = [Keypoint(1.0, 2.0, 1.6, 0.5, 0, 1), Keypoint(3.0, 4.0, 3.2, 0.7, 1, 2)]
        arrays = keypoints_to_arrays(kps)
        np.testing.assert_allclose(arrays["x"], [1.0, 3.0])
        np.testing.assert_allclose(arrays["sigma"], [1.6, 3.2])

    def test_border_removal(self):
        kps = [Keypoint(5.0, 5.0, 1.6, 0.5, 0, 1), Keypoint(50.0, 50.0, 1.6, 0.5, 0, 1)]
        kept = remove_border_keypoints(kps, (100, 100), border=10)
        assert len(kept) == 1
        assert kept[0].x == 50.0

    def test_octave_scaling(self):
        kp = Keypoint(8.0, 12.0, 3.2, 0.5, 1, 1)
        assert kp.scaled_to_octave(1) == (4.0, 6.0)

    def test_with_orientation_is_functional(self):
        kp = Keypoint(1, 2, 1.6, 0.5, 0, 1)
        kp2 = kp.with_orientation(1.0)
        assert kp.orientation == 0.0 and kp2.orientation == 1.0
