"""Engine configuration matrix: every (precision, algorithm, sort)
combination must identify the same best match on a clear query."""

import numpy as np
import pytest

from repro.bench.experiments import device_sweep
from repro.core import EngineConfig, TextureSearchEngine
from repro.gpusim import GPUDevice, get_device_spec
from tests.conftest import make_descriptors, noisy_copy

CONFIG_GRID = [
    dict(precision="fp16", use_rootsift=True, sort_kind="scan"),
    dict(precision="fp32", use_rootsift=True, sort_kind="scan"),
    dict(precision="fp16", use_rootsift=False, sort_kind="scan"),
    dict(precision="fp32", use_rootsift=False, sort_kind="scan"),
    dict(precision="fp32", use_rootsift=False, sort_kind="insertion"),
    dict(precision="fp16", use_rootsift=True, sort_kind="scan", normalization="l2"),
]


@pytest.fixture(scope="module")
def descs():
    return {i: make_descriptors(32, seed=4000 + i) for i in range(6)}


@pytest.mark.parametrize("overrides", CONFIG_GRID,
                         ids=lambda o: "-".join(f"{k}={v}" for k, v in o.items()))
def test_every_configuration_identifies(descs, overrides):
    scale = 2.0**-7 if not overrides.get("use_rootsift", True) else 0.25
    config = EngineConfig(m=32, n=32, batch_size=3, min_matches=5,
                          scale_factor=scale, **overrides)
    engine = TextureSearchEngine(config)
    for i, d in descs.items():
        engine.add_reference(f"r{i}", d)
    engine.flush()
    query = noisy_copy(descs[3], 8.0, seed=401)
    result = engine.search(query)
    best = result.best()
    assert best.reference_id == "r3"
    assert best.good_matches >= 5
    # runner-up well separated
    runner_up = result.top(2)[1]
    assert runner_up.good_matches < best.good_matches


@pytest.mark.parametrize("device_name", ["p100", "v100", "a100"])
def test_every_device_runs_the_engine(descs, device_name):
    engine = TextureSearchEngine(
        EngineConfig(m=32, n=32, batch_size=3, min_matches=5, scale_factor=0.25),
        device=GPUDevice(get_device_spec(device_name)),
    )
    for i, d in descs.items():
        engine.add_reference(f"r{i}", d)
    result = engine.search(noisy_copy(descs[1], 8.0, seed=402))
    assert result.best().reference_id == "r1"
    assert result.elapsed_us > 0


class TestDeviceSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return device_sweep.run()

    def test_faster_cards_are_faster(self, result):
        speeds = result.column("GPU-resident (img/s)")
        assert speeds == sorted(speeds)

    def test_hybrid_never_exceeds_either_bound(self, result):
        for row in result.rows:
            assert row[2] <= row[1]  # hybrid <= resident
            assert row[2] <= row[3] * 1.001  # hybrid <= PCIe bound

    def test_a100_has_more_capacity(self, result):
        caps = dict(zip(result.column("device"), result.column("capacity (images)")))
        assert caps["Tesla A100"] > caps["Tesla P100"]
