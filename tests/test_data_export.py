"""Dataset persistence (.npz archives) and DoG internals."""

import numpy as np
import pytest

from repro.data import build_feature_dataset, load_dataset, save_dataset
from repro.errors import SerializationError
from repro.features.dog import _passes_edge_test, _quadratic_fit


class TestDatasetRoundtrip:
    def test_save_load_identical(self, tmp_path):
        dataset = build_feature_dataset(4, 16, 24, queries_per_brick=2, seed=3)
        path = save_dataset(dataset, tmp_path / "ds")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)
        assert loaded.n_bricks == 4
        assert len(loaded.queries) == 8
        for a, b in zip(dataset.references, loaded.references):
            assert a.brick_id == b.brick_id
            np.testing.assert_array_equal(a.descriptors, b.descriptors)
        for a, b in zip(dataset.queries, loaded.queries):
            assert a.brick_id == b.brick_id
            np.testing.assert_array_equal(a.descriptors, b.descriptors)

    def test_accuracy_reproducible_from_archive(self, tmp_path):
        from repro.core import EngineConfig, TextureSearchEngine
        from repro.metrics import evaluate_top1

        dataset = build_feature_dataset(6, 32, 32, seed=5)
        path = save_dataset(dataset, tmp_path / "ds.npz")
        loaded = load_dataset(path)

        def accuracy(ds):
            engine = TextureSearchEngine(
                EngineConfig(m=32, n=32, batch_size=4, scale_factor=0.25)
            )
            return evaluate_top1(engine, ds).top1_accuracy

        assert accuracy(dataset) == accuracy(loaded)

    def test_not_an_archive(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, stuff=np.ones(3))
        with pytest.raises(SerializationError):
            load_dataset(bad)


class TestDogInternals:
    def test_quadratic_fit_finds_parabola_peak(self):
        """A discrete 3-D paraboloid peaked off-grid: the fit recovers
        the sub-pixel offset."""
        layers, h, w = 3, 9, 9
        dog = np.zeros((layers, h, w), dtype=np.float64)
        cy, cx, cl = 4.3, 4.2, 1.0
        for layer in range(layers):
            for y in range(h):
                for x in range(w):
                    dog[layer, y, x] = 1.0 - 0.05 * (
                        (y - cy) ** 2 + (x - cx) ** 2 + (layer - cl) ** 2
                    )
        offset, value, _h2 = _quadratic_fit(dog, 1, 4, 4)
        assert offset[0] == pytest.approx(0.2, abs=0.05)  # x
        assert offset[1] == pytest.approx(0.3, abs=0.05)  # y
        assert value == pytest.approx(1.0, abs=0.02)

    def test_edge_test_rejects_ridges(self):
        # isotropic blob: passes
        blob = np.array([[-0.5, 0.0], [0.0, -0.5]])
        assert _passes_edge_test(blob, edge_ratio=10.0)
        # strong ridge (one large, one tiny curvature): rejected
        ridge = np.array([[-1.0, 0.0], [0.0, -0.01]])
        assert not _passes_edge_test(ridge, edge_ratio=10.0)
        # saddle (negative determinant): rejected
        saddle = np.array([[-1.0, 0.0], [0.0, 0.5]])
        assert not _passes_edge_test(saddle, edge_ratio=10.0)
