"""Serial-chain compositions of the benchmark harness."""

import pytest

from repro.bench import algorithm1_steps, algorithm2_steps, chain_speed, hybrid_speed
from repro.gpusim import KernelCalibration, TESLA_P100

CAL = KernelCalibration.for_device(TESLA_P100)


class TestAlgorithm1Steps:
    def test_step_names_match_table1(self):
        steps = algorithm1_steps(TESLA_P100, CAL)
        assert set(steps) == {
            "GEMM/step3", "Add N_R/step4", "Top-2 sort/step5",
            "Add N_Q and Sqrt/step6&7", "D2H copy/step8", "Post-processing/CPU",
        }

    def test_insertion_total_matches_garcia(self):
        """Table 1 column 2: 330.3 us."""
        steps = algorithm1_steps(TESLA_P100, CAL, sort_kind="insertion")
        assert sum(steps.values()) == pytest.approx(330.3, rel=0.02)

    def test_scan_total_matches_ours(self):
        """Table 1 column 3: 148.5 us."""
        steps = algorithm1_steps(TESLA_P100, CAL, sort_kind="scan")
        assert sum(steps.values()) == pytest.approx(148.5, rel=0.02)

    def test_unknown_sort(self):
        with pytest.raises(ValueError):
            algorithm1_steps(TESLA_P100, CAL, sort_kind="radix")


class TestAlgorithm2Steps:
    def test_step_names_match_table3(self):
        steps = algorithm2_steps(TESLA_P100, CAL, batch=4)
        assert set(steps) == {
            "HGEMM/step1", "Sort and Sqrt/step2&3",
            "D2H memory copy/step4", "Post-processing/CPU",
        }

    def test_batch_1024_total(self):
        """Table 3: 21.96 us/img at batch 1024."""
        steps = algorithm2_steps(TESLA_P100, CAL, batch=1024)
        assert sum(steps.values()) / 1024 == pytest.approx(21.96, rel=0.02)

    def test_chain_speed(self):
        steps = {"a": 50.0, "b": 50.0}
        assert chain_speed(steps, batch=2) == pytest.approx(20_000.0)
        with pytest.raises(ValueError):
            chain_speed({"a": 0.0})


class TestHybridSpeed:
    def test_location_ordering(self):
        gpu = hybrid_speed(TESLA_P100, CAL, "gpu")
        pinned = hybrid_speed(TESLA_P100, CAL, "host-pinned")
        pageable = hybrid_speed(TESLA_P100, CAL, "host-pageable")
        assert pageable < pinned < gpu

    def test_asymmetric_m_relaxes_transfer(self):
        """Sec. 7: halving m halves the PCIe requirement."""
        full = hybrid_speed(TESLA_P100, CAL, "host-pinned", m=768)
        half = hybrid_speed(TESLA_P100, CAL, "host-pinned", m=384)
        assert half > 1.5 * full

    def test_unknown_location(self):
        with pytest.raises(ValueError):
            hybrid_speed(TESLA_P100, CAL, "nvme")
