"""Ratio test, match counting, and result containers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    GroupSearchResult,
    ImageMatch,
    KnnResult,
    SearchResult,
    batch_ratio_test_masks,
    good_match_count,
    match_images,
    match_images_batch,
    ratio_test_mask,
    verify_pair,
)


class TestRatioTest:
    def test_basic(self):
        d = np.array([[1.0, 3.0, 0.5], [2.0, 3.5, 2.0]])
        mask = ratio_test_mask(d, 0.8)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_zero_second_neighbour_never_passes(self):
        d = np.array([[0.0], [0.0]])
        assert not ratio_test_mask(d, 0.8)[0]

    def test_threshold_validation(self):
        d = np.ones((2, 3))
        with pytest.raises(ValueError):
            ratio_test_mask(d, 1.0)
        with pytest.raises(ValueError):
            ratio_test_mask(d, 0.0)

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            ratio_test_mask(np.ones((1, 3)), 0.8)

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_threshold(self, threshold):
        rng = np.random.default_rng(0)
        d = np.sort(rng.random((2, 50)), axis=0)
        strict = good_match_count(d, threshold / 2)
        loose = good_match_count(d, threshold)
        assert strict <= loose


class TestMatchImages:
    def _knn(self):
        distances = np.array([[1.0, 5.0, 0.2], [2.0, 5.2, 4.0]])
        indices = np.array([[3, 1, 7], [4, 2, 8]], dtype=np.int32)
        return KnnResult(distances=distances, indices=indices)

    def test_counts(self):
        match = match_images("ref-a", self._knn(), 0.8)
        assert match.reference_id == "ref-a"
        assert match.good_matches == 2
        assert match.n_query_features == 3
        assert match.match_mask is None

    def test_keep_mask(self):
        match = match_images("ref-a", self._knn(), 0.8, keep_mask=True)
        np.testing.assert_array_equal(match.match_mask, [True, False, True])
        np.testing.assert_array_equal(match.matched_reference_indices, [3, 7])

    def test_verify_pair(self):
        same, count = verify_pair(self._knn(), 0.8, min_matches=2)
        assert same and count == 2
        same, _ = verify_pair(self._knn(), 0.8, min_matches=3)
        assert not same


class TestBatchMatchCounting:
    """The vectorised batch path must count exactly like the scalar one."""

    def _batch(self, seed=0, batch=7, n=24):
        rng = np.random.default_rng(seed)
        distances = np.sort(rng.random((batch, 2, n)), axis=1)
        # sprinkle exact ties and zero second-neighbours (edge cases)
        distances[0, 0, 0] = distances[0, 1, 0]
        distances[1, :, 1] = 0.0
        indices = rng.integers(0, 64, size=(batch, 2, n)).astype(np.int32)
        return distances, indices

    def test_masks_match_scalar(self):
        distances, _ = self._batch()
        masks = batch_ratio_test_masks(distances, 0.8)
        for i in range(distances.shape[0]):
            np.testing.assert_array_equal(
                masks[i], ratio_test_mask(distances[i], 0.8)
            )

    def test_masks_handle_query_group_axis(self):
        distances, _ = self._batch()
        grouped = np.stack([distances, distances * 0.5])  # (2, batch, k, n)
        masks = batch_ratio_test_masks(grouped, 0.8)
        assert masks.shape == (2, distances.shape[0], distances.shape[-1])
        np.testing.assert_array_equal(
            masks[0], batch_ratio_test_masks(distances, 0.8)
        )

    def test_counts_identical_to_match_images(self):
        distances, indices = self._batch(seed=3)
        ids = [f"r{i}" for i in range(distances.shape[0])]
        batch_matches = match_images_batch(ids, distances, indices, 0.8)
        for i, match in enumerate(batch_matches):
            scalar = match_images(
                ids[i], KnnResult(distances[i], indices[i]), 0.8
            )
            assert match.reference_id == scalar.reference_id
            assert match.good_matches == scalar.good_matches
            assert match.n_query_features == scalar.n_query_features

    def test_keep_masks_identical_to_match_images(self):
        distances, indices = self._batch(seed=4)
        ids = [f"r{i}" for i in range(distances.shape[0])]
        batch_matches = match_images_batch(
            ids, distances, indices, 0.8, keep_masks=True
        )
        for i, match in enumerate(batch_matches):
            scalar = match_images(
                ids[i], KnnResult(distances[i], indices[i]), 0.8, keep_mask=True
            )
            np.testing.assert_array_equal(match.match_mask, scalar.match_mask)
            np.testing.assert_array_equal(
                match.matched_reference_indices,
                scalar.matched_reference_indices,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_ratio_test_masks(np.ones((3, 1, 4)), 0.8)
        with pytest.raises(ValueError):
            batch_ratio_test_masks(np.ones(5), 0.8)
        with pytest.raises(ValueError):
            batch_ratio_test_masks(np.ones((3, 2, 4)), 1.0)


class TestGroupSearchResult:
    def test_pairs_and_throughput(self):
        group = GroupSearchResult(
            results=[SearchResult(), SearchResult(), SearchResult()],
            elapsed_us=2_000_000.0,
            images_searched=10,
        )
        assert group.group_size == 3
        assert group.pairs_compared == 30
        assert group.throughput_images_per_s == pytest.approx(15.0)

    def test_empty(self):
        group = GroupSearchResult()
        assert group.group_size == 0
        assert group.throughput_images_per_s == 0.0


class TestResultContainers:
    def test_knn_shape_check(self):
        with pytest.raises(ValueError):
            KnnResult(np.ones((2, 3)), np.ones((2, 4), np.int32))

    def test_search_result_ranking(self):
        result = SearchResult(
            matches=[
                ImageMatch("a", 3, 10),
                ImageMatch("b", 7, 10),
                ImageMatch("c", 7, 10),
            ],
            elapsed_us=1000.0,
            images_searched=3,
        )
        top = result.top(2)
        assert [m.reference_id for m in top] == ["b", "c"]  # id tiebreak
        assert result.best().reference_id == "b"
        assert result.throughput_images_per_s == pytest.approx(3000.0)

    def test_inliers_override_score(self):
        match = ImageMatch("a", 9, 10, inliers=2)
        assert match.score == 2

    def test_empty_result(self):
        assert SearchResult().best() is None
        assert SearchResult().throughput_images_per_s == 0.0
