"""Ratio test, match counting, and result containers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ImageMatch,
    KnnResult,
    SearchResult,
    good_match_count,
    match_images,
    ratio_test_mask,
    verify_pair,
)


class TestRatioTest:
    def test_basic(self):
        d = np.array([[1.0, 3.0, 0.5], [2.0, 3.5, 2.0]])
        mask = ratio_test_mask(d, 0.8)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_zero_second_neighbour_never_passes(self):
        d = np.array([[0.0], [0.0]])
        assert not ratio_test_mask(d, 0.8)[0]

    def test_threshold_validation(self):
        d = np.ones((2, 3))
        with pytest.raises(ValueError):
            ratio_test_mask(d, 1.0)
        with pytest.raises(ValueError):
            ratio_test_mask(d, 0.0)

    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            ratio_test_mask(np.ones((1, 3)), 0.8)

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_threshold(self, threshold):
        rng = np.random.default_rng(0)
        d = np.sort(rng.random((2, 50)), axis=0)
        strict = good_match_count(d, threshold / 2)
        loose = good_match_count(d, threshold)
        assert strict <= loose


class TestMatchImages:
    def _knn(self):
        distances = np.array([[1.0, 5.0, 0.2], [2.0, 5.2, 4.0]])
        indices = np.array([[3, 1, 7], [4, 2, 8]], dtype=np.int32)
        return KnnResult(distances=distances, indices=indices)

    def test_counts(self):
        match = match_images("ref-a", self._knn(), 0.8)
        assert match.reference_id == "ref-a"
        assert match.good_matches == 2
        assert match.n_query_features == 3
        assert match.match_mask is None

    def test_keep_mask(self):
        match = match_images("ref-a", self._knn(), 0.8, keep_mask=True)
        np.testing.assert_array_equal(match.match_mask, [True, False, True])
        np.testing.assert_array_equal(match.matched_reference_indices, [3, 7])

    def test_verify_pair(self):
        same, count = verify_pair(self._knn(), 0.8, min_matches=2)
        assert same and count == 2
        same, _ = verify_pair(self._knn(), 0.8, min_matches=3)
        assert not same


class TestResultContainers:
    def test_knn_shape_check(self):
        with pytest.raises(ValueError):
            KnnResult(np.ones((2, 3)), np.ones((2, 4), np.int32))

    def test_search_result_ranking(self):
        result = SearchResult(
            matches=[
                ImageMatch("a", 3, 10),
                ImageMatch("b", 7, 10),
                ImageMatch("c", 7, 10),
            ],
            elapsed_us=1000.0,
            images_searched=3,
        )
        top = result.top(2)
        assert [m.reference_id for m in top] == ["b", "c"]  # id tiebreak
        assert result.best().reference_id == "b"
        assert result.throughput_images_per_s == pytest.approx(3000.0)

    def test_inliers_override_score(self):
        match = ImageMatch("a", 9, 10, inliers=2)
        assert match.score == 2

    def test_empty_result(self):
        assert SearchResult().best() is None
        assert SearchResult().throughput_images_per_s == 0.0
