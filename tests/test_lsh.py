"""LSH compression baseline."""

import numpy as np
import pytest

from repro.baselines import LshCodec, LshMatcher
from repro.features.binarize import popcount
from tests.conftest import make_descriptors, noisy_copy


class TestPopcount:
    def test_known_values(self):
        vals = np.array([0, 1, 3, 255, 2**63], dtype=np.uint64)
        np.testing.assert_array_equal(popcount(vals), [0, 1, 2, 8, 1])


class TestCodec:
    @pytest.fixture(scope="class")
    def codec(self):
        codec = LshCodec(d=128, n_bits=128, seed=0)
        codec.train(make_descriptors(200, seed=0))
        return codec

    def test_code_shape_and_compression(self, codec):
        codes = codec.encode(make_descriptors(10, seed=1))
        assert codes.shape == (10, 2)
        assert codec.bytes_per_descriptor == 16  # vs 512 B of FP32

    def test_identical_vectors_zero_hamming(self, codec):
        d = make_descriptors(5, seed=2)
        codes = codec.encode(d)
        ham = codec.hamming(codes, codes)
        np.testing.assert_array_equal(np.diag(ham), 0)

    def test_hamming_correlates_with_distance(self, codec):
        base = make_descriptors(40, seed=3)
        near = noisy_copy(base, 10.0, seed=4)
        far = make_descriptors(40, seed=5)
        codes = codec.encode(base)
        near_h = np.diag(codec.hamming(codec.encode(near), codes))
        far_h = np.diag(codec.hamming(codec.encode(far), codes))
        assert near_h.mean() < far_h.mean()

    def test_deterministic(self):
        a = LshCodec(d=128, n_bits=64, seed=9)
        b = LshCodec(d=128, n_bits=64, seed=9)
        d = make_descriptors(4, seed=6)
        np.testing.assert_array_equal(a.encode(d), b.encode(d))

    def test_validation(self):
        with pytest.raises(ValueError):
            LshCodec(n_bits=4)
        codec = LshCodec(d=128, n_bits=64)
        with pytest.raises(ValueError):
            codec.encode(np.zeros((64, 3), np.float32))
        with pytest.raises(ValueError):
            codec.train(np.zeros((64, 3), np.float32))


class TestMatcher:
    def test_identifies_true_image(self):
        codec = LshCodec(d=128, n_bits=256, seed=0)
        descs = {i: make_descriptors(48, seed=2100 + i) for i in range(6)}
        codec.train(np.hstack(list(descs.values())))
        matcher = LshMatcher(codec, n_candidates=6)
        for i, d in descs.items():
            matcher.add(f"img{i}", d)
        query = noisy_copy(descs[4], 8.0, seed=211)
        ranked = matcher.search(query)
        assert ranked[0][0] == "img4"
        assert ranked[0][1] > ranked[1][1]

    def test_fewer_bits_weaker_separation(self):
        descs = {i: make_descriptors(48, seed=2200 + i) for i in range(4)}
        sample = np.hstack(list(descs.values()))
        query = noisy_copy(descs[1], 8.0, seed=221)

        def top_margin(bits):
            codec = LshCodec(d=128, n_bits=bits, seed=0)
            codec.train(sample)
            matcher = LshMatcher(codec, n_candidates=4)
            for i, d in descs.items():
                matcher.add(f"img{i}", d)
            ranked = matcher.search(query)
            true_score = dict(ranked)["img1"]
            others = max(s for n, s in ranked if n != "img1")
            return true_score - others

        assert top_margin(512) >= top_margin(16)

    def test_validation(self):
        with pytest.raises(ValueError):
            LshMatcher(LshCodec(), n_candidates=1)
