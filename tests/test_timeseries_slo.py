"""Time-series telemetry and SLO burn-rate alerting: recorder clock
semantics, windowed views, the alert state machine, determinism, and
the REST / stats / Perfetto surfaces."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EngineConfig, TextureSearchEngine
from repro.distributed import DistributedSearchSystem, Request, WebTier
from repro.obs import (
    CRITICAL,
    OK,
    WARNING,
    BurnRateRule,
    MetricsRegistry,
    SeriesSelection,
    SloEngine,
    SloPolicy,
    TimeSeriesRecorder,
    install_engine,
    install_recorder,
    to_perfetto,
    uninstall_engine,
    uninstall_recorder,
)
from repro.obs.metrics import _escape_label_value
from repro.obs.smoke import parse_prometheus
from repro.serving import (
    BatchPolicy,
    FusedEngineExecutor,
    build_trace,
    poisson_arrivals,
    simulate_serving,
)
from tests.conftest import make_descriptors, noisy_copy

BOUNDS = (10.0, 50.0, 100.0, 500.0, 1000.0)


def _recorder(interval_us=1_000.0, retention=64):
    reg = MetricsRegistry()
    return reg, TimeSeriesRecorder(
        interval_us=interval_us, retention=retention, registry=reg
    )


class TestRecorderClock:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(interval_us=0.0, registry=MetricsRegistry())
        with pytest.raises(ValueError):
            TimeSeriesRecorder(retention=1, registry=MetricsRegistry())

    def test_baseline_sample_at_zero(self):
        _, rec = _recorder()
        assert len(rec) == 1
        assert rec.samples[0].t_us == 0.0

    def test_samples_land_on_grid(self):
        """Crossing several boundaries scrapes once, stamped at the
        *last* boundary crossed."""
        _, rec = _recorder(interval_us=1_000.0)
        rec.advance_to(3_700.0)
        assert [s.t_us for s in rec.samples] == [0.0, 3_000.0]
        rec.advance_to(3_999.0)  # same interval: no new sample
        assert len(rec) == 2
        rec.advance_to(4_000.0)  # exactly on the boundary
        assert rec.samples[-1].t_us == 4_000.0

    def test_advance_to_is_monotone(self):
        _, rec = _recorder()
        rec.advance_to(5_000.0)
        rec.advance_to(2_000.0)  # stale reading: ignored
        assert rec.now_us == 5_000.0

    def test_advance_by_accumulates(self):
        _, rec = _recorder(interval_us=1_000.0)
        for _ in range(4):
            rec.advance_by(600.0)
        assert rec.now_us == pytest.approx(2_400.0)
        assert [s.t_us for s in rec.samples] == [0.0, 1_000.0, 2_000.0]

    def test_exclusive_scope_suppresses_relative_advances(self):
        _, rec = _recorder()
        with rec.exclusive():
            rec.advance_by(10_000.0)  # nested relative driver: ignored
            assert rec.now_us == 0.0
            rec.advance_to(1_500.0)  # the absolute driver still advances
        rec.advance_by(500.0)  # back outside: relative works again
        assert rec.now_us == pytest.approx(2_000.0)

    def test_flush_takes_off_grid_sample(self):
        reg, rec = _recorder(interval_us=1_000.0)
        c = reg.counter("f_total", "f")
        rec.advance_to(1_000.0)
        c.inc(3)
        rec.advance_to(1_400.0)  # no boundary crossed: not yet visible
        assert rec.last("f_total") == 0.0
        rec.flush()
        assert rec.samples[-1].t_us == 1_400.0
        assert rec.last("f_total") == 3.0

    def test_rescrape_same_instant_replaces(self):
        _, rec = _recorder()
        rec.flush()
        rec.flush()
        assert len(rec) == 1  # three scrapes at t=0, one sample

    def test_ring_retention(self):
        _, rec = _recorder(interval_us=1_000.0, retention=4)
        for i in range(1, 11):
            rec.advance_to(i * 1_000.0)
        assert len(rec) == 4
        assert [s.t_us for s in rec.samples] == [
            7_000.0, 8_000.0, 9_000.0, 10_000.0
        ]

    def test_listener_sees_every_sample(self):
        _, rec = _recorder(interval_us=1_000.0)
        seen = []
        rec.add_listener(lambda s: seen.append(s.t_us))
        rec.advance_to(2_500.0)
        rec.remove_listener(rec._listeners[0])
        rec.advance_to(5_000.0)
        assert seen == [2_000.0]

    def test_module_hooks_noop_when_uninstalled(self):
        from repro.obs.timeseries import advance_by, advance_to, exclusive_clock

        uninstall_recorder()
        advance_to(1_000.0)
        advance_by(1_000.0)
        with exclusive_clock():
            pass  # nothing installed: all no-ops
        _, rec = _recorder()
        assert install_recorder(rec) is None
        advance_by(1_500.0)
        assert rec.now_us == 1_500.0
        assert uninstall_recorder() is rec


class TestWindowedViews:
    def test_counter_delta_and_rate(self):
        reg, rec = _recorder(interval_us=1_000.0)
        c = reg.counter("ops_total", "ops")
        c.inc(5)
        rec.advance_to(1_000.0)
        c.inc(10)
        rec.advance_to(2_000.0)
        assert rec.last("ops_total") == 15.0
        assert rec.delta("ops_total", 1_000.0) == 10.0
        # 10 ops over 1000 simulated us = 10_000 ops / simulated second
        assert rec.rate("ops_total", 1_000.0) == pytest.approx(10_000.0)
        assert rec.delta("ops_total", 10_000.0) == 15.0  # clamped to ring

    def test_gauge_last_value(self):
        reg, rec = _recorder(interval_us=1_000.0)
        g = reg.gauge("depth", "queue depth")
        g.set(7)
        rec.advance_to(1_000.0)
        g.set(3)
        rec.advance_to(2_000.0)
        assert rec.last("depth") == 3.0

    def test_delta_clamps_registry_reset(self):
        reg, rec = _recorder(interval_us=1_000.0)
        c = reg.counter("r_total", "r")
        c.inc(9)
        rec.advance_to(1_000.0)
        reg.reset()
        rec.advance_to(2_000.0)
        assert rec.delta("r_total", 1_000.0) == 0.0  # not -9

    def test_label_selection_sums_children(self):
        reg, rec = _recorder(interval_us=1_000.0)
        c = reg.counter("req_total", "req", ("route", "code"))
        c.labels(route="/a", code="200").inc(4)
        c.labels(route="/a", code="500").inc(1)
        c.labels(route="/b", code="200").inc(2)
        rec.advance_to(1_000.0)
        assert rec.delta("req_total", 1_000.0) == 7.0  # whole family
        assert rec.delta("req_total", 1_000.0, {"route": "/a"}) == 5.0
        assert rec.delta("req_total", 1_000.0, {"code": "200"}) == 6.0
        assert rec.delta("req_total", 1_000.0, {"route": "/c"}) == 0.0

    def test_window_percentile_nearest_rank(self):
        reg, rec = _recorder(interval_us=1_000.0)
        h = reg.histogram("lat_us", "latency", buckets=BOUNDS)
        for v in (5.0, 20.0, 20.0, 80.0, 400.0, 400.0, 400.0, 900.0, 900.0, 2_000.0):
            h.observe(v)
        rec.advance_to(1_000.0)
        # 10 observations; nearest-rank quantised to bucket bounds
        assert rec.window_percentile("lat_us", 50, 1_000.0) == 500.0
        assert rec.window_percentile("lat_us", 10, 1_000.0) == 10.0
        assert rec.window_percentile("lat_us", 90, 1_000.0) == 1_000.0
        assert rec.window_percentile("lat_us", 99, 1_000.0) == math.inf
        with pytest.raises(ValueError):
            rec.window_percentile("lat_us", 0, 1_000.0)
        with pytest.raises(ValueError):
            rec.window_percentile("lat_us", 101, 1_000.0)

    def test_window_sees_only_windowed_observations(self):
        reg, rec = _recorder(interval_us=1_000.0)
        h = reg.histogram("lat_us", "latency", buckets=BOUNDS)
        for _ in range(10):
            h.observe(900.0)  # old slow phase
        rec.advance_to(1_000.0)
        for _ in range(10):
            h.observe(20.0)  # recent fast phase
        rec.advance_to(2_000.0)
        assert rec.window_percentile("lat_us", 95, 1_000.0) == 50.0
        # a window spanning both phases sees the slow tail again
        assert rec.window_percentile("lat_us", 95, 2_000.0) == 1_000.0

    def test_window_error_fraction_snaps_threshold(self):
        reg, rec = _recorder(interval_us=1_000.0)
        h = reg.histogram("lat_us", "latency", buckets=BOUNDS)
        for v in (20.0, 60.0, 60.0, 900.0):
            h.observe(v)
        rec.advance_to(1_000.0)
        # threshold 75 snaps up to bound 100: the 60s become "good"
        assert TimeSeriesRecorder.effective_threshold_us(BOUNDS, 75.0) == 100.0
        assert rec.window_error_fraction("lat_us", 75.0, 1_000.0) == (1, 4)
        # past the last bound: only overflow counts as error
        assert TimeSeriesRecorder.effective_threshold_us(BOUNDS, 5_000.0) == math.inf
        assert rec.window_error_fraction("lat_us", 5_000.0, 1_000.0) == (0, 4)

    def test_unknown_metric_is_empty(self):
        _, rec = _recorder()
        rec.flush()
        assert rec.last("nope_total") == 0.0
        assert rec.delta("nope_total", 1_000.0) == 0.0
        assert rec.window_percentile("nope_us", 99, 1_000.0) == 0.0
        assert rec.histogram_bounds("nope_us") == ()

    def test_history_filters(self):
        reg, rec = _recorder(interval_us=1_000.0)
        c = reg.counter("h_total", "h")
        for i in range(1, 5):
            c.inc()
            rec.advance_to(i * 1_000.0)
        out = rec.history(names=["h_total"], since_us=2_000.0, limit=2)
        assert out["n_samples"] == 2
        assert [s["t_us"] for s in out["samples"]] == [3_000.0, 4_000.0]
        assert set(out["meta"]) == {"h_total"}
        rows = out["samples"][-1]["series"]["h_total"]
        assert rows == [{"labels": {}, "value": 4.0}]


@st.composite
def _observations(draw):
    return draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2_000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=0, max_size=60,
        )
    )


def _quantise(value: float) -> float:
    for bound in BOUNDS:
        if value <= bound:
            return bound
    return math.inf


class TestPercentileProperties:
    """Satellite: windowed percentiles from bucket deltas must agree
    with a nearest-rank recomputation over the raw observation stream
    (quantised to bucket bounds — all a histogram can know)."""

    @settings(max_examples=80, deadline=None)
    @given(old=_observations(), new=_observations(),
           p=st.sampled_from([1.0, 50.0, 90.0, 95.0, 99.0, 100.0]))
    def test_windowed_percentile_matches_raw_recompute(self, old, new, p):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(
            interval_us=1_000.0, retention=16, registry=reg
        )
        h = reg.histogram("p_us", "p", buckets=BOUNDS)
        for v in old:
            h.observe(v)
        rec.advance_to(1_000.0)
        for v in new:
            h.observe(v)
        rec.advance_to(2_000.0)
        got = rec.window_percentile("p_us", p, 1_000.0)
        if not new:
            assert got == 0.0
            return
        ranked = sorted(_quantise(v) for v in new)
        expect = ranked[max(1, math.ceil(p / 100.0 * len(ranked))) - 1]
        assert got == expect

    @settings(max_examples=40, deadline=None)
    @given(values=_observations(), threshold=st.floats(0.5, 3_000.0))
    def test_error_fraction_matches_raw_recompute(self, values, threshold):
        reg = MetricsRegistry()
        rec = TimeSeriesRecorder(
            interval_us=1_000.0, retention=16, registry=reg
        )
        h = reg.histogram("e_us", "e", buckets=BOUNDS)
        for v in values:
            h.observe(v)
        rec.advance_to(1_000.0)
        errors, total = rec.window_error_fraction("e_us", threshold, 1_000.0)
        effective = TimeSeriesRecorder.effective_threshold_us(BOUNDS, threshold)
        assert total == len(values)
        # overflow observations are always errors: the histogram cannot
        # prove they were under any finite (or snapped-to-inf) threshold
        assert errors == sum(
            1 for v in values
            if _quantise(v) > effective or math.isinf(_quantise(v))
        )


def _latency_policy(**overrides):
    kwargs = dict(
        name="lat", kind="latency", objective=0.9,
        metric="lat_us", threshold_us=100.0,
        critical=BurnRateRule(2_000.0, 6_000.0, 3.0),
        warning=BurnRateRule(4_000.0, 12_000.0, 1.0),
    )
    kwargs.update(overrides)
    return SloPolicy(**kwargs)


class TestSloPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(0.0, 1_000.0, 1.0)
        with pytest.raises(ValueError):
            BurnRateRule(2_000.0, 1_000.0, 1.0)  # fast > slow
        with pytest.raises(ValueError):
            BurnRateRule(1_000.0, 2_000.0, 0.0)
        with pytest.raises(ValueError):
            _latency_policy(kind="throughput")
        with pytest.raises(ValueError):
            _latency_policy(objective=1.0)
        with pytest.raises(ValueError):
            _latency_policy(metric="")
        with pytest.raises(ValueError):
            _latency_policy(clear_hold_us=-1.0)
        with pytest.raises(ValueError):
            _latency_policy(min_events=0)
        with pytest.raises(ValueError):
            SloPolicy(
                name="a", kind="availability", objective=0.99,
                critical=BurnRateRule(1.0, 2.0, 1.0),
                warning=BurnRateRule(1.0, 2.0, 1.0),
            )  # no series selections

    def test_burn_rate_math(self):
        reg, rec = _recorder(interval_us=1_000.0)
        h = reg.histogram("lat_us", "latency", buckets=BOUNDS)
        for _ in range(7):
            h.observe(20.0)
        for _ in range(3):
            h.observe(900.0)
        rec.advance_to(1_000.0)
        policy = _latency_policy()  # budget = 0.1
        # 3/10 above 100us -> error fraction 0.3 -> burn 3.0
        assert policy.burn_rate(rec, 1_000.0) == pytest.approx(3.0)
        assert policy.error_budget == pytest.approx(0.1)

    def test_burn_rate_empty_window_is_zero(self):
        reg, rec = _recorder(interval_us=1_000.0)
        reg.histogram("lat_us", "latency", buckets=BOUNDS)
        rec.advance_to(1_000.0)
        assert _latency_policy().burn_rate(rec, 1_000.0) == 0.0


class TestSloEngine:
    def _engine(self, policies, reg):
        return SloEngine(policies, registry=reg)

    def _drive(self, reg, rec, engine, slow_per_tick, ticks, fast_per_tick=0):
        h = reg.get("lat_us") or reg.histogram("lat_us", "l", buckets=BOUNDS)
        for _ in range(ticks):
            for _ in range(slow_per_tick):
                h.observe(900.0)
            for _ in range(fast_per_tick):
                h.observe(20.0)
            rec.advance_to(rec.now_us + 1_000.0)

    def test_escalates_immediately_and_logs(self):
        reg, rec = _recorder(interval_us=1_000.0)
        reg.histogram("lat_us", "l", buckets=BOUNDS)
        engine = self._engine([_latency_policy()], reg)
        engine.attach(rec)
        assert engine.state_of("lat") == OK
        self._drive(reg, rec, engine, slow_per_tick=5, ticks=3)
        assert engine.state_of("lat") == CRITICAL
        first = engine.log.first_at("lat", CRITICAL)
        assert first is not None and first.previous in (OK, WARNING)
        assert engine.log.worst_state("lat") == CRITICAL
        # alert state mirrored into the registry for the exporters
        assert reg.value("repro_slo_state", policy="lat") == 2.0
        assert reg.value(
            "repro_slo_transitions_total", policy="lat", to="critical"
        ) == 1.0

    def test_hysteresis_holds_then_clears(self):
        reg, rec = _recorder(interval_us=1_000.0)
        reg.histogram("lat_us", "l", buckets=BOUNDS)
        engine = self._engine(
            [_latency_policy(
                critical=BurnRateRule(1_000.0, 2_000.0, 3.0),
                warning=BurnRateRule(1_000.0, 2_000.0, 1.0),
                clear_hold_us=3_000.0,
            )],
            reg,
        )
        engine.attach(rec)
        self._drive(reg, rec, engine, slow_per_tick=5, ticks=3)
        assert engine.state_of("lat") == CRITICAL
        # burns fall silent, but the state holds for clear_hold_us ...
        self._drive(reg, rec, engine, slow_per_tick=0, ticks=2,
                    fast_per_tick=5)
        assert engine.state_of("lat") == CRITICAL
        # ... and only then downgrades
        self._drive(reg, rec, engine, slow_per_tick=0, ticks=4,
                    fast_per_tick=5)
        assert engine.state_of("lat") == OK
        states = [e.state for e in engine.log.for_policy("lat")]
        assert states[-1] == OK and CRITICAL in states

    def test_min_events_gate(self):
        reg, rec = _recorder(interval_us=1_000.0)
        h = reg.histogram("lat_us", "l", buckets=BOUNDS)
        engine = self._engine([_latency_policy(min_events=50)], reg)
        engine.attach(rec)
        h.observe(900.0)  # 1/1 late = burn 10, but only one event
        rec.advance_to(1_000.0)
        assert engine.state_of("lat") == OK

    def test_availability_policy_and_sink(self):
        reg, rec = _recorder(interval_us=1_000.0)
        errors = reg.counter("err_total", "e", ("kind",))
        total = reg.counter("all_total", "t")
        policy = SloPolicy(
            name="avail", kind="availability", objective=0.99,
            error_series=(SeriesSelection("err_total", {"kind": "shed"}),),
            total_series=(SeriesSelection("all_total"),),
            critical=BurnRateRule(1_000.0, 2_000.0, 10.0),
            warning=BurnRateRule(1_000.0, 2_000.0, 2.0),
        )
        engine = self._engine([policy], reg)
        events = []
        engine.add_sink(events.append)
        engine.attach(rec)
        for _ in range(3):
            total.inc(10)
            errors.labels(kind="shed").inc(5)  # 50% errors, budget 1%
            errors.labels(kind="other").inc(50)  # not selected
            rec.advance_to(rec.now_us + 1_000.0)
        assert engine.state_of("avail") == CRITICAL
        assert events and events[-1].state == CRITICAL
        assert events[-1].burn_fast >= 10.0

    def test_detach_stops_evaluation(self):
        reg, rec = _recorder(interval_us=1_000.0)
        reg.histogram("lat_us", "l", buckets=BOUNDS)
        engine = self._engine([_latency_policy()], reg)
        engine.attach(rec)
        engine.detach()
        self._drive(reg, rec, engine, slow_per_tick=5, ticks=3)
        assert engine.state_of("lat") == OK
        assert len(engine.log) == 0

    def test_duplicate_policy_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            SloEngine([_latency_policy(), _latency_policy()], registry=reg)

    def test_to_dict_shape(self):
        reg, rec = _recorder(interval_us=1_000.0)
        reg.histogram("lat_us", "l", buckets=BOUNDS)
        engine = self._engine([_latency_policy()], reg)
        engine.attach(rec)
        self._drive(reg, rec, engine, slow_per_tick=5, ticks=3)
        out = engine.to_dict()
        (entry,) = out["policies"]
        assert entry["name"] == "lat" and entry["state"] == CRITICAL
        assert entry["metric"] == "lat_us"
        assert set(entry["burn"]) == {WARNING, CRITICAL}
        assert out["n_transitions"] == len(out["alerts"]) >= 1

    def test_install_uninstall(self):
        reg, rec = _recorder()
        engine = self._engine([_latency_policy()], reg)
        engine.attach(rec)
        assert install_engine(engine) is None
        assert uninstall_engine() is engine
        assert engine._recorder is None  # uninstall detaches


class TestDeterminism:
    """Same seed + same trace must give a bit-identical alert timeline
    (the recorder runs on simulated time only — no wall-clock leaks)."""

    def _run_once(self):
        cfg = EngineConfig(m=32, n=32, batch_size=4, min_matches=5,
                           scale_factor=0.25)
        engine = TextureSearchEngine(cfg)
        descs = [make_descriptors(cfg.n, seed=s) for s in range(4)]
        for i, d in enumerate(descs):
            engine.add_reference(f"r{i}", d)
        executor = FusedEngineExecutor(engine)
        queries = [noisy_copy(descs[i % 4], 4.0, seed=i) for i in range(24)]
        _, group_us = executor.execute(queries[:8])
        arrivals = poisson_arrivals(len(queries), 8 / group_us * 1e6 * 3.0,
                                    seed=7)
        trace = build_trace(arrivals, queries)
        recorder = TimeSeriesRecorder(interval_us=group_us / 2.0,
                                      retention=512)
        slo = SloEngine([
            SloPolicy(
                name="lat", kind="latency", objective=0.9,
                metric="repro_serving_latency_us",
                threshold_us=2.0 * group_us,
                critical=BurnRateRule(2 * group_us, 6 * group_us, 2.0),
                warning=BurnRateRule(4 * group_us, 12 * group_us, 1.0),
            ),
        ])
        slo.attach(recorder)
        install_recorder(recorder)
        try:
            simulate_serving(
                executor, trace, BatchPolicy(max_batch=8)
            )
            recorder.flush()
        finally:
            uninstall_recorder()
            slo.detach()
        return {
            "alerts": slo.log.to_dicts(),
            "samples": [s.t_us for s in recorder.samples],
        }

    def test_alert_timeline_is_reproducible(self):
        from repro.obs import reset_observability

        first = self._run_once()
        reset_observability()
        second = self._run_once()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert len(first["samples"]) > 2  # the run actually sampled


class TestRestAndStatsSurfaces:
    def _tier(self):
        cfg = EngineConfig(m=32, n=32, batch_size=2, min_matches=5,
                           scale_factor=0.25)
        system = DistributedSearchSystem(2, cfg)
        descs = [make_descriptors(cfg.n, seed=40 + i) for i in range(4)]
        for i, d in enumerate(descs):
            system.add(f"r{i}", d)
        return WebTier(system, n_workers=1), descs

    def test_metrics_history_route(self):
        tier, descs = self._tier()
        # no recorder installed: opt-in telemetry answers disabled
        off = tier.handle(Request("GET", "/metrics/history")).response
        assert off.ok and off.body == {"enabled": False, "samples": []}

        rec = TimeSeriesRecorder(interval_us=1_000.0, retention=64)
        install_recorder(rec)
        try:
            query = noisy_copy(descs[0], 4.0, seed=9).tolist()
            for _ in range(3):
                assert tier.handle(
                    Request("POST", "/search", {"descriptors": query})
                ).response.ok
            rec.flush()
            on = tier.handle(
                Request("GET", "/metrics/history",
                        {"names": ["repro_cluster_searches_total"],
                         "limit": 5})
            ).response
            assert on.ok and on.body["enabled"] is True
            assert on.body["n_samples"] >= 1
            assert set(on.body["meta"]) == {"repro_cluster_searches_total"}
            last = on.body["samples"][-1]["series"]
            assert last["repro_cluster_searches_total"][0]["value"] == 3.0

            for bad in (
                {"names": "not-a-list"},
                {"names": [1, 2]},
                {"since_us": "soon"},
                {"limit": "many"},
            ):
                resp = tier.handle(
                    Request("GET", "/metrics/history", bad)
                ).response
                assert resp.status == 400
        finally:
            uninstall_recorder()

    def test_stats_v7_slo_block(self):
        tier, descs = self._tier()
        stats = tier.handle(Request("GET", "/stats")).response.body
        assert stats["schema_version"] == 8
        assert stats["slo"]["recorder"] == {"enabled": False}
        assert stats["slo"]["engine"] == {"enabled": False}

        rec = TimeSeriesRecorder(interval_us=1_000.0, retention=64)
        engine = SloEngine([
            SloPolicy(
                name="search-availability", kind="availability",
                objective=0.99,
                error_series=(
                    SeriesSelection("repro_cluster_partial_results_total"),
                ),
                total_series=(
                    SeriesSelection("repro_cluster_searches_total"),
                ),
                critical=BurnRateRule(2_000.0, 6_000.0, 10.0),
                warning=BurnRateRule(4_000.0, 12_000.0, 2.0),
            ),
        ])
        engine.attach(rec)
        install_recorder(rec)
        install_engine(engine)
        try:
            query = noisy_copy(descs[0], 4.0, seed=11).tolist()
            assert tier.handle(
                Request("POST", "/search", {"descriptors": query})
            ).response.ok
            rec.flush()
            stats = tier.handle(Request("GET", "/stats")).response.body
            slo = stats["slo"]
            assert slo["recorder"]["enabled"] is True
            assert slo["recorder"]["n_samples"] >= 1
            assert slo["engine"]["enabled"] is True
            (entry,) = slo["engine"]["policies"]
            assert entry["name"] == "search-availability"
            assert entry["state"] == OK
        finally:
            uninstall_engine()
            uninstall_recorder()

    def test_perfetto_counter_tracks(self):
        reg, rec = _recorder(interval_us=1_000.0)
        c = reg.counter("track_total", "t", ("k",))
        for i in range(1, 4):
            c.labels(k="a").inc()
            rec.advance_to(i * 1_000.0)
        points = rec.perfetto_counters()
        trace = json.loads(to_perfetto([], counters=points))
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert len(counters) == len(points)
        assert {e["pid"] for e in counters} == {3}
        series = {e["name"] for e in counters}
        assert 'track_total{k=a}' in series
        names = [
            e["args"]["name"] for e in trace["traceEvents"]
            if e.get("name") == "process_name"
        ]
        assert "telemetry" in names
        # values follow the sampled timeline (the t=0 baseline predates
        # the counter's registration, so the track starts at 1)
        track = sorted(
            (e["ts"], e["args"]["value"]) for e in counters
        )
        assert [v for _, v in track] == [1.0, 2.0, 3.0]


class TestHistogramObserveBisect:
    """Satellite: the bisect-based bucket lookup must agree with the
    linear scan it replaced, including on exact bucket bounds."""

    @staticmethod
    def _linear_index(buckets, value):
        for i, bound in enumerate(buckets):
            if value <= bound:
                return i
        return len(buckets)

    @settings(max_examples=120, deadline=None)
    @given(
        values=st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=3_000.0,
                          allow_nan=False, allow_infinity=False),
                st.sampled_from(BOUNDS),  # exact bounds: the edge case
            ),
            min_size=1, max_size=40,
        )
    )
    def test_bisect_matches_linear_scan(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("b_us", "b", buckets=BOUNDS)
        expect = [0] * (len(BOUNDS) + 1)
        for v in values:
            h.observe(v)
            expect[self._linear_index(BOUNDS, v)] += 1
        assert list(h.bucket_counts) == expect
        assert h.count == len(values)


class TestLabelValueEscaping:
    """Satellite: Prometheus text format 0.0.4 label-value escaping."""

    def test_escape_rules(self):
        assert _escape_label_value("plain") == "plain"
        assert _escape_label_value("back\\slash") == "back\\\\slash"
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert _escape_label_value("two\nlines") == "two\\nlines"
        # escapes-of-escapes stay reversible: backslash first
        assert _escape_label_value('\\"') == '\\\\\\"'

    def test_hostile_values_stay_parseable(self):
        reg = MetricsRegistry()
        c = reg.counter("hostile_total", "h", ("source",))
        hostile = 'C:\\textures\n"brick wall"'
        c.labels(source=hostile).inc(3)
        text = reg.to_prometheus()
        assert "\n\"" not in text.replace("\\n", "")  # newline is escaped
        samples = parse_prometheus(text)  # raises on any malformed line
        series = 'hostile_total{source="C:\\\\textures\\n\\"brick wall\\""}'
        assert samples[series] == 3.0
