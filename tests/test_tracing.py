"""Timeline tracer: capture, overlap analysis, Chrome export."""

import json

import pytest

from repro.gpusim import GPUDevice, TESLA_P100, TimelineTracer


@pytest.fixture
def traced():
    device = GPUDevice(TESLA_P100)
    tracer = TimelineTracer()
    tracer.attach(device)
    yield device, tracer
    tracer.detach()


class TestCapture:
    def test_events_recorded(self, traced):
        device, tracer = traced
        device.submit("compute", 10.0, step="GEMM")
        device.submit("h2d", 5.0, step="copy")
        assert len(tracer.events) == 2
        assert tracer.events[0].engine == "compute"
        assert tracer.events[0].duration_us == 10.0
        assert tracer.events[0].step == "GEMM"
        # same (default) stream: the copy queued behind the kernel
        assert tracer.events[1].start_us == 10.0

    def test_stream_names_captured(self, traced):
        device, tracer = traced
        s = device.create_stream("mystream")
        device.submit("compute", 1.0, stream=s)
        assert tracer.events[0].stream == "mystream"

    def test_detach_restores(self, traced):
        device, tracer = traced
        tracer.detach()
        device.submit("compute", 1.0)
        assert tracer.events == []

    def test_double_attach_rejected(self, traced):
        device, _tracer = traced
        with pytest.raises(ValueError):
            TimelineTracer().attach(device)

    def test_detach_removes_monkeypatched_submit(self, traced):
        device, tracer = traced
        tracer.detach()
        # the wrapper must be gone entirely, not replaced by a pinned
        # bound method shadowing the class implementation
        assert "submit" not in device.__dict__

    def test_attach_detach_attach_cycle(self, traced):
        device, tracer = traced
        device.submit("compute", 1.0)
        tracer.detach()
        device.submit("compute", 1.0)  # untraced
        tracer.attach(device)
        device.submit("compute", 1.0)
        assert len(tracer.events) == 2
        # a *different* tracer can also take over after detach
        tracer.detach()
        other = TimelineTracer()
        other.attach(device)
        device.submit("compute", 1.0)
        other.detach()
        assert len(other.events) == 1

    def test_detach_without_attach_is_noop(self):
        TimelineTracer().detach()  # must not raise

    def test_attached_context_manager(self):
        device = GPUDevice(TESLA_P100)
        tracer = TimelineTracer()
        with tracer.attached(device) as t:
            assert t is tracer
            device.submit("compute", 2.0)
        device.submit("compute", 2.0)  # outside the block: untraced
        assert len(tracer.events) == 1
        assert "submit" not in device.__dict__

    def test_attached_detaches_on_exception(self):
        device = GPUDevice(TESLA_P100)
        tracer = TimelineTracer()
        with pytest.raises(RuntimeError):
            with tracer.attached(device):
                raise RuntimeError("boom")
        assert "submit" not in device.__dict__
        with tracer.attached(device):  # re-attach works
            device.submit("compute", 1.0)
        assert len(tracer.events) == 1

    def test_attach_idempotent(self, traced):
        device, tracer = traced
        tracer.attach(device)  # no-op
        device.submit("compute", 1.0)
        assert len(tracer.events) == 1


class TestAnalysis:
    def test_engine_busy_and_utilisation(self, traced):
        device, tracer = traced
        s1 = device.create_stream()
        s2 = device.create_stream()
        device.submit("compute", 10.0, stream=s1)
        device.submit("h2d", 4.0, stream=s2)
        busy = tracer.engine_busy_us()
        assert busy == {"compute": 10.0, "h2d": 4.0}
        util = tracer.engine_utilisation()
        assert util["compute"] == pytest.approx(1.0)
        assert util["h2d"] == pytest.approx(0.4)

    def test_overlap_measures_concurrency(self, traced):
        device, tracer = traced
        s1 = device.create_stream()
        s2 = device.create_stream()
        device.submit("compute", 10.0, stream=s1)  # [0, 10]
        device.submit("h2d", 6.0, stream=s2)       # [0, 6]
        assert tracer.overlap_us("compute", "h2d") == pytest.approx(6.0)
        assert tracer.overlap_us("compute", "d2h") == 0.0

    def test_serial_chain_has_no_overlap(self, traced):
        device, tracer = traced
        # default stream: everything serialises
        device.submit("h2d", 5.0)
        device.submit("compute", 5.0)
        assert tracer.overlap_us("compute", "h2d") == 0.0

    def test_empty_trace(self):
        tracer = TimelineTracer()
        assert tracer.engine_utilisation() == {}
        assert tracer.engine_busy_us() == {}


class TestChromeExport:
    def test_valid_json_with_metadata(self, traced):
        device, tracer = traced
        device.submit("compute", 3.0, step="GEMM")
        device.submit("d2h", 1.0, step="result")
        payload = json.loads(tracer.to_chrome_trace())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2
        assert {m["args"]["name"] for m in meta} == {"compute", "d2h"}
        assert complete[0]["name"] == "GEMM"
        assert complete[0]["dur"] == 3.0


class TestWithPipeline:
    def test_multistream_overlap_visible(self):
        """The tracer shows what the Sec. 6.2 design buys: H2D overlapped
        with compute once multiple streams are used."""
        from repro.gpusim import KernelCalibration
        from repro.pipeline import simulate_stream_pipeline

        # re-run the event sim manually with tracing
        device = GPUDevice(TESLA_P100)
        tracer = TimelineTracer()
        tracer.attach(device)
        streams = [device.create_stream(f"s{i}") for i in range(2)]
        for i in range(4):
            s = streams[i % 2]
            device.h2d(10**7, stream=s)
            device.gemm(768, 768, 128, batch=64, stream=s)
        device.synchronize()
        overlap = tracer.overlap_us("compute", "h2d")
        assert overlap > 0  # copies hidden behind kernels
        tracer.detach()
