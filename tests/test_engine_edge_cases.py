"""Engine edge cases: empty caches, degenerate inputs, stats."""

import numpy as np
import pytest

from repro.core import EngineConfig, TextureSearchEngine
from repro.errors import CacheCapacityError
from repro.gpusim import GPUDevice, TESLA_P100
from tests.conftest import make_descriptors

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


class TestEmptyAndDegenerate:
    def test_search_empty_engine(self):
        engine = TextureSearchEngine(CFG)
        result = engine.search(make_descriptors(32, seed=7000))
        assert result.matches == []
        assert result.images_searched == 0
        assert result.best() is None

    def test_zero_feature_query(self):
        engine = TextureSearchEngine(CFG)
        engine.add_reference("r0", make_descriptors(32, seed=7001))
        empty = np.zeros((128, 0), np.float32)
        result = engine.search(empty)
        # all-padding query: compared but matches nothing
        assert result.images_searched == 1
        assert result.best().good_matches == 0

    def test_single_feature_reference(self):
        engine = TextureSearchEngine(CFG)
        engine.add_reference("tiny", make_descriptors(1, seed=7002))
        result = engine.search(make_descriptors(32, seed=7003))
        assert result.images_searched == 1

    def test_flush_idempotent(self):
        engine = TextureSearchEngine(CFG)
        engine.add_reference("r0", make_descriptors(32, seed=7004))
        engine.flush()
        engine.flush()  # no-op
        assert engine.n_references == 1
        assert engine.cache.total_images == 1

    def test_duplicate_constant_descriptors(self):
        """Identical reference features: ratio test must reject (d1==d2)."""
        engine = TextureSearchEngine(CFG)
        column = make_descriptors(1, seed=7005)
        dup = np.repeat(column, 32, axis=1)
        engine.add_reference("dup", dup)
        result = engine.search(dup)
        assert result.best().good_matches == 0  # second NN is identical


class TestCapacityExhaustion:
    def test_engine_raises_when_both_levels_full(self):
        device = GPUDevice(TESLA_P100.with_memory(2 * CFG.batch_size * CFG.feature_matrix_bytes()))
        engine = TextureSearchEngine(
            CFG, device=device,
            gpu_cache_bytes=CFG.batch_size * CFG.feature_matrix_bytes(),
            host_cache_bytes=CFG.batch_size * CFG.feature_matrix_bytes(),
        )
        # 2 batches fit (1 GPU + 1 host); the 3rd must raise
        for i in range(4):
            engine.add_reference(f"r{i}", make_descriptors(32, seed=7100 + i))
        with pytest.raises(CacheCapacityError):
            for i in range(4, 8):
                engine.add_reference(f"r{i}", make_descriptors(32, seed=7100 + i))


class TestStats:
    def test_stats_accumulate_across_searches(self):
        engine = TextureSearchEngine(CFG)
        for i in range(4):
            engine.add_reference(f"r{i}", make_descriptors(32, seed=7200 + i))
        for s in range(3):
            engine.search(make_descriptors(32, seed=7300 + s))
        assert engine.stats.searches == 3
        assert engine.stats.images_compared == 12
        assert engine.stats.references == 4
        assert engine.stats.total_search_us > 0
        assert engine.stats.step_times_us  # per-step accumulation

    def test_empty_stats(self):
        engine = TextureSearchEngine(CFG)
        assert engine.stats.mean_throughput_images_per_s == 0.0
