"""Hypothesis properties for the multi-query kernel and FP16 blas."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas import batched_hgemm, hgemm
from repro.core import knn_algorithm2, knn_algorithm2_multiquery
from repro.features import rootsift
from repro.gpusim import GPUDevice, TESLA_P100


def unit_descs(count, d, seed):
    rng = np.random.default_rng(seed)
    raw = rng.gamma(0.6, 1.0, size=(d, count)).astype(np.float32)
    return rootsift(raw)


class TestMultiQueryProperties:
    @given(
        n_refs=st.integers(1, 4),
        n_queries=st.integers(1, 3),
        m=st.integers(2, 10),
        n=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_multiquery_equals_per_query(self, n_refs, n_queries, m, n, seed):
        device = GPUDevice(TESLA_P100)
        refs = np.stack([unit_descs(m, 16, seed + i) for i in range(n_refs)])
        queries = np.stack([unit_descs(n, 16, seed + 100 + q) for q in range(n_queries)])
        multi = knn_algorithm2_multiquery(device, refs, queries, precision="fp32")
        for q in range(n_queries):
            single = knn_algorithm2(device, refs, queries[q], precision="fp32")
            np.testing.assert_allclose(
                multi.query(q).distances, single.distances, atol=1e-5
            )
            np.testing.assert_array_equal(multi.query(q).indices, single.indices)


class TestHgemmProperties:
    @given(
        m=st.integers(1, 8), n=st.integers(1, 8), k=st.integers(1, 16),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_hgemm_close_to_fp32_for_small_values(self, m, n, k, seed):
        device = GPUDevice(TESLA_P100)
        rng = np.random.default_rng(seed)
        a = rng.random((k, m)).astype(np.float32)
        b = rng.random((k, n)).astype(np.float32)
        out, overflow = hgemm(device, a, b, transpose_a=True)
        assert not overflow
        exact = a.T @ b
        # fp16 inputs: relative error bounded by ~k * 2^-10
        np.testing.assert_allclose(out, exact, rtol=2e-3 * max(k, 4), atol=1e-3)

    @given(batch=st.integers(1, 5), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_batched_equals_loop(self, batch, seed):
        device = GPUDevice(TESLA_P100)
        rng = np.random.default_rng(seed)
        refs = rng.random((batch, 8, 6)).astype(np.float32)
        q = rng.random((8, 4)).astype(np.float32)
        fused, _ = batched_hgemm(device, refs, q)
        for i in range(batch):
            single, _ = hgemm(device, refs[i], q, transpose_a=True)
            np.testing.assert_allclose(fused[i], single, atol=1e-4, rtol=1e-3)
