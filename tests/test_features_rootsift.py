"""RootSIFT transform and selection helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.features import (
    Keypoint,
    is_unit_normalized,
    pad_or_trim,
    rootsift,
    select_top_features,
)
from tests.conftest import make_descriptors


class TestRootSIFT:
    def test_unit_norm(self):
        out = rootsift(make_descriptors(16, seed=0))
        assert is_unit_normalized(out)

    def test_hellinger_equivalence(self):
        """||rootsift(x) - rootsift(y)||^2 == 2 - 2 H(x, y) where H is the
        Hellinger kernel of the L1-normalised histograms."""
        d = make_descriptors(6, seed=1)
        rs = rootsift(d).astype(np.float64)
        l1 = d / d.sum(axis=0, keepdims=True)
        for i in range(6):
            for j in range(6):
                hellinger = np.sum(np.sqrt(l1[:, i] * l1[:, j]))
                dist_sq = np.sum((rs[:, i] - rs[:, j]) ** 2)
                assert dist_sq == pytest.approx(2 - 2 * hellinger, abs=1e-5)

    def test_zero_column_passthrough(self):
        d = make_descriptors(3, seed=2)
        d[:, 1] = 0
        out = rootsift(d)
        np.testing.assert_array_equal(out[:, 1], 0)
        assert is_unit_normalized(out)  # zero columns are exempt

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            rootsift(np.array([[-1.0], [1.0]], dtype=np.float32))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            rootsift(np.ones(4, np.float32))

    @given(
        hnp.arrays(
            np.float32,
            shape=st.tuples(st.integers(2, 32), st.integers(1, 8)),
            elements=st.floats(0, 100, width=32),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_norm_property(self, arr):
        out = rootsift(arr)
        norms = np.linalg.norm(out.astype(np.float64), axis=0)
        l1 = arr.sum(axis=0)
        for norm, total in zip(norms, l1):
            if total > 1e-6:
                assert norm == pytest.approx(1.0, abs=1e-3)


class TestSelection:
    def _kps(self, responses):
        return [Keypoint(i, i, 1.6, r, 0, 1) for i, r in enumerate(responses)]

    def test_keeps_strongest(self):
        d = make_descriptors(5, seed=3)
        kps = self._kps([0.1, 0.9, 0.5, 0.7, 0.3])
        out, kept = select_top_features(d, kps, 2)
        assert [k.response for k in kept] == [0.9, 0.7]
        np.testing.assert_array_equal(out[:, 0], d[:, 1])

    def test_under_budget_still_sorted(self):
        d = make_descriptors(3, seed=4)
        kps = self._kps([1, 2, 3])
        out, kept = select_top_features(d, kps, 10)
        assert [k.response for k in kept] == [3, 2, 1]
        np.testing.assert_array_equal(out[:, 0], d[:, 2])

    def test_stable_tiebreak(self):
        d = make_descriptors(3, seed=5)
        kps = self._kps([0.5, 0.5, 0.5])
        _out, kept = select_top_features(d, kps, 2)
        assert [k.x for k in kept] == [0, 1]

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            select_top_features(make_descriptors(3), self._kps([1, 2]), 1)

    def test_pad_or_trim(self):
        d = make_descriptors(5, seed=6)
        padded = pad_or_trim(d, 8)
        assert padded.shape == (128, 8)
        np.testing.assert_array_equal(padded[:, 5:], 0)
        trimmed = pad_or_trim(d, 3)
        np.testing.assert_array_equal(trimmed, d[:, :3])
        same = pad_or_trim(d, 5)
        np.testing.assert_array_equal(same, d)
