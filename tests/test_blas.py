"""GEMM layer: numerical correctness and FP16 accumulation semantics."""

import numpy as np
import pytest

from repro.blas import FP16_MAX, batched_hgemm, hgemm, sgemm, squared_norms, squared_norms_fp16
from tests.conftest import make_descriptors


class TestSgemm:
    def test_matches_numpy(self, p100):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(8, 5)).astype(np.float32)
        b = rng.normal(size=(8, 7)).astype(np.float32)
        out = sgemm(p100, a, b, alpha=-2.0, transpose_a=True)
        np.testing.assert_allclose(out, -2.0 * a.T @ b, rtol=1e-6)

    def test_charges_device(self, p100):
        a = np.ones((4, 4), np.float32)
        sgemm(p100, a, a)
        assert p100.elapsed_us() > 0
        assert "GEMM" in p100.profiler.as_dict()

    def test_shape_mismatch(self, p100):
        with pytest.raises(ValueError, match="shape mismatch"):
            sgemm(p100, np.ones((3, 4), np.float32), np.ones((5, 2), np.float32))

    def test_rejects_1d(self, p100):
        with pytest.raises(ValueError, match="2-D"):
            sgemm(p100, np.ones(4, np.float32), np.ones((4, 2), np.float32))


class TestHgemm:
    def test_quantizes_inputs(self, p100):
        a = np.full((2, 2), 1.0005, np.float32)  # rounds in fp16
        out, overflow = hgemm(p100, a, a)
        assert not overflow
        expected = a.astype(np.float16).astype(np.float32)
        np.testing.assert_allclose(out, expected.T @ expected, rtol=1e-3)

    def test_overflow_detected_nonnegative(self, p100):
        # 512-normalized SIFT: dot of a descriptor with itself is 512^2
        # = 262,144 > 65,504 -> fp16 accumulation overflows.
        d = make_descriptors(4, seed=1)
        _out, overflow = hgemm(p100, d, d, transpose_a=True)
        assert overflow

    def test_no_overflow_when_scaled(self, p100):
        d = make_descriptors(4, seed=1) * np.float32(2.0**-2)
        _out, overflow = hgemm(p100, d, d, transpose_a=True)
        assert not overflow

    def test_tensor_core_accumulates_fp32(self, v100):
        # with scale 2^-1 the self-match dot (65,536) exceeds fp16 max:
        # plain HGEMM overflows, tensor cores (fp32 accumulate) only
        # overflow on the final store — which here is also > max.
        d = make_descriptors(4, seed=1) * np.float32(2.0**-1)
        _out16, overflow16 = hgemm(v100, d, d, transpose_a=True, tensor_core=False)
        assert overflow16
        _out_tc, overflow_tc = hgemm(v100, d, d, transpose_a=True, tensor_core=True)
        assert overflow_tc  # final value 65,536 > 65,504 either way
        # scaled to 2^-2 both paths are clean
        d2 = d * np.float32(0.5)
        assert not hgemm(v100, d2, d2, transpose_a=True, tensor_core=True)[1]
        assert not hgemm(v100, d2, d2, transpose_a=True, tensor_core=False)[1]

    def test_mixed_sign_uses_conservative_bound(self, p100):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 150, size=(64, 4)).astype(np.float32)
        out, overflow = hgemm(p100, a, a, transpose_a=True)
        bound = np.abs(a.astype(np.float16).astype(np.float32))
        assert overflow == bool((bound.T @ bound > FP16_MAX).any())

    def test_result_clipped_to_fp16(self, p100):
        d = make_descriptors(3, seed=4)
        out, _ = hgemm(p100, d, d, transpose_a=True)
        assert np.abs(out).max() <= FP16_MAX


class TestBatchedHgemm:
    def test_matches_per_image_hgemm(self, p100):
        rng = np.random.default_rng(3)
        batch = rng.random((5, 16, 12)).astype(np.float32)
        q = rng.random((16, 9)).astype(np.float32)
        out, overflow = batched_hgemm(p100, batch, q)
        assert not overflow
        assert out.shape == (5, 12, 9)
        for i in range(5):
            single, _ = hgemm(p100, batch[i], q, transpose_a=True)
            np.testing.assert_allclose(out[i], single, rtol=1e-3, atol=1e-4)

    def test_single_gemm_call_charged(self, p100):
        batch = np.ones((8, 4, 4), np.float32)
        q = np.ones((4, 4), np.float32)
        batched_hgemm(p100, batch, q)
        assert p100.profiler.as_dict()["GEMM"] > 0
        assert p100.profiler.records()[0].calls == 1

    def test_shape_validation(self, p100):
        with pytest.raises(ValueError, match="batch, k, m"):
            batched_hgemm(p100, np.ones((4, 4), np.float32), np.ones((4, 4), np.float32))
        with pytest.raises(ValueError, match="inner-dimension"):
            batched_hgemm(p100, np.ones((2, 4, 4), np.float32), np.ones((5, 4), np.float32))

    def test_alpha_scaling(self, p100):
        batch = np.ones((2, 4, 3), np.float32)
        q = np.ones((4, 2), np.float32)
        out, _ = batched_hgemm(p100, batch, q, alpha=-2.0)
        np.testing.assert_allclose(out, -8.0)


class TestNorms:
    def test_squared_norms(self, p100):
        d = make_descriptors(10, seed=5)
        norms = squared_norms(p100, d)
        np.testing.assert_allclose(norms, 512.0**2, rtol=1e-4)

    def test_fp16_norm_overflow(self, p100):
        d = make_descriptors(4, seed=6).astype(np.float16)
        _norms, overflow = squared_norms_fp16(p100, d)
        assert overflow  # 512^2 > fp16 max

    def test_fp16_norm_ok_when_scaled(self, p100):
        d = (make_descriptors(4, seed=6) * np.float32(0.25)).astype(np.float16)
        norms, overflow = squared_norms_fp16(p100, d)
        assert not overflow
        np.testing.assert_allclose(norms, (512 * 0.25) ** 2, rtol=2e-3)

    def test_rejects_bad_shape(self, p100):
        with pytest.raises(ValueError):
            squared_norms(p100, np.ones(5, np.float32))
