"""Redis-like KV store."""

import pytest

from repro.distributed import KVStore


@pytest.fixture
def store():
    return KVStore()


class TestStrings:
    def test_set_get(self, store):
        store.set("k", b"v")
        assert store.get("k") == b"v"

    def test_missing_key(self, store):
        assert store.get("nope") is None

    def test_values_must_be_bytes(self, store):
        with pytest.raises(TypeError):
            store.set("k", "not-bytes")

    def test_delete(self, store):
        store.set("a", b"1")
        store.set("b", b"2")
        assert store.delete("a", "b", "ghost") == 2
        assert not store.exists("a")

    def test_incr(self, store):
        assert store.incr("counter") == 1
        assert store.incr("counter", 5) == 6
        assert store.get("counter") == b"6"

    def test_keys_pattern(self, store):
        for name in ("feature:1", "feature:2", "meta:1"):
            store.set(name, b"x")
        assert store.keys("feature:*") == ["feature:1", "feature:2"]
        assert store.keys() == ["feature:1", "feature:2", "meta:1"]


class TestHashes:
    def test_hset_hget(self, store):
        store.hset("h", "f", b"v")
        assert store.hget("h", "f") == b"v"
        assert store.hget("h", "missing") is None
        assert store.hlen("h") == 1

    def test_hgetall(self, store):
        store.hset("h", "a", b"1")
        store.hset("h", "b", b"2")
        assert store.hgetall("h") == {"a": b"1", "b": b"2"}

    def test_hdel_removes_empty_hash(self, store):
        store.hset("h", "a", b"1")
        assert store.hdel("h", "a", "ghost") == 1
        assert not store.exists("h")

    def test_delete_covers_hashes(self, store):
        store.hset("h", "a", b"1")
        assert store.delete("h") == 1


class TestAdmin:
    def test_dbsize_and_flush(self, store):
        store.set("a", b"1")
        store.hset("h", "f", b"2")
        assert store.dbsize() == 2
        store.flushall()
        assert store.dbsize() == 0
