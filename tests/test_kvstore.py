"""Redis-like KV store."""

import pytest

from repro.distributed import KVStore
from repro.errors import KVConflictError


@pytest.fixture
def store():
    return KVStore()


class TestStrings:
    def test_set_get(self, store):
        store.set("k", b"v")
        assert store.get("k") == b"v"

    def test_missing_key(self, store):
        assert store.get("nope") is None

    def test_values_must_be_bytes(self, store):
        with pytest.raises(TypeError):
            store.set("k", "not-bytes")

    def test_delete(self, store):
        store.set("a", b"1")
        store.set("b", b"2")
        assert store.delete("a", "b", "ghost") == 2
        assert not store.exists("a")

    def test_incr(self, store):
        assert store.incr("counter") == 1
        assert store.incr("counter", 5) == 6
        assert store.get("counter") == b"6"

    def test_keys_pattern(self, store):
        for name in ("feature:1", "feature:2", "meta:1"):
            store.set(name, b"x")
        assert store.keys("feature:*") == ["feature:1", "feature:2"]
        assert store.keys() == ["feature:1", "feature:2", "meta:1"]


class TestHashes:
    def test_hset_hget(self, store):
        store.hset("h", "f", b"v")
        assert store.hget("h", "f") == b"v"
        assert store.hget("h", "missing") is None
        assert store.hlen("h") == 1

    def test_hgetall(self, store):
        store.hset("h", "a", b"1")
        store.hset("h", "b", b"2")
        assert store.hgetall("h") == {"a": b"1", "b": b"2"}

    def test_hdel_removes_empty_hash(self, store):
        store.hset("h", "a", b"1")
        assert store.hdel("h", "a", "ghost") == 1
        assert not store.exists("h")

    def test_delete_covers_hashes(self, store):
        store.hset("h", "a", b"1")
        assert store.delete("h") == 1


class TestVersioning:
    def test_version_starts_at_zero(self, store):
        assert store.version("nope") == 0

    def test_set_bumps_version(self, store):
        store.set("k", b"v1")
        assert store.version("k") == 1
        store.set("k", b"v2")
        assert store.version("k") == 2

    def test_incr_bumps_version(self, store):
        store.incr("counter")
        store.incr("counter")
        assert store.version("counter") == 2

    def test_version_monotonic_across_delete(self, store):
        # a recycled key must never look "new" again, or a stale
        # writer could CAS onto it (the ABA problem)
        store.set("k", b"v1")
        store.set("k", b"v2")
        store.delete("k")
        assert store.get("k") is None
        assert store.version("k") == 3
        store.set("k", b"v3")
        assert store.version("k") == 4

    def test_set_versioned_happy_path(self, store):
        assert store.set_versioned("k", b"v1", expected_version=0) == 1
        assert store.set_versioned("k", b"v2", expected_version=1) == 2
        assert store.get("k") == b"v2"

    def test_set_versioned_conflict(self, store):
        store.set("k", b"v1")
        store.set("k", b"v2")
        with pytest.raises(KVConflictError) as exc_info:
            store.set_versioned("k", b"stale", expected_version=1)
        assert exc_info.value.expected == 1
        assert exc_info.value.actual == 2
        assert store.get("k") == b"v2"  # conflicting write left no trace

    def test_set_versioned_create_only(self, store):
        store.set("k", b"v")
        with pytest.raises(KVConflictError):
            store.set_versioned("k", b"other", expected_version=0)

    def test_cas_by_value(self, store):
        store.set("k", b"old")
        assert store.cas("k", b"wrong", b"new") is False
        assert store.get("k") == b"old"
        assert store.cas("k", b"old", b"new") is True
        assert store.get("k") == b"new"

    def test_cas_create_when_absent(self, store):
        assert store.cas("k", None, b"v") is True
        assert store.get("k") == b"v"
        assert store.cas("k", None, b"other") is False

    def test_flushall_resets_versions(self, store):
        store.set("k", b"v")
        store.flushall()
        assert store.version("k") == 0

    def test_restore_resets_versions_to_one(self, store):
        store.set("k", b"v1")
        store.set("k", b"v2")
        snapshot = store.dump()
        fresh = KVStore()
        fresh.restore(snapshot)
        assert fresh.version("k") == 1
        assert fresh.get("k") == b"v2"


class TestAdmin:
    def test_dbsize_and_flush(self, store):
        store.set("a", b"1")
        store.hset("h", "f", b"2")
        assert store.dbsize() == 2
        store.flushall()
        assert store.dbsize() == 0
