"""Functional accuracy experiments (reduced scale).

The full-scale sweeps run under ``benchmarks/``; here we verify the
experiment machinery and the qualitative claims at a size that keeps
the test suite fast.
"""

import pytest

from repro.bench.experiments import table2_fp16, table7_asymmetric


class TestTable2Small:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_fp16.run(
            scales=[1.0, 2.0**-1, 2.0**-2, 2.0**-7, 2.0**-16],
            n_pairs=3,
            n_bricks=8,
            with_accuracy=True,
        )

    def test_overflow_cells(self, result):
        assert result.row_by("scale factor", "1")[1] == "overflow"
        assert result.row_by("scale factor", "2^-1")[1] == "overflow"
        assert result.summary["n_overflow_scales"] == 2

    def test_plateau_error_small(self, result):
        err_saf = float(result.row_by("scale factor", "2^-2")[1].rstrip("%"))
        err_mid = float(result.row_by("scale factor", "2^-7")[1].rstrip("%"))
        assert 0 < err_saf < 0.5
        assert err_mid == pytest.approx(err_saf, rel=0.3)

    def test_error_rises_at_tiny_scale(self, result):
        err_mid = float(result.row_by("scale factor", "2^-7")[1].rstrip("%"))
        err_deep = float(result.row_by("scale factor", "2^-16")[1].rstrip("%"))
        assert err_deep > 1.5 * err_mid

    def test_accuracy_robust_on_plateau(self, result):
        acc = result.row_by("scale factor", "2^-7")[2]
        assert acc.endswith("%")
        assert float(acc.rstrip("%")) >= 75.0  # small-sample plateau


class TestTable7Small:
    def test_speed_only_sweep(self):
        result = table7_asymmetric.run(with_accuracy=False)
        speeds = {(row[0], row[1]): row[3] for row in result.rows}
        assert speeds[(384, 768)] > speeds[(768, 768)]
        assert speeds[(384, 384)] > speeds[(384, 768)]
        assert result.summary["speed_gain_384_768"] > 0.3

    def test_accuracy_shape(self):
        """m=384 costs little accuracy; n=384 costs much more (Table 7)."""
        result = table7_asymmetric.run(
            grid=[(768, 768), (384, 768), (384, 384)],
            n_bricks=16,
            queries_per_brick=1,
            with_accuracy=True,
        )
        acc = {
            (row[0], row[1]): float(row[2].rstrip("%")) for row in result.rows
        }
        assert acc[(768, 768)] - acc[(384, 768)] <= 7.0  # small loss
        assert acc[(384, 384)] <= acc[(768, 768)]  # n-cut never helps
