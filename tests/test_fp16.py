"""FP16 toolkit: scaled conversion, overflow, compression error, autoscale."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HalfPrecisionOverflowError
from repro.fp16 import (
    FP16_MAX,
    check_matmul_overflow,
    choose_scale_factor,
    compression_error,
    fp16_pairwise_distances,
    max_safe_scale,
    pairwise_distances,
    to_scaled_fp16,
)
from repro.fp16.error import fp16_accumulated_dot
from tests.conftest import make_descriptors, noisy_copy


class TestScaledConversion:
    def test_roundtrip_accuracy(self):
        d = make_descriptors(8, seed=0)
        scaled = to_scaled_fp16(d, 2.0**-7)
        back = scaled.unscaled()
        rel = np.abs(back - d) / np.maximum(d, 1e-3)
        assert rel.max() < 2e-3  # fp16 has ~11 bits of mantissa

    def test_element_overflow_raises(self):
        big = np.full((4, 4), 70000.0, np.float32)
        with pytest.raises(HalfPrecisionOverflowError):
            to_scaled_fp16(big, 1.0)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            to_scaled_fp16(np.ones((2, 2), np.float32), 0.0)

    def test_inv_scale_sq(self):
        scaled = to_scaled_fp16(np.ones((2, 2), np.float32), 0.5)
        assert scaled.inv_scale_sq == 4.0


class TestMatmulOverflowCheck:
    def test_sift_overflow_boundary(self):
        """Table 2: scale 2^-1 overflows for 512-normalized SIFT, 2^-2 is safe."""
        d = make_descriptors(16, seed=1)
        r_half = to_scaled_fp16(d, 2.0**-1)
        with pytest.raises(HalfPrecisionOverflowError):
            check_matmul_overflow(r_half, r_half)
        r_quarter = to_scaled_fp16(d, 2.0**-2)
        check_matmul_overflow(r_quarter, r_quarter)  # no raise

    def test_mismatched_scales_rejected(self):
        d = make_descriptors(4)
        with pytest.raises(ValueError, match="scale"):
            check_matmul_overflow(to_scaled_fp16(d, 0.25), to_scaled_fp16(d, 0.5))


class TestDistances:
    def test_pairwise_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        r = rng.random((16, 5))
        q = rng.random((16, 7))
        dist = pairwise_distances(r, q)
        for i in range(5):
            for j in range(7):
                assert dist[i, j] == pytest.approx(np.linalg.norm(r[:, i] - q[:, j]))

    def test_fp16_distances_close_to_exact(self):
        d = make_descriptors(32, seed=3)
        q = noisy_copy(d, 10.0, seed=4)
        exact = pairwise_distances(d, q)
        approx = fp16_pairwise_distances(d, q, 2.0**-7)
        mask = exact > 1.0
        rel = np.abs(exact[mask] - approx[mask]) / exact[mask]
        assert rel.mean() < 0.01

    def test_fp16_distances_overflow(self):
        d = make_descriptors(8, seed=5)
        with pytest.raises(HalfPrecisionOverflowError):
            fp16_pairwise_distances(d, d, 1.0)

    def test_accumulated_dot_is_deterministic(self):
        d = (make_descriptors(8, seed=6) * np.float32(2**-7)).astype(np.float16)
        a = fp16_accumulated_dot(d, d)
        b = fp16_accumulated_dot(d, d)
        np.testing.assert_array_equal(a, b)

    def test_accumulation_noise_exceeds_final_rounding(self):
        """Sequential FP16 accumulation is noisier than rounding once at
        the end — the effect behind Table 2's 0.1% plateau."""
        d = make_descriptors(64, seed=7) * np.float32(2**-7)
        d16 = d.astype(np.float16)
        exact = d16.astype(np.float64).T @ d16.astype(np.float64)
        seq = fp16_accumulated_dot(d16, d16, round_every=1).astype(np.float64)
        once = fp16_accumulated_dot(d16, d16, round_every=128).astype(np.float64)
        err_seq = np.abs(seq - exact).mean()
        err_once = np.abs(once - exact).mean()
        assert err_seq > err_once


class TestCompressionError:
    def test_plateau_magnitude(self):
        """Error on the safe plateau is fractions of a percent (Table 2)."""
        d = make_descriptors(48, seed=8)
        q = noisy_copy(d, 15.0, seed=9)
        err = compression_error(d, q, 2.0**-7)
        assert 0.0 < err < 0.01

    def test_error_flat_on_plateau_then_rises(self):
        d = make_descriptors(48, seed=10)
        q = noisy_copy(d, 15.0, seed=11)
        plateau = [compression_error(d, q, s) for s in (2.0**-2, 2.0**-7, 2.0**-12)]
        deep = compression_error(d, q, 2.0**-16)
        assert max(plateau) / min(plateau) < 1.5  # flat
        assert deep > 2 * max(plateau)  # subnormal underflow

    def test_identical_features_excluded(self):
        d = make_descriptors(4, seed=12) * np.float32(2**-4)
        # self-distance is 0; mean must ignore those pairs, not blow up
        err = compression_error(d, d, 1.0)
        assert np.isfinite(err)


class TestAutoscale:
    def test_max_safe_scale_boundary(self):
        d = make_descriptors(16, seed=13)
        safe = max_safe_scale([d])
        # 512-normalized: sqrt(65504 / 512^2) ~= 0.4999
        assert safe == pytest.approx(np.sqrt(FP16_MAX) / 512.0, rel=1e-6)

    def test_choose_scale_reproduces_paper_practice(self):
        """Paper ships 2^-7 for 512-normalized SIFT = 5 bits of margin
        below the 2^-2 safe boundary."""
        d = make_descriptors(16, seed=14)
        result = choose_scale_factor([d], margin_bits=5)
        assert result.scale == 2.0**-7
        assert result.log2_scale == -7

    def test_empty_samples(self):
        assert max_safe_scale([np.zeros((128, 0), np.float32)]) == 1.0

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            choose_scale_factor([make_descriptors(2)], margin_bits=-1)

    @given(norm=st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=25, deadline=None)
    def test_chosen_scale_never_overflows(self, norm):
        d = make_descriptors(4, seed=15) / 512.0 * np.float32(norm)
        result = choose_scale_factor([d], margin_bits=1)
        r = to_scaled_fp16(d, result.scale)
        check_matmul_overflow(r, r)  # must not raise
