"""Additional node / engine-stats coverage."""

import numpy as np
import pytest

from repro.core import EngineConfig
from repro.distributed import KVStore, NodeConfig, SearchNode
from repro.gpusim import TESLA_V100
from tests.conftest import make_descriptors, noisy_copy

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


class TestNodeConfig:
    def test_defaults_match_sec8(self):
        cfg = NodeConfig()
        assert cfg.engine_reserved_bytes == 4 * 1024**3
        assert cfg.host_cache_bytes == 64 * 10**9
        assert cfg.pinned

    def test_reserved_memory_applied(self):
        node = SearchNode("n0", CFG)
        assert node.engine.device.memory.reserved_bytes == 4 * 1024**3

    def test_custom_device(self):
        node = SearchNode("n0", CFG, device_spec=TESLA_V100)
        assert node.engine.device.spec.name == "Tesla V100"
        assert node.stats()["device"] == "Tesla V100"


class TestNodeOps:
    def test_remove_and_has(self):
        node = SearchNode("n0", CFG)
        node.add("a", make_descriptors(32, seed=6000))
        assert node.has("a")
        assert node.remove("a")
        assert not node.has("a")
        assert not node.remove("a")

    def test_stats_track_searches(self):
        node = SearchNode("n0", CFG)
        descs = make_descriptors(32, seed=6001)
        node.add("a", descs)
        node.search(noisy_copy(descs, 8.0, seed=61))
        stats = node.stats()
        assert stats["searches"] == 1
        assert stats["mean_images_per_s"] > 0
        assert stats["references"] == 1

    def test_capacity_reflects_node_budgets(self):
        node = SearchNode("n0", CFG)
        per_image = CFG.feature_matrix_bytes()
        expected = node.engine.cache.capacity_images(per_image)
        assert node.capacity_images() == expected
        # Sec. 8 budgets: 12 GB GPU cache + 64 GB host
        total_budget = (16 * 1024**3 - 4 * 1024**3) + 64 * 10**9
        assert node.capacity_images() == total_budget // per_image

    def test_hydrate_skips_missing_keys(self):
        node = SearchNode("n0", CFG)
        store = KVStore()
        assert node.hydrate_from_store(store, ["nothing", "here"]) == 0

    def test_snapshot_prefix_isolation(self):
        store = KVStore()
        node_a = SearchNode("a", CFG)
        node_b = SearchNode("b", CFG)
        node_a.add("ra", make_descriptors(32, seed=6002))
        node_b.add("rb", make_descriptors(32, seed=6003))
        node_a.snapshot_to_store(store)
        node_b.snapshot_to_store(store)
        fresh_a = SearchNode("a", CFG)
        assert fresh_a.restore_from_store(store) == 1
        assert fresh_a.has("ra") and not fresh_a.has("rb")
