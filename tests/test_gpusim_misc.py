"""PCIe model, profiler, clock, and calibration edge cases."""

import pytest

from repro.gpusim import (
    KernelCalibration,
    SimClock,
    StepProfiler,
    TESLA_A100,
    TESLA_P100,
    TransferModel,
    effective_h2d_bandwidth_gbs,
    h2d_time_us,
    s_to_us,
    us_to_s,
)


class TestClock:
    def test_monotone(self):
        clock = SimClock()
        clock.advance_to(10.0)
        clock.advance_to(5.0)  # no-op, never rewinds
        assert clock.now_us == 10.0

    def test_reset(self):
        clock = SimClock(5.0)
        clock.advance_to(100.0)
        clock.reset()
        assert clock.now_us == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_unit_conversions(self):
        assert us_to_s(1_000_000.0) == 1.0
        assert s_to_us(2.5) == 2_500_000.0


class TestTransferModel:
    def test_latency_plus_bandwidth(self):
        model = TransferModel(latency_us=10.0, bandwidth_gbs=1.0)
        assert model.time_us(0) == 0.0
        assert model.time_us(10**9) == pytest.approx(10.0 + 1e6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TransferModel(1.0, 1.0).time_us(-1)

    def test_pageable_effective_bandwidth(self):
        pinned = effective_h2d_bandwidth_gbs(TESLA_P100, pinned=True)
        pageable = effective_h2d_bandwidth_gbs(TESLA_P100, pinned=False)
        assert pinned == TESLA_P100.pcie_pinned_gbs
        # harmonic combination of DMA + staging memcpy
        expected = 1.0 / (1.0 / 9.4 + 1.0 / 12.5)
        assert pageable == pytest.approx(expected)

    def test_a100_faster_link(self):
        assert h2d_time_us(TESLA_A100, 10**8) < h2d_time_us(TESLA_P100, 10**8)


class TestProfiler:
    def test_records_in_insertion_order(self):
        profiler = StepProfiler()
        profiler.add("b", 1.0)
        profiler.add("a", 2.0)
        profiler.add("b", 3.0)
        records = profiler.records()
        assert [r.name for r in records] == ["b", "a"]
        assert records[0].total_us == 4.0
        assert records[0].calls == 2
        assert records[0].mean_us == 2.0

    def test_disabled(self):
        profiler = StepProfiler()
        profiler.enabled = False
        profiler.add("x", 5.0)
        assert profiler.total_us() == 0.0
        assert "x" not in profiler

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StepProfiler().add("x", -1.0)

    def test_reset(self):
        profiler = StepProfiler()
        profiler.add("x", 1.0)
        profiler.reset()
        assert profiler.records() == []

    def test_empty_record_mean(self):
        from repro.gpusim import StepRecord

        assert StepRecord("x").mean_us == 0.0


class TestCalibrationConstruction:
    def test_for_device_requires_fp16(self):
        no_fp16 = TESLA_P100.with_memory(TESLA_P100.mem_bytes)
        # manufacture a spec without fp16 via replace
        from dataclasses import replace

        broken = replace(no_fp16, fp16_tflops=0.0)
        with pytest.raises(ValueError, match="FP16"):
            KernelCalibration.for_device(broken)

    def test_gemm_selector(self):
        cal = KernelCalibration.for_device(TESLA_P100)
        assert cal.gemm("fp16") is cal.gemm_fp16
        assert cal.gemm("fp32") is cal.gemm_fp32
        assert cal.gemm("fp16", tensor_core=True) is cal.gemm_tensor

    def test_efficiency_curve_monotone(self):
        cal = KernelCalibration.for_device(TESLA_P100)
        effs = [cal.gemm_fp16.efficiency(w) for w in (1e6, 1e8, 1e10, 1e12)]
        assert effs == sorted(effs)
        assert effs[-1] <= cal.gemm_fp16.eff_max
        assert cal.gemm_fp16.efficiency(0) == 0.0

    def test_scan_parallelism_saturates(self):
        cal = KernelCalibration.for_device(TESLA_P100)
        scan = cal.scan
        assert scan.effective_parallelism(10**9) < scan.p_sat_threads * 1.001
        assert scan.effective_parallelism(0) == 1.0
        assert scan.cost_ns("fp16") > scan.cost_ns("fp32")
