"""Online enrollment: the epoched-corpus mutation path.

The invariants under test mirror ``docs/enrollment.md``:

* every corpus mutation advances the owning shard's monotonic index
  epoch, durably recorded in the KV store (``EpochRegistry``);
* acks give read-your-writes — a search issued after an
  ``EnrollmentAck`` reports ``corpus_epoch[node] >= ack.epoch`` on
  every healthy shard and returns the enrolled reference;
* deletes tombstone before they drop the blob, so no replayer
  (failover re-hydration, warm restore) can ever resurrect them;
* a crashed target shard fails the enrollment *before* anything is
  persisted — retries after repair/failover are clean.
"""

import numpy as np
import pytest

from repro.core import EngineConfig, TextureSearchEngine
from repro.distributed import (
    DeletionAck,
    DistributedSearchSystem,
    EnrollmentAck,
    EpochRegistry,
    FaultInjector,
    KVStore,
    Request,
    TombstoneLog,
    WebTier,
    build_api,
)
from repro.errors import NodeDownError, TransientNodeError
from repro.obs import default_registry
from repro.routing import RouterPolicy
from repro.serving import MixedClusterExecutor
from tests.conftest import make_descriptors, noisy_copy

pytestmark = pytest.mark.enrollment

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


def corpus(n_refs, base=500):
    return {f"r{i}": make_descriptors(32, seed=base + i) for i in range(n_refs)}


def build_cluster(n_nodes, refs, **kwargs):
    system = DistributedSearchSystem(n_nodes, CFG, **kwargs)
    for ref_id, desc in refs.items():
        system.add(ref_id, desc)
    return system


class TestEpochRegistry:
    def test_unknown_shard_is_epoch_zero(self):
        assert EpochRegistry(KVStore()).get("gpu-00") == 0

    def test_record_max_merges(self):
        registry = EpochRegistry(KVStore())
        assert registry.record("gpu-00", 5) == 5
        # replaying an older ack can never regress the mark
        assert registry.record("gpu-00", 3) == 5
        assert registry.get("gpu-00") == 5

    def test_survives_registry_reconstruction(self):
        store = KVStore()
        EpochRegistry(store).record("gpu-01", 9)
        assert EpochRegistry(store).get("gpu-01") == 9

    def test_forget_and_snapshot(self):
        registry = EpochRegistry(KVStore())
        registry.record("gpu-01", 2)
        registry.record("gpu-00", 7)
        assert registry.snapshot() == {"gpu-00": 7, "gpu-01": 2}
        registry.forget("gpu-01")
        assert registry.snapshot() == {"gpu-00": 7}


class TestTombstoneLog:
    def test_mark_contains_get(self):
        log = TombstoneLog(KVStore())
        assert not log.contains("x")
        log.mark("x", "gpu-02", 4)
        assert log.contains("x")
        assert log.get("x") == ("gpu-02", 4)
        assert log.ref_ids() == ["x"]
        assert len(log) == 1

    def test_clear(self):
        log = TombstoneLog(KVStore())
        log.mark("x", "gpu-00", 1)
        assert log.clear("x") is True
        assert not log.contains("x")
        assert log.clear("x") is False

    def test_unknown_get_is_none(self):
        assert TombstoneLog(KVStore()).get("ghost") is None


class TestClusterEnroll:
    def test_enroll_ack_and_epoch_advance(self):
        system = build_cluster(2, corpus(4))
        desc = make_descriptors(32, seed=900)
        ack = system.enroll("fresh", desc)
        assert isinstance(ack, EnrollmentAck)
        assert not ack.updated
        assert system.has("fresh")
        owner = next(n for n in system.nodes if n.node_id == ack.node_id)
        assert ack.epoch == owner.epoch == system.epochs.get(ack.node_id)

    def test_reenroll_is_update(self):
        system = build_cluster(2, corpus(4))
        desc = make_descriptors(32, seed=901)
        first = system.enroll("fresh", desc)
        second = system.enroll("fresh", noisy_copy(desc, sigma=2.0))
        assert second.updated
        assert second.node_id == first.node_id  # placement is sticky
        assert second.epoch > first.epoch

    def test_read_your_writes_plain_cluster(self):
        system = build_cluster(3, corpus(9))
        desc = make_descriptors(32, seed=902)
        ack = system.enroll("fresh", desc)
        result = system.search(noisy_copy(desc, sigma=4.0))
        assert result.best().reference_id == "fresh"
        assert result.corpus_epoch[ack.node_id] >= ack.epoch

    def test_read_your_writes_search_group(self):
        refs = corpus(9)
        system = build_cluster(3, refs)
        desc = make_descriptors(32, seed=903)
        ack = system.enroll("fresh", desc)
        group = system.search_group(
            [noisy_copy(desc, sigma=4.0), noisy_copy(refs["r1"], sigma=4.0)]
        )
        assert group.results[0].best().reference_id == "fresh"
        assert group.corpus_epoch[ack.node_id] >= ack.epoch
        for result in group.results:
            assert result.corpus_epoch[ack.node_id] >= ack.epoch

    def test_delete_ack_and_idempotence(self):
        system = build_cluster(2, corpus(4))
        ack = system.delete("r1")
        assert isinstance(ack, DeletionAck)
        assert ack.deleted
        assert not system.has("r1")
        assert system.tombstones.contains("r1")
        again = system.delete("r1")
        assert not again.deleted  # idempotent: tombstone stays, no error
        assert system.tombstones.contains("r1")

    def test_delete_unknown_id_still_tombstones(self):
        system = build_cluster(2, corpus(2))
        ack = system.delete("never-enrolled")
        assert not ack.deleted
        assert system.tombstones.contains("never-enrolled")

    def test_reenroll_after_delete_clears_tombstone(self):
        system = build_cluster(2, corpus(4))
        system.delete("r1")
        desc = make_descriptors(32, seed=904)
        ack = system.enroll("r1", desc)
        assert not ack.updated  # the old record is gone: fresh enrollment
        assert not system.tombstones.contains("r1")
        result = system.search(noisy_copy(desc, sigma=4.0))
        assert result.best().reference_id == "r1"

    def test_epochs_seed_from_registry_on_rebuild(self):
        store = KVStore()
        system = build_cluster(2, corpus(4), store=store)
        system.enroll("fresh", make_descriptors(32, seed=905))
        marks = system.epochs.snapshot()
        rebuilt = DistributedSearchSystem(2, CFG, store=store)
        for node in rebuilt.nodes:
            assert node.epoch == marks.get(node.node_id, 0)


class TestDeleteNeverResurrects:
    def test_hydration_skips_tombstoned_blob(self):
        # the racing-delete shape: the tombstone landed but the stale
        # feature blob is still in the store
        system = build_cluster(1, corpus(3))
        system.tombstones.mark("r0", "gpu-00", 99)
        keys = [f"feature:r{i}" for i in range(3)]
        fresh = DistributedSearchSystem(1, CFG, store=system.store)
        loaded = fresh.nodes[0].hydrate_from_store(system.store, keys)
        assert loaded == 2
        assert not fresh.nodes[0].has("r0")

    def test_warm_restore_replays_to_latest_epoch(self):
        refs = corpus(4)
        system = build_cluster(1, refs)
        node = system.nodes[0]
        node.snapshot_to_store(system.store)
        system.delete("r2")  # deleted AFTER the snapshot was taken
        restored = DistributedSearchSystem(1, CFG, store=system.store)
        restored.nodes[0].restore_from_store(system.store, "snapshot:gpu-00:")
        assert not restored.nodes[0].has("r2")
        assert restored.nodes[0].has("r0")

    def test_failover_rehydration_drops_tombstoned(self):
        refs = corpus(8)
        system = build_cluster(2, refs)
        victim = system.nodes[0].node_id
        orphan = next(r for r, o in system._placement.items() if o == victim)
        # partial delete: tombstone written, then the victim died before
        # the blob was dropped
        system.tombstones.mark(orphan, victim, 99)
        system.remove_node(victim)
        assert not any(node.has(orphan) for node in system.nodes)
        assert not system.store.hget("placement", orphan)
        for ref_id, desc in refs.items():
            if ref_id == orphan:
                continue
            assert system.search(noisy_copy(desc, sigma=4.0)).best() is not None
        # the dead shard's epoch mark retired with it
        assert victim not in system.epochs.snapshot()

    def test_delete_then_failover_stays_deleted(self):
        refs = corpus(8)
        system = build_cluster(2, refs)
        system.delete("r3")
        owner_of_rest = system.nodes[0].node_id
        system.remove_node(owner_of_rest)
        assert not system.has("r3")
        for result_ref in ("r0", "r7"):
            result = system.search(noisy_copy(refs[result_ref], sigma=4.0))
            assert "r3" not in {m.reference_id for m in result.matches}


@pytest.mark.chaos
class TestEnrollmentChaos:
    def test_crashed_shard_fails_enroll_without_mutating(self):
        injector = FaultInjector(seed=0)
        system = build_cluster(
            2, corpus(4), fault_injector=injector, auto_failover=False
        )
        target = system.placement.peek("doomed")
        injector.crash(target)
        with pytest.raises(NodeDownError):
            system.enroll("doomed", make_descriptors(32, seed=906))
        # gate-before-mutate: no blob, no placement, no tombstone
        assert not system.has("doomed")
        assert system.store.get("feature:doomed") is None
        assert system.store.hget("placement", "doomed") is None

    def test_enroll_retries_cleanly_after_failover(self):
        injector = FaultInjector(seed=0)
        system = build_cluster(
            3, corpus(9), fault_injector=injector, auto_failover=False
        )
        desc = make_descriptors(32, seed=907)
        victim = system.placement.peek("fresh")
        injector.crash(victim)
        with pytest.raises(NodeDownError):
            system.enroll("fresh", desc)
        system.remove_node(victim)  # operator failover: re-home the shard
        ack = system.enroll("fresh", desc)
        assert ack.node_id != victim
        result = system.search(noisy_copy(desc, sigma=4.0))
        assert result.best().reference_id == "fresh"
        assert result.corpus_epoch[ack.node_id] >= ack.epoch

    def test_enrollment_racing_failure_replays_deterministically(self):
        def scenario():
            from repro.distributed import FaultSpec

            injector = FaultInjector(FaultSpec(transient_rate=0.3), seed=11)
            system = build_cluster(
                3, corpus(9), fault_injector=injector, auto_failover=False
            )
            outcomes = []
            for i in range(6):
                desc = make_descriptors(32, seed=920 + i)
                try:
                    ack = system.enroll(f"n{i}", desc)
                    result = system.search(noisy_copy(desc, sigma=4.0))
                    best = result.best()
                    outcomes.append((
                        "ok", ack.node_id, ack.epoch,
                        best.reference_id if best else None,
                        result.corpus_epoch.get(ack.node_id, -1) >= ack.epoch,
                    ))
                except TransientNodeError:
                    outcomes.append(("transient", system.has(f"n{i}")))
            outcomes.append(tuple(sorted(system.epochs.snapshot().items())))
            return outcomes

        first, second = scenario(), scenario()
        assert first == second
        # failed enrollments left nothing behind
        for outcome in first:
            if outcome[0] == "transient":
                assert outcome[1] is False
        # read-your-writes held on every successful enrollment
        assert all(o[4] for o in first if o[0] == "ok")


class TestRestAndWebTier:
    def test_post_enroll_and_epoch_roundtrip(self):
        refs = corpus(6)
        system = build_cluster(2, refs)
        api = build_api(system)
        desc = make_descriptors(32, seed=908)
        response = api.handle(
            Request("POST", "/enroll", {"id": "fresh", "descriptors": desc.tolist()})
        )
        assert response.status == 201
        assert response.body["updated"] is False
        epoch = response.body["epoch"]
        node = response.body["node"]
        search = api.handle(
            Request("POST", "/search",
                    {"descriptors": noisy_copy(desc, sigma=4.0).tolist()})
        )
        assert search.ok
        assert search.body["results"][0]["id"] == "fresh"
        assert search.body["corpus_epoch"][node] >= epoch

    def test_post_enroll_update_returns_200(self):
        system = build_cluster(2, corpus(4))
        api = build_api(system)
        desc = make_descriptors(32, seed=909)
        api.handle(Request("POST", "/enroll", {"id": "x", "descriptors": desc.tolist()}))
        response = api.handle(
            Request("POST", "/enroll", {"id": "x", "descriptors": desc.tolist()})
        )
        assert response.status == 200
        assert response.body["updated"] is True

    def test_post_enroll_crashed_shard_is_503(self):
        injector = FaultInjector(seed=0)
        system = build_cluster(
            2, corpus(4), fault_injector=injector, auto_failover=False
        )
        api = build_api(system)
        target = system.placement.peek("doomed")
        injector.crash(target)
        response = api.handle(
            Request("POST", "/enroll",
                    {"id": "doomed",
                     "descriptors": make_descriptors(32, seed=910).tolist()})
        )
        assert response.status == 503
        assert "enrollment unavailable" in response.body["error"]
        assert not system.has("doomed")

    def test_delete_reference_idempotent(self):
        system = build_cluster(2, corpus(4))
        api = build_api(system)
        first = api.handle(Request("DELETE", "/reference/r1"))
        assert first.status == 200 and first.body["deleted"] is True
        second = api.handle(Request("DELETE", "/reference/r1"))
        assert second.status == 200 and second.body["deleted"] is False
        assert system.tombstones.contains("r1")

    def test_webtier_enroll_and_delete(self):
        system = build_cluster(2, corpus(4))
        tier = WebTier(system, n_workers=2)
        desc = make_descriptors(32, seed=911)
        response = tier.enroll("fresh", desc)
        assert response.status == 201
        assert response.body["epoch"] >= 1
        assert system.has("fresh")
        gone = tier.delete_reference("fresh")
        assert gone.status == 200 and gone.body["deleted"] is True
        assert not system.has("fresh")

    def test_stats_enrollment_block(self):
        registry = default_registry()

        def ops(op):
            return registry.value("repro_enrollment_ops_total", op=op)

        enrolls0, deletes0 = ops("enroll"), ops("delete")
        system = build_cluster(2, corpus(4))
        system.enroll("fresh", make_descriptors(32, seed=912))
        system.delete("r0")
        stats = system.stats()
        assert stats["schema_version"] == 8
        block = stats["enrollment"]
        assert block["enrolls_total"] == enrolls0 + 1
        assert block["deletes_total"] == deletes0 + 1
        assert block["tombstones_live"] == 1
        assert block["epochs"] == system.epochs.snapshot()


class TestMixedClusterExecutor:
    def test_payload_order_and_ack_types(self):
        refs = corpus(6)
        system = build_cluster(2, refs)
        executor = MixedClusterExecutor(system)
        desc = make_descriptors(32, seed=913)
        payloads, elapsed = executor.execute([
            noisy_copy(refs["r1"], sigma=4.0),
            ("enroll", "fresh", desc),
            noisy_copy(refs["r2"], sigma=4.0),
            ("delete", "r5"),
        ])
        assert isinstance(payloads[1], EnrollmentAck)
        assert isinstance(payloads[3], DeletionAck)
        assert payloads[0].best().reference_id == "r1"
        assert payloads[2].best().reference_id == "r2"
        assert elapsed > 0.0

    def test_group_local_read_your_writes(self):
        # a mutation admitted before a search in the SAME group is
        # already visible to it
        refs = corpus(6)
        system = build_cluster(2, refs)
        executor = MixedClusterExecutor(system)
        desc = make_descriptors(32, seed=914)
        payloads, _ = executor.execute([
            ("enroll", "fresh", desc),
            noisy_copy(desc, sigma=4.0),
        ])
        ack, result = payloads
        assert result.best().reference_id == "fresh"
        assert result.corpus_epoch[ack.node_id] >= ack.epoch

    def test_mutation_only_group_charges_enroll_cost(self):
        system = build_cluster(2, corpus(4))
        executor = MixedClusterExecutor(system)
        payloads, elapsed = executor.execute([
            ("enroll", "a", make_descriptors(32, seed=915)),
            ("delete", "r0"),
        ])
        assert len(payloads) == 2
        assert elapsed == 2 * MixedClusterExecutor.ENROLL_COST_US

    def test_mutations_overlap_the_sweep(self):
        # host-side mutations hide under the GPU sweep: a mixed group
        # costs max(mutation time, search time), not the sum
        refs = corpus(6)
        system = build_cluster(2, refs)
        executor = MixedClusterExecutor(system)
        _, search_only = executor.execute([noisy_copy(refs["r1"], sigma=4.0)])
        _, mixed = executor.execute([
            ("enroll", "fresh", make_descriptors(32, seed=916)),
            noisy_copy(refs["r1"], sigma=4.0),
        ])
        assert mixed >= MixedClusterExecutor.ENROLL_COST_US
        # the sweep dominates: no additive 300us on top of it
        assert mixed < search_only + MixedClusterExecutor.ENROLL_COST_US


class TestEngineUnderMutation:
    def build_engine(self, refs):
        engine = TextureSearchEngine(CFG)
        for ref_id, desc in refs.items():
            engine.add_reference(ref_id, desc)
        return engine

    def test_all_dead_sealed_batch_is_purged_from_cache(self):
        refs = corpus(4)  # batch_size=2 -> two sealed batches
        engine = self.build_engine(refs)
        assert len(engine.cache) == 2
        assert engine.remove_reference("r0")
        assert engine.remove_reference("r1")
        # both slots of batch 0 are dead: the batch leaves the cache
        # entirely instead of being swept as pure tombstones
        assert len(engine.cache) == 1
        result = engine.search(noisy_copy(refs["r2"], sigma=4.0))
        assert result.best().reference_id == "r2"

    def test_all_dead_pending_batch_never_cached(self):
        engine = self.build_engine(corpus(2))
        engine.add_reference("pending", make_descriptors(32, seed=917))
        assert engine.remove_reference("pending")
        engine.flush()  # sealing a fully-dead pending batch is a no-op
        assert len(engine.cache) == 1
        assert engine.n_references == 2

    def test_sweep_tolerates_growth_between_batches(self):
        refs = corpus(4)
        engine = self.build_engine(refs)
        # start iterating the cache, then grow it mid-stream: the
        # sweep's snapshot neither errors nor yields the newcomer
        iterator = engine.cache.batches()
        first = next(iterator)
        for i in range(2):
            engine.add_reference(f"late{i}", make_descriptors(32, seed=918 + i))
        seen = [first] + list(iterator)
        assert len(seen) == 2
        result = engine.search(noisy_copy(refs["r3"], sigma=4.0))
        assert result.best().reference_id == "r3"
        assert result.images_searched == engine.n_references
