"""Batch builder, FIFO cache, hybrid cache, capacity planner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    CacheLocation,
    FifoCache,
    HybridFeatureCache,
    feature_matrix_bytes,
    plan_capacity,
)
from repro.core import BatchBuilder, ReferenceBatch
from repro.errors import CacheCapacityError
from repro.gpusim import GPUDevice, TESLA_P100


def small_device(mem_bytes=10**6, reserved=0):
    return GPUDevice(TESLA_P100.with_memory(mem_bytes), reserved_bytes=reserved)


def make_batch(batch_id, size, d=8, m=4):
    return ReferenceBatch(
        batch_id=batch_id,
        ids=[f"b{batch_id}-{i}" for i in range(size)],
        tensor=np.zeros((size, d, m), np.float16),
    )


class TestBatchBuilder:
    def test_flush_on_full(self):
        builder = BatchBuilder(batch_size=2, d=4, m=3)
        assert builder.add("a", np.zeros((4, 3), np.float16)) is None
        batch = builder.add("b", np.zeros((4, 3), np.float16))
        assert batch is not None
        assert batch.ids == ["a", "b"]
        assert batch.size == 2
        assert builder.pending == 0

    def test_partial_flush(self):
        builder = BatchBuilder(batch_size=4, d=4, m=3)
        builder.add("a", np.zeros((4, 3), np.float16))
        batch = builder.flush()
        assert batch.size == 1
        assert builder.flush() is None

    def test_batch_ids_increment(self):
        builder = BatchBuilder(batch_size=1, d=2, m=2)
        b0 = builder.add("a", np.zeros((2, 2)))
        b1 = builder.add("b", np.zeros((2, 2)))
        assert (b0.batch_id, b1.batch_id) == (0, 1)

    def test_shape_enforced(self):
        builder = BatchBuilder(batch_size=2, d=4, m=3)
        with pytest.raises(ValueError, match="shape"):
            builder.add("a", np.zeros((4, 5)))

    def test_norms_required_when_configured(self):
        builder = BatchBuilder(batch_size=2, d=4, m=3, keep_norms=True)
        with pytest.raises(ValueError, match="norms"):
            builder.add("a", np.zeros((4, 3)))
        builder.add("a", np.zeros((4, 3)), norms=np.zeros(3))
        batch = builder.flush()
        assert batch.norms.shape == (1, 3)

    def test_rename_pending_slot(self):
        builder = BatchBuilder(batch_size=3, d=2, m=2)
        builder.add("a", np.zeros((2, 2)))
        builder.rename(0, "dead")
        builder.add("b", np.zeros((2, 2)))
        batch = builder.flush()
        assert batch.ids == ["dead", "b"]

    def test_batch_nbytes(self):
        batch = make_batch(0, 3, d=8, m=4)
        assert batch.nbytes == 3 * 8 * 4 * 2


class TestFifoCache:
    def test_fifo_eviction_order(self):
        cache = FifoCache(100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        evicted = cache.put("c", 3, 40)
        assert [k for k, _ in evicted] == ["a"]
        assert cache.keys() == ["b", "c"]

    def test_get_does_not_refresh(self):
        cache = FifoCache(100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        cache.get("a")  # FIFO: no recency effect
        evicted = cache.put("c", 3, 40)
        assert [k for k, _ in evicted] == ["a"]

    def test_oversized_entry(self):
        cache = FifoCache(10)
        with pytest.raises(CacheCapacityError):
            cache.put("a", 1, 11)

    def test_replace_existing_key(self):
        cache = FifoCache(100)
        cache.put("a", 1, 40)
        cache.put("a", 2, 60)
        assert cache.get("a") == 2
        assert cache.used_bytes == 60

    def test_pop(self):
        cache = FifoCache(100)
        cache.put("a", 1, 40)
        entry = cache.pop("a")
        assert entry.value == 1
        assert cache.used_bytes == 0

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 30)), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_budget_invariant(self, ops):
        cache = FifoCache(60)
        for key, size in ops:
            cache.put(key, size, size)
            assert cache.used_bytes <= 60
            assert cache.used_bytes == sum(e.nbytes for _, e in cache.items())


class TestHybridCache:
    def test_gpu_first_then_demote(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=2 * batch_bytes,
                                   host_budget_bytes=10 * batch_bytes)
        for i in range(3):
            cache.add(make_batch(i, 4))
        locations = [c.location for c in cache.batches()]
        assert locations == [CacheLocation.HOST, CacheLocation.GPU, CacheLocation.GPU]
        assert cache.gpu_batches == 2 and cache.host_batches == 1

    def test_device_memory_accounted(self):
        device = small_device(10**6)
        cache = HybridFeatureCache(device, gpu_budget_bytes=10**5, host_budget_bytes=10**6)
        cache.add(make_batch(0, 4))
        assert device.memory.used_bytes == make_batch(0, 4).nbytes
        # demotion frees the device allocation
        big = 10**5 // make_batch(0, 4).nbytes + 1
        for i in range(1, big + 1):
            cache.add(make_batch(i, 4))
        assert device.memory.used_bytes <= 10**5

    def test_total_exhaustion_raises(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=batch_bytes,
                                   host_budget_bytes=batch_bytes)
        cache.add(make_batch(0, 4))
        cache.add(make_batch(1, 4))
        with pytest.raises(CacheCapacityError):
            cache.add(make_batch(2, 4))

    def test_no_host_level_raises_on_overflow(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=batch_bytes, host_budget_bytes=0)
        cache.add(make_batch(0, 4))
        with pytest.raises(CacheCapacityError, match="no host cache"):
            cache.add(make_batch(1, 4))

    def test_capacity_images(self):
        device = small_device(10**6)
        cache = HybridFeatureCache(device, gpu_budget_bytes=1000, host_budget_bytes=4000)
        assert cache.capacity_images(100) == 50

    def test_fifo_order_preserved_across_levels(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=2 * batch_bytes,
                                   host_budget_bytes=10 * batch_bytes)
        for i in range(5):
            cache.add(make_batch(i, 4))
        ids = [c.batch.batch_id for c in cache.batches()]
        assert ids == [0, 1, 2, 3, 4]

    def test_readd_does_not_duplicate_order(self):
        """Regression: re-adding a batch id must not make batches()
        yield it twice nor total_images double-count it."""
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=4 * batch_bytes,
                                   host_budget_bytes=10 * batch_bytes)
        cache.add(make_batch(0, 4))
        cache.add(make_batch(1, 4))
        cache.add(make_batch(0, 4))  # update in place
        ids = [c.batch.batch_id for c in cache.batches()]
        assert ids == [1, 0]
        assert len(cache) == 2
        assert cache.total_images == 8
        # the replaced GPU copy's allocation was freed, not leaked
        assert device.memory.used_bytes == 2 * batch_bytes

    def test_readd_of_demoted_batch_supersedes_host_copy(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=2 * batch_bytes,
                                   host_budget_bytes=10 * batch_bytes)
        for i in range(3):
            cache.add(make_batch(i, 4))
        assert cache.host_batches == 1  # batch 0 was demoted
        cache.add(make_batch(0, 4))     # re-add brings it back to GPU
        entries = {c.batch.batch_id: c.location for c in cache.batches()}
        assert entries[0] == CacheLocation.GPU
        # re-add evicted batch 1 from the GPU level; order refreshes to tail
        assert list(entries) == [1, 2, 0]
        assert sum(1 for c in cache.batches() if c.batch.batch_id == 0) == 1
        assert cache.total_images == sum(c.batch.size for c in cache.batches())

    def test_remove_gpu_batch_frees_device_allocation(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=4 * batch_bytes,
                                   host_budget_bytes=10 * batch_bytes)
        cache.add(make_batch(0, 4))
        cache.add(make_batch(1, 4))
        assert cache.remove(0) is True
        assert [c.batch.batch_id for c in cache.batches()] == [1]
        assert len(cache) == 1
        assert cache.total_images == 4
        assert device.memory.used_bytes == batch_bytes
        # the freed slot is batch-granular: a new batch fits without
        # evicting the survivor
        cache.add(make_batch(2, 4))
        assert [c.batch.batch_id for c in cache.batches()] == [1, 2]

    def test_remove_host_batch(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=2 * batch_bytes,
                                   host_budget_bytes=10 * batch_bytes)
        for i in range(3):
            cache.add(make_batch(i, 4))
        assert cache.host_batches == 1  # batch 0 was demoted
        assert cache.remove(0) is True
        assert cache.host_batches == 0
        assert [c.batch.batch_id for c in cache.batches()] == [1, 2]

    def test_remove_unknown_batch_is_noop(self):
        device = small_device(10**6)
        cache = HybridFeatureCache(device, gpu_budget_bytes=10**5,
                                   host_budget_bytes=10**5)
        cache.add(make_batch(0, 4))
        assert cache.remove(99) is False
        assert len(cache) == 1

    def test_remove_leaves_no_stale_order_entry(self):
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=4 * batch_bytes,
                                   host_budget_bytes=10 * batch_bytes)
        for i in range(3):
            cache.add(make_batch(i, 4))
        cache.remove(1)
        cache.add(make_batch(1, 4))  # re-add after remove: one entry, at tail
        ids = [c.batch.batch_id for c in cache.batches()]
        assert ids == [0, 2, 1]
        assert len(cache) == 3

    def test_exhaustion_purges_dropped_ids_from_order(self):
        """Regression: ids dropped when the host level overflows must
        leave the FIFO order too, not linger as stale skipped entries."""
        device = small_device(10**6)
        batch_bytes = make_batch(0, 4).nbytes
        cache = HybridFeatureCache(device, gpu_budget_bytes=batch_bytes,
                                   host_budget_bytes=batch_bytes)
        cache.add(make_batch(0, 4))
        cache.add(make_batch(1, 4))
        with pytest.raises(CacheCapacityError):
            cache.add(make_batch(2, 4))
        surviving = [c.batch.batch_id for c in cache.batches()]
        assert len(surviving) == len(cache)
        assert surviving == sorted(set(surviving))
        assert cache.total_images == 4 * len(cache)


class TestCapacityPlanner:
    def test_paper_gpu_only_capacity(self):
        """Sec. 6: 16 GB / 187.5 KB ~= 85,000 images at m=768 FP16."""
        plan = plan_capacity(m=768, precision="fp16")
        assert plan.bytes_per_image == 196608
        assert 85_000 <= plan.gpu_images <= 88_000

    def test_sec8_per_container(self):
        """Sec. 8: 12 GB GPU + 64 GB host = 76 GB -> ~780k at m=384."""
        plan = plan_capacity(
            m=384, precision="fp16",
            gpu_reserved_bytes=4 * 1024**3, host_cache_bytes=64 * 10**9,
        )
        assert plan.bytes_per_image == 98304
        assert 770_000 <= plan.total_images <= 790_000
        # 14 containers land within 10% of the paper's 10.8M
        assert abs(plan.total_images * 14 - 10_800_000) / 10_800_000 < 0.10

    def test_norms_included_for_algorithm1(self):
        with_n = feature_matrix_bytes(768, 128, "fp32", with_norms=True)
        without = feature_matrix_bytes(768, 128, "fp32", with_norms=False)
        assert with_n - without == 768 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            feature_matrix_bytes(0)
        with pytest.raises(ValueError):
            plan_capacity(gpu_reserved_bytes=10**20)
