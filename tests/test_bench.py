"""Benchmark harness: table formatting and experiment runners.

Experiment runners are exercised at reduced scale here; the full-scale
rows live under ``benchmarks/``.
"""

import pytest

from repro.bench import ExperimentResult, format_table
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    fig1_waterfall,
    fig4_batching,
    sec8_distributed,
    table1_cublas,
    table3_batch_steps,
    table4_efficiency,
    table5_hybrid_cache,
    table6_streams,
)


class TestTables:
    def test_format_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 10_000]], title="T")
        assert "a" in text and "x" in text and "10,000" in text
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_result_accessors(self):
        result = ExperimentResult("t", ["k", "v"], [["a", 1], ["b", 2]])
        assert result.column("v") == [1, 2]
        assert result.row_by("k", "b") == ["b", 2]
        with pytest.raises(KeyError):
            result.row_by("k", "c")
        assert "t" in result.to_text()

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) >= {
            "fig1", "table1", "table2", "table3", "fig4",
            "table4", "table5", "table6", "table7", "sec8",
            "ablation-sort", "ablation-query-batch",
            "ablation-cbir", "ablation-streams",
            "fault-tolerance", "backends",
        }


class TestFaultToleranceExperiment:
    def test_reduced_scale_sweep(self):
        from repro.bench.experiments import fault_tolerance

        result = fault_tolerance.run(
            n_nodes=3, n_refs=6, n_queries=4, failure_rates=(0.0, 0.2)
        )
        assert result.summary["clean_recall"] == 1.0
        assert result.column("failure rate") == [0.0, 0.2]
        clean = result.row_by("failure rate", 0.0)
        assert clean[2] == 0  # no partial answers without faults


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1_cublas.run()

    def test_speed_ordering(self, result):
        speeds = result.row_by("Execution step", "Speed (images/s)")[1:]
        opencv, garcia, ours, ours16 = speeds
        assert opencv < garcia < ours  # each optimization step wins
        assert ours16 < ours  # fp16 dips at batch 1 (Sec. 4.2)

    def test_paper_speeds(self, result):
        speeds = result.row_by("Execution step", "Speed (images/s)")[1:]
        for got, paper in zip(speeds, [2012, 3027, 6734, 5917]):
            assert got == pytest.approx(paper, rel=0.05)

    def test_sort_reduction(self, result):
        """Paper: the top-2 scan cuts sorting time by 81.9%."""
        assert result.summary["scan_vs_insertion_sort_reduction"] == pytest.approx(0.819, abs=0.03)

    def test_fp16_halves_memory(self, result):
        assert result.summary["fp16_memory_saving"] == pytest.approx(0.464, abs=0.03)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_batching.run(batches=[1, 16, 256, 1024])

    def test_monotone_speed(self, result):
        for col in ("P100 (img/s)", "V100 (img/s)"):
            speeds = result.column(col)
            assert speeds == sorted(speeds)

    def test_speedup_bands(self, result):
        assert result.summary["p100_speedup"] == pytest.approx(7.9, rel=0.12)
        assert 1.15 < result.summary["tensor_core_gain_at_max_batch"] < 1.4
        assert result.summary["tensor_core_gain_at_batch1"] < result.summary["tensor_core_gain_at_max_batch"]

    def test_flattens_past_256(self, result):
        p100 = result.column("P100 (img/s)")
        assert p100[-1] / p100[-2] < 1.05  # 256 -> 1024 nearly flat

    def test_p100_peak(self, result):
        assert result.summary["p100_peak"] == pytest.approx(45539, rel=0.03)


class TestTable3:
    def test_reductions(self):
        result = table3_batch_steps.run()
        assert result.summary["sort_reduction"] == pytest.approx(0.945, abs=0.03)
        assert result.summary["hgemm_reduction"] == pytest.approx(0.556, abs=0.06)
        assert result.summary["speedup"] > 6


class TestTable4:
    def test_efficiencies(self):
        result = table4_efficiency.run()
        assert result.summary["Tesla P100 card"] == pytest.approx(0.358, abs=0.03)
        tc = result.summary["Tesla V100 card w/ Tensor Core"]
        no_tc = result.summary["Tesla V100 card w/o Tensor Core"]
        assert tc < no_tc  # the paper's headline irony: TC eff. is low


class TestTable5:
    def test_ordering_and_magnitude(self):
        result = table5_hybrid_cache.run()
        gpu = result.row_by("Cache type", "GPU memory")[1]
        pinned = result.row_by("Cache type", "Host memory w/ pinned")[1]
        pageable = result.row_by("Cache type", "Host memory w/o pinned")[1]
        assert pageable < pinned < gpu
        assert gpu == pytest.approx(45539, rel=0.03)
        assert pinned == pytest.approx(25362, rel=0.10)
        assert pageable == pytest.approx(17619, rel=0.10)


class TestTable6:
    def test_stream_scaling(self):
        result = table6_streams.run()
        assert result.summary["theoretical_images_per_s"] == pytest.approx(47592, rel=0.02)
        assert result.summary["b512_s8_efficiency"] == pytest.approx(0.873, abs=0.05)
        speeds = [row[3] for row in result.rows if row[0] == 512]
        assert speeds == sorted(speeds)


class TestFig1:
    def test_headline_claims(self):
        result = fig1_waterfall.run()
        assert result.summary["final_speedup"] == pytest.approx(31.0, rel=0.15)
        assert result.summary["final_capacity_gain"] == pytest.approx(20.0, rel=0.15)


class TestSec8:
    def test_full_scale_arithmetic_and_functional_cluster(self):
        result = sec8_distributed.run(functional_nodes=2, functional_bricks=6)
        assert result.summary["functional_top1_correct"]
        assert result.summary["functional_images_searched"] == 6
        # paper: 10.8M capacity, 872,984 img/s
        assert result.summary["cluster_capacity_images"] == pytest.approx(10.8e6, rel=0.05)
        assert result.summary["cluster_speed_images_per_s"] == pytest.approx(872984, rel=0.15)
