"""CBIR IVF-PQ baseline: k-means, PQ, index, retrieval."""

import numpy as np
import pytest

from repro.baselines import IVFPQIndex, ProductQuantizer, kmeans
from tests.conftest import make_descriptors, noisy_copy


class TestKmeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        data = np.vstack([c + rng.normal(0, 0.3, (50, 2)) for c in centers])
        out = kmeans(data.astype(np.float32), 3, seed=1)
        # every true centre has a centroid within 0.5
        for c in centers:
            assert np.min(np.linalg.norm(out - c, axis=1)) < 0.5

    def test_deterministic(self):
        data = np.random.default_rng(1).random((100, 4)).astype(np.float32)
        np.testing.assert_array_equal(kmeans(data, 5, seed=7), kmeans(data, 5, seed=7))

    def test_k_validation(self):
        data = np.random.default_rng(2).random((10, 3)).astype(np.float32)
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 11)
        with pytest.raises(ValueError):
            kmeans(data.ravel(), 2)


class TestProductQuantizer:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(3)
        data = rng.random((500, 32)).astype(np.float32)
        pq = ProductQuantizer(32, n_subspaces=4, n_centroids=32)
        pq.train(data, seed=0)
        codes = pq.encode(data[:50])
        assert codes.shape == (50, 4)
        assert codes.dtype == np.uint8
        # reconstruct and check error is below the data's own variance
        recon = np.concatenate(
            [pq.codebooks[s][codes[:, s]] for s in range(4)], axis=1
        )
        mse = np.mean((recon - data[:50]) ** 2)
        assert mse < np.var(data)

    def test_adc_table_consistent_with_exact(self):
        rng = np.random.default_rng(4)
        data = rng.random((300, 16)).astype(np.float32)
        pq = ProductQuantizer(16, n_subspaces=2, n_centroids=16)
        pq.train(data, seed=0)
        query = data[7]
        codes = pq.encode(data[:20])
        table = pq.adc_table(query)
        adc = table[np.arange(2)[None, :], codes].sum(axis=1)
        recon = np.concatenate([pq.codebooks[s][codes[:, s]] for s in range(2)], axis=1)
        exact = ((recon - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, exact, rtol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductQuantizer(30, n_subspaces=4)  # not divisible
        with pytest.raises(ValueError):
            ProductQuantizer(32, n_centroids=1)
        pq = ProductQuantizer(32, 4, 16)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros((2, 32), np.float32))


class TestIVFPQIndex:
    @pytest.fixture(scope="class")
    def index(self):
        index = IVFPQIndex(d=128, n_lists=8, n_subspaces=8, n_centroids=16, seed=0)
        descs = {i: make_descriptors(64, seed=900 + i) for i in range(6)}
        index.train(np.hstack(list(descs.values())).T)
        for i, d in descs.items():
            index.add(f"img{i}", d)
        self_descs = descs
        return index, descs

    def test_retrieves_true_image(self, index):
        idx, descs = index
        query = noisy_copy(descs[3], 10.0, seed=91)
        votes = idx.search(query, nprobe=4)
        assert votes[0].image_id == "img3"
        assert votes[0].votes > votes[1].votes if len(votes) > 1 else True

    def test_nprobe_clamped(self, index):
        idx, descs = index
        votes = idx.search(descs[0], nprobe=1000)
        assert votes[0].image_id == "img0"

    def test_untrained_rejected(self):
        idx = IVFPQIndex(d=128)
        with pytest.raises(RuntimeError):
            idx.add("x", make_descriptors(4))
        with pytest.raises(RuntimeError):
            idx.search(make_descriptors(4))

    def test_query_dim_checked(self, index):
        idx, _ = index
        with pytest.raises(ValueError):
            idx.search(np.zeros((64, 5), np.float32))

    def test_n_images(self, index):
        idx, _ = index
        assert idx.n_images == 6
