"""CBIR IVF-PQ baseline: k-means, PQ, index, retrieval."""

import numpy as np
import pytest

from repro.baselines import IVFPQIndex, ProductQuantizer, kmeans
from tests.conftest import make_descriptors, noisy_copy


class TestKmeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        data = np.vstack([c + rng.normal(0, 0.3, (50, 2)) for c in centers])
        out = kmeans(data.astype(np.float32), 3, seed=1)
        # every true centre has a centroid within 0.5
        for c in centers:
            assert np.min(np.linalg.norm(out - c, axis=1)) < 0.5

    def test_deterministic(self):
        data = np.random.default_rng(1).random((100, 4)).astype(np.float32)
        np.testing.assert_array_equal(kmeans(data, 5, seed=7), kmeans(data, 5, seed=7))

    def test_k_validation(self):
        data = np.random.default_rng(2).random((10, 3)).astype(np.float32)
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 11)
        with pytest.raises(ValueError):
            kmeans(data.ravel(), 2)


class TestProductQuantizer:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(3)
        data = rng.random((500, 32)).astype(np.float32)
        pq = ProductQuantizer(32, n_subspaces=4, n_centroids=32)
        pq.train(data, seed=0)
        codes = pq.encode(data[:50])
        assert codes.shape == (50, 4)
        assert codes.dtype == np.uint8
        # reconstruct and check error is below the data's own variance
        recon = np.concatenate(
            [pq.codebooks[s][codes[:, s]] for s in range(4)], axis=1
        )
        mse = np.mean((recon - data[:50]) ** 2)
        assert mse < np.var(data)

    def test_adc_table_consistent_with_exact(self):
        rng = np.random.default_rng(4)
        data = rng.random((300, 16)).astype(np.float32)
        pq = ProductQuantizer(16, n_subspaces=2, n_centroids=16)
        pq.train(data, seed=0)
        query = data[7]
        codes = pq.encode(data[:20])
        table = pq.adc_table(query)
        adc = table[np.arange(2)[None, :], codes].sum(axis=1)
        recon = np.concatenate([pq.codebooks[s][codes[:, s]] for s in range(2)], axis=1)
        exact = ((recon - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, exact, rtol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductQuantizer(30, n_subspaces=4)  # not divisible
        with pytest.raises(ValueError):
            ProductQuantizer(32, n_centroids=1)
        pq = ProductQuantizer(32, 4, 16)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros((2, 32), np.float32))


class TestIVFPQIndex:
    @pytest.fixture(scope="class")
    def index(self):
        index = IVFPQIndex(d=128, n_lists=8, n_subspaces=8, n_centroids=16, seed=0)
        descs = {i: make_descriptors(64, seed=900 + i) for i in range(6)}
        index.train(np.hstack(list(descs.values())).T)
        for i, d in descs.items():
            index.add(f"img{i}", d)
        self_descs = descs
        return index, descs

    def test_retrieves_true_image(self, index):
        idx, descs = index
        query = noisy_copy(descs[3], 10.0, seed=91)
        votes = idx.search(query, nprobe=4)
        assert votes[0].image_id == "img3"
        assert votes[0].votes > votes[1].votes if len(votes) > 1 else True

    def test_nprobe_clamped(self, index):
        idx, descs = index
        votes = idx.search(descs[0], nprobe=1000)
        assert votes[0].image_id == "img0"

    def test_untrained_rejected(self):
        idx = IVFPQIndex(d=128)
        with pytest.raises(RuntimeError):
            idx.add("x", make_descriptors(4))
        with pytest.raises(RuntimeError):
            idx.search(make_descriptors(4))

    def test_query_dim_checked(self, index):
        idx, _ = index
        with pytest.raises(ValueError):
            idx.search(np.zeros((64, 5), np.float32))

    def test_n_images(self, index):
        idx, _ = index
        assert idx.n_images == 6


class TestKmeansDegenerate:
    """Regression: empty-cluster re-seeding used stale distances and
    could hand two empty clusters the same farthest point."""

    def test_duplicate_heavy_data_yields_distinct_centroids(self):
        # 3 distinct values, one massively duplicated: with k=3 the
        # duplicated point empties other clusters on iteration one
        data = np.array(
            [[0.0, 0.0]] * 40 + [[5.0, 5.0], [9.0, 9.0]], dtype=np.float32
        )
        out = kmeans(data, 3, seed=0)
        assert np.all(np.isfinite(out))
        # every distinct input value gets its own centroid
        for point in ([0.0, 0.0], [5.0, 5.0], [9.0, 9.0]):
            assert np.min(np.linalg.norm(out - np.array(point), axis=1)) < 1e-5
        # no two centroids collapse onto the same location
        pair_d = np.linalg.norm(out[:, None, :] - out[None, :, :], axis=2)
        assert np.min(pair_d[~np.eye(3, dtype=bool)]) > 1.0

    def test_multiple_empty_clusters_get_distinct_seeds(self):
        # k almost as large as the number of distinct points forces
        # several empty clusters at once
        base = np.array(
            [[0.0, 0.0]] * 30 + [[8.0, 0.0], [0.0, 8.0], [8.0, 8.0], [4.0, 4.0]],
            dtype=np.float32,
        )
        out = kmeans(base, 5, seed=3)
        pair_d = np.linalg.norm(out[:, None, :] - out[None, :, :], axis=2)
        np.fill_diagonal(pair_d, np.inf)
        assert np.min(pair_d) > 0.5

    def test_deterministic_on_degenerate_data(self):
        data = np.array([[1.0, 1.0]] * 20 + [[2.0, 2.0]] * 2, dtype=np.float32)
        np.testing.assert_array_equal(
            kmeans(data, 3, seed=5), kmeans(data, 3, seed=5)
        )


class TestIVFPQRegressions:
    def test_train_clamps_and_updates_n_lists(self):
        """Regression: ``train`` clamped the list count internally but
        left ``self.n_lists`` at the configured value, so callers
        sizing nprobe off it silently over-probed."""
        index = IVFPQIndex(d=16, n_lists=64, n_subspaces=2, n_centroids=4)
        index.train(np.random.default_rng(0).random((10, 16)).astype(np.float32))
        assert index.n_lists == 10
        assert len(index.coarse) == 10

    def test_tied_votes_break_by_ascending_distance(self):
        """Regression: equal vote tallies ranked by insertion order, so
        identification on ties depended on enrolment sequence."""
        index = IVFPQIndex(d=8, n_lists=1, n_subspaces=2, n_centroids=8, seed=0)
        rng = np.random.default_rng(11)
        train = rng.random((64, 8)).astype(np.float32)
        index.train(train)
        # one feature per image, a two-feature query aimed one at each
        # -> both images tie at exactly 1 vote
        a, b = train[3], train[17]
        index.add("first_enrolled", a[:, None])
        index.add("second_enrolled", b[:, None])
        query = np.stack([a, b]).T
        votes = index.search(query, nprobe=1)
        assert [v.votes for v in votes] == [1, 1]
        dists = [v.total_distance for v in votes]
        assert dists == sorted(dists)

    def test_tie_order_independent_of_insertion(self):
        index_ab = IVFPQIndex(d=8, n_lists=1, n_subspaces=2, n_centroids=8, seed=0)
        index_ba = IVFPQIndex(d=8, n_lists=1, n_subspaces=2, n_centroids=8, seed=0)
        rng = np.random.default_rng(12)
        train = rng.random((64, 8)).astype(np.float32)
        index_ab.train(train)
        index_ba.train(train)
        a, b = train[5], train[9]
        index_ab.add("a", a[:, None]); index_ab.add("b", b[:, None])
        index_ba.add("b", b[:, None]); index_ba.add("a", a[:, None])
        query = np.stack([a, b]).T  # one vote each, distances break the tie
        ids_ab = [v.image_id for v in index_ab.search(query, nprobe=1)]
        ids_ba = [v.image_id for v in index_ba.search(query, nprobe=1)]
        assert ids_ab == ids_ba

    @pytest.mark.parametrize("nprobe", [1, 2, 4, 8])
    def test_batched_search_bit_identical_to_scalar(self, nprobe):
        """The vectorized multi-feature scan must reproduce the scalar
        per-feature formulation bit-for-bit (votes *and* distances)."""
        index = IVFPQIndex(d=128, n_lists=8, n_subspaces=8, n_centroids=16, seed=0)
        descs = {i: make_descriptors(48, seed=700 + i) for i in range(5)}
        index.train(np.hstack(list(descs.values())).T)
        for i, d in descs.items():
            index.add(f"img{i}", d)
        query = noisy_copy(descs[2], 10.0, seed=55)

        batched = index.search(query, nprobe=nprobe)

        # scalar reference: one search per query feature, tallied by hand
        votes: dict[str, int] = {}
        dist: dict[str, float] = {}
        for j in range(query.shape[1]):
            single = index.search(query[:, j : j + 1], nprobe=nprobe)
            best = min(single, key=lambda v: v.total_distance)
            votes[best.image_id] = votes.get(best.image_id, 0) + 1
            dist[best.image_id] = dist.get(best.image_id, 0.0) + best.total_distance
        assert {v.image_id: v.votes for v in batched} == votes
        for v in batched:
            assert v.total_distance == pytest.approx(dist[v.image_id], abs=0.0)

    def test_adc_tables_batch_size_invariant(self):
        """Regression: numpy axis reductions change summation order with
        batch shape, so the same query's ADC table differed between
        scalar and batched computation."""
        pq = ProductQuantizer(32, n_subspaces=4, n_centroids=16)
        rng = np.random.default_rng(21)
        data = rng.random((200, 32)).astype(np.float32)
        pq.train(data, seed=0)
        queries = data[:7]
        batched = pq.adc_tables(queries)
        for i in range(len(queries)):
            np.testing.assert_array_equal(batched[i], pq.adc_table(queries[i]))
