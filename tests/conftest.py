"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import GPUDevice, KernelCalibration, TESLA_P100, TESLA_V100
from repro.obs import reset_observability


@pytest.fixture(autouse=True)
def _fresh_observability():
    """Zero the process-wide metrics registry and tracer around every
    test: counters are module-global, so tests must not see each
    other's increments."""
    reset_observability()
    yield
    reset_observability()


def make_descriptors(count: int, seed: int = 0, d: int = 128) -> np.ndarray:
    """SIFT-like descriptors: non-negative, entries capped, L2 norm 512."""
    rng = np.random.default_rng(seed)
    desc = rng.gamma(0.6, 1.0, size=(d, count)).astype(np.float32)
    desc /= np.linalg.norm(desc, axis=0, keepdims=True)
    desc = np.minimum(desc, 0.2)
    desc /= np.linalg.norm(desc, axis=0, keepdims=True)
    return (desc * 512.0).astype(np.float32)


def noisy_copy(desc: np.ndarray, sigma: float, seed: int = 1) -> np.ndarray:
    """A perturbed (still non-negative, renormalised) copy of ``desc``."""
    rng = np.random.default_rng(seed)
    out = np.maximum(desc + rng.normal(0, sigma, desc.shape).astype(np.float32), 0)
    norms = np.maximum(np.linalg.norm(out, axis=0, keepdims=True), 1e-9)
    return (out / norms * 512.0).astype(np.float32)


@pytest.fixture
def p100() -> GPUDevice:
    return GPUDevice(TESLA_P100)


@pytest.fixture
def v100() -> GPUDevice:
    return GPUDevice(TESLA_V100)


@pytest.fixture
def p100_cal() -> KernelCalibration:
    return KernelCalibration.for_device(TESLA_P100)
