"""Device specs, registry, and basic GPUDevice behaviour."""

import pytest

from repro.errors import InvalidStreamError
from repro.gpusim import (
    DEVICE_REGISTRY,
    GPUDevice,
    TESLA_P100,
    TESLA_V100,
    get_device_spec,
)


class TestDeviceSpec:
    def test_registry_lookup(self):
        assert get_device_spec("p100") is TESLA_P100
        assert get_device_spec("Tesla V100") is TESLA_V100
        assert get_device_spec("V100") is TESLA_V100

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device_spec("h100")

    def test_registry_is_complete(self):
        assert set(DEVICE_REGISTRY) >= {"p100", "v100", "a100"}

    def test_peak_tflops(self):
        assert TESLA_P100.peak_tflops("fp16") == 18.7
        assert TESLA_P100.peak_tflops("fp32") == 9.3
        assert TESLA_V100.peak_tflops("fp16", tensor_core=True) == 112.0

    def test_p100_has_no_tensor_cores(self):
        with pytest.raises(ValueError, match="no tensor cores"):
            TESLA_P100.peak_tflops("fp16", tensor_core=True)

    def test_tensor_core_needs_fp16(self):
        with pytest.raises(ValueError, match="fp16"):
            TESLA_V100.peak_tflops("fp32", tensor_core=True)

    def test_unknown_dtype(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            TESLA_P100.peak_tflops("fp64")

    def test_with_memory(self):
        bigger = TESLA_P100.with_memory(32 * 1024**3)
        assert bigger.mem_bytes == 32 * 1024**3
        assert bigger.name == TESLA_P100.name
        assert TESLA_P100.mem_bytes == 16 * 1024**3  # original untouched


class TestGPUDevice:
    def test_fresh_device_has_zero_time(self, p100):
        assert p100.elapsed_us() == 0.0

    def test_submit_advances_time(self, p100):
        end = p100.submit("compute", 10.0)
        assert end == 10.0
        assert p100.elapsed_us() == 10.0

    def test_submit_serialises_within_stream(self, p100):
        p100.submit("compute", 10.0)
        end = p100.submit("h2d", 5.0)  # same (default) stream: must wait
        assert end == 15.0

    def test_submit_unknown_engine(self, p100):
        with pytest.raises(ValueError, match="unknown engine"):
            p100.submit("nvlink", 1.0)

    def test_negative_duration_rejected(self, p100):
        with pytest.raises(ValueError, match="non-negative"):
            p100.submit("compute", -1.0)

    def test_streams_overlap_across_engines(self, p100):
        s1 = p100.create_stream("a")
        s2 = p100.create_stream("b")
        p100.submit("compute", 10.0, stream=s1)
        end = p100.submit("h2d", 5.0, stream=s2)  # independent engine+stream
        assert end == 5.0
        assert p100.elapsed_us() == 10.0

    def test_streams_contend_for_one_engine(self, p100):
        s1 = p100.create_stream("a")
        s2 = p100.create_stream("b")
        p100.submit("compute", 10.0, stream=s1)
        end = p100.submit("compute", 5.0, stream=s2)
        assert end == 15.0  # engine busy until 10

    def test_foreign_stream_rejected(self, p100, v100):
        s = v100.create_stream()
        with pytest.raises(InvalidStreamError):
            p100.submit("compute", 1.0, stream=s)

    def test_synchronize_aligns_everything(self, p100):
        s1 = p100.create_stream()
        p100.submit("compute", 7.0, stream=s1)
        t = p100.synchronize()
        assert t == 7.0
        # after sync, new default-stream work starts at the barrier
        assert p100.submit("compute", 1.0) == 8.0

    def test_reset_timing(self, p100):
        p100.submit("compute", 10.0, step="GEMM")
        p100.reset_timing()
        assert p100.elapsed_us() == 0.0
        assert p100.profiler.total_us() == 0.0

    def test_profiler_steps_accumulate(self, p100):
        p100.submit("compute", 10.0, step="GEMM")
        p100.submit("compute", 4.0, step="GEMM")
        assert p100.profiler.as_dict()["GEMM"] == 14.0
        assert p100.profiler.mean_us("GEMM") == 7.0

    def test_typed_ops_charge_profiler(self, p100):
        p100.gemm(768, 768, 128)
        p100.top2_scan(768, 768)
        p100.d2h_result(768, 1)
        p100.cpu_postprocess(1)
        steps = p100.profiler.as_dict()
        assert {"GEMM", "Top-2 sort", "D2H copy", "Post-processing"} <= set(steps)

    def test_feature_matrix_bytes(self, p100):
        assert p100.feature_matrix_bytes(768, 128, "fp16") == 768 * 128 * 2
        assert p100.feature_matrix_bytes(384, 128, "fp16") == 98304


class TestEvents:
    def test_event_ordering_across_streams(self, p100):
        s1 = p100.create_stream()
        s2 = p100.create_stream()
        p100.submit("h2d", 20.0, stream=s1)
        ev = s1.record_event()
        s2.wait_event(ev)
        end = p100.submit("compute", 5.0, stream=s2)
        assert end == 25.0

    def test_wait_unrecorded_event_fails(self, p100):
        from repro.gpusim import Event

        s = p100.create_stream()
        with pytest.raises(ValueError, match="not been recorded"):
            s.wait_event(Event("never"))
