"""Placement policies and engine profiling report."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EngineConfig, TextureSearchEngine
from repro.distributed import (
    ConsistentHashPlacement,
    DistributedSearchSystem,
    RoundRobinPlacement,
)
from repro.errors import ClusterError
from tests.conftest import make_descriptors, noisy_copy


class TestRoundRobin:
    def test_cycles(self):
        policy = RoundRobinPlacement(["a", "b", "c"])
        assert [policy.place(f"k{i}") for i in range(6)] == ["a", "b", "c", "a", "b", "c"]

    def test_remove_keeps_cursor_valid(self):
        policy = RoundRobinPlacement(["a", "b"])
        policy.place("k")
        policy.remove_node("b")
        assert policy.place("k2") == "a"

    def test_duplicate_rejected(self):
        policy = RoundRobinPlacement(["a"])
        with pytest.raises(ValueError):
            policy.add_node("a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinPlacement().place("k")


class TestConsistentHash:
    def test_deterministic_and_stable(self):
        policy = ConsistentHashPlacement(["n0", "n1", "n2"])
        assert policy.place("brick-42") == policy.place("brick-42")
        other = ConsistentHashPlacement(["n0", "n1", "n2"])
        assert policy.place("brick-42") == other.place("brick-42")

    def test_balanced_distribution(self):
        policy = ConsistentHashPlacement([f"n{i}" for i in range(5)])
        keys = [f"brick-{i}" for i in range(2000)]
        counts = policy.shard_counts(keys)
        assert min(counts.values()) > 0.6 * (2000 / 5)
        assert max(counts.values()) < 1.5 * (2000 / 5)

    def test_minimal_movement_on_node_removal(self):
        """Removing one of N nodes moves only ~1/N of the keys."""
        policy = ConsistentHashPlacement([f"n{i}" for i in range(8)])
        keys = [f"brick-{i}" for i in range(2000)]
        before = {k: policy.place(k) for k in keys}
        policy.remove_node("n3")
        moved = sum(1 for k in keys if policy.place(k) != before[k])
        orphaned = sum(1 for k in keys if before[k] == "n3")
        assert moved == orphaned  # only the victim's keys move

    def test_remove_unknown(self):
        policy = ConsistentHashPlacement(["a"])
        with pytest.raises(KeyError):
            policy.remove_node("b")

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashPlacement(vnodes=0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_every_key_lands_on_a_registered_node(self, key):
        policy = ConsistentHashPlacement(["x", "y", "z"], vnodes=16)
        assert policy.place(f"k{key}") in {"x", "y", "z"}


class TestClusterWithConsistentHash:
    def test_end_to_end(self):
        cfg = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)
        system = DistributedSearchSystem(3, cfg, placement="consistent-hash")
        descs = {i: make_descriptors(32, seed=5000 + i) for i in range(9)}
        for i, d in descs.items():
            system.add(f"r{i}", d)
        assert system.n_references == 9
        result = system.search(noisy_copy(descs[4], 8.0, seed=51))
        assert result.best().reference_id == "r4"
        # failover still works under the hash policy
        victim = system._placement["r4"]
        system.remove_node(victim)
        result = system.search(noisy_copy(descs[4], 8.0, seed=52))
        assert result.best().reference_id == "r4"

    def test_unknown_policy(self):
        with pytest.raises(ClusterError):
            DistributedSearchSystem(1, placement="random")


class TestProfileReport:
    def test_report_contents(self):
        engine = TextureSearchEngine(
            EngineConfig(m=32, n=32, batch_size=2, scale_factor=0.25)
        )
        for i in range(4):
            engine.add_reference(f"r{i}", make_descriptors(32, seed=5100 + i))
        engine.search(make_descriptors(32, seed=5200))
        report = engine.profile_report()
        for token in ("GEMM", "Top-2 sort", "TOTAL", "us/image", "Tesla P100"):
            assert token in report

    def test_reset_profile(self):
        engine = TextureSearchEngine(
            EngineConfig(m=32, n=32, batch_size=2, scale_factor=0.25)
        )
        engine.add_reference("r0", make_descriptors(32, seed=5300))
        engine.search(make_descriptors(32, seed=5301))
        engine.reset_profile()
        assert engine.device.profiler.total_us() == 0.0
        assert engine.stats.searches == 1  # stats survive
