"""Match-kernel backend layer: registry resolution, cross-backend
result parity, baseline adapters through the real engine, and the
regressions the cache-sweep executor refactor guards against."""

import numpy as np
import pytest

from repro.baselines import LshKernel
from repro.core import (
    EngineConfig,
    MatchKernel,
    TextureSearchEngine,
    available_backends,
    create_kernel,
    register_kernel,
    resolve_backend,
)
from repro.core.registry import _CUSTOM, canonical_backend, kernel_class
from repro.gpusim import GPUDevice, TESLA_P100
from tests.conftest import make_descriptors, noisy_copy

M = N = 48
BATCH = 4


def cfg(backend, **kwargs):
    defaults = dict(m=M, n=N, batch_size=BATCH, min_matches=5, backend=backend)
    if backend in ("opencv", "garcia", "algorithm1", "lsh"):
        defaults["precision"] = "fp32"
    else:
        defaults["scale_factor"] = 0.25
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def build_engine(backend, **kwargs):
    config = cfg(backend, **kwargs)
    if backend == "lsh":
        # exhaustive candidates -> exact FP32 brute force (parity mode)
        return TextureSearchEngine(
            config, kernel=LshKernel(config, n_bits=256, n_candidates=M)
        )
    return TextureSearchEngine(config)


def enrolled(engine, count=8):
    descs = {i: make_descriptors(M, seed=4000 + i) for i in range(count)}
    for i, d in descs.items():
        engine.add_reference(f"ref{i}", d)
    engine.flush()
    return descs


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for expected in (
            "algorithm1", "algorithm2", "garcia", "opencv", "lsh", "cascade",
        ):
            assert expected in names

    def test_aliases(self):
        assert canonical_backend("rootsift") == "algorithm2"
        assert canonical_backend("cublas") == "algorithm1"
        assert EngineConfig(backend="ROOTSIFT").backend == "algorithm2"

    def test_unknown_backend_rejected_at_config(self):
        with pytest.raises(ValueError, match="unknown backend"):
            EngineConfig(backend="faiss")

    def test_unknown_backend_error_lists_every_registered_name(self):
        with pytest.raises(ValueError) as excinfo:
            canonical_backend("faiss")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message
        # aliases advertised alongside their targets
        assert "rootsift->algorithm2" in message
        assert "cublas->algorithm1" in message

    def test_unknown_backend_error_includes_runtime_registrations(self):
        register_kernel("bespoke", MatchKernel)
        try:
            with pytest.raises(ValueError, match="bespoke"):
                canonical_backend("nope")
        finally:
            _CUSTOM.pop("bespoke", None)
        # and gone again once unregistered
        with pytest.raises(ValueError) as excinfo:
            canonical_backend("nope")
        assert "bespoke" not in str(excinfo.value)

    def test_use_rootsift_is_a_deprecated_alias(self):
        assert resolve_backend(EngineConfig()) == "algorithm2"
        assert resolve_backend(EngineConfig(use_rootsift=False)) == "algorithm1"
        # an explicit backend wins over the legacy flag
        explicit = EngineConfig(backend="opencv", precision="fp32", use_rootsift=True)
        assert resolve_backend(explicit) == "opencv"

    def test_engine_reports_backend(self):
        assert TextureSearchEngine(cfg("garcia")).backend == "garcia"
        assert TextureSearchEngine(EngineConfig(m=M, n=N)).backend == "algorithm2"

    def test_custom_registration(self):
        class ShoutyKernel(MatchKernel):
            name = "shouty"

            def prepare_reference(self, descriptors):  # pragma: no cover
                raise NotImplementedError

            def query_matrix(self, descriptors):  # pragma: no cover
                raise NotImplementedError

            def match_batch(self, device, batch, query, keep_masks=False):  # pragma: no cover
                raise NotImplementedError

        register_kernel("shouty", ShoutyKernel)
        try:
            assert kernel_class("shouty") is ShoutyKernel
            config = EngineConfig(backend="shouty")
            assert isinstance(create_kernel(config), ShoutyKernel)
        finally:
            _CUSTOM.pop("shouty", None)

    def test_validate_config_enforced(self):
        with pytest.raises(ValueError, match="fp32"):
            TextureSearchEngine(EngineConfig(m=M, n=N, backend="opencv", precision="fp16"))
        with pytest.raises(ValueError, match="fp32"):
            TextureSearchEngine(EngineConfig(m=M, n=N, backend="lsh", precision="fp16"))

    def test_memory_per_image(self):
        # Algorithm-1 family caches N_R next to the matrix
        assert cfg("algorithm1").feature_matrix_bytes() == M * 128 * 4 + M * 4
        assert cfg("garcia").feature_matrix_bytes() == M * 128 * 4 + M * 4
        # norm-free kernels cache just the matrix
        assert cfg("opencv").feature_matrix_bytes() == M * 128 * 4
        assert cfg("algorithm2").feature_matrix_bytes() == M * 128 * 2
        # LSH adds its packed signature words
        assert cfg("lsh").feature_matrix_bytes() == M * 128 * 4 + M * 32


class TestBackendParity:
    """Every backend must agree on *results*; only cost models differ."""

    EXACT_FP32 = ["algorithm1", "garcia", "opencv", "lsh"]
    ALL = EXACT_FP32 + ["algorithm2"]

    @pytest.fixture(scope="class")
    def fixtures(self):
        refs = {i: make_descriptors(M, seed=4000 + i) for i in range(8)}
        return {
            "refs": refs,
            "query": noisy_copy(refs[3], 8.0, seed=47),
            "genuine": (refs[5], noisy_copy(refs[5], 8.0, seed=48)),
            "impostor": (refs[5], noisy_copy(refs[6], 8.0, seed=49)),
        }

    def test_all_backends_find_the_true_reference(self, fixtures):
        for backend in self.ALL:
            engine = build_engine(backend)
            for i, d in fixtures["refs"].items():
                engine.add_reference(f"ref{i}", d)
            result = engine.search(fixtures["query"])
            assert result.best().reference_id == "ref3", backend
            assert result.images_searched == 8, backend

    def test_all_backends_agree_on_verification_verdicts(self, fixtures):
        for backend in self.ALL:
            engine = build_engine(backend)
            same, count = engine.verify(*fixtures["genuine"])
            assert same, backend
            assert count >= 5, backend
            same, _ = engine.verify(*fixtures["impostor"])
            assert not same, backend

    def test_exact_fp32_family_identical_match_counts(self, fixtures):
        """OpenCV/Garcia/LSH-exhaustive are the same FP32 math as
        Algorithm 1 — match counts must be bit-identical per image."""
        per_backend = {}
        for backend in self.EXACT_FP32:
            engine = build_engine(backend)
            for i, d in fixtures["refs"].items():
                engine.add_reference(f"ref{i}", d)
            result = engine.search(fixtures["query"])
            per_backend[backend] = {
                m.reference_id: m.good_matches for m in result.matches
            }
        reference = per_backend["algorithm1"]
        assert len(reference) == 8
        for backend, counts in per_backend.items():
            assert counts == reference, backend

    def test_adapters_respect_tombstones_and_updates(self, fixtures):
        for backend in ("opencv", "lsh"):
            engine = build_engine(backend)
            descs = enrolled(engine)
            assert engine.remove_reference("ref3")
            result = engine.search(noisy_copy(descs[3], 8.0, seed=50))
            assert all(m.reference_id != "ref3" for m in result.matches), backend
            assert result.images_searched == 8  # tombstoned slot still compared

    def test_adapters_run_through_hybrid_cache(self):
        """Baseline kernels must stream host-resident batches like the
        native pipelines do (the whole point of the adapter layer)."""
        config = cfg("opencv", batch_size=2)
        batch_bytes = config.batch_size * config.feature_matrix_bytes()
        engine = TextureSearchEngine(
            config,
            device=GPUDevice(TESLA_P100.with_memory(10**6)),
            gpu_cache_bytes=batch_bytes,
            host_cache_bytes=batch_bytes * 10,
        )
        descs = enrolled(engine, 6)
        assert engine.cache.host_batches >= 1
        result = engine.search(noisy_copy(descs[0], 8.0, seed=51))
        assert result.best().reference_id == "ref0"
        assert "H2D copy" in engine.device.profiler.as_dict()

    def test_lsh_approximate_mode_degrades_not_breaks(self):
        config = cfg("lsh")
        engine = TextureSearchEngine(
            config, kernel=LshKernel(config, n_bits=64, n_candidates=4)
        )
        descs = enrolled(engine)
        result = engine.search(noisy_copy(descs[2], 8.0, seed=52))
        assert result.images_searched == 8
        assert result.best() is not None


class TestSweepExecutorRegressions:
    """Regressions guarding the unified cache-sweep executor."""

    def test_verify_does_not_depend_on_stale_query_state(self):
        """Algorithm-1 ``verify`` after a prior ``search`` must match a
        fresh engine's verdict (the old engine kept the search's
        prepared query in hidden mutable state)."""
        config = cfg("algorithm1")
        ref = make_descriptors(M, seed=4100)
        genuine = noisy_copy(ref, 8.0, seed=4101)

        fresh = TextureSearchEngine(config)
        expected = fresh.verify(ref, genuine)

        used = TextureSearchEngine(config)
        enrolled(used)
        used.search(make_descriptors(M, seed=4102))  # unrelated query
        assert used.verify(ref, genuine) == expected

    def test_search_then_verify_then_search_stable(self):
        engine = build_engine("algorithm1")
        descs = enrolled(engine)
        first = engine.search(noisy_copy(descs[1], 8.0, seed=4200))
        engine.verify(descs[4], noisy_copy(descs[4], 8.0, seed=4201))
        second = engine.search(noisy_copy(descs[1], 8.0, seed=4200))
        assert [m.good_matches for m in first.matches] == [
            m.good_matches for m in second.matches
        ]

    def test_search_many_accumulates_step_times(self):
        """``search_many`` must feed the same per-step profile stats as
        ``search`` so profile reports cover query-batched sweeps."""
        engine = TextureSearchEngine(cfg("algorithm2"))
        enrolled(engine)
        engine.search_many([make_descriptors(M, seed=4300 + i) for i in range(3)])
        steps = engine.stats.step_times_us
        assert "GEMM" in steps and "Top-2 sort" in steps
        # the sweep's profile deltas equal the profiler's totals here
        # (fresh engine, search charges only)
        for name, total in engine.device.profiler.as_dict().items():
            assert steps[name] == pytest.approx(total)

    def test_step_times_are_deltas_not_cumulative_totals(self):
        """Two identical searches contribute ~equal step time, not a
        re-addition of the profiler's running totals."""
        engine = TextureSearchEngine(cfg("algorithm2"))
        descs = enrolled(engine)
        query = noisy_copy(descs[0], 8.0, seed=4400)
        engine.search(query)
        after_one = dict(engine.stats.step_times_us)
        engine.search(query)
        for name, first in after_one.items():
            assert engine.stats.step_times_us[name] == pytest.approx(2 * first)

    def test_profile_report_means_track_the_reset_window(self):
        """``reset_profile`` clears the profiler but not
        ``stats.images_compared`` — per-image means must use only the
        images compared since the reset."""
        engine = TextureSearchEngine(cfg("algorithm2"))
        descs = enrolled(engine)
        for s in range(3):
            engine.search(noisy_copy(descs[0], 8.0, seed=4500 + s))
        engine.reset_profile()
        assert engine.images_since_profile_reset == 0
        engine.search(noisy_copy(descs[0], 8.0, seed=4510))
        assert engine.images_since_profile_reset == 8
        expected_mean = engine.device.profiler.total_us() / 8
        assert f"{expected_mean:.2f}" in engine.profile_report()

    def test_verify_records_no_search_stats(self):
        engine = TextureSearchEngine(cfg("algorithm2"))
        engine.verify(
            make_descriptors(M, seed=4600), make_descriptors(M, seed=4601)
        )
        assert engine.stats.searches == 0
        assert engine.stats.images_compared == 0


class TestNodeBackend:
    def test_node_constructed_by_backend_name(self):
        from repro.distributed import SearchNode

        node = SearchNode(
            "n0", EngineConfig(m=M, n=N, precision="fp32"), backend="opencv"
        )
        assert node.engine.backend == "opencv"
        assert node.stats()["backend"] == "opencv"

    def test_node_backend_requires_compatible_config(self):
        from repro.distributed import SearchNode

        with pytest.raises(ValueError, match="fp32"):
            SearchNode("n0", EngineConfig(m=M, n=N, precision="fp16"), backend="opencv")


class TestBackendBenchExperiment:
    def test_engine_path_matches_chain_models(self):
        from repro.bench.experiments import backend_bench

        result = backend_bench.run(
            backends=["opencv", "garcia", "algorithm1"],
            m=64, n=64, n_references=4, batch_size=4,
        )
        assert len(result.rows) >= 3
        for key, delta in result.summary.items():
            assert abs(delta) < 5.0, key  # existing anchor tolerance

    def test_table1_throughput_through_engine_path(self):
        """Acceptance: the opencv backend reproduces Table 1's baseline
        throughput through the engine path, within existing tolerance."""
        from repro.bench.experiments import backend_bench
        from repro.bench.experiments.table1_cublas import PAPER_SPEEDS

        result = backend_bench.run(backends=["opencv"], n_references=4, batch_size=4)
        row = result.row_by("Backend", "CUDA (OpenCV)")
        engine_speed = row[result.headers.index("engine img/s")]
        assert engine_speed == pytest.approx(PAPER_SPEEDS["CUDA (OpenCV)"], rel=0.05)

    def test_unknown_backend_filter_rejected(self):
        from repro.bench.experiments import backend_bench

        with pytest.raises(ValueError):
            backend_bench.run(backends=["faiss"])

    def test_cli_backend_flag(self, capsys):
        from repro.bench import run as bench_run

        code = bench_run.main(["--backend", "opencv"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CUDA (OpenCV)" in out
