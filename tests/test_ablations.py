"""Ablation experiments (reduced scale)."""

import pytest

from repro.bench.experiments import ablations


class TestSortAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_sort_ablation(batches=[1, 256])

    def test_scan_always_wins(self, result):
        for row in result.rows:
            assert float(row[4].rstrip("x")) > 3.0

    def test_fp16_crossover(self, result):
        """FP16 scan slower at batch 1, faster at batch 256 (Sec. 4.2)."""
        assert result.summary["fp16_scan_penalty_batch1"] > 1.3
        assert result.summary["fp16_scan_gain_large_batch"] > 1.2


class TestQueryBatchAblation:
    def test_tradeoff_shape(self):
        result = ablations.run_query_batch_ablation(query_batches=[1, 4, 16])
        assert result.summary["throughput_gain"] > 1.3
        assert result.summary["latency_cost"] > 5.0
        latencies = result.column("latency per query (ms)")
        assert latencies == sorted(latencies)


class TestStreamModelAblation:
    def test_ideal_dominates_fair_share(self):
        result = ablations.run_stream_model_ablation(streams_list=[1, 2, 8], n_batches=16)
        for row in result.rows[1:]:  # beyond 1 stream
            assert row[2] >= row[1]  # ideal >= fair-share
        assert result.summary["ideal_saturates_by_2_streams"]


class TestCbirAblation:
    def test_decisive_gap(self):
        """Per-image matching stays decisive; CBIR voting collapses."""
        result = ablations.run_cbir_ablation(n_bricks=16)
        assert result.summary["identification_decisive"] >= 0.8
        assert result.summary["decisive_gap"] > 0.3


class TestVerificationAblation:
    def test_roc_shape(self):
        result = ablations.run_verification_ablation(n_bricks=12)
        assert result.summary["eer"] < 0.2
        assert result.summary["genuine_median"] > result.summary["impostor_median"]
        # FRR grows with the threshold
        frrs = [float(row[2].rstrip("%")) for row in result.rows]
        assert frrs == sorted(frrs)


class TestLshAblation:
    def test_impostor_inflation_at_tight_budgets(self):
        result = ablations.run_lsh_ablation(n_bricks=8, bit_widths=[64, 1024])
        assert (
            result.summary["lsh64_impostor_median"]
            >= result.summary["lsh1024_impostor_median"]
        )
        assert result.summary["fp16_accuracy"] >= 0.6
