"""Geometric verification: estimators and RANSAC."""

import numpy as np
import pytest

from repro.geometry import (
    apply_homography,
    apply_similarity,
    estimate_homography,
    estimate_similarity,
    ransac_verify,
)


def random_points(n, seed=0, scale=100.0):
    return np.random.default_rng(seed).random((n, 2)) * scale


def similarity_matrix(scale, theta, tx, ty):
    c, s = scale * np.cos(theta), scale * np.sin(theta)
    return np.array([[c, -s, tx], [s, c, ty]])


class TestSimilarity:
    def test_recovers_exact_transform(self):
        src = random_points(20, seed=1)
        m_true = similarity_matrix(1.3, 0.4, 5.0, -2.0)
        dst = apply_similarity(m_true, src)
        m_est = estimate_similarity(src, dst)
        np.testing.assert_allclose(m_est, m_true, atol=1e-9)

    def test_least_squares_with_noise(self):
        src = random_points(200, seed=2)
        m_true = similarity_matrix(0.9, -0.2, 1.0, 3.0)
        rng = np.random.default_rng(3)
        dst = apply_similarity(m_true, src) + rng.normal(0, 0.5, (200, 2))
        m_est = estimate_similarity(src, dst)
        np.testing.assert_allclose(m_est, m_true, atol=0.2)

    def test_minimum_points(self):
        with pytest.raises(ValueError):
            estimate_similarity(random_points(1), random_points(1))

    def test_degenerate_source(self):
        src = np.zeros((5, 2))
        with pytest.raises(ValueError, match="degenerate"):
            estimate_similarity(src, random_points(5))


class TestHomography:
    def test_recovers_exact_homography(self):
        src = random_points(30, seed=4)
        h_true = np.array([[1.1, 0.05, 3.0], [-0.04, 0.95, -2.0], [1e-4, -5e-5, 1.0]])
        dst = apply_homography(h_true, src)
        h_est = estimate_homography(src, dst)
        np.testing.assert_allclose(h_est, h_true, atol=1e-6)

    def test_similarity_is_special_case(self):
        src = random_points(30, seed=5)
        m = similarity_matrix(1.2, 0.3, 4.0, 1.0)
        dst = apply_similarity(m, src)
        h = estimate_homography(src, dst)
        np.testing.assert_allclose(apply_homography(h, src), dst, atol=1e-6)

    def test_minimum_points(self):
        with pytest.raises(ValueError):
            estimate_homography(random_points(3), random_points(3))


class TestRansac:
    def _matches_with_outliers(self, n_in, n_out, seed=6):
        rng = np.random.default_rng(seed)
        src_in = random_points(n_in, seed=seed)
        m = similarity_matrix(1.05, 0.15, 2.0, -1.0)
        dst_in = apply_similarity(m, src_in) + rng.normal(0, 0.3, (n_in, 2))
        src_out = random_points(n_out, seed=seed + 1)
        dst_out = random_points(n_out, seed=seed + 2)
        src = np.vstack([src_in, src_out])
        dst = np.vstack([dst_in, dst_out])
        return src, dst, n_in

    def test_counts_inliers(self):
        src, dst, n_in = self._matches_with_outliers(40, 20)
        result = ransac_verify(src, dst, "similarity", threshold=2.0)
        assert abs(result.inliers - n_in) <= 4
        assert result.inlier_mask[:n_in].mean() > 0.85

    def test_pure_outliers_rejected(self):
        src = random_points(30, seed=8)
        dst = random_points(30, seed=9)
        result = ransac_verify(src, dst, "similarity", threshold=1.0)
        assert result.inliers < 8

    def test_too_few_points(self):
        result = ransac_verify(np.zeros((1, 2)), np.zeros((1, 2)))
        assert result.inliers == 0 and result.model is None

    def test_homography_model(self):
        src, dst, n_in = self._matches_with_outliers(50, 10, seed=10)
        result = ransac_verify(src, dst, "homography", threshold=2.0, iterations=400)
        assert result.inliers >= n_in * 0.8

    def test_deterministic_with_seed(self):
        src, dst, _ = self._matches_with_outliers(30, 15, seed=11)
        a = ransac_verify(src, dst, seed=42)
        b = ransac_verify(src, dst, seed=42)
        assert a.inliers == b.inliers
        np.testing.assert_array_equal(a.inlier_mask, b.inlier_mask)

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="model"):
            ransac_verify(np.zeros((5, 2)), np.zeros((5, 2)), model="affine3d")

    def test_inlier_ratio(self):
        src, dst, n_in = self._matches_with_outliers(30, 30, seed=12)
        result = ransac_verify(src, dst, threshold=2.0)
        assert 0.3 < result.inlier_ratio < 0.7
