"""Query batching: multi-query kernel, engine API, trade-off model."""

import numpy as np
import pytest

from repro.core import (
    EngineConfig,
    TextureSearchEngine,
    knn_algorithm2,
    knn_algorithm2_multiquery,
    query_batch_tradeoff,
)
from repro.features import rootsift
from repro.gpusim import KernelCalibration, TESLA_P100
from tests.conftest import make_descriptors, noisy_copy

CAL = KernelCalibration.for_device(TESLA_P100)


def rootsift_batch(count, m, seed):
    return np.stack([rootsift(make_descriptors(m, seed=seed + i)) for i in range(count)])


class TestMultiQueryKernel:
    def test_matches_single_query_runs(self, p100):
        refs = rootsift_batch(3, 12, seed=0)
        queries = np.stack([
            rootsift(noisy_copy(make_descriptors(12, seed=0), 25.0, seed=50)),
            rootsift(noisy_copy(make_descriptors(12, seed=1), 25.0, seed=51)),
        ])
        multi = knn_algorithm2_multiquery(p100, refs, queries, precision="fp32")
        for q in range(2):
            single = knn_algorithm2(p100, refs, queries[q], precision="fp32")
            view = multi.query(q)
            np.testing.assert_allclose(view.distances, single.distances, atol=1e-4)
            np.testing.assert_array_equal(view.indices, single.indices)

    def test_single_fused_gemm(self, p100):
        refs = rootsift_batch(2, 8, seed=10)
        queries = rootsift_batch(4, 8, seed=20)
        knn_algorithm2_multiquery(p100, refs, queries, precision="fp32")
        gemm = [r for r in p100.profiler.records() if r.name == "GEMM"]
        assert gemm[0].calls == 1

    def test_fp16_path(self, p100):
        scale = 0.25
        refs = (rootsift_batch(2, 8, seed=30) * scale).astype(np.float16)
        queries = (rootsift_batch(3, 8, seed=30) * scale).astype(np.float16)
        result = knn_algorithm2_multiquery(p100, refs, queries, scale=scale, precision="fp16")
        assert result.n_queries == 3
        assert result.distances.shape == (2, 3, 2, 8)

    def test_validation(self, p100):
        with pytest.raises(ValueError, match="references"):
            knn_algorithm2_multiquery(p100, np.ones((2, 4), np.float32), np.ones((1, 4, 4), np.float32))
        with pytest.raises(ValueError, match="dimension"):
            knn_algorithm2_multiquery(p100, np.ones((1, 4, 4), np.float32), np.ones((1, 5, 4), np.float32))


class TestEngineSearchMany:
    def test_results_match_sequential_search(self):
        cfg = EngineConfig(m=48, n=48, batch_size=4, min_matches=5, scale_factor=0.25)
        descs = {i: make_descriptors(48, seed=600 + i) for i in range(8)}
        multi_engine = TextureSearchEngine(cfg)
        seq_engine = TextureSearchEngine(cfg)
        for i, d in descs.items():
            multi_engine.add_reference(f"r{i}", d)
            seq_engine.add_reference(f"r{i}", d)
        queries = [noisy_copy(descs[2], 8.0, seed=61), noisy_copy(descs[5], 8.0, seed=62)]
        grouped = multi_engine.search_many(queries)
        assert len(grouped) == 2
        assert grouped[0].best().reference_id == "r2"
        assert grouped[1].best().reference_id == "r5"
        for q, grouped_result in zip(queries, grouped):
            solo = seq_engine.search(q)
            assert solo.best().reference_id == grouped_result.best().reference_id
            assert solo.best().good_matches == grouped_result.best().good_matches

    def test_group_latency_shared(self):
        cfg = EngineConfig(m=32, n=32, batch_size=4, scale_factor=0.25)
        engine = TextureSearchEngine(cfg)
        for i in range(4):
            engine.add_reference(f"r{i}", make_descriptors(32, seed=700 + i))
        results = engine.search_many([make_descriptors(32, seed=710 + i) for i in range(3)])
        assert len({r.elapsed_us for r in results}) == 1  # one group time

    def test_requires_rootsift(self):
        engine = TextureSearchEngine(
            EngineConfig(m=32, n=32, use_rootsift=False, precision="fp32", batch_size=4)
        )
        with pytest.raises(ValueError, match="RootSIFT"):
            engine.search_many([make_descriptors(32, seed=1)])

    def test_empty_input(self):
        engine = TextureSearchEngine(EngineConfig(m=32, n=32, batch_size=4))
        assert engine.search_many([]) == []

    def test_respects_tombstones(self):
        cfg = EngineConfig(m=32, n=32, batch_size=2, scale_factor=0.25)
        engine = TextureSearchEngine(cfg)
        descs = {i: make_descriptors(32, seed=800 + i) for i in range(4)}
        for i, d in descs.items():
            engine.add_reference(f"r{i}", d)
        engine.remove_reference("r1")
        results = engine.search_many([noisy_copy(descs[1], 8.0, seed=81)])
        assert all(m.reference_id != "r1" for m in results[0].matches)


class TestTradeoffModel:
    def test_throughput_rises_latency_rises(self):
        points = query_batch_tradeoff(TESLA_P100, CAL, [1, 4, 16])
        throughputs = [p.throughput_images_per_s for p in points]
        latencies = [p.latency_ms_per_query for p in points]
        assert throughputs == sorted(throughputs)
        assert latencies == sorted(latencies)
        assert throughputs[-1] / throughputs[0] > 1.3  # PCIe amortisation

    def test_gpu_resident_gain_is_smaller(self):
        streamed = query_batch_tradeoff(TESLA_P100, CAL, [1, 16], host_resident=True)
        resident = query_batch_tradeoff(TESLA_P100, CAL, [1, 16], host_resident=False)
        gain_streamed = streamed[1].throughput_images_per_s / streamed[0].throughput_images_per_s
        gain_resident = resident[1].throughput_images_per_s / resident[0].throughput_images_per_s
        assert gain_streamed > gain_resident

    def test_validation(self):
        with pytest.raises(ValueError):
            query_batch_tradeoff(TESLA_P100, CAL, [0])
        with pytest.raises(ValueError):
            query_batch_tradeoff(TESLA_P100, CAL, [1], reference_count=10, ref_batch=100)
