"""Protobuf-like wire format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    FeatureRecord,
    decode_varint,
    deserialize_record,
    encode_varint,
    serialize_record,
)
from repro.errors import SerializationError


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)

    def test_single_byte_below_128(self):
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(SerializationError, match="truncated"):
            decode_varint(b"\x80")

    def test_overlong(self):
        with pytest.raises(SerializationError, match="too long"):
            decode_varint(b"\xff" * 11)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value


class TestFeatureRecord:
    def _record(self, precision="fp16", m=12, d=16, scale=2.0**-7):
        rng = np.random.default_rng(0)
        dtype = np.float16 if precision == "fp16" else np.float32
        return FeatureRecord(
            ref_id="brick-0042",
            matrix=rng.random((d, m)).astype(dtype),
            precision=precision,
            scale=scale,
        )

    @pytest.mark.parametrize("precision", ["fp16", "fp32"])
    def test_roundtrip(self, precision):
        record = self._record(precision)
        back = deserialize_record(serialize_record(record))
        assert back.ref_id == record.ref_id
        assert back.precision == precision
        assert back.scale == record.scale
        np.testing.assert_array_equal(back.matrix, record.matrix)

    def test_unicode_ids(self):
        record = FeatureRecord("普洱茶-砖-7", np.ones((2, 2), np.float16), "fp16", 1.0)
        back = deserialize_record(serialize_record(record))
        assert back.ref_id == "普洱茶-砖-7"

    def test_truncated_payload(self):
        data = serialize_record(self._record())
        with pytest.raises(SerializationError):
            deserialize_record(data[: len(data) // 2])

    def test_missing_field(self):
        # varint field 1 only
        with pytest.raises(SerializationError, match="missing required"):
            deserialize_record(encode_varint(1 << 3) + encode_varint(1))

    def test_size_mismatch_detected(self):
        # declare (2, 3) dims but ship a (2, 2) payload
        good = serialize_record(FeatureRecord("x", np.ones((2, 2), np.float16), "fp16", 1.0))
        bad_dims = serialize_record(FeatureRecord("x", np.ones((2, 3), np.float16), "fp16", 1.0))
        # splice: take the bad record's header fields but the good
        # record's (shorter) matrix bytes — simplest is to decode the
        # good record and re-encode with forged m via raw surgery, so
        # instead assert both corrupted-truncation styles raise.
        with pytest.raises(SerializationError):
            deserialize_record(bad_dims[:-2])
        with pytest.raises(SerializationError):
            deserialize_record(good[:-1])

    def test_payload_size_mismatch(self):
        """Hand-crafted record declaring (2, 3) but shipping 8 bytes."""
        import struct

        from repro.distributed.serialization import _bytes_field, _varint_field

        blob = b"".join(
            [
                _varint_field(1, 1),
                _bytes_field(2, b"x"),
                _varint_field(3, 2),  # d
                _varint_field(4, 3),  # m
                _bytes_field(5, b"fp16"),
                _bytes_field(6, struct.pack("<d", 1.0)),
                _bytes_field(7, b"\x00" * 8),  # 2*2*2 bytes, not 2*3*2
            ]
        )
        with pytest.raises(SerializationError, match="payload"):
            deserialize_record(blob)

    def test_unknown_fields_skipped(self):
        record = self._record()
        data = serialize_record(record)
        extra = encode_varint((99 << 3) | 0) + encode_varint(7)  # unknown varint field
        back = deserialize_record(data + extra)
        assert back.ref_id == record.ref_id

    def test_bad_precision(self):
        with pytest.raises(SerializationError):
            FeatureRecord("x", np.ones((2, 2)), "fp64", 1.0)

    def test_matrix_must_be_2d(self):
        with pytest.raises(SerializationError):
            FeatureRecord("x", np.ones(4, np.float16), "fp16", 1.0)

    @given(
        m=st.integers(1, 40),
        d=st.integers(1, 40),
        scale=st.floats(1e-6, 10.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, m, d, scale, seed):
        rng = np.random.default_rng(seed)
        record = FeatureRecord("id", rng.random((d, m)).astype(np.float32), "fp32", scale)
        back = deserialize_record(serialize_record(record))
        np.testing.assert_array_equal(back.matrix, record.matrix)
        assert back.scale == pytest.approx(scale)
