"""Top-k selection kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import functional_topk, insertion_topk, top2_scan


class TestFunctionalTopk:
    def test_matches_full_sort(self):
        rng = np.random.default_rng(0)
        a = rng.random((50, 20))
        vals, idx = functional_topk(a, 3)
        expected = np.sort(a, axis=0)[:3]
        np.testing.assert_allclose(vals, expected)

    def test_indices_consistent_with_values(self):
        rng = np.random.default_rng(1)
        a = rng.random((30, 10))
        vals, idx = functional_topk(a, 2)
        np.testing.assert_allclose(np.take_along_axis(a, idx, axis=0), vals)

    def test_tiebreak_lowest_index(self):
        a = np.array([[1.0, 2.0], [1.0, 1.0], [0.5, 1.0]])
        _vals, idx = functional_topk(a, 2)
        np.testing.assert_array_equal(idx[:, 0], [2, 0])
        np.testing.assert_array_equal(idx[:, 1], [1, 2])

    def test_k_equals_m(self):
        a = np.array([[3.0], [1.0], [2.0]])
        vals, idx = functional_topk(a, 3)
        np.testing.assert_allclose(vals[:, 0], [1, 2, 3])

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            functional_topk(np.ones((3, 2)), 4)
        with pytest.raises(ValueError):
            functional_topk(np.ones((3, 2)), 0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            functional_topk(np.ones(5), 1)

    @given(
        hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(2, 40), st.integers(1, 12)),
            elements=st.floats(-1e6, 1e6),
        ),
        st.integers(1, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_vs_sort(self, a, k):
        k = min(k, a.shape[0])
        vals, _ = functional_topk(a, k)
        np.testing.assert_allclose(vals, np.sort(a, axis=0)[:k])

    @given(
        hnp.arrays(
            np.float64,
            # tall arrays cross the 4*k >= m boundary both ways, so both
            # the argpartition fast path and the full sort are exercised
            shape=st.tuples(st.integers(2, 120), st.integers(1, 6)),
            # tiny value alphabet => columns are riddled with ties
            elements=st.integers(0, 3).map(float),
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_ties_break_to_lower_row(self, a, k):
        k = min(k, a.shape[0])
        vals, idx = functional_topk(a, k)
        expected_idx = np.argsort(a, axis=0, kind="stable")[:k]
        np.testing.assert_array_equal(idx, expected_idx)
        np.testing.assert_allclose(
            vals, np.take_along_axis(a, expected_idx, axis=0)
        )


class TestDeviceTopk:
    def test_scan_and_insertion_agree(self, p100):
        rng = np.random.default_rng(2)
        a = rng.random((64, 16))
        v1, i1 = top2_scan(p100, a, "fp32")
        v2, i2 = insertion_topk(p100, a, 2, "fp32")
        np.testing.assert_allclose(v1, v2)
        np.testing.assert_array_equal(i1, i2)

    def test_scan_charged_cheaper_than_insertion(self, p100, v100):
        rng = np.random.default_rng(3)
        a = rng.random((768, 768))
        top2_scan(p100, a, "fp32")
        scan_time = p100.elapsed_us()
        insertion_topk(v100, a, 2, "fp32")
        insertion_time = v100.elapsed_us()
        assert insertion_time > scan_time

    def test_general_k_supported_by_insertion(self, p100):
        rng = np.random.default_rng(4)
        a = rng.random((32, 8))
        vals, _ = insertion_topk(p100, a, 5, "fp32")
        assert vals.shape == (5, 8)

    def test_bad_sort_kind_shapes(self, p100):
        with pytest.raises(ValueError):
            top2_scan(p100, np.ones(4))
