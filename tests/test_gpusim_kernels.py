"""Kernel cost models: scaling laws and paper anchors."""

import pytest

from repro.gpusim import (
    KernelCalibration,
    TESLA_P100,
    TESLA_V100,
    d2h_result_us,
    dtype_bytes,
    elementwise_us,
    gemm_us,
    h2d_time_us,
    insertion_sort_us,
    postprocess_us,
    result_bytes,
    top2_scan_us,
)

SPEC = TESLA_P100
CAL = KernelCalibration.for_device(SPEC)


class TestDtypes:
    def test_bytes(self):
        assert dtype_bytes("fp16") == 2
        assert dtype_bytes("fp32") == 4

    def test_unknown(self):
        with pytest.raises(ValueError):
            dtype_bytes("fp64")


class TestGemmModel:
    def test_monotone_in_work(self):
        t1 = gemm_us(SPEC, CAL, 768, 768, 128, 1, "fp16")
        t2 = gemm_us(SPEC, CAL, 768, 768, 128, 2, "fp16")
        assert t2 > t1

    def test_batching_improves_per_image_time(self):
        t1 = gemm_us(SPEC, CAL, 768, 768, 128, 1, "fp16")
        t1024 = gemm_us(SPEC, CAL, 768, 768, 128, 1024, "fp16") / 1024
        assert t1024 < t1 / 2  # the Sec. 5 data-reuse effect

    def test_fp16_beats_fp32(self):
        t32 = gemm_us(SPEC, CAL, 768, 768, 128, 1, "fp32")
        t16 = gemm_us(SPEC, CAL, 768, 768, 128, 1, "fp16")
        assert t16 < t32

    def test_efficiency_never_exceeds_ceiling(self):
        for batch in (1, 16, 4096):
            flops = 2.0 * 768 * 768 * 128 * batch
            t = gemm_us(SPEC, CAL, 768, 768, 128, batch, "fp16")
            achieved = flops / ((t - SPEC.kernel_launch_us) * 1e-6) / 1e12
            assert achieved <= SPEC.fp16_tflops * CAL.gemm_fp16.eff_max * 1.001

    def test_tensor_core_helps_only_with_big_batches(self):
        v_cal = KernelCalibration.for_device(TESLA_V100)
        small_tc = gemm_us(TESLA_V100, v_cal, 768, 768, 128, 1, "fp16", True)
        small = gemm_us(TESLA_V100, v_cal, 768, 768, 128, 1, "fp16", False)
        big_tc = gemm_us(TESLA_V100, v_cal, 768, 768, 128, 1024, "fp16", True)
        big = gemm_us(TESLA_V100, v_cal, 768, 768, 128, 1024, "fp16", False)
        assert big_tc < big
        assert (big / big_tc) > (small / small_tc)  # TC needs data reuse

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            gemm_us(SPEC, CAL, 0, 768, 128)


class TestScanModel:
    def test_fp16_slower_at_batch_1(self):
        """Sec. 4.2: the FP16 scan is ~70% slower at batch 1."""
        t32 = top2_scan_us(SPEC, CAL, 768, 768, "fp32")
        t16 = top2_scan_us(SPEC, CAL, 768, 768, "fp16")
        assert 1.4 < t16 / t32 < 2.0

    def test_fp16_faster_at_high_occupancy(self):
        """At full occupancy the scan is bandwidth bound -> FP16 wins."""
        cols = 768 * 1024
        t32 = top2_scan_us(SPEC, CAL, 768, cols, "fp32")
        t16 = top2_scan_us(SPEC, CAL, 768, cols, "fp16")
        assert t16 < t32

    def test_insertion_sort_much_slower(self):
        scan = top2_scan_us(SPEC, CAL, 768, 768, "fp32")
        insertion = insertion_sort_us(SPEC, CAL, 768, 768, "fp32")
        assert insertion > 4 * scan  # paper: 81.9% reduction


class TestTransferModels:
    def test_pinned_faster_than_pageable(self):
        pinned = h2d_time_us(SPEC, 10**8, pinned=True)
        pageable = h2d_time_us(SPEC, 10**8, pinned=False)
        assert pageable > pinned

    def test_zero_bytes_free(self):
        assert h2d_time_us(SPEC, 0) == 0.0

    def test_latency_dominates_small_copies(self):
        t_small = d2h_result_us(SPEC, CAL, 768, 1, 2, "fp16")
        assert t_small > 40  # ~45 us initiation latency

    def test_result_bytes(self):
        # 2 x 768 fp16 distances + 2 x 768 int32 indices
        assert result_bytes(768, 1, 2, "fp16") == 2 * 768 * 2 + 2 * 768 * 4

    def test_batched_d2h_amortises_latency(self):
        per_img_1 = d2h_result_us(SPEC, CAL, 768, 1, 2, "fp16")
        per_img_1024 = d2h_result_us(SPEC, CAL, 768, 1024, 2, "fp16") / 1024
        assert per_img_1024 < per_img_1 / 10


class TestPostprocessModel:
    def test_batching_reduces_per_image_cost(self):
        assert postprocess_us(CAL, 1024, "fp16") / 1024 < postprocess_us(CAL, 1, "fp16")

    def test_fp16_conversion_surcharge(self):
        assert postprocess_us(CAL, 1, "fp16") > postprocess_us(CAL, 1, "fp32")

    def test_scales_with_query_features(self):
        assert postprocess_us(CAL, 1, "fp16", n=1536) == pytest.approx(
            2 * postprocess_us(CAL, 1, "fp16", n=768)
        )


class TestElementwise:
    def test_bandwidth_scaling(self):
        t1 = elementwise_us(SPEC, CAL, 768 * 768, "fp32")
        t2 = elementwise_us(SPEC, CAL, 2 * 768 * 768, "fp32")
        # doubling the elements roughly doubles the bandwidth part
        assert t2 - SPEC.kernel_launch_us == pytest.approx(
            2 * (t1 - SPEC.kernel_launch_us), rel=1e-6
        )


PAPER_ANCHORS = [
    # (description, model_fn, paper_us, tolerance)
    ("GEMM fp32 b1 (T1)", lambda: gemm_us(SPEC, CAL, 768, 768, 128, 1, "fp32"), 35.22, 0.05),
    ("GEMM fp16 b1 (T1)", lambda: gemm_us(SPEC, CAL, 768, 768, 128, 1, "fp16"), 24.92, 0.05),
    ("GEMM fp16 b1024/img (T3)", lambda: gemm_us(SPEC, CAL, 768, 768, 128, 1024, "fp16") / 1024, 11.58, 0.05),
    ("scan fp32 b1 (T1)", lambda: top2_scan_us(SPEC, CAL, 768, 768, "fp32"), 40.20, 0.05),
    ("scan fp16 b1 (T1)", lambda: top2_scan_us(SPEC, CAL, 768, 768, "fp16"), 68.32, 0.05),
    ("scan fp16 b1024/img (T3)", lambda: top2_scan_us(SPEC, CAL, 768, 768 * 1024, "fp16") / 1024, 3.82, 0.05),
    ("insertion sort fp32 b1 (T1)", lambda: insertion_sort_us(SPEC, CAL, 768, 768, "fp32"), 221.5, 0.05),
    ("add N_R fp32 (T1)", lambda: elementwise_us(SPEC, CAL, 768 * 768, "fp32"), 8.94, 0.15),
    ("D2H result fp32 b1 (T1)", lambda: d2h_result_us(SPEC, CAL, 768, 1, 2, "fp32"), 47.32, 0.05),
    ("D2H fp16 b1024/img (T3)", lambda: d2h_result_us(SPEC, CAL, 768, 1024, 2, "fp16") / 1024, 2.72, 0.05),
    ("post fp32 b1 (T1)", lambda: postprocess_us(CAL, 1, "fp32"), 12.60, 0.01),
    ("post fp16 b1024/img (T3)", lambda: postprocess_us(CAL, 1024, "fp16") / 1024, 3.85, 0.01),
]


@pytest.mark.parametrize("desc,fn,paper,tol", PAPER_ANCHORS, ids=[a[0] for a in PAPER_ANCHORS])
def test_paper_anchor(desc, fn, paper, tol):
    """Every calibration anchor reproduces its published cell."""
    assert fn() == pytest.approx(paper, rel=tol)
