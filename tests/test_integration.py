"""End-to-end integration: images -> SIFT -> engine -> identification,
including geometric verification and the distributed service."""

import numpy as np
import pytest

from repro.core import AsymmetricExtractor, AsymmetricPolicy, EngineConfig, TextureSearchEngine
from repro.core.ratio_test import ratio_test_mask
from repro.data import (
    QUERY_PROFILE,
    REFERENCE_PROFILE,
    CaptureSimulator,
    TeaBrickGenerator,
    build_image_dataset,
)
from repro.distributed import DistributedSearchSystem
from repro.fp16 import pairwise_distances
from repro.geometry import ransac_verify
from repro.metrics import evaluate_top1


@pytest.fixture(scope="module")
def extractor():
    return AsymmetricExtractor(AsymmetricPolicy(m_reference=64, n_query=96))


@pytest.fixture(scope="module")
def dataset(extractor):
    return build_image_dataset(5, extractor, queries_per_brick=1, image_size=128, seed=7)


class TestImagePipeline:
    def test_dataset_shapes(self, dataset):
        assert dataset.n_bricks == 5
        assert dataset.references[0].descriptors.shape == (128, 64)
        assert dataset.queries[0].descriptors.shape == (128, 96)

    def test_identification_on_real_pipeline(self, dataset):
        """The full image pipeline identifies most query photos."""
        engine = TextureSearchEngine(
            EngineConfig(m=64, n=96, batch_size=2, min_matches=6, scale_factor=0.25)
        )
        report = evaluate_top1(engine, dataset)
        assert report.total == 5
        assert report.top1_accuracy >= 0.6  # tiny set; most must resolve

    def test_verification_separates_genuine_from_impostor(self, dataset):
        engine = TextureSearchEngine(
            EngineConfig(m=64, n=96, batch_size=2, min_matches=6, scale_factor=0.25)
        )
        ref0 = dataset.references[0].descriptors
        qry0 = dataset.queries[0].descriptors
        qry1 = dataset.queries[1].descriptors
        genuine, genuine_count = engine.verify(ref0, qry0)
        _imp, imp_count = engine.verify(ref0, qry1)
        assert genuine_count > imp_count


class TestGeometricVerification:
    def test_inliers_confirm_true_match(self, extractor):
        gen = TeaBrickGenerator(size=128, seed=11)
        canonical = gen.brick(0)
        rng = np.random.default_rng(3)
        ref_img = CaptureSimulator(REFERENCE_PROFILE).capture(canonical, rng)
        qry_img = CaptureSimulator(QUERY_PROFILE).capture(canonical, rng)
        ref = extractor.extract_with_keypoints(ref_img, budget=80)
        qry = extractor.extract_with_keypoints(qry_img, budget=80)
        if ref.count < 10 or qry.count < 10:
            pytest.skip("too few features on this synthetic draw")

        dist = pairwise_distances(ref.descriptors, qry.descriptors)
        top2 = np.sort(dist, axis=0)[:2]
        nn_idx = np.argmin(dist, axis=0)
        mask = ratio_test_mask(top2, 0.85)
        if mask.sum() < 4:
            pytest.skip("too few ratio-test matches on this draw")
        src = np.array([[ref.keypoints[nn_idx[j]].x, ref.keypoints[nn_idx[j]].y]
                        for j in np.flatnonzero(mask)])
        dst = np.array([[qry.keypoints[j].x, qry.keypoints[j].y]
                        for j in np.flatnonzero(mask)])
        result = ransac_verify(src, dst, "similarity", threshold=4.0)
        assert result.inliers >= max(4, 0.3 * mask.sum())


class TestDistributedIntegration:
    def test_cluster_identifies_across_shards(self, dataset):
        system = DistributedSearchSystem(
            2, EngineConfig(m=64, n=96, batch_size=2, min_matches=6, scale_factor=0.25)
        )
        for ref in dataset.references:
            system.add(str(ref.brick_id), ref.descriptors)
        hits = 0
        for query in dataset.queries:
            result = system.search(query.descriptors)
            best = result.best()
            if best is not None and best.reference_id == str(query.brick_id) and best.score >= 6:
                hits += 1
        assert hits >= 3
