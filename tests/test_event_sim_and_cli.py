"""Event-driven stream simulation, cluster failover, and the CLI."""

import numpy as np
import pytest

from repro.bench.run import main as bench_main
from repro.core import EngineConfig
from repro.distributed import DistributedSearchSystem
from repro.errors import ClusterError
from repro.gpusim import KernelCalibration, TESLA_P100
from repro.pipeline import plan_streams, simulate_stream_pipeline
from tests.conftest import make_descriptors, noisy_copy

CAL = KernelCalibration.for_device(TESLA_P100)


class TestEventDrivenSim:
    def test_single_stream_matches_serial_chain(self):
        result = simulate_stream_pipeline(TESLA_P100, CAL, 1, n_batches=8, batch=256)
        plan = plan_streams(TESLA_P100, CAL, 1, 256)
        # the event sim has no CPU post stage; compare against the plan's
        # GPU-only chain within 15%
        gpu_chain = plan.h2d_us + plan.compute_us + plan.d2h_us
        expected = 256 / gpu_chain * 1e6
        assert result.throughput_images_per_s == pytest.approx(expected, rel=0.15)

    def test_ideal_overlap_reaches_pcie_bound_quickly(self):
        two = simulate_stream_pipeline(TESLA_P100, CAL, 2, n_batches=16, batch=256)
        plan = plan_streams(TESLA_P100, CAL, 2, 256)
        # perfect asynchrony beats the fair-share model
        assert two.throughput_images_per_s > plan.throughput_images_per_s
        assert two.throughput_images_per_s <= plan.theoretical_images_per_s * 1.02

    def test_gpu_resident_skips_transfers(self):
        streamed = simulate_stream_pipeline(TESLA_P100, CAL, 1, 4, 256, host_resident=True)
        resident = simulate_stream_pipeline(TESLA_P100, CAL, 1, 4, 256, host_resident=False)
        assert resident.throughput_images_per_s > streamed.throughput_images_per_s
        assert "H2D copy" not in resident.engine_busy_us

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_stream_pipeline(TESLA_P100, CAL, 0, 4, 256)


class TestClusterFailover:
    def _system(self, n_nodes=3, n_refs=6):
        cfg = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)
        system = DistributedSearchSystem(n_nodes, cfg)
        descs = {i: make_descriptors(32, seed=950 + i) for i in range(n_refs)}
        for i, d in descs.items():
            system.add(f"r{i}", d)
        return system, descs

    def test_remove_node_preserves_searchability(self):
        system, descs = self._system()
        victim = system._placement["r1"]
        moved = system.remove_node(victim)
        assert moved == 2  # 6 refs over 3 nodes round-robin
        assert len(system.nodes) == 2
        assert system.n_references == 6
        result = system.search(noisy_copy(descs[1], 8.0, seed=96))
        assert result.best().reference_id == "r1"

    def test_cannot_remove_last_node(self):
        cfg = EngineConfig(m=32, n=32, batch_size=2)
        system = DistributedSearchSystem(1, cfg)
        with pytest.raises(ClusterError):
            system.remove_node("gpu-00")

    def test_add_node_receives_new_references(self):
        system, _ = self._system(n_nodes=2, n_refs=2)
        node = system.add_node()
        assert node.node_id == "gpu-02"
        # next adds round-robin across 3 nodes eventually reach it
        for i in range(10, 16):
            system.add(f"r{i}", make_descriptors(32, seed=970 + i))
        assert node.n_references > 0

    def test_lost_record_dropped_gracefully(self):
        system, _ = self._system()
        victim = system._placement["r0"]
        system.store.delete("feature:r0")  # simulate KV data loss
        system.remove_node(victim)
        assert not system.has("r0")


class TestCli:
    def test_single_experiment(self, capsys):
        assert bench_main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "completed in" in out

    def test_quick_accuracy_experiment(self, capsys):
        assert bench_main(["table7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out
        assert "-" in out  # accuracy column dashed out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_multiple_deduplicated(self, capsys):
        assert bench_main(["table4", "table4"]) == 0
        assert capsys.readouterr().out.count("Table 4:") == 1

    def test_ablation_experiments_routed(self, capsys):
        assert bench_main(["ablation-sort"]) == 0
        assert "Ablation" in capsys.readouterr().out
