"""Fault tolerance: health states, fault injection, retries, partial
results, degradation floors, and failover (chaos suite).

Every scenario is fully deterministic — the :class:`FaultInjector`
draws from hashes of ``(seed, node, op)`` — so the suite doubles as the
determinism check: :class:`TestDeterminism` replays a whole chaos
scenario and asserts byte-identical outcomes.
"""

import numpy as np
import pytest

from repro.core import EngineConfig
from repro.distributed import (
    DistributedSearchSystem,
    FaultInjector,
    FaultSpec,
    HealthPolicy,
    HealthTracker,
    NodeHealth,
    Request,
    RetryPolicy,
    SearchNode,
    WebTier,
)
from repro.errors import (
    DegradedClusterError,
    NodeDownError,
    TransientNodeError,
)
from tests.conftest import make_descriptors, noisy_copy

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


def descriptors(count, base=400):
    return {i: make_descriptors(32, seed=base + i) for i in range(count)}


def build_cluster(n_nodes, n_refs, *, injector=None, **kwargs):
    system = DistributedSearchSystem(n_nodes, CFG, fault_injector=injector, **kwargs)
    descs = descriptors(n_refs)
    for i in range(n_refs):
        system.add(f"r{i}", descs[i])
    return system, descs


class TestHealthTracker:
    def test_degradation_and_down_thresholds(self):
        tracker = HealthTracker(HealthPolicy(degraded_after=1, down_after=3))
        assert tracker.state is NodeHealth.UP
        assert tracker.record_failure() is NodeHealth.DEGRADED
        assert tracker.record_failure() is NodeHealth.DEGRADED
        assert tracker.record_failure() is NodeHealth.DOWN
        assert not tracker.is_serving

    def test_success_resets_streak_but_not_down(self):
        tracker = HealthTracker(HealthPolicy(degraded_after=1, down_after=2))
        tracker.record_failure()
        assert tracker.record_success() is NodeHealth.UP
        assert tracker.consecutive_failures == 0
        tracker.record_crash()
        assert tracker.record_success() is NodeHealth.DOWN  # sticky
        assert tracker.revive() is NodeHealth.UP

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(degraded_after=0)
        with pytest.raises(ValueError):
            HealthPolicy(degraded_after=3, down_after=2)


class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(slow_multiplier=0.5)

    def test_deterministic_draws(self):
        spec = FaultSpec(transient_rate=0.3)
        a, b = FaultInjector(spec, seed=5), FaultInjector(spec, seed=5)

        def sequence(injector):
            outcomes = []
            for _ in range(50):
                try:
                    injector.on_node_op("gpu-00")
                    outcomes.append("ok")
                except TransientNodeError:
                    outcomes.append("transient")
            return outcomes

        seq_a, seq_b = sequence(a), sequence(b)
        assert seq_a == seq_b
        assert "transient" in seq_a and "ok" in seq_a
        assert sequence(FaultInjector(spec, seed=6)) != seq_a

    def test_explicit_and_scheduled_crashes(self):
        injector = FaultInjector(seed=0)
        injector.crash("gpu-00")
        with pytest.raises(NodeDownError):
            injector.on_node_op("gpu-00")
        injector.revive("gpu-00")
        assert injector.on_node_op("gpu-00") == 1.0
        injector.crash_after("gpu-00", 2)
        assert injector.on_node_op("gpu-00") == 1.0
        with pytest.raises(NodeDownError):
            injector.on_node_op("gpu-00")
        assert injector.is_crashed("gpu-00")

    def test_slow_node_multiplier(self):
        injector = FaultInjector(FaultSpec(slow_rate=1.0, slow_multiplier=8.0), seed=1)
        assert injector.on_node_op("gpu-00") == 8.0

    def test_blob_loss_is_permanent(self):
        injector = FaultInjector(FaultSpec(blob_loss_rate=0.5), seed=3)
        keys = [f"feature:r{i}" for i in range(40)]
        first = [injector.on_kv_get(k) for k in keys]
        assert any(first) and not all(first)
        assert [injector.on_kv_get(k) for k in keys] == [
            True if lost else injector.on_kv_get(k) for k, lost in zip(keys, first)
        ]
        assert all(injector.on_kv_get(k) for k, lost in zip(keys, first) if lost)


class TestNodeFaultGating:
    def test_down_node_refuses_search(self):
        node = SearchNode("n0", CFG)
        node.add("r0", make_descriptors(32, seed=1))
        node.health.record_crash()
        with pytest.raises(NodeDownError):
            node.search(make_descriptors(32, seed=2))

    def test_slow_fault_scales_elapsed(self):
        descs = make_descriptors(32, seed=1)
        fast, slow = SearchNode("n0", CFG), SearchNode("n0", CFG)
        for node in (fast, slow):
            node.add("r0", descs)
        slow.fault_injector = FaultInjector(
            FaultSpec(slow_rate=1.0, slow_multiplier=8.0), seed=0
        )
        query = noisy_copy(descs, 8.0, seed=2)
        assert slow.search(query).elapsed_us == pytest.approx(
            8.0 * fast.search(query).elapsed_us
        )

    def test_heartbeat_discovers_injected_crash(self):
        node = SearchNode("n0", CFG)
        injector = FaultInjector(seed=0)
        node.fault_injector = injector
        assert node.heartbeat()["state"] == "up"
        injector.crash("n0")
        beat = node.heartbeat()  # no live traffic needed
        assert beat["state"] == "down"
        assert node.health.state is NodeHealth.DOWN


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.9)

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_us=100.0, backoff_multiplier=2.0)
        assert [policy.backoff_for(i) for i in range(3)] == [100.0, 200.0, 400.0]

    def test_transient_faults_are_retried_to_success(self):
        injector = FaultInjector(FaultSpec(transient_rate=0.4), seed=11)
        system, descs = build_cluster(
            3, 6, injector=injector,
            retry_policy=RetryPolicy(max_attempts=8, backoff_us=500.0),
            # lenient policy: flaky-but-alive nodes must not be declared
            # dead while the retry loop is still willing to try them
            health_policy=HealthPolicy(degraded_after=1, down_after=8),
        )
        query = noisy_copy(descs[4], 8.0, seed=3)
        total_retries = 0
        for _ in range(6):
            result = system.search(query)
            assert result.best().reference_id == "r4"
            assert not result.partial
            total_retries += result.retries
        assert total_retries > 0
        assert injector.injected["transient"] == total_retries

    def test_timeout_skips_chronically_slow_node(self):
        system, descs = build_cluster(2, 4)
        query = noisy_copy(descs[0], 8.0, seed=5)
        baseline = max(r.elapsed_us for r in system.search(query).per_node.values())
        injector = FaultInjector(FaultSpec(slow_rate=1.0, slow_multiplier=16.0), seed=0)
        system2, descs2 = build_cluster(
            2, 4, injector=injector,
            retry_policy=RetryPolicy(max_attempts=2, timeout_us=baseline * 2),
            auto_failover=False,
        )
        result = system2.search(noisy_copy(descs2[0], 8.0, seed=5))
        # every node hit the timeout on every attempt: nothing searched
        assert result.partial
        assert sorted(result.unsearched_shards) == ["gpu-00", "gpu-01"]
        assert result.images_searched == 0
        # time charged: per attempt the timeout budget, plus one backoff
        expected = 2 * baseline * 2 + RetryPolicy().backoff_us
        assert result.elapsed_us == pytest.approx(expected + 2000.0)
        assert all(n.health.state is not NodeHealth.UP for n in system2.nodes)


class TestPartialResultsAndFailover:
    def test_crash_yields_partial_then_failover_heals(self):
        injector = FaultInjector(seed=0)
        system, descs = build_cluster(4, 8, injector=injector)
        query = noisy_copy(descs[1], 8.0, seed=7)
        baseline = system.search(query)
        assert not baseline.partial

        injector.crash("gpu-01")
        degraded = system.search(query)
        assert degraded.partial
        assert degraded.unsearched_shards == ["gpu-01"]
        assert degraded.images_searched == 6
        # auto-failover already decommissioned the dead container
        assert [n.node_id for n in system.nodes] == ["gpu-00", "gpu-02", "gpu-03"]

        healed = system.search(query)
        assert not healed.partial
        assert healed.images_searched == 8
        assert healed.best().reference_id == baseline.best().reference_id == "r1"

    def test_min_shard_fraction_floor(self):
        injector = FaultInjector(seed=0)
        system, descs = build_cluster(
            2, 4, injector=injector, min_shard_fraction=1.0, auto_failover=False
        )
        injector.crash("gpu-00")
        with pytest.raises(DegradedClusterError):
            system.search(noisy_copy(descs[0], 8.0, seed=5))

    def test_lost_blob_degrades_failover(self):
        injector = FaultInjector(seed=0)
        system, descs = build_cluster(3, 6, injector=injector)
        victims = [ref for ref, owner in system._placement.items() if owner == "gpu-01"]
        injector.lose_blob(f"feature:{victims[0]}")
        injector.crash("gpu-01")
        system.search(noisy_copy(descs[0], 8.0, seed=5))  # triggers failover
        # the re-hydratable reference moved; the lost one was dropped
        assert not system.has(victims[0])
        assert all(system.has(ref) for ref in victims[1:])
        assert system.n_references == 5
        healed = system.search(noisy_copy(descs[0], 8.0, seed=5))
        assert not healed.partial
        assert healed.images_searched == 5

    def test_search_many_partial_under_crash(self):
        injector = FaultInjector(seed=0)
        system, descs = build_cluster(3, 6, injector=injector, auto_failover=False)
        injector.crash("gpu-02")
        queries = [noisy_copy(descs[0], 8.0, seed=8), noisy_copy(descs[1], 8.0, seed=9)]
        grouped = system.search_many(queries)
        for res in grouped:
            assert res.partial
            assert res.unsearched_shards == ["gpu-02"]
            assert res.images_searched == 4
        assert grouped[0].best().reference_id == "r0"
        assert grouped[1].best().reference_id == "r1"


class TestHealthApi:
    def test_rest_health_route(self):
        injector = FaultInjector(seed=0)
        system, _descs = build_cluster(2, 4, injector=injector, auto_failover=False)
        tier = WebTier(system)
        response = tier.health()
        assert response.status == 200 and response.body["status"] == "up"

        injector.crash("gpu-00")
        system.heartbeats()  # monitor sweep discovers the crash
        response = tier.health()
        assert response.status == 200 and response.body["status"] == "degraded"
        states = {b["node_id"]: b["state"] for b in response.body["nodes"]}
        assert states == {"gpu-00": "down", "gpu-01": "up"}

        injector.crash("gpu-01")
        system.heartbeats()
        response = tier.health()
        assert response.status == 503 and response.body["status"] == "down"

    def test_search_route_reports_partial(self):
        injector = FaultInjector(seed=0)
        system, descs = build_cluster(3, 6, injector=injector)
        tier = WebTier(system)
        injector.crash("gpu-01")
        record = tier.handle(
            Request(
                "POST", "/search",
                {"descriptors": noisy_copy(descs[0], 8.0, seed=5).tolist()},
            )
        )
        assert record.response.status == 200
        assert record.response.body["partial"] is True
        assert record.response.body["unsearched_shards"] == ["gpu-01"]

    def test_search_route_degraded_is_503(self):
        injector = FaultInjector(seed=0)
        system, descs = build_cluster(
            2, 4, injector=injector, min_shard_fraction=1.0, auto_failover=False
        )
        tier = WebTier(system)
        injector.crash("gpu-00")
        record = tier.handle(
            Request(
                "POST", "/search",
                {"descriptors": noisy_copy(descs[0], 8.0, seed=5).tolist()},
            )
        )
        assert record.response.status == 503
        assert "min_shard_fraction" in record.response.body["error"]


def run_chaos_scenario(seed):
    """The acceptance scenario: a 14-container cluster loses 3 nodes
    mid-workload.  Returns a structured outcome for replay comparison."""
    injector = FaultInjector(FaultSpec(transient_rate=0.05), seed=seed)
    system, descs = build_cluster(
        14, 28, injector=injector,
        retry_policy=RetryPolicy(max_attempts=4, backoff_us=500.0),
        min_shard_fraction=0.5,
    )
    queries = {i: noisy_copy(descs[i], 8.0, seed=100 + i) for i in (3, 11, 19)}
    baseline = {i: system.search(q).best().reference_id for i, q in queries.items()}

    injector.crash("gpu-02", "gpu-06", "gpu-11")
    outcomes = []
    for i, query in queries.items():
        result = system.search(query)
        outcomes.append(
            {
                "query": i,
                "partial": result.partial,
                "unsearched": sorted(result.unsearched_shards),
                "images": result.images_searched,
                "best": result.best().reference_id,
                "retries": result.retries,
            }
        )
    after = {i: system.search(q) for i, q in queries.items()}
    return {
        "baseline": baseline,
        "outcomes": outcomes,
        "healed": {
            i: (r.partial, r.images_searched, r.best().reference_id)
            for i, r in after.items()
        },
        "nodes": [n.node_id for n in system.nodes],
        "references": system.n_references,
        "injected": dict(system.fault_injector.injected),
    }


@pytest.mark.chaos
class TestChaos:
    def test_three_of_fourteen_crash_mid_workload(self):
        """Acceptance: crashes leave searches partial but successful, at
        least min_shard_fraction of shards searched; failover + KV
        re-hydration restore full, baseline-identical answers."""
        outcome = run_chaos_scenario(seed=2024)
        first = outcome["outcomes"][0]
        assert first["partial"]
        assert first["unsearched"] == ["gpu-02", "gpu-06", "gpu-11"]
        # 11 of 14 shards (2 refs each) answered: >= the 0.5 floor
        assert first["images"] == 22
        for later in outcome["outcomes"][1:]:
            # failover after the first search healed the cluster
            assert not later["partial"]
            assert later["images"] == 28
        for entry, (i, baseline_best) in zip(
            outcome["outcomes"], outcome["baseline"].items()
        ):
            assert entry["best"] == baseline_best == f"r{i}"
        # full reference set back, spread over the 11 survivors
        assert outcome["references"] == 28
        assert len(outcome["nodes"]) == 11
        healed = outcome["healed"]
        assert all(not partial for partial, _, _ in healed.values())
        assert all(images == 28 for _, images, _ in healed.values())
        assert {best for _, _, best in healed.values()} == {"r3", "r11", "r19"}


@pytest.mark.chaos
class TestDeterminism:
    def test_chaos_scenario_replays_identically(self):
        """The deterministic-seed check: the whole chaos scenario, run
        twice, produces identical outcomes — flakiness cannot creep in."""
        assert run_chaos_scenario(seed=7) == run_chaos_scenario(seed=7)

    def test_different_seeds_diverge(self):
        a = run_chaos_scenario(seed=1)["injected"]
        b = run_chaos_scenario(seed=2)["injected"]
        assert a != b  # transient draws differ seed to seed
