"""Baselines (OpenCV CUDA, Garcia cuBLAS) and efficiency metrics."""

import numpy as np
import pytest

from repro.baselines import (
    garcia_knn_match,
    garcia_memory_bytes,
    make_prepared,
    opencv_knn_match,
    opencv_memory_bytes,
    opencv_search_time_us,
)
from repro.core import knn_algorithm1, prepare_query, prepare_reference
from repro.gpusim import GPUDevice, TESLA_P100, TESLA_V100
from repro.metrics import gemm_flops_per_image, gpu_efficiency, schedule_efficiency
from tests.conftest import make_descriptors, noisy_copy


class TestOpencvBaseline:
    def test_results_match_algorithm1(self, p100):
        ref_d = make_descriptors(24, seed=0)
        qry_d = noisy_copy(ref_d, 20.0, seed=1)
        baseline = opencv_knn_match(p100, ref_d, qry_d)
        ref = prepare_reference(ref_d, "fp32")
        qry = prepare_query(p100, qry_d, "fp32")
        ours = knn_algorithm1(p100, ref, qry)
        np.testing.assert_allclose(baseline.distances, ours.distances, atol=0.5)
        np.testing.assert_array_equal(baseline.indices, ours.indices)

    def test_paper_speed_p100(self, p100):
        """Table 1: OpenCV CUDA = 2,012 img/s on P100."""
        total = opencv_search_time_us(p100)
        assert 1e6 / total == pytest.approx(2012, rel=0.05)

    def test_paper_speed_v100(self, v100):
        """Sec. 3.3: 2,937 img/s on V100 (we accept a wider band)."""
        total = opencv_search_time_us(v100)
        assert 1e6 / total == pytest.approx(2937, rel=0.25)

    def test_memory_matches_table1(self):
        assert opencv_memory_bytes(10_000) / 1e6 == pytest.approx(4271, rel=0.01)

    def test_validation(self, p100):
        with pytest.raises(ValueError):
            opencv_knn_match(p100, np.ones((4, 3), np.float32), np.ones((5, 3), np.float32))
        with pytest.raises(ValueError):
            opencv_memory_bytes(-1)


class TestGarciaBaseline:
    def test_functionally_identical_to_ours(self, p100):
        ref_d = make_descriptors(16, seed=2)
        qry_d = noisy_copy(ref_d, 20.0, seed=3)
        ref = make_prepared(ref_d, "fp32")
        qry = prepare_query(p100, qry_d, "fp32")
        garcia = garcia_knn_match(p100, ref, qry)
        ours = knn_algorithm1(p100, ref, qry, sort_kind="scan")
        np.testing.assert_allclose(garcia.distances, ours.distances)

    def test_memory_matches_table1(self):
        assert garcia_memory_bytes(10_000, precision="fp32") / 1e6 == pytest.approx(4307, rel=0.01)
        assert garcia_memory_bytes(10_000, precision="fp16") / 1e6 == pytest.approx(2307, rel=0.01)


class TestEfficiencyMetrics:
    def test_flops_per_image(self):
        assert gemm_flops_per_image(768, 768, 128) == 2 * 768 * 768 * 128

    def test_table4_p100_row(self):
        """45,539 img/s on P100 => ~6.7-6.9 TFLOPS => ~36% of 18.7.

        (The paper's own cells are ~3% inconsistent: 45,539 x 2mnd is
        6.88 TFLOPS, its table prints 6.69 — we allow that slack.)
        """
        report = gpu_efficiency(TESLA_P100, 45539)
        assert report.achieved_tflops == pytest.approx(6.69, rel=0.04)
        assert report.efficiency == pytest.approx(0.358, rel=0.04)

    def test_table4_v100_tensor_core_row(self):
        report = gpu_efficiency(TESLA_V100, 86519, tensor_core=True)
        assert report.efficiency == pytest.approx(0.114, rel=0.03)

    def test_schedule_efficiency(self):
        assert schedule_efficiency(41546, 47592) == pytest.approx(0.873, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            gemm_flops_per_image(0, 1, 1)
        with pytest.raises(ValueError):
            gpu_efficiency(TESLA_P100, -1)
        with pytest.raises(ValueError):
            schedule_efficiency(1.0, 0.0)
