"""CLI flag coverage and experiment-result formatting details."""

import pytest

from repro.bench.run import build_parser, main as bench_main
from repro.bench.tables import ExperimentResult, fmt


class TestCliFlags:
    def test_bricks_flag_reaches_table7(self, capsys):
        assert bench_main(["table7", "--quick", "--bricks", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out

    def test_all_expands(self):
        parser = build_parser()
        args = parser.parse_args(["all", "--quick"])
        assert args.experiments == ["all"]
        assert args.quick

    def test_queries_flag_parsed(self):
        args = build_parser().parse_args(["table7", "--queries", "3"])
        assert args.queries == 3

    def test_device_sweep_runs(self, capsys):
        assert bench_main(["device-sweep"]) == 0
        assert "Device sweep" in capsys.readouterr().out


class TestFormatting:
    def test_fmt_variants(self):
        assert fmt(None) == "None"
        assert fmt(True) == "True"
        assert fmt(12345) == "12,345"
        assert fmt(12345.6) == "12,346"
        assert fmt(1.2345) == "1.23"
        assert fmt(0.0) == "0"
        assert fmt("text") == "text"

    def test_to_text_includes_notes_and_summary(self):
        result = ExperimentResult(
            "title", ["a"], [[1]], notes=["a note"], summary={"k": 2.0}
        )
        text = result.to_text()
        assert "note: a note" in text
        assert "summary: k=2.00" in text
