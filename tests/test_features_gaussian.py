"""Gaussian filtering and pyramid construction."""

import numpy as np
import pytest
from scipy import ndimage

from repro.features import build_gaussian_pyramid, gaussian_blur, gaussian_kernel1d


class TestKernel:
    def test_normalised(self):
        k = gaussian_kernel1d(1.6)
        assert k.sum() == pytest.approx(1.0, abs=1e-6)

    def test_symmetric(self):
        k = gaussian_kernel1d(2.0)
        np.testing.assert_allclose(k, k[::-1])

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel1d(0.0)

    def test_radius_override(self):
        assert len(gaussian_kernel1d(1.0, radius=3)) == 7


class TestBlur:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        img = rng.random((40, 56)).astype(np.float32)
        ours = gaussian_blur(img, 2.0)
        ref = ndimage.gaussian_filter(img, 2.0, mode="mirror", truncate=4.0)
        np.testing.assert_allclose(ours, ref, atol=1e-4)

    def test_preserves_mean_roughly(self):
        rng = np.random.default_rng(1)
        img = rng.random((64, 64)).astype(np.float32)
        blurred = gaussian_blur(img, 3.0)
        assert blurred.mean() == pytest.approx(img.mean(), rel=0.02)

    def test_constant_image_fixed_point(self):
        img = np.full((32, 32), 0.7, np.float32)
        np.testing.assert_allclose(gaussian_blur(img, 1.6), 0.7, atol=1e-5)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            gaussian_blur(np.zeros((4, 4, 3), np.float32), 1.0)


class TestPyramid:
    def test_octave_structure(self):
        img = np.random.default_rng(2).random((128, 128)).astype(np.float32)
        pyr = build_gaussian_pyramid(img, intervals=3)
        assert pyr.n_octaves >= 3
        for octave in pyr.octaves:
            assert len(octave) == 3 + 3  # intervals + 3

    def test_downsampling_between_octaves(self):
        img = np.random.default_rng(3).random((128, 128)).astype(np.float32)
        pyr = build_gaussian_pyramid(img)
        for o in range(1, pyr.n_octaves):
            assert pyr.octaves[o][0].shape[0] == pyr.octaves[o - 1][0].shape[0] // 2

    def test_scale_bookkeeping(self):
        img = np.zeros((64, 64), np.float32)
        pyr = build_gaussian_pyramid(img, sigma0=1.6, intervals=3)
        assert pyr.scale_of(0, 0) == pytest.approx(1.6)
        assert pyr.scale_of(0, 3) == pytest.approx(3.2)
        assert pyr.scale_of(1, 0) == pytest.approx(3.2)
        assert pyr.octave_scale(1, 0) == pytest.approx(1.6)

    def test_blur_increases_within_octave(self):
        rng = np.random.default_rng(4)
        img = rng.random((64, 64)).astype(np.float32)
        pyr = build_gaussian_pyramid(img)
        variances = [float(level.var()) for level in pyr.octaves[0]]
        assert variances == sorted(variances, reverse=True)

    def test_min_size_stops_octaves(self):
        img = np.zeros((40, 40), np.float32)
        pyr = build_gaussian_pyramid(img, min_size=16)
        assert min(pyr.octaves[-1][0].shape) >= 16

    def test_invalid_params(self):
        img = np.zeros((32, 32), np.float32)
        with pytest.raises(ValueError):
            build_gaussian_pyramid(img, intervals=0)
        with pytest.raises(ValueError):
            build_gaussian_pyramid(img, sigma0=0.3)  # below camera blur
