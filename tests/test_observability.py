"""Unified observability layer: metrics registry, request tracing,
Perfetto export, REST scrape, and serving meters equivalence."""

import json

import numpy as np
import pytest

from repro.core import EngineConfig, TextureSearchEngine
from repro.distributed import DistributedSearchSystem, Request, WebTier
from repro.gpusim import GPUDevice, TESLA_P100, TimelineTracer
from repro.obs import (
    MetricsRegistry,
    RequestTracer,
    default_registry,
    default_tracer,
    to_perfetto,
)
from repro.obs.smoke import parse_prometheus, run_smoke
from repro.serving import (
    BatchPolicy,
    FusedEngineExecutor,
    ServingReport,
    build_trace,
    simulate_serving,
)
from tests.conftest import make_descriptors, noisy_copy

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


class TestMetricsRegistry:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "ops", ("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc(2)
        c.labels(kind="b").inc()
        assert reg.value("ops_total", kind="a") == 3
        assert reg.value("ops_total", kind="b") == 1
        assert reg.value("ops_total", kind="missing") == 0

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x")
        b = reg.counter("x_total", "x")
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x")  # same name, different type

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert reg.value("depth") == 4

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_us", "latency", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.mean == pytest.approx(555.5 / 4)

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("y_total", "y", ("k",))
        child = c.labels(k="v")
        child.inc(7)
        reg.reset()
        assert reg.value("y_total", k="v") == 0
        child.inc()  # pre-bound child still wired to the registry view
        assert reg.value("y_total", k="v") == 1

    def test_disable_is_a_kill_switch(self):
        reg = MetricsRegistry()
        c = reg.counter("z_total", "z")
        reg.disable()
        c.inc()
        assert reg.value("z_total") == 0
        reg.enable()
        c.inc()
        assert reg.value("z_total") == 1

    def test_json_snapshot_roundtrips(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a").inc()
        reg.histogram("b_us", "b", buckets=(1.0,)).observe(2.0)
        payload = json.loads(reg.to_json())
        assert payload["a_total"]["type"] == "counter"
        assert payload["b_us"]["type"] == "histogram"

    def test_prometheus_exposition_parses(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", ("route",)).labels(route="search").inc(3)
        reg.gauge("depth", "queue").set(2)
        h = reg.histogram("lat_us", "latency", buckets=(10.0, 100.0))
        h.observe(5.0)
        h.observe(50.0)
        samples = parse_prometheus(reg.to_prometheus())
        assert samples['req_total{route="search"}'] == 3
        assert samples["depth"] == 2
        assert samples['lat_us_bucket{le="10"}'] == 1
        assert samples['lat_us_bucket{le="100"}'] == 2
        assert samples['lat_us_bucket{le="+Inf"}'] == 2
        assert samples["lat_us_count"] == 2
        assert samples["lat_us_sum"] == 55


class TestRequestTracer:
    def test_disabled_tracer_yields_none(self):
        tracer = RequestTracer()
        with tracer.span("op") as span:
            assert span is None
        assert tracer.spans == []

    def test_spans_nest_within_parents(self):
        tracer = RequestTracer()
        tracer.enable()
        with tracer.span("outer", layer="web"):
            with tracer.span("mid", layer="cluster"):
                with tracer.span("inner", layer="engine"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        outer, mid, inner = by_name["outer"], by_name["mid"], by_name["inner"]
        assert outer.trace_id == mid.trace_id == inner.trace_id
        assert (mid.parent_id, inner.parent_id) == (outer.span_id, mid.span_id)
        assert (outer.depth, mid.depth, inner.depth) == (0, 1, 2)
        # temporal containment: each child strictly inside its parent
        assert outer.start_us <= mid.start_us <= inner.start_us
        assert inner.end_us <= mid.end_us <= outer.end_us

    def test_sibling_roots_get_distinct_traces(self):
        tracer = RequestTracer()
        tracer.enable()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert len(tracer.traces()) == 2

    def test_annotate_hits_active_span(self):
        tracer = RequestTracer()
        tracer.enable()
        with tracer.span("op"):
            tracer.annotate(items=4)
        assert tracer.spans[0].attrs["items"] == 4

    def test_perfetto_roundtrips_json(self):
        tracer = RequestTracer()
        tracer.enable()
        with tracer.span("outer", layer="web"):
            with tracer.span("inner", layer="engine"):
                pass
        payload = json.loads(tracer.to_perfetto())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        assert all(e["pid"] == 1 for e in events)

    def test_perfetto_merges_engine_events(self):
        tracer = RequestTracer()
        tracer.enable()
        device = GPUDevice(TESLA_P100)
        timeline = TimelineTracer()
        with timeline.attached(device):
            with tracer.span("request", layer="web"):
                device.submit("compute", 5.0, step="GEMM")
        payload = json.loads(to_perfetto(tracer.spans, timeline.events))
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert pids == {1, 2}
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"requests", "device"}


def _small_system(n_refs=6):
    system = DistributedSearchSystem(2, CFG)
    descs = {i: make_descriptors(32, seed=2200 + i) for i in range(n_refs)}
    for i, d in descs.items():
        system.add(f"r{i}", d)
    return system, descs


class TestCrossTierTracing:
    def test_group_of_one_matches_plain_search(self):
        """A fused group of one must walk the same engine/cache span
        structure as a plain search — the executor paths converged."""
        system, descs = _small_system()
        tracer = default_tracer()
        tracer.enable()
        query = noisy_copy(descs[1], 8.0, seed=21)
        system.search(query)
        system.search_group([query])
        shapes = [tracer.trace_shape(t) for t in tracer.traces()]
        assert len(shapes) == 2
        inner = [
            [(d, layer, name) for d, layer, name in shape
             if layer in ("engine", "cache")]
            for shape in shapes
        ]
        assert inner[0] == inner[1]
        assert inner[0], "no engine/cache spans recorded"

    def test_webtier_trace_nests_five_layers(self):
        system, descs = _small_system()
        tier = WebTier(system, n_workers=1)
        tracer = default_tracer()
        tracer.enable()
        query = noisy_copy(descs[0], 8.0, seed=22).tolist()
        response = tier.handle(
            Request("POST", "/search", {"descriptors": query})
        ).response
        assert response.ok
        (trace_id,) = tracer.traces().keys()
        shape = tracer.trace_shape(trace_id)
        layers_by_depth = {d: layer for d, layer, _ in shape}
        assert layers_by_depth[0] == "web"
        assert layers_by_depth[1] == "cluster"
        assert layers_by_depth[2] == "node"
        assert layers_by_depth[3] == "engine"
        assert layers_by_depth[4] == "cache"

    def test_smoke_module(self, tmp_path):
        summary = run_smoke(str(tmp_path / "trace.json"))
        assert summary["max_depth"] >= 5
        assert (tmp_path / "trace.json").exists()

    def test_metrics_route_scrapes_registry(self):
        system, descs = _small_system()
        tier = WebTier(system, n_workers=1)
        system.search(noisy_copy(descs[0], 8.0, seed=23))
        scrape = tier.handle(Request("GET", "/metrics")).response
        assert scrape.ok
        assert scrape.body["content_type"].startswith("text/plain")
        samples = parse_prometheus(scrape.body["text"])
        assert samples['repro_cluster_searches_total{kind="single"}'] == 1
        hits = samples.get('repro_cache_sweep_lookups_total{result="hit"}', 0)
        misses = samples.get('repro_cache_sweep_lookups_total{result="miss"}', 0)
        assert hits + misses > 0


class TestServingMeters:
    def _report(self):
        rng = np.random.default_rng(3)
        engine = TextureSearchEngine(CFG)
        descs = [make_descriptors(32, seed=2300 + i) for i in range(4)]
        for i, d in enumerate(descs):
            engine.add_reference(f"r{i}", d)
        queries = [
            noisy_copy(descs[int(rng.integers(0, 4))], 8.0, seed=i)
            for i in range(9)
        ]
        arrivals = [float(i * 100) for i in range(9)]
        return simulate_serving(
            FusedEngineExecutor(engine),
            build_trace(arrivals, queries),
            BatchPolicy(max_batch=4, max_wait_us=500.0),
        )

    def test_meters_match_record_recomputation_bitwise(self):
        report = self._report()
        assert report.meters is not None
        recomputed = ServingReport(
            policy=report.policy, records=report.records, groups=report.groups
        )
        # equivalence must be exact, not approximate: the meters path
        # replaces the records path without moving any reported figure
        assert report.mean_group_size == recomputed.mean_group_size
        assert report.fused_occupancy == recomputed.fused_occupancy
        assert report.meters.group_size.count == len(report.groups)

    def test_peak_queue_depth_tracked(self):
        report = self._report()
        assert report.peak_queue_depth >= 1
        assert report.to_dict()["peak_queue_depth"] == report.peak_queue_depth

    def test_queue_depth_gauge_settles_to_zero_after_drain(self):
        # the loop's final observation: once every request has been
        # dispatched the gauge must read an empty queue, not whatever
        # depth the last group left behind
        report = self._report()
        assert default_registry().value("repro_serving_queue_depth") == 0.0
        assert report.meters.peak_queue_depth >= 1

    def test_serving_registry_series(self):
        reg = default_registry()
        self._report()
        assert reg.value("repro_serving_requests_total") == 9
        size = reg.value("repro_serving_groups_total", trigger="size")
        timeout = reg.value("repro_serving_groups_total", trigger="timeout")
        assert size + timeout >= 3  # 9 requests, groups of <= 4
