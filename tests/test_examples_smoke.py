"""Smoke tests: the fast examples must run end to end.

(The two image-pipeline examples — product_traceability and
surf_material_authentication — take minutes of real SIFT/SURF work and
are exercised by the integration tests at reduced scale instead.)
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name",
    ["quickstart.py", "capacity_planning.py", "fp16_tuning.py", "distributed_search.py"],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
    assert "Traceback" not in out
