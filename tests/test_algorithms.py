"""Algorithms 1 and 2: numerical correctness and cross-consistency."""

import numpy as np
import pytest

from repro.core import knn_algorithm1, knn_algorithm2, prepare_query, prepare_reference
from repro.errors import HalfPrecisionOverflowError
from repro.features import rootsift
from repro.fp16 import pairwise_distances
from tests.conftest import make_descriptors, noisy_copy


class TestPrepare:
    def test_reference_norms(self):
        prep = prepare_reference(make_descriptors(8, seed=0), "fp32")
        np.testing.assert_allclose(prep.norms, 512.0**2, rtol=1e-4)

    def test_fp16_requires_safe_scale(self):
        with pytest.raises(HalfPrecisionOverflowError):
            prepare_reference(make_descriptors(4, seed=1), "fp16", scale=1.0)
        prep = prepare_reference(make_descriptors(4, seed=1), "fp16", scale=2.0**-7)
        assert prep.values.dtype == np.float16

    def test_query_charges_device(self, p100):
        prepare_query(p100, make_descriptors(4, seed=2), "fp32")
        assert p100.elapsed_us() > 0

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            prepare_reference(make_descriptors(2), "int8")


class TestAlgorithm1:
    def test_fp32_distances_exact(self, p100):
        ref_d = make_descriptors(32, seed=3)
        qry_d = noisy_copy(ref_d, 20.0, seed=4)
        ref = prepare_reference(ref_d, "fp32")
        qry = prepare_query(p100, qry_d, "fp32")
        knn = knn_algorithm1(p100, ref, qry, k=2)
        exact = pairwise_distances(ref_d, qry_d)
        expected = np.sort(exact, axis=0)[:2]
        np.testing.assert_allclose(knn.distances, expected, rtol=1e-4, atol=1e-2)

    def test_indices_point_to_nearest(self, p100):
        ref_d = make_descriptors(16, seed=5)
        ref = prepare_reference(ref_d, "fp32")
        qry = prepare_query(p100, ref_d, "fp32")  # query itself
        knn = knn_algorithm1(p100, ref, qry, k=2)
        np.testing.assert_array_equal(knn.indices[0], np.arange(16))
        # catastrophic cancellation of the 512^2-magnitude norm terms
        # leaves ~0.1-unit noise on a 512-norm scale — still "zero"
        np.testing.assert_allclose(knn.distances[0], 0.0, atol=0.5)

    def test_fp16_close_to_fp32(self, p100):
        ref_d = make_descriptors(24, seed=6)
        qry_d = noisy_copy(ref_d, 30.0, seed=7)
        scale = 2.0**-7
        ref32 = prepare_reference(ref_d, "fp32")
        qry32 = prepare_query(p100, qry_d, "fp32")
        knn32 = knn_algorithm1(p100, ref32, qry32)
        ref16 = prepare_reference(ref_d, "fp16", scale)
        qry16 = prepare_query(p100, qry_d, "fp16", scale)
        knn16 = knn_algorithm1(p100, ref16, qry16)
        mask = knn32.distances > 1.0
        rel = np.abs(knn32.distances[mask] - knn16.distances[mask]) / knn32.distances[mask]
        assert rel.mean() < 0.01

    def test_insertion_and_scan_agree(self, p100):
        ref_d = make_descriptors(20, seed=8)
        qry_d = noisy_copy(ref_d, 25.0, seed=9)
        ref = prepare_reference(ref_d, "fp32")
        qry = prepare_query(p100, qry_d, "fp32")
        a = knn_algorithm1(p100, ref, qry, sort_kind="scan")
        b = knn_algorithm1(p100, ref, qry, sort_kind="insertion")
        np.testing.assert_allclose(a.distances, b.distances)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_profiler_has_paper_steps(self, p100):
        ref = prepare_reference(make_descriptors(8, seed=10), "fp32")
        qry = prepare_query(p100, make_descriptors(8, seed=11), "fp32")
        knn_algorithm1(p100, ref, qry)
        steps = p100.profiler.as_dict()
        for name in ("GEMM", "add N_R", "Top-2 sort", "add N_Q + sqrt", "D2H copy"):
            assert name in steps, name

    def test_precision_mismatch(self, p100):
        ref = prepare_reference(make_descriptors(4, seed=12), "fp32")
        qry = prepare_query(p100, make_descriptors(4, seed=13), "fp16", 2.0**-7)
        with pytest.raises(ValueError, match="precision"):
            knn_algorithm1(p100, ref, qry)

    def test_scale_mismatch(self, p100):
        ref = prepare_reference(make_descriptors(4, seed=12), "fp16", 2.0**-7)
        qry = prepare_query(p100, make_descriptors(4, seed=13), "fp16", 2.0**-8)
        with pytest.raises(ValueError, match="scale"):
            knn_algorithm1(p100, ref, qry)

    def test_bad_sort_kind(self, p100):
        ref = prepare_reference(make_descriptors(4, seed=14), "fp32")
        qry = prepare_query(p100, make_descriptors(4, seed=15), "fp32")
        with pytest.raises(ValueError, match="sort_kind"):
            knn_algorithm1(p100, ref, qry, sort_kind="bubble")


class TestAlgorithm2:
    def _rootsift_batch(self, n_imgs, m, seed):
        return np.stack(
            [rootsift(make_descriptors(m, seed=seed + i)) for i in range(n_imgs)]
        )

    def test_matches_algorithm1_per_image(self, p100):
        batch = self._rootsift_batch(4, 16, seed=20)
        query = rootsift(noisy_copy(make_descriptors(16, seed=20) , 30.0, seed=99))
        result = knn_algorithm2(p100, batch, query, precision="fp32")
        for i in range(4):
            exact = pairwise_distances(batch[i], query)
            expected = np.sort(exact, axis=0)[:2]
            np.testing.assert_allclose(result.image(i).distances, expected, atol=1e-3)

    def test_fp16_scaled_distances(self, p100):
        scale = 0.25
        batch = self._rootsift_batch(3, 12, seed=30) * np.float32(scale)
        query = rootsift(make_descriptors(12, seed=30)) * np.float32(scale)
        result = knn_algorithm2(p100, batch.astype(np.float16), query.astype(np.float16),
                                scale=scale, precision="fp16")
        # image 0 contains the query's source features -> near-zero NN
        assert result.image(0).distances[0].max() < 0.1

    def test_unit_norm_identity_distance(self, p100):
        batch = self._rootsift_batch(1, 8, seed=40)
        result = knn_algorithm2(p100, batch, batch[0], precision="fp32")
        np.testing.assert_allclose(result.image(0).distances[0], 0.0, atol=1e-3)
        np.testing.assert_array_equal(result.image(0).indices[0], np.arange(8))

    def test_shapes(self, p100):
        batch = self._rootsift_batch(5, 10, seed=50)
        query = rootsift(make_descriptors(7, seed=60))
        result = knn_algorithm2(p100, batch, query, precision="fp32")
        assert result.distances.shape == (5, 2, 7)
        assert result.batch == 5

    def test_overflow_raises(self, p100):
        # unscaled 512-norm raw SIFT in the fp16 path must overflow
        batch = np.stack([make_descriptors(8, seed=70)])
        with pytest.raises(HalfPrecisionOverflowError):
            knn_algorithm2(p100, batch.astype(np.float16), make_descriptors(8, seed=70),
                           scale=1.0, precision="fp16")

    def test_validation(self, p100):
        with pytest.raises(ValueError, match="batch, d, m"):
            knn_algorithm2(p100, np.ones((4, 4), np.float32), np.ones((4, 4), np.float32))
        with pytest.raises(ValueError, match="does not match"):
            knn_algorithm2(p100, np.ones((2, 4, 4), np.float32), np.ones((5, 3), np.float32))
        with pytest.raises(ValueError, match="precision"):
            knn_algorithm2(p100, np.ones((2, 4, 4), np.float32), np.ones((4, 3), np.float32),
                           precision="int8")
