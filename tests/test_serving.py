"""Dynamic batching serving layer: admission policy, event loop,
determinism, fused-vs-serial throughput, and the REST batch route."""

import json

import numpy as np
import pytest

from tests.conftest import make_descriptors, noisy_copy
from repro.core import EngineConfig, TextureSearchEngine
from repro.errors import ExecutorContractError
from repro.distributed import (
    DistributedSearchSystem,
    FaultInjector,
    Request,
    WebTier,
    build_api,
)
from repro.serving import (
    BatchPolicy,
    ClusterGroupExecutor,
    DynamicBatcher,
    FusedEngineExecutor,
    SerialEngineExecutor,
    ServingRequest,
    WebTierBatchExecutor,
    build_trace,
    burst_arrivals,
    percentile,
    poisson_arrivals,
    simulate_serving,
)

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


def build_engine(n_refs=8, seed=0):
    engine = TextureSearchEngine(CFG)
    descs = [make_descriptors(CFG.n, seed=seed + i) for i in range(n_refs)]
    for i, desc in enumerate(descs):
        engine.add_reference(f"r{i}", desc)
    return engine, descs


def build_cluster(n_nodes=3, n_refs=6, injector=None, **kwargs):
    system = DistributedSearchSystem(n_nodes, CFG, fault_injector=injector, **kwargs)
    descs = [make_descriptors(CFG.n, seed=10 + i) for i in range(n_refs)]
    for i, desc in enumerate(descs):
        system.add(f"r{i}", desc)
    return system, descs


class StubExecutor:
    """Deterministic stand-in: 100us per query in the group, payloads
    echo the query objects."""

    def __init__(self, us_per_query=100.0):
        self.us_per_query = us_per_query
        self.groups = []

    def execute(self, queries):
        self.groups.append(list(queries))
        return list(queries), self.us_per_query * len(queries)


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_us=-1.0)

    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch == 8
        assert policy.max_wait_us == 0.0


class TestDynamicBatcher:
    def test_size_trigger(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_us=1e9))
        batcher.enqueue(ServingRequest(0, 0.0, "a"))
        assert batcher.trigger(0.0) is None
        batcher.enqueue(ServingRequest(1, 5.0, "b"))
        assert batcher.trigger(5.0) == "size"
        assert [r.query for r in batcher.take()] == ["a", "b"]
        assert len(batcher) == 0

    def test_timeout_trigger(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_us=100.0))
        batcher.enqueue(ServingRequest(0, 50.0, "a"))
        assert batcher.deadline_us() == 150.0
        assert batcher.trigger(149.0) is None
        assert batcher.trigger(150.0) == "timeout"

    def test_take_caps_at_max_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=3))
        for i in range(5):
            batcher.enqueue(ServingRequest(i, 0.0, i))
        assert [r.request_id for r in batcher.take()] == [0, 1, 2]
        assert len(batcher) == 2

    def test_empty_queue_never_triggers(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=1, max_wait_us=0.0))
        assert batcher.trigger(1e9) is None
        assert batcher.deadline_us() is None

    def test_trigger_exactly_at_deadline(self):
        # the boundary is inclusive: now == oldest arrival + max_wait_us
        # fires, one tick earlier does not
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_us=250.0))
        batcher.enqueue(ServingRequest(0, 100.0, "a"))
        deadline = batcher.deadline_us()
        assert deadline == 350.0
        assert batcher.trigger(deadline - 1e-9) is None
        assert batcher.trigger(deadline) == "timeout"

    def test_simultaneous_size_and_timeout_prefers_size(self):
        # queue is full *and* the oldest request's wait has elapsed at
        # the same instant: the size trigger wins the tie
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_us=100.0))
        batcher.enqueue(ServingRequest(0, 0.0, "a"))
        batcher.enqueue(ServingRequest(1, 100.0, "b"))
        assert batcher.trigger(100.0) == "size"

    def test_drop_oldest_evicts_the_queue_head(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=8))
        for i in range(3):
            batcher.enqueue(ServingRequest(i, float(i), i))
        evicted = batcher.drop_oldest()
        assert evicted.request_id == 0
        assert len(batcher) == 2
        assert [r.request_id for r in batcher.take()] == [1, 2]


class TestEventLoop:
    def test_size_bound_groups(self):
        stub = StubExecutor()
        trace = build_trace([0.0, 0.0, 0.0, 0.0], list("abcd"))
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=2, max_wait_us=1e6))
        assert [g.size for g in report.groups] == [2, 2]
        assert all(g.trigger == "size" for g in report.groups)
        # second group waits for the first to release the device
        assert report.groups[1].launched_us == report.groups[0].completed_us

    def test_timeout_bound_group(self):
        stub = StubExecutor()
        trace = build_trace([0.0], ["a"])
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=4, max_wait_us=300.0))
        (group,) = report.groups
        assert group.trigger == "timeout"
        assert group.launched_us == 300.0
        (record,) = report.records
        assert record.queue_wait_us == 300.0
        assert record.execute_us == 100.0
        assert record.latency_us == 400.0

    def test_late_arrivals_join_next_group(self):
        stub = StubExecutor(us_per_query=1_000.0)
        # two arrive immediately; the third arrives while the first
        # group is executing and must ride the next launch.
        trace = build_trace([0.0, 0.0, 500.0], list("abc"))
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=2, max_wait_us=0.0))
        assert [g.request_ids for g in report.groups] == [[0, 1], [2]]
        assert report.groups[1].launched_us == report.groups[0].completed_us

    def test_max_batch_one_is_per_query_serving(self):
        stub = StubExecutor()
        trace = build_trace([0.0, 0.0, 0.0], list("abc"))
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=1, max_wait_us=1e6))
        assert [g.size for g in report.groups] == [1, 1, 1]
        assert report.mean_group_size == 1.0

    def test_wait_zero_launches_immediately(self):
        stub = StubExecutor()
        trace = build_trace([0.0, 5_000.0], ["a", "b"])
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=8, max_wait_us=0.0))
        assert [g.launched_us for g in report.groups] == [0.0, 5_000.0]
        assert all(r.queue_wait_us == 0.0 for r in report.records)

    def test_records_sorted_by_request_id(self):
        stub = StubExecutor()
        trace = build_trace([100.0, 0.0, 50.0], list("abc"))
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=1))
        assert [r.request_id for r in report.records] == [0, 1, 2]

    def test_executor_payload_mismatch_raises(self):
        class Broken:
            def execute(self, queries):
                return [], 1.0

        with pytest.raises(ExecutorContractError, match="payloads"):
            simulate_serving(Broken(), build_trace([0.0], ["a"]), BatchPolicy())

    def test_contract_error_names_executor_and_counts(self):
        class Broken:
            def execute(self, queries):
                return [None] * 3, 1.0

        with pytest.raises(ExecutorContractError) as excinfo:
            simulate_serving(Broken(), build_trace([0.0], ["a"]), BatchPolicy())
        assert excinfo.value.expected == 1
        assert excinfo.value.got == 3
        assert "Broken" in str(excinfo.value)

    def test_empty_trace(self):
        report = simulate_serving(StubExecutor(), [], BatchPolicy())
        assert report.n_requests == 0
        assert report.makespan_us == 0.0
        assert report.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 95) == 40.0
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile(values, 0)

    def test_report_accounting(self):
        stub = StubExecutor()
        trace = build_trace([0.0, 0.0, 0.0, 0.0], list("abcd"))
        report = simulate_serving(stub, trace, BatchPolicy(max_batch=4, max_wait_us=0.0))
        assert report.n_groups == 1
        assert report.fused_occupancy == 1.0
        assert report.trigger_counts == {"size": 1}
        assert report.requests_per_s == pytest.approx(4 / (400.0 / 1e6))
        d = report.to_dict()
        assert d["n_requests"] == 4
        assert set(d["latency_us"]) == {"p50", "p95", "p99", "mean_queue_wait", "mean_execute"}


class TestWorkloads:
    def test_burst_arrivals(self):
        assert burst_arrivals(2, 3, 100.0) == [0.0, 0.0, 0.0, 100.0, 100.0, 100.0]
        with pytest.raises(ValueError):
            burst_arrivals(1, 1, -1.0)

    def test_poisson_seeded(self):
        a = poisson_arrivals(20, 500.0, seed=7)
        b = poisson_arrivals(20, 500.0, seed=7)
        assert a == b
        assert a != poisson_arrivals(20, 500.0, seed=8)
        assert all(x < y for x, y in zip(a, a[1:]))


class TestEngineServing:
    def test_group_of_one_bit_identical_to_search(self):
        engine_a, descs = build_engine()
        engine_b, _ = build_engine()
        query = noisy_copy(descs[2], 8.0, seed=5)
        single = engine_a.search(query, keep_masks=True)
        group = engine_b.search_group([query], keep_masks=True)
        assert group.group_size == 1
        grouped = group.results[0]
        assert grouped.elapsed_us == single.elapsed_us  # exact, not approx
        assert grouped.images_searched == single.images_searched
        assert len(grouped.matches) == len(single.matches)
        for got, want in zip(grouped.matches, single.matches):
            assert got.reference_id == want.reference_id
            assert got.good_matches == want.good_matches
            np.testing.assert_array_equal(got.match_mask, want.match_mask)
            np.testing.assert_array_equal(
                got.matched_reference_indices, want.matched_reference_indices
            )

    def test_fused_group_shares_elapsed(self):
        engine, descs = build_engine()
        queries = [noisy_copy(descs[i], 8.0, seed=i) for i in range(4)]
        group = engine.search_group(queries)
        assert group.group_size == 4
        assert all(r.elapsed_us == group.elapsed_us for r in group.results)
        assert group.pairs_compared == 4 * group.images_searched

    def test_fused_beats_serial_at_concurrency_4(self):
        """The acceptance bar: batching must strictly raise throughput
        once four queries contend for the device."""
        engine, descs = build_engine()
        queries = [noisy_copy(descs[i % len(descs)], 8.0, seed=i) for i in range(12)]
        trace = build_trace(burst_arrivals(3, 4, 1_000.0), queries)
        serial = simulate_serving(
            SerialEngineExecutor(engine), trace, BatchPolicy(max_batch=1)
        )
        fused = simulate_serving(
            FusedEngineExecutor(engine), trace, BatchPolicy(max_batch=4, max_wait_us=2_000.0)
        )
        assert fused.throughput_images_per_s > serial.throughput_images_per_s
        assert fused.mean_group_size == 4.0

    def test_determinism_same_trace_same_report(self):
        """S4: one arrival trace + seed replays byte-identical groups
        and percentiles."""
        reports = []
        for _ in range(2):
            engine, descs = build_engine()
            queries = [noisy_copy(descs[i % 4], 8.0, seed=i) for i in range(8)]
            trace = build_trace(burst_arrivals(2, 4, 1_500.0), queries)
            reports.append(
                simulate_serving(
                    FusedEngineExecutor(engine),
                    trace,
                    BatchPolicy(max_batch=4, max_wait_us=2_000.0),
                )
            )
        a, b = reports
        assert [g.request_ids for g in a.groups] == [g.request_ids for g in b.groups]
        assert [g.trigger for g in a.groups] == [g.trigger for g in b.groups]
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )


class TestClusterServing:
    def test_cluster_group_executor(self):
        system, descs = build_cluster()
        executor = ClusterGroupExecutor(system)
        payloads, elapsed = executor.execute([noisy_copy(descs[0], 8.0, seed=1)])
        assert len(payloads) == 1
        assert elapsed > 0
        assert payloads[0].best().reference_id == "r0"

    @pytest.mark.chaos
    def test_shard_death_mid_group_flags_every_query(self):
        """S3: a shard dying during a fused group leaves *every* member
        partial, each with its own private unsearched_shards copy."""
        injector = FaultInjector(seed=0)
        system, descs = build_cluster(n_nodes=3, n_refs=6, injector=injector)
        queries = [noisy_copy(descs[i], 8.0, seed=i) for i in range(4)]
        injector.crash_after("gpu-01", 1)  # dies on the group's shard RPC
        group = system.search_group(queries)
        assert group.group_size == 4
        assert group.partial
        assert group.unsearched_shards == ["gpu-01"]
        for result in group.results:
            assert result.partial
            assert result.unsearched_shards == ["gpu-01"]
        # the copies are independent: poisoning one query's metadata
        # must not leak into its group-mates (or the group rollup)
        group.results[0].unsearched_shards.append("poison")
        assert group.results[1].unsearched_shards == ["gpu-01"]
        assert group.unsearched_shards == ["gpu-01"]

    def test_rest_batch_route_happy_path(self):
        system, descs = build_cluster()
        router = build_api(system)
        body = {
            "queries": [
                noisy_copy(descs[0], 8.0, seed=1).tolist(),
                noisy_copy(descs[3], 8.0, seed=2).tolist(),
            ],
            "top": 2,
        }
        response = router.handle(Request("POST", "/search/batch", body))
        assert response.ok
        assert response.body["group_size"] == 2
        assert response.body["elapsed_us"] > 0
        first, second = response.body["queries"]
        assert first["results"][0]["id"] == "r0"
        assert second["results"][0]["id"] == "r3"
        # both queries share the fused group's completion time
        assert first["elapsed_us"] == second["elapsed_us"]

    def test_rest_batch_route_validation(self):
        system, _ = build_cluster(n_nodes=2, n_refs=2)
        router = build_api(system)
        assert router.handle(Request("POST", "/search/batch", {})).status == 400
        assert (
            router.handle(Request("POST", "/search/batch", {"queries": []})).status
            == 400
        )
        query = make_descriptors(CFG.n, seed=0).tolist()
        too_many = {"queries": [query] * 65}
        assert router.handle(Request("POST", "/search/batch", too_many)).status == 400
        bad_top = {"queries": [query], "top": 0}
        assert router.handle(Request("POST", "/search/batch", bad_top)).status == 400
        bad_shape = {"queries": [[[1.0, 2.0]]]}
        assert router.handle(Request("POST", "/search/batch", bad_shape)).status == 400

    def test_webtier_batch_executor_charges_group_time(self):
        system, descs = build_cluster()
        tier = WebTier(system, n_workers=1)
        executor = WebTierBatchExecutor(tier, top=1)
        queries = [noisy_copy(descs[i], 8.0, seed=i) for i in range(3)]
        payloads, elapsed = executor.execute(queries)
        assert len(payloads) == 3
        assert payloads[0]["results"][0]["id"] == "r0"
        # worker clock advanced by handling cost + the group's time
        assert elapsed == tier.worker_clock_us[0]
        assert elapsed > 0


class TestServingExperiment:
    def test_quick_run_writes_json_and_shows_speedup(self, tmp_path):
        from repro.bench.experiments import serving_bench

        json_path = tmp_path / "BENCH_serving.json"
        result = serving_bench.run(quick=True, json_path=json_path)
        assert result.summary["fused_speedup_at_conc4"] > 1.0
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "serving"
        tiers = {cell["tier"] for cell in payload["grid"]}
        assert {"engine", "cluster", "webtier"} <= tiers
        for cell in payload["grid"]:
            assert {"p50", "p95", "p99"} <= set(cell["latency_us"])

    def test_registered_in_cli(self):
        from repro.bench.experiments import ALL_EXPERIMENTS

        assert "serving" in ALL_EXPERIMENTS
