"""Cross-cutting invariants of the whole engine stack.

These are the properties a downstream user implicitly relies on: the
optimizations are *performance* transformations, so they must never
change functional results.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EngineConfig, TextureSearchEngine, knn_algorithm1, knn_algorithm2, prepare_query, prepare_reference
from repro.features import rootsift
from repro.gpusim import GPUDevice, TESLA_P100, TESLA_V100
from tests.conftest import make_descriptors, noisy_copy


def build_engine(batch_size, streams=1, **kwargs):
    cfg = EngineConfig(m=32, n=32, batch_size=batch_size, min_matches=5,
                       scale_factor=0.25, streams=streams, **kwargs)
    return TextureSearchEngine(cfg)


def enrol(engine, descs):
    for i, d in descs.items():
        engine.add_reference(f"r{i}", d)
    engine.flush()


@pytest.fixture(scope="module")
def descs():
    return {i: make_descriptors(32, seed=2000 + i) for i in range(9)}


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("batch_size", [1, 2, 4, 9, 16])
    def test_results_identical_across_batch_sizes(self, descs, batch_size):
        """Batching is pure data reuse: match counts must not move."""
        baseline = build_engine(batch_size=3)
        enrol(baseline, descs)
        other = build_engine(batch_size=batch_size)
        enrol(other, descs)
        query = noisy_copy(descs[4], 8.0, seed=201)
        a = {m.reference_id: m.good_matches for m in baseline.search(query).matches}
        b = {m.reference_id: m.good_matches for m in other.search(query).matches}
        assert a == b

    def test_results_identical_across_devices(self, descs):
        """The device model affects time only, never results."""
        p100 = build_engine(batch_size=4)
        enrol(p100, descs)
        v100 = TextureSearchEngine(
            EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25),
            device=GPUDevice(TESLA_V100),
        )
        enrol(v100, descs)
        query = noisy_copy(descs[2], 8.0, seed=202)
        a = {m.reference_id: m.good_matches for m in p100.search(query).matches}
        b = {m.reference_id: m.good_matches for m in v100.search(query).matches}
        assert a == b

    def test_streams_do_not_change_results(self, descs):
        serial = build_engine(batch_size=4, streams=1)
        parallel = build_engine(batch_size=4, streams=8)
        enrol(serial, descs)
        enrol(parallel, descs)
        query = noisy_copy(descs[7], 8.0, seed=203)
        a = [(m.reference_id, m.good_matches) for m in serial.search(query).top(9)]
        b = [(m.reference_id, m.good_matches) for m in parallel.search(query).top(9)]
        assert a == b


class TestDeterminism:
    def test_repeated_search_identical(self, descs):
        engine = build_engine(batch_size=4)
        enrol(engine, descs)
        query = noisy_copy(descs[0], 8.0, seed=204)
        first = [(m.reference_id, m.good_matches) for m in engine.search(query).matches]
        second = [(m.reference_id, m.good_matches) for m in engine.search(query).matches]
        assert first == second

    def test_enrolment_order_irrelevant_for_scores(self, descs):
        forward = build_engine(batch_size=4)
        enrol(forward, descs)
        backward = build_engine(batch_size=4)
        for i in sorted(descs, reverse=True):
            backward.add_reference(f"r{i}", descs[i])
        backward.flush()
        query = noisy_copy(descs[5], 8.0, seed=205)
        a = {m.reference_id: m.good_matches for m in forward.search(query).matches}
        b = {m.reference_id: m.good_matches for m in backward.search(query).matches}
        assert a == b


class TestAlgorithmConsistency:
    def test_alg1_and_alg2_agree_on_unit_norm_features(self, p100):
        """On RootSIFT features, Algorithm 2's simplification must give
        the same distances as the full Algorithm 1."""
        base = rootsift(make_descriptors(24, seed=206))
        query_raw = rootsift(noisy_copy(make_descriptors(24, seed=206), 20.0, seed=207))
        ref = prepare_reference(base, "fp32")
        qry = prepare_query(p100, query_raw, "fp32")
        knn1 = knn_algorithm1(p100, ref, qry)
        knn2 = knn_algorithm2(p100, base[None, ...], query_raw, precision="fp32").image(0)
        np.testing.assert_allclose(knn1.distances, knn2.distances, atol=5e-3)
        np.testing.assert_array_equal(knn1.indices, knn2.indices)

    @given(seed=st.integers(0, 50), noise=st.floats(2.0, 30.0))
    @settings(max_examples=15, deadline=None)
    def test_fp16_preserves_nearest_neighbour_ranking(self, seed, noise):
        """FP16 quantization perturbs distances but (statistically) not
        who the nearest reference feature is, for clear matches."""
        device = GPUDevice(TESLA_P100)
        base = make_descriptors(16, seed=seed)
        query_raw = noisy_copy(base, noise, seed=seed + 1)
        ref32 = prepare_reference(base, "fp32")
        qry32 = prepare_query(device, query_raw, "fp32")
        knn32 = knn_algorithm1(device, ref32, qry32)
        ref16 = prepare_reference(base, "fp16", 2.0**-7)
        qry16 = prepare_query(device, query_raw, "fp16", 2.0**-7)
        knn16 = knn_algorithm1(device, ref16, qry16)
        # clear matches: nearest at least 20% closer than runner-up
        clear = knn32.distances[0] < 0.8 * knn32.distances[1]
        agree = knn32.indices[0][clear] == knn16.indices[0][clear]
        assert agree.mean() >= 0.9 if clear.any() else True


class TestPaddingInvariance:
    def test_zero_padding_never_matches(self, descs):
        """Queries shorter than n are zero-padded; padding columns must
        contribute zero good matches."""
        engine = build_engine(batch_size=4)
        enrol(engine, descs)
        full = noisy_copy(descs[3], 8.0, seed=208)
        short = full[:, :10]
        result_short = engine.search(short)
        best = result_short.best()
        assert best.reference_id == "r3"
        # at most 10 (real) features can match
        assert best.good_matches <= 10
