"""TextureSearchEngine: enrolment, search, verification, tombstones,
hybrid-cache interaction, and configuration validation."""

import numpy as np
import pytest

from repro.core import EngineConfig, TextureSearchEngine
from repro.errors import HalfPrecisionOverflowError
from repro.gpusim import GPUDevice, TESLA_P100
from tests.conftest import make_descriptors, noisy_copy


def small_config(**kwargs):
    defaults = dict(m=48, n=48, batch_size=4, min_matches=5, scale_factor=0.25)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


@pytest.fixture
def engine():
    return TextureSearchEngine(small_config())


def enrolled(engine, count=10):
    descs = {i: make_descriptors(48, seed=100 + i) for i in range(count)}
    for i, d in descs.items():
        engine.add_reference(f"ref{i}", d)
    engine.flush()
    return descs


class TestConfig:
    def test_defaults_valid(self):
        EngineConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(m=0),
            dict(precision="int8"),
            dict(precision="fp16", scale_factor=0.0),
            dict(batch_size=0),
            dict(sort_kind="quick"),
            dict(ratio_threshold=1.5),
            dict(min_matches=0),
            dict(streams=0),
            dict(k=1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_feature_matrix_bytes(self):
        cfg = EngineConfig(m=384, precision="fp16", use_rootsift=True)
        assert cfg.feature_matrix_bytes() == 98304
        cfg1 = EngineConfig(m=768, precision="fp32", use_rootsift=False)
        assert cfg1.feature_matrix_bytes() == 768 * 128 * 4 + 768 * 4

    def test_effective_scale(self):
        assert EngineConfig(precision="fp32").effective_scale == 1.0
        assert EngineConfig(precision="fp16", scale_factor=0.25).effective_scale == 0.25

    def test_with_updates(self):
        cfg = EngineConfig().with_updates(m=384)
        assert cfg.m == 384


class TestSearch:
    def test_finds_true_reference(self, engine):
        descs = enrolled(engine)
        query = noisy_copy(descs[3], 8.0, seed=7)
        result = engine.search(query)
        assert result.best().reference_id == "ref3"
        assert result.images_searched == 10

    def test_partial_batch_is_searchable(self, engine):
        descs = enrolled(engine, count=5)  # 4+1: one partial batch
        result = engine.search(noisy_copy(descs[4], 8.0, seed=8))
        assert result.best().reference_id == "ref4"

    def test_elapsed_and_stats(self, engine):
        descs = enrolled(engine)
        result = engine.search(noisy_copy(descs[0], 8.0, seed=9))
        assert result.elapsed_us > 0
        assert engine.stats.searches == 1
        assert engine.stats.images_compared == 10
        assert engine.stats.mean_throughput_images_per_s > 0

    def test_fewer_query_features_padded(self, engine):
        descs = enrolled(engine)
        short = descs[2][:, :20]  # fewer than n=48
        result = engine.search(short)
        assert result.best().reference_id == "ref2"

    def test_wrong_descriptor_dim_rejected(self, engine):
        with pytest.raises(ValueError, match="128"):
            engine.search(np.ones((64, 48), np.float32))
        with pytest.raises(ValueError, match="128"):
            engine.add_reference("x", np.ones((64, 48), np.float32))


class TestAlgorithm1Path:
    def test_fp32_insertion(self):
        engine = TextureSearchEngine(
            small_config(use_rootsift=False, precision="fp32", sort_kind="insertion")
        )
        descs = enrolled(engine, 6)
        result = engine.search(noisy_copy(descs[1], 8.0, seed=10))
        assert result.best().reference_id == "ref1"

    def test_fp16_raw_sift(self):
        engine = TextureSearchEngine(
            small_config(use_rootsift=False, precision="fp16", scale_factor=2.0**-7)
        )
        descs = enrolled(engine, 6)
        result = engine.search(noisy_copy(descs[1], 8.0, seed=11))
        assert result.best().reference_id == "ref1"

    def test_overflow_scale_raises_on_enroll(self):
        engine = TextureSearchEngine(
            small_config(use_rootsift=False, precision="fp16", scale_factor=1.0)
        )
        with pytest.raises(HalfPrecisionOverflowError):
            engine.add_reference("x", make_descriptors(48, seed=0))


class TestVerify:
    def test_genuine_pair(self, engine):
        d = make_descriptors(48, seed=200)
        same, count = engine.verify(d, noisy_copy(d, 8.0, seed=201))
        assert same and count >= 5

    def test_impostor_pair(self, engine):
        a = make_descriptors(48, seed=202)
        b = make_descriptors(48, seed=203)
        same, count = engine.verify(a, noisy_copy(b, 8.0, seed=204))
        assert not same

    def test_verify_algorithm1(self):
        engine = TextureSearchEngine(small_config(use_rootsift=False, precision="fp32"))
        d = make_descriptors(48, seed=205)
        same, _ = engine.verify(d, noisy_copy(d, 8.0, seed=206))
        assert same


class TestTombstones:
    def test_remove(self, engine):
        descs = enrolled(engine)
        assert engine.remove_reference("ref3")
        assert not engine.has_reference("ref3")
        assert engine.n_references == 9
        result = engine.search(noisy_copy(descs[3], 8.0, seed=12))
        assert result.best().reference_id != "ref3"

    def test_remove_unknown(self, engine):
        assert not engine.remove_reference("ghost")

    def test_double_remove(self, engine):
        enrolled(engine)
        assert engine.remove_reference("ref0")
        assert not engine.remove_reference("ref0")

    def test_update_replaces(self, engine):
        descs = enrolled(engine)
        engine.add_reference("ref5", descs[3])  # update ref5 -> ref3's content
        result = engine.search(noisy_copy(descs[3], 8.0, seed=13))
        top_ids = {m.reference_id for m in result.top(2)}
        assert top_ids == {"ref3", "ref5"}
        assert engine.n_references == 10

    def test_remove_pending_slot(self, engine):
        # fewer adds than batch_size: slot still in the builder
        engine.add_reference("a", make_descriptors(48, seed=300))
        engine.add_reference("b", make_descriptors(48, seed=301))
        assert engine.remove_reference("a")
        engine.flush()
        result = engine.search(noisy_copy(make_descriptors(48, seed=300), 8.0, seed=302))
        assert all(m.reference_id != "a" for m in result.matches)


class TestHybridEngine:
    def test_search_spans_gpu_and_host(self):
        device = GPUDevice(TESLA_P100.with_memory(10**6))
        cfg = small_config()
        batch_bytes = cfg.batch_size * cfg.feature_matrix_bytes()
        engine = TextureSearchEngine(
            cfg,
            device=device,
            gpu_cache_bytes=batch_bytes,  # one batch on GPU
            host_cache_bytes=batch_bytes * 10,
        )
        descs = enrolled(engine, 12)  # 3 batches -> 2 demoted to host
        assert engine.cache.host_batches >= 1
        result = engine.search(noisy_copy(descs[0], 8.0, seed=14))
        assert result.best().reference_id == "ref0"
        assert "H2D copy" in engine.device.profiler.as_dict()

    def test_multi_stream_elapsed_uses_overlap_model(self):
        device = GPUDevice(TESLA_P100.with_memory(10**6))
        cfg = small_config(streams=8)
        batch_bytes = cfg.batch_size * cfg.feature_matrix_bytes()
        engine = TextureSearchEngine(
            cfg, device=device,
            gpu_cache_bytes=batch_bytes, host_cache_bytes=batch_bytes * 10,
        )
        descs = enrolled(engine, 12)
        serial_cfg = small_config(streams=1)
        serial = TextureSearchEngine(
            serial_cfg, device=GPUDevice(TESLA_P100.with_memory(10**6)),
            gpu_cache_bytes=batch_bytes, host_cache_bytes=batch_bytes * 10,
        )
        enrolled(serial, 12)
        q = noisy_copy(descs[0], 8.0, seed=15)
        multi_result = engine.search(q)
        serial_result = serial.search(q)
        assert multi_result.best().reference_id == serial_result.best().reference_id
        assert multi_result.elapsed_us < serial_result.elapsed_us

    def test_capacity_metric(self, engine):
        assert engine.capacity_images() == engine.cache.capacity_images(
            engine.config.feature_matrix_bytes()
        )
