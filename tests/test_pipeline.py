"""Multi-stream scheduler model and CPU-thread partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import KernelCalibration, TESLA_P100
from repro.pipeline import (
    batch_component_times,
    interleave_schedules,
    partition_equally,
    plan_streams,
    stream_extra_gpu_bytes,
)

SPEC = TESLA_P100
CAL = KernelCalibration.for_device(SPEC)


class TestPartition:
    def test_even_split(self):
        assert partition_equally([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split(self):
        parts = partition_equally(list(range(10)), 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert sum(parts, []) == list(range(10))

    def test_more_workers_than_items(self):
        parts = partition_equally([1], 3)
        assert parts == [[1], [], []]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            partition_equally([1], 0)

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_partition_properties(self, items, workers):
        parts = partition_equally(items, workers)
        assert len(parts) == workers
        assert sum(parts, []) == items  # order preserved, nothing lost
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_interleave(self):
        assert interleave_schedules([[1, 3], [2, 4], [5]]) == [1, 2, 5, 3, 4]

    def test_interleave_empty(self):
        assert interleave_schedules([]) == []


class TestStreamPlan:
    def test_more_streams_more_throughput(self):
        speeds = [
            plan_streams(SPEC, CAL, s, 512).throughput_images_per_s for s in (1, 2, 4, 8)
        ]
        assert speeds == sorted(speeds)

    def test_never_exceeds_theoretical(self):
        for streams in (1, 2, 4, 8, 16):
            plan = plan_streams(SPEC, CAL, streams, 512)
            assert plan.throughput_images_per_s <= plan.theoretical_images_per_s * 1.0001

    def test_table6_efficiency_band(self):
        """Paper: 52.5% at 1 stream -> 87.3% at 8 streams (batch 512)."""
        eff1 = plan_streams(SPEC, CAL, 1, 512).schedule_efficiency
        eff8 = plan_streams(SPEC, CAL, 8, 512).schedule_efficiency
        assert 0.40 < eff1 < 0.60
        assert 0.80 < eff8 < 0.95

    def test_theoretical_speed_matches_paper(self):
        """Sec. 6.2: PCIe-bound theoretical speed ~47,592 img/s."""
        plan = plan_streams(SPEC, CAL, 1, 512)
        assert plan.theoretical_images_per_s == pytest.approx(47592, rel=0.02)

    def test_extra_memory_matches_table6(self):
        """Table 6 footprints: 0.989 GB (1 stream) -> 5.819 GB (8)."""
        one = stream_extra_gpu_bytes(1, 512, 768, 768)
        eight = stream_extra_gpu_bytes(8, 512, 768, 768)
        assert one == pytest.approx(0.989e9, rel=0.1)
        assert eight == pytest.approx(5.819e9, rel=0.1)

    def test_memory_linear_in_streams(self):
        marginal1 = stream_extra_gpu_bytes(2, 256, 768, 768) - stream_extra_gpu_bytes(1, 256, 768, 768)
        marginal2 = stream_extra_gpu_bytes(3, 256, 768, 768) - stream_extra_gpu_bytes(2, 256, 768, 768)
        assert marginal1 == marginal2

    def test_compute_bound_cap(self):
        """At m=384 the transfer halves and compute becomes the
        bottleneck — throughput must cap below PCIe-bound theoretical."""
        plan = plan_streams(SPEC, CAL, 16, 512, m=384)
        compute_cap = 512 / (plan.compute_us + plan.d2h_us) * 1e6
        assert plan.throughput_images_per_s <= compute_cap * 1.0001

    def test_with_norms_adds_transfer(self):
        without = batch_component_times(SPEC, CAL, 768, 768, 128, 64)
        with_n = batch_component_times(SPEC, CAL, 768, 768, 128, 64, with_norms=True)
        assert with_n["h2d"] > without["h2d"]
        assert with_n["compute"] > without["compute"]

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            plan_streams(SPEC, CAL, 0, 512)
        with pytest.raises(ValueError):
            stream_extra_gpu_bytes(0, 512, 768, 768)
