"""Replica groups, graceful lifecycle, the autoscaler control loop,
alert-sink isolation, and the elastic workload generators."""

import json

import pytest

from repro.core import EngineConfig
from repro.distributed import (
    Autoscaler,
    AutoscalerPolicy,
    DistributedSearchSystem,
    FaultInjector,
    Request,
    WebTier,
)
from repro.distributed.replica import (
    DRAIN_GRACE_US,
    WARMUP_BASE_US,
    WARMUP_US_PER_REF,
    ReplicaState,
)
from repro.errors import ClusterError, NodeDownError
from repro.obs import (
    CRITICAL,
    BurnRateRule,
    MetricsRegistry,
    SloEngine,
    SloPolicy,
    TimeSeriesRecorder,
    default_registry,
    install_recorder,
    uninstall_recorder,
)
from repro.obs.slo import AlertEvent
from repro.serving import diurnal_arrivals, flash_crowd_arrivals
from tests.conftest import make_descriptors, noisy_copy

pytestmark = pytest.mark.elastic

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)

BOUNDS = (10.0, 50.0, 100.0, 500.0, 1000.0)


def build_system(n_shards=2, replication=1, n_refs=6, injector=None, seed=70):
    refs = {f"r{i}": make_descriptors(32, seed=seed + i) for i in range(n_refs)}
    system = DistributedSearchSystem(
        n_shards, CFG, replication_factor=replication, fault_injector=injector
    )
    for ref_id in sorted(refs):
        system.add(ref_id, refs[ref_id])
    return system, refs


class TestReplicaGroups:
    def test_r1_topology_matches_pre_replica(self):
        system, refs = build_system(replication=1)
        assert len(system.groups) == 2
        for shard_id, group in system.groups.items():
            assert len(group) == 1
            assert group.primary.node_id == shard_id
        result = system.search(noisy_copy(refs["r3"], 8.0, seed=3))
        assert result.best().reference_id == "r3"
        assert not result.partial

    def test_replicas_serve_same_answer(self):
        solo, refs = build_system(replication=1)
        replicated, _ = build_system(replication=3)
        for group in replicated.groups.values():
            assert len(group) == 3
        query = noisy_copy(refs["r2"], 8.0, seed=5)
        a = solo.search(query)
        b = replicated.search(query)
        assert a.best().reference_id == b.best().reference_id == "r2"
        assert a.corpus_epoch == b.corpus_epoch

    def test_readers_rotate_deterministically(self):
        system, _ = build_system(replication=3)
        group = next(iter(system.groups.values()))
        first = [n.node_id for n in group.readers()]
        second = [n.node_id for n in group.readers()]
        third = [n.node_id for n in group.readers()]
        # one rotation step per call, full failover chain each time
        assert sorted(first) == sorted(second) == sorted(third)
        assert second == first[1:] + first[:1]
        assert third == second[1:] + second[:1]

    def test_mutations_propagate_to_all_replicas(self):
        system, _ = build_system(replication=2)
        shard = system.add("fresh", make_descriptors(32, seed=200))
        group = system.groups[shard]
        for node in group.nodes:
            assert node.has("fresh")
            assert node.epoch == group.epoch
        system.remove("fresh")
        for node in group.nodes:
            assert not node.has("fresh")
            assert node.epoch == group.epoch

    def test_sibling_absorbs_crashed_replica(self):
        injector = FaultInjector(seed=11)
        system, refs = build_system(replication=2, injector=injector)
        retries0 = default_registry().value("repro_cluster_replica_retries_total")
        shard_id = sorted(system.groups)[0]
        victim = system.groups[shard_id].nodes[1]
        injector.crash(victim.node_id)
        queries = [noisy_copy(refs[f"r{i}"], 8.0, seed=20 + i) for i in range(4)]
        for _ in range(4):  # rotation lands reads on the corpse too
            grouped = system.search_group(queries)
            assert all(not r.partial for r in grouped.results)
            assert all(not r.unsearched_shards for r in grouped.results)
        retries = default_registry().value("repro_cluster_replica_retries_total")
        assert retries > retries0

    def test_last_replica_cannot_be_removed(self):
        system, _ = build_system(replication=1)
        shard_id = sorted(system.groups)[0]
        with pytest.raises(ClusterError):
            system.remove_replica(shard_id)


class TestReplicaLifecycle:
    def _with_clock(self, **kwargs):
        system, refs = build_system(**kwargs)
        recorder = TimeSeriesRecorder(interval_us=1_000.0, retention=256)
        install_recorder(recorder)
        return system, refs, recorder

    def test_warmup_readiness_gate(self):
        system, _, recorder = self._with_clock(replication=1)
        try:
            shard_id = sorted(system.groups)[0]
            group = system.groups[shard_id]
            n_refs = group.primary.n_references
            fresh = system.add_replica(shard_id)
            assert fresh.replica_state is ReplicaState.WARMING
            # cache already hydrated from the KV store, but not ready
            assert fresh.n_references == n_refs
            assert fresh.node_id not in [n.node_id for n in group.readers(recorder.now_us)]
            recorder.advance_by(WARMUP_BASE_US + WARMUP_US_PER_REF * n_refs + 1.0)
            system.poll_lifecycle()
            assert fresh.replica_state is ReplicaState.SERVING
            seen = set()
            for _ in range(len(group)):
                seen.add(group.readers(recorder.now_us)[0].node_id)
            assert fresh.node_id in seen
        finally:
            uninstall_recorder()

    def test_warming_replica_observes_mutations(self):
        system, _, recorder = self._with_clock(replication=1)
        try:
            shard_id = sorted(system.groups)[0]
            group = system.groups[shard_id]
            fresh = system.add_replica(shard_id)
            # enroll lands on the warming replica too: it must be
            # consistent the moment it becomes ready
            ref = next(
                f"w{i}" for i in range(64)
                if system.placement.peek(f"w{i}") == shard_id
            )
            system.add(ref, make_descriptors(32, seed=300))
            assert fresh.has(ref)
            assert fresh.epoch == group.epoch
            recorder.advance_by(WARMUP_BASE_US + WARMUP_US_PER_REF * 64)
            system.poll_lifecycle()
            assert fresh.replica_state is ReplicaState.SERVING
        finally:
            uninstall_recorder()

    def test_drain_grace_then_detach(self):
        system, _, recorder = self._with_clock(replication=2)
        try:
            shard_id = sorted(system.groups)[0]
            group = system.groups[shard_id]
            recorder.advance_by(5_000.0)
            victim = system.remove_replica(shard_id)
            assert victim.replica_state is ReplicaState.DRAINING
            # no new reads while draining, but still attached
            assert victim.node_id not in [
                n.node_id for n in group.readers(recorder.now_us)
            ]
            assert system.poll_lifecycle() == []
            assert group.get(victim.node_id) is victim
            recorder.advance_by(DRAIN_GRACE_US + 1.0)
            assert victim.node_id in system.poll_lifecycle()
            assert group.get(victim.node_id) is None
            assert system.node_seconds() > 0.0
        finally:
            uninstall_recorder()


class TestEnrollGate:
    def test_enroll_gates_full_replica_set(self):
        injector = FaultInjector(seed=13)
        system, _ = build_system(replication=2, injector=injector)
        shard_id = sorted(system.groups)[0]
        sibling = system.groups[shard_id].nodes[1]
        injector.crash(sibling.node_id)
        ref = next(
            f"g{i}" for i in range(64)
            if system.placement.peek(f"g{i}") == shard_id
        )
        # the primary is healthy, but the enrollment must land on every
        # active replica — a crashed sibling fails it up front
        with pytest.raises(NodeDownError):
            system.enroll(ref, make_descriptors(32, seed=400))
        assert not system.has(ref)
        assert system.get_record_bytes(ref) is None
        injector.revive(sibling.node_id)
        sibling.health.revive()  # the operator brings it back
        ack = system.enroll(ref, make_descriptors(32, seed=400))
        assert ack.node_id == shard_id
        for node in system.groups[shard_id].nodes:
            assert node.has(ref)


@pytest.mark.chaos
class TestChaosReplicaDelete:
    def _scenario(self, seed):
        """Crash one replica, delete a reference while it is down,
        revive it: the tombstone must win everywhere, and the stale
        replica must never resurrect the reference on any sibling."""
        injector = FaultInjector(seed=seed)
        system, refs = build_system(replication=2, injector=injector)
        doomed = "r0"
        shard_id = system._placement[doomed]
        group = system.groups[shard_id]
        victim = group.nodes[1]
        injector.crash(victim.node_id)
        ack = system.delete(doomed)
        assert ack.deleted
        # the survivor applied the delete; the corpse missed it and is
        # now permanently behind the group's epoch
        assert not group.nodes[0].has(doomed)
        assert victim.has(doomed)
        # reads under load rotate onto the corpse, fail over to the
        # sibling (never a partial result), and drive its health DOWN
        hits = []
        for i in range(4):
            result = system.search(noisy_copy(refs["r1"], 8.0, seed=9 + i))
            assert not result.partial
            best = result.best()
            hits.append(best.reference_id if best else None)
        system.repair()
        assert group.get(victim.node_id) is None  # detached, not trusted
        # revival after the detach must not resurrect anything: the
        # node is out of the topology, and a *fresh* replica re-warms
        # from the KV store where the tombstone already won
        injector.revive(victim.node_id)
        system.add_replica(shard_id)
        assert all(n.epoch == group.epoch for n in group.nodes)
        assert not any(n.has(doomed) for n in group.nodes)
        for i in range(4):  # rotate reads across every sibling
            result = system.search(noisy_copy(refs[doomed], 8.0, seed=40 + i))
            best = result.best()
            hits.append(best.reference_id if best else None)
        assert doomed not in hits
        return {
            "shard": shard_id,
            "victim": victim.node_id,
            "epoch": group.epoch,
            "replicas": sorted(n.node_id for n in group.nodes),
            "hits": hits,
        }

    def test_tombstone_never_resurrects_and_replays(self):
        first = self._scenario(seed=21)
        second = self._scenario(seed=21)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


class TestAutoscaler:
    def _policy(self, **overrides):
        defaults = dict(
            target_queue_depth=4.0,
            band=0.25,
            window_us=4_000.0,
            max_replicas_per_shard=2,
            cooldown_out_us=3_000.0,
            cooldown_in_us=6_000.0,
            critical_boost_cooldown_us=0.0,
        )
        defaults.update(overrides)
        return AutoscalerPolicy(**defaults)

    def _rig(self, **overrides):
        system, _ = build_system(replication=1)
        recorder = TimeSeriesRecorder(interval_us=1_000.0, retention=256)
        install_recorder(recorder)
        scaler = Autoscaler(system, self._policy(**overrides))
        scaler.attach(recorder)
        depth = default_registry().get("repro_serving_queue_depth")
        return system, recorder, scaler, depth

    def test_scale_out_cooldown_and_cap(self):
        system, recorder, scaler, depth = self._rig()
        try:
            depth.set(40.0)  # 20 per serving replica, target 4
            recorder.advance_to(1_000.0)
            assert [e.action for e in scaler.events] == ["scale_out"]
            assert all(len(g) == 2 for g in system.groups.values())
            # inside the cooldown the fleet holds even under pressure
            recorder.advance_to(2_000.0)
            assert len(scaler.events) == 1
            # at the cap further scale-outs are structural no-ops
            recorder.advance_to(5_000.0)
            assert len(scaler.events) == 1
            assert all(len(g) == 2 for g in system.groups.values())
        finally:
            scaler.detach()
            uninstall_recorder()

    def test_scale_in_after_cooldown_respects_floor(self):
        system, recorder, scaler, depth = self._rig()
        try:
            depth.set(40.0)
            recorder.advance_to(1_000.0)
            assert all(len(g.active()) == 2 for g in system.groups.values())
            depth.set(0.0)
            for t in range(2, 20):
                recorder.advance_to(t * 1_000.0)
            assert "scale_in" in [e.action for e in scaler.events]
            system.poll_lifecycle()
            assert all(len(g) == 1 for g in system.groups.values())
            # never below one replica per shard no matter how idle
            assert [e.action for e in scaler.events].count("scale_in") == 1
        finally:
            scaler.detach()
            uninstall_recorder()

    def test_scale_in_vetoed_while_shedding(self):
        system, recorder, scaler, depth = self._rig()
        shed = default_registry().get("repro_serving_shed_total")
        try:
            depth.set(40.0)
            recorder.advance_to(1_000.0)
            depth.set(0.0)
            for t in range(2, 20):
                # goodput share collapses inside the window
                shed.labels(reason="queue-full").inc(5.0)
                recorder.advance_to(t * 1_000.0)
            assert [e.action for e in scaler.events] == ["scale_out"]
            assert all(len(g.active()) == 2 for g in system.groups.values())
        finally:
            scaler.detach()
            uninstall_recorder()

    def test_critical_alert_bypasses_cooldown(self):
        system, recorder, scaler, depth = self._rig(
            max_replicas_per_shard=3
        )
        try:
            depth.set(40.0)
            recorder.advance_to(1_000.0)
            assert len(scaler.events) == 1
            # still deep inside the scale-out cooldown: a CRITICAL page
            # overrides it at the next sample
            scaler.on_alert(AlertEvent(
                t_us=1_500.0, policy="latency", state=CRITICAL,
                previous="warning", burn_fast=9.0, burn_slow=4.0,
            ))
            recorder.advance_to(2_000.0)
            actions = [(e.action, e.reason) for e in scaler.events]
            assert actions == [
                ("scale_out", "queue-depth"),
                ("scale_out", "critical-alert"),
            ]
        finally:
            scaler.detach()
            uninstall_recorder()

    def test_decisions_are_deterministic(self):
        def drive():
            system, recorder, scaler, depth = self._rig()
            try:
                for t in range(1, 15):
                    depth.set(40.0 if t < 7 else 0.0)
                    recorder.advance_to(t * 1_000.0)
                return [e.to_dict() for e in scaler.events]
            finally:
                scaler.detach()
                uninstall_recorder()

        first = drive()
        second = drive()
        assert first and first == second

    def test_stats_and_rest_surface(self):
        system, recorder, scaler, depth = self._rig()
        try:
            block = system.stats()["elastic"]
            assert block["autoscaler"]["enabled"] is True
            assert block["replicas_total"] == 2
            assert set(block["replication"]) == set(system.groups)
            tier = WebTier(system, n_workers=1)
            response = tier.elastic()
            assert response.ok
            assert response.body["autoscaler"]["enabled"] is True
            assert response.body["shards_total"] == 2
            # the route is also reachable as a plain GET
            raw = tier.handle(Request("GET", "/elastic")).response
            assert raw.ok and raw.body["replication"] == response.body["replication"]
        finally:
            scaler.detach()
            uninstall_recorder()


class TestSinkIsolation:
    def _critical_engine(self, reg):
        policy = SloPolicy(
            name="lat", kind="latency", objective=0.9,
            metric="lat_us", threshold_us=100.0,
            critical=BurnRateRule(1_000.0, 2_000.0, 3.0),
            warning=BurnRateRule(1_000.0, 2_000.0, 1.0),
            min_events=1,
        )
        return SloEngine([policy], registry=reg)

    def test_hostile_sink_cannot_starve_siblings(self):
        reg = MetricsRegistry()
        recorder = TimeSeriesRecorder(
            interval_us=1_000.0, retention=64, registry=reg
        )
        h = reg.histogram("lat_us", "l", buckets=BOUNDS)
        engine = self._critical_engine(reg)

        def hostile(event):
            raise RuntimeError("boom")

        seen = []
        engine.add_sink(hostile)
        engine.add_sink(seen.append)
        engine.attach(recorder)
        for t in range(1, 4):
            for _ in range(5):
                h.observe(900.0)
            recorder.advance_to(t * 1_000.0)
        # the state machine committed, the well-behaved sink saw every
        # transition, and the failures are counted — not raised
        assert engine.state_of("lat") == CRITICAL
        assert seen and seen[-1].state == CRITICAL
        assert len(seen) == len(engine.log.events)
        assert reg.value("repro_slo_sink_errors_total") == float(
            len(engine.log.events)
        )


class TestWorkloadGenerators:
    def test_diurnal_is_seed_deterministic(self):
        kwargs = dict(
            duration_us=200_000.0, trough_rate_per_s=200.0,
            peak_rate_per_s=2_000.0, period_us=200_000.0,
        )
        a = diurnal_arrivals(seed=7, **kwargs)
        b = diurnal_arrivals(seed=7, **kwargs)
        c = diurnal_arrivals(seed=8, **kwargs)
        assert a == b
        assert a != c
        assert a == sorted(a)
        assert all(0.0 <= t < 200_000.0 for t in a)

    def test_diurnal_crests_mid_period(self):
        arrivals = diurnal_arrivals(
            duration_us=400_000.0, trough_rate_per_s=100.0,
            peak_rate_per_s=4_000.0, period_us=400_000.0, seed=3,
        )
        quarter = [t for t in arrivals if t < 100_000.0]
        crest = [t for t in arrivals if 150_000.0 <= t < 250_000.0]
        assert len(crest) > 2 * len(quarter)

    def test_flash_crowd_spike_density(self):
        arrivals = flash_crowd_arrivals(
            duration_us=300_000.0, base_rate_per_s=200.0,
            spike_rate_per_s=4_000.0, spike_start_us=100_000.0,
            spike_width_us=100_000.0, seed=5,
        )
        before = [t for t in arrivals if t < 100_000.0]
        inside = [t for t in arrivals if 100_000.0 <= t < 200_000.0]
        assert len(inside) > 5 * len(before)
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(
                duration_us=-1.0, trough_rate_per_s=1.0,
                peak_rate_per_s=2.0, period_us=1.0,
            )
        with pytest.raises(ValueError):
            diurnal_arrivals(
                duration_us=1.0, trough_rate_per_s=1.0,
                peak_rate_per_s=2.0, period_us=0.0,
            )
        with pytest.raises(ValueError):
            diurnal_arrivals(
                duration_us=1.0, trough_rate_per_s=5.0,
                peak_rate_per_s=2.0, period_us=1.0,
            )  # trough above peak
        with pytest.raises(ValueError):
            flash_crowd_arrivals(
                duration_us=1.0, base_rate_per_s=1.0,
                spike_rate_per_s=0.5, spike_start_us=0.0,
                spike_width_us=1.0,
            )  # spike below base
        with pytest.raises(ValueError):
            flash_crowd_arrivals(
                duration_us=1.0, base_rate_per_s=1.0,
                spike_rate_per_s=2.0, spike_start_us=-1.0,
                spike_width_us=1.0,
            )
        # zero-duration traces are legal and empty
        assert diurnal_arrivals(
            duration_us=0.0, trough_rate_per_s=1.0,
            peak_rate_per_s=2.0, period_us=1.0,
        ) == []
