"""Two-tier retrieval: candidate routers (IVF / LSH banding), engine
candidate restriction, routed scatter-gather, fault interplay, and the
REST-level routing knobs.

The invariants under test mirror ``docs/routing.md``:

* pruning is a *decision*, faults are *failures* — ``unrouted_shards``
  never sets ``partial`` and never mixes with ``unsearched_shards``;
* a router-less cluster (and a full-width probe) is bit-identical to
  the exhaustive scatter-gather;
* a nominated shard that is down/breaker-open degrades exactly like
  the exhaustive path (``partial=True`` + ``unsearched_shards``).
"""

import numpy as np
import pytest

from repro.core import EngineConfig, TextureSearchEngine
from repro.distributed import (
    BreakerPolicy,
    DistributedSearchSystem,
    FaultInjector,
    Request,
    build_api,
)
from repro.obs import default_registry
from repro.routing import (
    IvfCandidateRouter,
    LshCandidateRouter,
    RouteDecision,
    RouterPolicy,
    build_router,
    pool_descriptors,
)
from tests.conftest import make_descriptors, noisy_copy

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


def corpus(n_refs, base=700):
    return {f"r{i}": make_descriptors(32, seed=base + i) for i in range(n_refs)}


def build_cluster(n_nodes, refs, *, policy=None, **kwargs):
    system = DistributedSearchSystem(
        n_nodes, CFG, router_policy=policy, **kwargs
    )
    for ref_id, desc in refs.items():
        system.add(ref_id, desc)
    return system


def fitted_router(refs, policy, shards=3):
    router = build_router(policy)
    for i, (ref_id, desc) in enumerate(refs.items()):
        router.add(ref_id, desc, f"node-{i % shards}")
    router.fit()
    return router


def match_key(result):
    return sorted((m.reference_id, m.score, m.good_matches) for m in result.matches)


class TestPoolDescriptors:
    def test_unit_vector(self):
        pooled = pool_descriptors(make_descriptors(32))
        assert pooled.shape == (128,)
        assert pooled.dtype == np.float32
        assert np.linalg.norm(pooled) == pytest.approx(1.0, abs=1e-5)

    def test_noise_shrinks_under_pooling(self):
        desc = make_descriptors(64, seed=3)
        noisy = noisy_copy(desc, sigma=8.0)
        other = make_descriptors(64, seed=4)
        d_same = np.linalg.norm(pool_descriptors(desc) - pool_descriptors(noisy))
        d_other = np.linalg.norm(pool_descriptors(desc) - pool_descriptors(other))
        assert d_same < d_other

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            pool_descriptors(np.zeros(128, dtype=np.float32))
        with pytest.raises(ValueError):
            pool_descriptors(np.zeros((128, 0), dtype=np.float32))


class TestRouterPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"kind": "faiss"},
        {"nprobe": 0},
        {"recall_target": 0.0},
        {"recall_target": 1.5},
        {"n_lists": 0},
        {"n_bits": 4},
        {"band_bits": 0},
        {"band_bits": 512},
        {"band_matches": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RouterPolicy(**kwargs)

    def test_build_router_dispatch(self):
        assert isinstance(build_router(RouterPolicy(kind="ivf")), IvfCandidateRouter)
        assert isinstance(build_router(RouterPolicy(kind="lsh")), LshCandidateRouter)


class TestRouteDecision:
    def test_merge_unions_by_best_rank(self):
        a = RouteDecision(
            candidate_ids=["x", "y"], shard_ids=["s0"],
            per_shard={"s0": ["x", "y"]}, nprobe_used=1,
        )
        b = RouteDecision(
            candidate_ids=["z", "x"], shard_ids=["s1", "s0"],
            per_shard={"s1": ["z"], "s0": ["x"]}, nprobe_used=2,
        )
        merged = RouteDecision.merge([a, b])
        assert not merged.exhaustive
        # x and z share best rank 0; x was seen first
        assert merged.candidate_ids == ["x", "z", "y"]
        assert merged.per_shard == {"s0": ["x", "y"], "s1": ["z"]}
        assert merged.shard_ids == ["s0", "s1"]
        assert merged.nprobe_used == 2

    def test_exhaustive_member_poisons_merge(self):
        ok = RouteDecision(candidate_ids=["x"], shard_ids=["s0"],
                           per_shard={"s0": ["x"]}, nprobe_used=1)
        merged = RouteDecision.merge([ok, RouteDecision(exhaustive=True, nprobe_used=3)])
        assert merged.exhaustive
        assert merged.candidate_ids == []

    def test_empty_merge_is_exhaustive(self):
        assert RouteDecision.merge([]).exhaustive


class TestRouterLifecycle:
    def test_empty_corpus_falls_back_exhaustive(self):
        router = build_router(RouterPolicy(kind="ivf"))
        decision = router.nominate(make_descriptors(32))
        assert decision.exhaustive
        assert default_registry().value(
            "repro_router_nominations_total", kind="ivf", outcome="exhaustive"
        ) == 1.0

    def test_mutations_rebuild_lazily(self):
        refs = corpus(6)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=2))
        query = noisy_copy(refs["r0"], sigma=4.0)
        assert "r0" in router.nominate(query, nprobe=2).candidate_ids
        assert router.remove("r0")
        assert not router.remove("r0")
        assert "r0" not in router.nominate(query, nprobe=2).candidate_ids
        router.add("r0", refs["r0"], "node-9")
        decision = router.nominate(query, nprobe=2)
        assert "r0" in decision.candidate_ids
        assert "node-9" in decision.shard_ids

    def test_reassign_repoints_shard_only(self):
        refs = corpus(4)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=1))
        router.reassign("r1", "node-7")
        decision = router.nominate(noisy_copy(refs["r1"], sigma=4.0))
        assert "r1" in decision.per_shard["node-7"]

    def test_resolve_nprobe_precedence(self):
        router = fitted_router(corpus(8), RouterPolicy(kind="ivf", n_lists=8, nprobe=2))
        assert router.resolve_nprobe() == 2
        assert router.resolve_nprobe(nprobe=5) == 5
        # explicit nprobe beats any recall target
        assert router.resolve_nprobe(nprobe=3, recall_target=1.0) == 3
        # uncalibrated target degrades to near-exhaustive probing
        assert router.resolve_nprobe(recall_target=1.0) == router.max_nprobe
        assert router.resolve_nprobe(recall_target=0.5) == 4
        router.set_calibration([(1, 0.90), (2, 0.97), (4, 1.0)])
        assert router.resolve_nprobe(recall_target=0.95) == 2
        assert router.resolve_nprobe(recall_target=0.90) == 1


class TestIvfRouter:
    def test_true_reference_ranked_first(self):
        refs = corpus(12)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=4))
        for ref_id in ("r0", "r5", "r11"):
            decision = router.nominate(noisy_copy(refs[ref_id], sigma=8.0))
            assert decision.candidate_ids[0] == ref_id
            assert decision.nprobe_used == 1
            assert decision.n_candidates < len(refs)

    def test_nprobe_widens_monotonically(self):
        refs = corpus(16)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=8))
        query = noisy_copy(refs["r3"], sigma=8.0)
        previous: set = set()
        for nprobe in (1, 2, 4, 8):
            now = set(router.nominate(query, nprobe=nprobe).candidate_ids)
            assert previous <= now
            previous = now
        assert previous == set(refs)  # full probe covers the corpus


class TestLshRouter:
    def test_true_reference_nominated(self):
        refs = corpus(12)
        router = fitted_router(refs, RouterPolicy(kind="lsh"))
        decision = router.nominate(noisy_copy(refs["r4"], sigma=8.0))
        assert decision.candidate_ids[0] == "r4"
        assert decision.n_candidates < len(refs)

    def test_nprobe_relaxes_threshold(self):
        refs = corpus(12)
        router = fitted_router(refs, RouterPolicy(kind="lsh", band_matches=4))
        query = noisy_copy(refs["r4"], sigma=8.0)
        sizes = [
            router.nominate(query, nprobe=nprobe).n_candidates
            for nprobe in (1, 2, 4)
        ]
        assert sizes == sorted(sizes)


class TestEngineCandidateRestriction:
    def build_engine(self, refs):
        engine = TextureSearchEngine(CFG)
        for ref_id, desc in refs.items():
            engine.add_reference(ref_id, desc)
        return engine

    def test_restriction_prunes_and_filters(self):
        refs = corpus(8)
        engine = self.build_engine(refs)
        query = noisy_copy(refs["r2"], sigma=8.0)
        result = engine.search(query, candidate_ids=frozenset({"r2"}))
        assert result.best().reference_id == "r2"
        assert {m.reference_id for m in result.matches} <= {"r2"}
        assert result.images_pruned > 0
        assert result.images_searched + result.images_pruned == len(refs)
        assert not result.partial  # pruning is not a fault

    def test_full_candidate_set_is_bit_identical(self):
        refs = corpus(8)
        engine = self.build_engine(refs)
        query = noisy_copy(refs["r5"], sigma=8.0)
        unrestricted = engine.search(query)
        restricted = engine.search(query, candidate_ids=frozenset(refs))
        assert restricted.images_pruned == 0
        assert match_key(restricted) == match_key(unrestricted)


class TestRoutedCluster:
    def test_routed_search_prunes_and_agrees(self):
        refs = corpus(24)
        policy = RouterPolicy(kind="ivf", n_lists=8)
        system = build_cluster(3, refs, policy=policy)
        query = noisy_copy(refs["r7"], sigma=8.0)
        result = system.search(query)
        assert result.routed
        assert result.best().reference_id == "r7"
        assert not result.partial
        assert result.unsearched_shards == []
        assert result.images_searched + result.images_pruned <= len(refs)
        assert result.images_searched < len(refs)

    def test_router_off_bit_identical_to_full_probe(self):
        refs = corpus(24)
        exhaustive = build_cluster(3, refs)
        routed = build_cluster(3, refs, policy=RouterPolicy(kind="ivf", n_lists=8))
        for ref_id in ("r1", "r13"):
            query = noisy_copy(refs[ref_id], sigma=8.0)
            base = exhaustive.search(query)
            assert not base.routed and base.images_pruned == 0
            wide = routed.search(query, nprobe=8)
            assert wide.routed
            assert match_key(wide) == match_key(base)
            assert wide.images_searched == base.images_searched

    def test_group_search_unions_nominations(self):
        refs = corpus(24)
        system = build_cluster(3, refs, policy=RouterPolicy(kind="ivf", n_lists=8))
        queries = [noisy_copy(refs[r], sigma=8.0) for r in ("r2", "r9", "r17")]
        group = system.search_group(queries)
        assert group.routed
        assert not group.partial
        for query_result, expected in zip(group.results, ("r2", "r9", "r17")):
            assert query_result.best().reference_id == expected
        assert group.images_pruned > 0

    def test_cluster_mutations_keep_router_in_sync(self):
        refs = corpus(12)
        system = build_cluster(3, refs, policy=RouterPolicy(kind="ivf", n_lists=4))
        system.build_router()
        assert system.router.n_images == len(refs)
        system.add("extra", make_descriptors(32, seed=990))
        assert system.router.n_images == len(refs) + 1
        assert system.remove("r0")
        assert system.router.n_images == len(refs)
        result = system.search(noisy_copy(refs["r3"], sigma=8.0))
        assert result.best().reference_id == "r3"

    def test_stats_routing_block(self):
        refs = corpus(12)
        system = build_cluster(3, refs, policy=RouterPolicy(kind="ivf", n_lists=4))
        system.search(noisy_copy(refs["r1"], sigma=8.0))
        stats = system.stats()
        assert stats["schema_version"] == 8
        routing = stats["routing"]
        assert routing["enabled"] is True
        assert routing["kind"] == "ivf"
        assert routing["nominations_routed_total"] == 1
        assert routing["images_pruned_total"] > 0

    def test_stats_without_router(self):
        system = build_cluster(2, corpus(4))
        assert system.stats()["routing"]["enabled"] is False


class TestRoutingUnderFaults:
    def test_nominated_down_shard_degrades_like_exhaustive(self):
        refs = corpus(18)
        injector = FaultInjector(seed=0)
        system = DistributedSearchSystem(
            3, CFG,
            router_policy=RouterPolicy(kind="ivf", n_lists=6),
            fault_injector=injector, auto_failover=False,
        )
        for ref_id, desc in refs.items():
            system.add(ref_id, desc)
        query = noisy_copy(refs["r5"], sigma=8.0)
        decision = system.build_router().nominate(query, nprobe=1)
        victim = decision.shard_ids[0]
        injector.crash(victim)
        result = system.search(query, nprobe=1)
        assert result.partial
        assert victim in result.unsearched_shards
        # routing metadata stays disjoint from fault metadata
        assert not set(result.unsearched_shards) & set(result.unrouted_shards)
        assert victim not in result.unrouted_shards

    def test_breaker_open_nominated_shard_reported_unsearched(self):
        refs = corpus(18)
        system = DistributedSearchSystem(
            3, CFG,
            router_policy=RouterPolicy(kind="ivf", n_lists=6),
            breaker_policy=BreakerPolicy(window=4, min_samples=2, failure_rate=0.5),
            auto_failover=False,
        )
        for ref_id, desc in refs.items():
            system.add(ref_id, desc)
        query = noisy_copy(refs["r5"], sigma=8.0)
        victim = system.build_router().nominate(query, nprobe=1).shard_ids[0]
        breaker = next(n for n in system.nodes if n.node_id == victim).breaker
        breaker.record_failure()
        breaker.record_failure()
        result = system.search(query, nprobe=1)
        assert result.partial
        assert victim in result.unsearched_shards

    def test_chaos_routed_replay_is_deterministic(self):
        refs = corpus(18)

        def scenario():
            from repro.distributed import FaultSpec

            system = DistributedSearchSystem(
                3, CFG,
                router_policy=RouterPolicy(kind="ivf", n_lists=6),
                fault_injector=FaultInjector(
                    FaultSpec(transient_rate=0.2, slow_rate=0.2), seed=7
                ),
                auto_failover=False,
            )
            for ref_id, desc in refs.items():
                system.add(ref_id, desc)
            outcomes = []
            for i in (2, 9, 15):
                result = system.search(noisy_copy(refs[f"r{i}"], sigma=8.0))
                outcomes.append((
                    match_key(result), result.partial,
                    tuple(result.unsearched_shards),
                    tuple(result.unrouted_shards),
                    result.images_searched, result.images_pruned,
                ))
                assert not set(result.unsearched_shards) & set(result.unrouted_shards)
            return outcomes

        assert scenario() == scenario()


def _refreshes(kind, mode):
    return default_registry().value(
        "repro_router_refresh_total", kind=kind, mode=mode
    )


@pytest.mark.enrollment
class TestIncrementalRefresh:
    def test_ivf_absorb_appends_without_rebuild(self):
        refs = corpus(12)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=4))
        rebuilds0 = _refreshes("ivf", "rebuild")
        incr0 = _refreshes("ivf", "incremental")
        extra = make_descriptors(32, seed=991)
        router.add("extra", extra, "node-1")
        decision = router.nominate(noisy_copy(extra, sigma=4.0), nprobe=2)
        assert "extra" in decision.candidate_ids
        assert _refreshes("ivf", "rebuild") == rebuilds0
        assert _refreshes("ivf", "incremental") == incr0 + 1

    def test_ivf_retract_removes_without_rebuild(self):
        refs = corpus(12)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=4))
        rebuilds0 = _refreshes("ivf", "rebuild")
        assert router.remove("r3")
        decision = router.nominate(noisy_copy(refs["r3"], sigma=4.0), nprobe=4)
        assert "r3" not in decision.candidate_ids
        assert _refreshes("ivf", "rebuild") == rebuilds0

    def test_lsh_absorb_and_masked_retract(self):
        refs = corpus(12)
        router = fitted_router(refs, RouterPolicy(kind="lsh"))
        rebuilds0 = _refreshes("lsh", "rebuild")
        extra = make_descriptors(32, seed=992)
        router.add("extra", extra, "node-0")
        assert "extra" in router.nominate(
            noisy_copy(extra, sigma=4.0), nprobe=4
        ).candidate_ids
        assert router.remove("extra")
        assert "extra" not in router.nominate(
            noisy_copy(extra, sigma=4.0), nprobe=4
        ).candidate_ids
        assert _refreshes("lsh", "rebuild") == rebuilds0

    def test_lsh_compacts_when_mostly_dead(self):
        refs = corpus(10)
        router = fitted_router(refs, RouterPolicy(kind="lsh"))
        rebuilds0 = _refreshes("lsh", "rebuild")
        for i in range(6):  # kill the majority: compaction triggers
            router.remove(f"r{i}")
        survivor = refs["r8"]
        decision = router.nominate(noisy_copy(survivor, sigma=4.0), nprobe=4)
        assert "r8" in decision.candidate_ids
        assert _refreshes("lsh", "rebuild") == rebuilds0 + 1

    def test_update_in_place_retracts_then_absorbs(self):
        refs = corpus(8)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=2))
        replacement = make_descriptors(32, seed=993)
        router.add("r2", replacement, "node-5")
        decision = router.nominate(noisy_copy(replacement, sigma=4.0), nprobe=2)
        assert "r2" in decision.candidate_ids
        assert decision.candidate_ids.count("r2") == 1
        assert "node-5" in decision.per_shard
        assert router.n_images == len(refs)


@pytest.mark.enrollment
class TestRouteDecisionEpochs:
    def test_nominate_tags_current_epoch(self):
        refs = corpus(8)
        router = fitted_router(refs, RouterPolicy(kind="ivf", n_lists=2))
        epoch0 = router.epoch
        assert epoch0 == len(refs)
        d0 = router.nominate(noisy_copy(refs["r0"], sigma=4.0))
        assert d0.corpus_epoch == epoch0
        router.add("extra", make_descriptors(32, seed=994), "node-0")
        d1 = router.nominate(noisy_copy(refs["r0"], sigma=4.0))
        assert d1.corpus_epoch == epoch0 + 1

    def test_merge_carries_max_epoch(self):
        a = RouteDecision(candidate_ids=["x"], shard_ids=["s0"],
                          per_shard={"s0": ["x"]}, nprobe_used=1, corpus_epoch=3)
        b = RouteDecision(candidate_ids=["y"], shard_ids=["s1"],
                          per_shard={"s1": ["y"]}, nprobe_used=1, corpus_epoch=7)
        assert RouteDecision.merge([a, b]).corpus_epoch == 7

    def test_exhaustive_fallback_still_tagged(self):
        router = build_router(RouterPolicy(kind="ivf"))
        router.add("only", make_descriptors(32, seed=995), "node-0")
        router.remove("only")
        decision = router.nominate(make_descriptors(32, seed=996))
        assert decision.exhaustive
        assert decision.corpus_epoch == 2


@pytest.mark.enrollment
class TestClusterRouterSync:
    def test_enroll_then_route_finds_new_reference(self):
        refs = corpus(18)
        system = build_cluster(3, refs, policy=RouterPolicy(kind="ivf", n_lists=6))
        system.build_router()
        desc = make_descriptors(32, seed=997)
        ack = system.enroll("fresh", desc)
        result = system.search(noisy_copy(desc, sigma=4.0), nprobe=2)
        assert result.routed
        assert result.best().reference_id == "fresh"
        assert result.corpus_epoch[ack.node_id] >= ack.epoch

    def test_delete_then_route_never_nominates(self):
        refs = corpus(18)
        system = build_cluster(3, refs, policy=RouterPolicy(kind="ivf", n_lists=6))
        system.build_router()
        system.delete("r4")
        result = system.search(noisy_copy(refs["r4"], sigma=4.0), nprobe=6)
        assert "r4" not in {m.reference_id for m in result.matches}
        assert system.router.n_images == len(refs) - 1

    def test_failover_keeps_router_consistent(self):
        refs = corpus(18)
        system = build_cluster(3, refs, policy=RouterPolicy(kind="ivf", n_lists=6))
        system.build_router()
        victim = system.nodes[0].node_id
        system.remove_node(victim)
        assert system.router.n_images == len(refs)
        for ref_id in ("r2", "r11"):
            result = system.search(noisy_copy(refs[ref_id], sigma=8.0), nprobe=3)
            assert result.best().reference_id == ref_id
            assert victim not in result.corpus_epoch


class TestRestRoutingKnobs:
    def build_api(self, refs, policy):
        system = build_cluster(3, refs, policy=policy)
        return build_api(system), system

    def test_nprobe_knob_narrows_the_sweep(self):
        refs = corpus(24)
        api, _ = self.build_api(refs, RouterPolicy(kind="ivf", n_lists=8))
        body = {"descriptors": noisy_copy(refs["r7"], sigma=8.0).tolist()}
        narrow = api.handle(Request("POST", "/search", {**body, "nprobe": 1}))
        wide = api.handle(Request("POST", "/search", {**body, "nprobe": 8}))
        assert narrow.ok and wide.ok
        assert narrow.body["routed"] is True
        assert narrow.body["results"][0]["id"] == "r7"
        assert narrow.body["images_searched"] < wide.body["images_searched"]
        assert narrow.body["images_pruned"] > 0
        assert narrow.body["partial"] is False

    def test_recall_target_degrades_to_near_exhaustive_uncalibrated(self):
        refs = corpus(24)
        api, _ = self.build_api(refs, RouterPolicy(kind="ivf", n_lists=8))
        body = {
            "descriptors": noisy_copy(refs["r7"], sigma=8.0).tolist(),
            "recall_target": 1.0,
        }
        response = api.handle(Request("POST", "/search", body))
        assert response.ok
        assert response.body["images_pruned"] == 0  # full probe, safe fallback

    def test_batch_carries_routing_metadata(self):
        refs = corpus(24)
        api, _ = self.build_api(refs, RouterPolicy(kind="ivf", n_lists=8))
        body = {
            "queries": [noisy_copy(refs[r], sigma=8.0).tolist() for r in ("r2", "r9")],
            "nprobe": 2,
        }
        response = api.handle(Request("POST", "/search/batch", body))
        assert response.ok
        assert response.body["routed"] is True
        assert all("images_pruned" in q for q in response.body["queries"])

    @pytest.mark.parametrize("body_extra,fragment", [
        ({"nprobe": 0}, "nprobe"),
        ({"nprobe": "many"}, "nprobe"),
        ({"recall_target": 0.0}, "recall_target"),
        ({"recall_target": 2.0}, "recall_target"),
        ({"recall_target": "high"}, "recall_target"),
    ])
    def test_bad_knobs_rejected(self, body_extra, fragment):
        refs = corpus(6)
        api, _ = self.build_api(refs, RouterPolicy(kind="ivf", n_lists=2))
        body = {"descriptors": refs["r0"].tolist(), **body_extra}
        response = api.handle(Request("POST", "/search", body))
        assert response.status == 400
        assert fragment in response.body["error"]
