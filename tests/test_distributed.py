"""Search nodes, the sharded cluster, and the REST API."""

import numpy as np
import pytest

from repro.core import EngineConfig
from repro.distributed import (
    DistributedSearchSystem,
    FeatureRecord,
    KVStore,
    NodeConfig,
    Request,
    SearchNode,
    serialize_record,
    build_api,
)
from repro.errors import ClusterError
from tests.conftest import make_descriptors, noisy_copy

CFG = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)


def descriptors(count=8):
    return {i: make_descriptors(32, seed=400 + i) for i in range(count)}


class TestSearchNode:
    def test_add_and_search(self):
        node = SearchNode("n0", CFG)
        descs = descriptors(4)
        for i, d in descs.items():
            node.add(f"r{i}", d)
        result = node.search(noisy_copy(descs[2], 8.0, seed=1))
        assert result.best().reference_id == "r2"

    def test_hydrate_from_store(self):
        store = KVStore()
        descs = descriptors(3)
        for i, d in descs.items():
            record = FeatureRecord(f"r{i}", d, "fp32", 1.0)
            store.set(f"feature:r{i}", serialize_record(record))
        node = SearchNode("n0", CFG)
        loaded = node.hydrate_from_store(store, [f"feature:r{i}" for i in range(3)] + ["ghost"])
        assert loaded == 3
        assert node.n_references == 3

    def test_add_record_dequantises_fp16(self):
        node = SearchNode("n0", CFG)
        d = descriptors(1)[0]
        record = FeatureRecord("r0", (d * 0.25).astype(np.float16), "fp16", 0.25)
        node.add_record(record)
        result = node.search(noisy_copy(d, 8.0, seed=2))
        assert result.best().reference_id == "r0"

    def test_stats(self):
        node = SearchNode("n0", CFG)
        stats = node.stats()
        assert stats["node_id"] == "n0"
        assert stats["references"] == 0
        assert stats["capacity_images"] > 0


class TestCluster:
    def test_round_robin_sharding(self):
        system = DistributedSearchSystem(3, CFG)
        descs = descriptors(6)
        nodes = [system.add(f"r{i}", descs[i]) for i in range(6)]
        assert nodes == ["gpu-00", "gpu-01", "gpu-02"] * 2
        assert [n.n_references for n in system.nodes] == [2, 2, 2]

    def test_search_across_shards(self):
        system = DistributedSearchSystem(3, CFG)
        descs = descriptors(6)
        for i in range(6):
            system.add(f"r{i}", descs[i])
        result = system.search(noisy_copy(descs[4], 8.0, seed=3))
        assert result.best().reference_id == "r4"
        assert result.images_searched == 6
        assert result.elapsed_us > 0

    def test_update_stays_on_same_node(self):
        system = DistributedSearchSystem(3, CFG)
        descs = descriptors(2)
        first = system.add("r0", descs[0])
        second = system.add("r0", descs[1])  # update
        assert first == second
        assert system.n_references == 1

    def test_remove(self):
        system = DistributedSearchSystem(2, CFG)
        descs = descriptors(2)
        system.add("r0", descs[0])
        assert system.remove("r0")
        assert not system.remove("r0")
        assert system.n_references == 0
        assert system.store.get("feature:r0") is None

    def test_record_persisted_in_store(self):
        system = DistributedSearchSystem(2, CFG)
        system.add("r0", descriptors(1)[0])
        assert system.get_record_bytes("r0") is not None
        assert system.store.hget("placement", "r0") == b"gpu-00"

    def test_capacity_scales_with_nodes(self):
        one = DistributedSearchSystem(1, CFG).capacity_images()
        four = DistributedSearchSystem(4, CFG).capacity_images()
        assert four == 4 * one

    def test_needs_a_node(self):
        with pytest.raises(ClusterError):
            DistributedSearchSystem(0, CFG)

    def test_add_node_after_remove_mints_fresh_id(self):
        """Regression: ids were minted from ``len(self.nodes)``, so a
        remove-then-add cycle minted a duplicate id and corrupted
        placement."""
        system = DistributedSearchSystem(2, CFG)
        system.remove_node("gpu-00")
        node = system.add_node()
        assert node.node_id == "gpu-02"
        ids = [n.node_id for n in system.nodes]
        assert len(set(ids)) == len(ids) == 2
        descs = descriptors(4)
        owners = [system.add(f"r{i}", descs[i]) for i in range(4)]
        assert set(owners) == {"gpu-01", "gpu-02"}
        # every reference is findable on the node placement claims
        for i in range(4):
            assert system._node_by_id(owners[i]).has(f"r{i}")

    def test_update_in_place_yields_single_match(self):
        """Re-enrolling an existing ref must replace, not duplicate:
        searching afterwards returns exactly one match for that id."""
        system = DistributedSearchSystem(2, CFG)
        descs = descriptors(3)
        system.add("r0", descs[0])
        system.add("r1", descs[1])
        system.add("r0", descs[2])  # update in place with new content
        result = system.search(noisy_copy(descs[2], 8.0, seed=9))
        hits = [m for m in result.matches if m.reference_id == "r0"]
        assert len(hits) == 1
        assert result.best().reference_id == "r0"
        assert system.n_references == 2

    def test_search_many_accounting_uneven_shards(self):
        """Regression: aggregate elapsed/image counts must come from
        each node's own grouped results, not ``grouped[0]`` alone."""
        system = DistributedSearchSystem(3, CFG)
        descs = descriptors(5)
        for i in range(5):  # round-robin: shards of 2, 2, 1 references
            system.add(f"r{i}", descs[i])
        assert sorted(n.n_references for n in system.nodes) == [1, 2, 2]
        queries = [noisy_copy(descs[0], 8.0, seed=21), noisy_copy(descs[3], 8.0, seed=22)]
        grouped = system.search_many(queries)
        for res in grouped:
            assert res.images_searched == 5
            assert sum(r.images_searched for r in res.per_node.values()) == 5
        slowest = max(
            max(r.elapsed_us for r in res.per_node.values()) for res in grouped
        )
        from repro.distributed import WEB_TIER_OVERHEAD_US

        assert grouped[0].elapsed_us == pytest.approx(slowest + WEB_TIER_OVERHEAD_US)
        assert grouped[0].best().reference_id == "r0"
        assert grouped[1].best().reference_id == "r3"


class TestRestApi:
    @pytest.fixture
    def api(self):
        self.system = DistributedSearchSystem(2, CFG)
        return build_api(self.system)

    def _post(self, api, ref_id, desc):
        return api.handle(
            Request("POST", "/textures", {"id": ref_id, "descriptors": desc.tolist()})
        )

    def test_crud_lifecycle(self, api):
        descs = descriptors(2)
        created = self._post(api, "brick-1", descs[0])
        assert created.status == 201 and not created.body["updated"]

        got = api.handle(Request("GET", "/textures/brick-1"))
        assert got.status == 200 and got.body["stored_bytes"] > 0

        updated = api.handle(
            Request("PUT", "/textures/brick-1", {"descriptors": descs[1].tolist()})
        )
        assert updated.status == 200 and updated.body["updated"]

        deleted = api.handle(Request("DELETE", "/textures/brick-1"))
        assert deleted.status == 200
        assert api.handle(Request("GET", "/textures/brick-1")).status == 404

    def test_post_existing_is_update(self, api):
        descs = descriptors(2)
        self._post(api, "b", descs[0])
        again = self._post(api, "b", descs[1])
        assert again.status == 200 and again.body["updated"]

    def test_search_returns_ranked(self, api):
        descs = descriptors(5)
        for i in range(5):
            self._post(api, f"brick-{i}", descs[i])
        response = api.handle(
            Request(
                "POST",
                "/search",
                {"descriptors": noisy_copy(descs[3], 8.0, seed=4).tolist(), "top": 2},
            )
        )
        assert response.status == 200
        assert response.body["results"][0]["id"] == "brick-3"
        assert len(response.body["results"]) == 2
        assert response.body["throughput_images_per_s"] > 0

    def test_validation_errors(self, api):
        assert self._post(api, "bad id!", descriptors(1)[0]).status == 400
        missing = api.handle(Request("POST", "/search", {}))
        assert missing.status == 400
        wrong_shape = api.handle(
            Request("POST", "/search", {"descriptors": [[1.0, 2.0]]})
        )
        assert wrong_shape.status == 400
        nan = np.full((128, 4), np.nan).tolist()
        assert api.handle(Request("POST", "/search", {"descriptors": nan})).status == 400
        bad_top = api.handle(
            Request("POST", "/search", {"descriptors": descriptors(1)[0].tolist(), "top": 0})
        )
        assert bad_top.status == 400

    def test_unknown_route_and_method(self, api):
        assert api.handle(Request("GET", "/nope")).status == 404
        assert api.handle(Request("PATCH", "/search")).status == 405

    def test_delete_missing(self, api):
        assert api.handle(Request("DELETE", "/textures/ghost")).status == 404

    def test_stats(self, api):
        self._post(api, "b", descriptors(1)[0])
        stats = api.handle(Request("GET", "/stats"))
        assert stats.status == 200
        assert stats.body["references"] == 1
        assert len(stats.body["nodes"]) == 2
