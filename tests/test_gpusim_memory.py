"""Memory pool accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeviceOutOfMemoryError
from repro.gpusim import MemoryPool


class TestMemoryPool:
    def test_alloc_free_roundtrip(self):
        pool = MemoryPool(1000, "test")
        a = pool.alloc(400, "a")
        assert pool.used_bytes == 400
        assert pool.free_bytes == 600
        pool.free(a)
        assert pool.used_bytes == 0

    def test_oom(self):
        pool = MemoryPool(1000)
        pool.alloc(900)
        with pytest.raises(DeviceOutOfMemoryError) as err:
            pool.alloc(200)
        assert err.value.requested == 200
        assert err.value.free == 100

    def test_reserved_carveout(self):
        pool = MemoryPool(1000, reserved_bytes=300)
        assert pool.usable_bytes == 700
        with pytest.raises(DeviceOutOfMemoryError):
            pool.alloc(701)
        pool.alloc(700)

    def test_reserved_cannot_exceed_capacity(self):
        with pytest.raises(ValueError):
            MemoryPool(100, reserved_bytes=200)

    def test_double_free(self):
        pool = MemoryPool(100)
        a = pool.alloc(10)
        pool.free(a)
        with pytest.raises(KeyError):
            pool.free(a)

    def test_cross_pool_free_rejected(self):
        p1 = MemoryPool(100, "p1")
        p2 = MemoryPool(100, "p2")
        a = p1.alloc(10)
        with pytest.raises(ValueError, match="belongs to pool"):
            p2.free(a)

    def test_peak_tracking(self):
        pool = MemoryPool(1000)
        a = pool.alloc(600)
        pool.free(a)
        pool.alloc(100)
        assert pool.peak_bytes == 600

    def test_fits(self):
        pool = MemoryPool(100)
        assert pool.fits(100)
        pool.alloc(60)
        assert not pool.fits(41)
        assert pool.fits(40)

    def test_live_allocations(self):
        pool = MemoryPool(100)
        a = pool.alloc(10, "x")
        b = pool.alloc(20, "y")
        pool.free(a)
        live = pool.live_allocations()
        assert [alloc.label for alloc in live] == ["y"]
        assert live[0] is b

    def test_negative_alloc_rejected(self):
        pool = MemoryPool(100)
        with pytest.raises(ValueError):
            pool.alloc(-1)

    @given(sizes=st.lists(st.integers(min_value=0, max_value=50), max_size=30))
    def test_accounting_invariant(self, sizes):
        """used == sum(live) and never exceeds capacity."""
        pool = MemoryPool(500)
        live = []
        for size in sizes:
            try:
                live.append(pool.alloc(size))
            except DeviceOutOfMemoryError:
                if live:
                    pool.free(live.pop(0))
            assert pool.used_bytes == sum(a.nbytes for a in pool.live_allocations())
            assert 0 <= pool.used_bytes <= pool.usable_bytes
