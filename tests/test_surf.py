"""Integral images, box filters, and the SURF extractor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features import (
    BoxFilter,
    SURF_DESCRIPTOR_DIM,
    SURFConfig,
    SURFExtractor,
    box_sum,
    integral_image,
)
from repro.data import TeaBrickGenerator


class TestIntegralImage:
    def test_rectangle_sums_exact(self):
        rng = np.random.default_rng(0)
        img = rng.random((20, 30))
        ii = integral_image(img)
        assert box_sum(ii, 3, 5, 10, 12) == pytest.approx(img[3:10, 5:12].sum())
        assert box_sum(ii, 0, 0, 20, 30) == pytest.approx(img.sum())

    def test_clamping_out_of_range(self):
        img = np.ones((4, 4))
        ii = integral_image(img)
        # box extending past the border sums only the in-image part
        assert box_sum(ii, -5, -5, 2, 2) == pytest.approx(4.0)
        assert box_sum(ii, 2, 2, 100, 100) == pytest.approx(4.0)

    def test_vectorised_bounds(self):
        img = np.arange(16, dtype=float).reshape(4, 4)
        ii = integral_image(img)
        ys = np.array([0, 1])
        sums = box_sum(ii, ys, 0, ys + 2, 2)
        assert sums[0] == pytest.approx(img[0:2, 0:2].sum())
        assert sums[1] == pytest.approx(img[1:3, 0:2].sum())

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            integral_image(np.zeros((2, 2, 3)))

    @given(
        y0=st.integers(0, 10), x0=st.integers(0, 10),
        h=st.integers(1, 10), w=st.integers(1, 10), seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_box_sum_property(self, y0, x0, h, w, seed):
        img = np.random.default_rng(seed).random((20, 20))
        ii = integral_image(img)
        assert box_sum(ii, y0, x0, y0 + h, x0 + w) == pytest.approx(
            img[y0 : y0 + h, x0 : x0 + w].sum()
        )


class TestBoxFilter:
    def test_weighted_combination(self):
        img = np.ones((10, 10))
        ii = integral_image(img)
        f = BoxFilter([(0, 0, 2, 2, 1.0), (0, 0, 1, 1, -4.0)])
        out = f.apply(ii, np.array([0]), np.array([0]))
        assert out[0] == pytest.approx(4.0 - 4.0)

    def test_scaled(self):
        f = BoxFilter([(0, 0, 1, 1, 2.0)])
        g = f.scaled(3)
        assert g.boxes == [(0, 0, 3, 3, 2.0)]
        with pytest.raises(ValueError):
            f.scaled(0)

    def test_needs_boxes(self):
        with pytest.raises(ValueError):
            BoxFilter([])


class TestSURFExtractor:
    @pytest.fixture(scope="class")
    def image(self):
        return TeaBrickGenerator(size=128, seed=3).brick(0)

    @pytest.fixture(scope="class")
    def result(self, image):
        return SURFExtractor(SURFConfig(n_features=100)).extract(image)

    def test_descriptor_shape_and_norm(self, result):
        assert result.dim == SURF_DESCRIPTOR_DIM == 64
        assert result.count > 5
        np.testing.assert_allclose(
            np.linalg.norm(result.descriptors, axis=0), 512.0, rtol=1e-4
        )

    def test_response_ranked(self, result):
        responses = [k.response for k in result.keypoints]
        assert responses == sorted(responses, reverse=True)

    def test_budget(self, image):
        res = SURFExtractor(SURFConfig(n_features=5)).extract(image)
        assert res.count <= 5

    def test_translation_matching(self, image, result):
        shifted = np.roll(image, 4, axis=1)
        res2 = SURFExtractor(SURFConfig(n_features=100)).extract(shifted)
        d1 = result.descriptors.astype(np.float64)
        d2 = res2.descriptors.astype(np.float64)
        dist = (d1**2).sum(0)[:, None] + (d2**2).sum(0)[None, :] - 2 * d1.T @ d2
        nn = np.sqrt(np.maximum(dist.min(axis=1), 0))
        assert np.median(nn) < 0.25 * 512

    def test_discriminates_bricks(self, image, result):
        other = TeaBrickGenerator(size=128, seed=3).brick(1)
        res_other = SURFExtractor(SURFConfig(n_features=100)).extract(other)
        d1 = result.descriptors.astype(np.float64)
        same = SURFExtractor(SURFConfig(n_features=100)).extract(np.roll(image, 2, axis=0))
        d_same = same.descriptors.astype(np.float64)
        d_other = res_other.descriptors.astype(np.float64)

        def med_nn(a, b):
            d = (a**2).sum(0)[:, None] + (b**2).sum(0)[None, :] - 2 * a.T @ b
            return np.median(np.sqrt(np.maximum(d.min(axis=0), 0)))

        assert med_nn(d_same, d1) < med_nn(d_other, d1)

    def test_flat_image_no_features(self):
        res = SURFExtractor().extract(np.full((96, 96), 0.5, np.float32))
        assert res.count == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SURFConfig(n_features=0)
        with pytest.raises(ValueError):
            SURFConfig(n_scales=1)
        with pytest.raises(ValueError):
            SURFExtractor().extract(np.zeros((64, 64), np.float32), n_features=0)

    def test_engine_integration_d64(self, image):
        """The whole engine stack runs at d=64 with SURF features."""
        from repro.core import EngineConfig, TextureSearchEngine

        extractor = SURFExtractor(SURFConfig(n_features=48))
        engine = TextureSearchEngine(
            EngineConfig(d=64, m=48, n=48, batch_size=2, min_matches=4,
                         scale_factor=0.25, normalization="l2")
        )
        gen = TeaBrickGenerator(size=128, seed=3)
        for brick in range(4):
            res = extractor.extract(gen.brick(brick))
            engine.add_reference(f"b{brick}", res.descriptors)
        engine.flush()
        query = extractor.extract(np.roll(gen.brick(2), 3, axis=0))
        found = engine.search(query.descriptors)
        assert found.best().reference_id == "b2"
