"""The top-level public API surface stays importable and coherent."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core", "repro.gpusim", "repro.blas", "repro.fp16",
    "repro.features", "repro.geometry", "repro.cache", "repro.pipeline",
    "repro.baselines", "repro.data", "repro.metrics", "repro.distributed",
    "repro.serving", "repro.obs", "repro.routing",
    "repro.bench", "repro.bench.experiments",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__") or name == "repro.bench.experiments"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_exports():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol)
    assert repro.__version__ == "1.0.0"


def test_quickstart_snippet_shape():
    """The README quickstart must keep working verbatim."""
    import numpy as np

    from repro import EngineConfig, TextureSearchEngine

    engine = TextureSearchEngine(EngineConfig(m=384, n=768))
    rng = np.random.default_rng(0)
    desc = rng.gamma(0.6, 1.0, (128, 100)).astype(np.float32)
    desc = desc / np.linalg.norm(desc, axis=0, keepdims=True) * 512
    engine.add_reference("brick-0", desc)
    engine.flush()
    result = engine.search(desc)
    assert result.best().reference_id == "brick-0"
    assert result.throughput_images_per_s > 0
