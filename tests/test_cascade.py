"""Cascade-hashing prefilter backend: verdict parity with the exact
pipelines, short-circuiting of fully-pruned batches, and honest hybrid
cache accounting for the packed signature codes (ISSUE 8)."""

import numpy as np
import pytest

from repro.cache import HybridFeatureCache
from repro.core import EngineConfig, TextureSearchEngine
from repro.core.batching import BatchBuilder
from repro.core.cascade import CascadeKernel
from repro.features.binarize import words_for_bits
from repro.gpusim import GPUDevice, TESLA_P100
from repro.obs import default_registry
from tests.conftest import make_descriptors, noisy_copy

pytestmark = pytest.mark.cascade

M = N = 48
BATCH = 4
SIGMA = 8.0


def cfg(**kwargs):
    defaults = dict(
        m=M, n=N, batch_size=BATCH, min_matches=5,
        backend="cascade", precision="fp32",
    )
    defaults.update(kwargs)
    return EngineConfig(**defaults)


def build_engine(config=None, **kernel_kwargs):
    config = config or cfg()
    kernel = CascadeKernel(config, **kernel_kwargs) if kernel_kwargs else None
    return TextureSearchEngine(config, kernel=kernel)


def enrolled(engine, count=12):
    descs = {i: make_descriptors(M, seed=7000 + i) for i in range(count)}
    for i, d in descs.items():
        engine.add_reference(f"ref{i}", d)
    engine.flush()
    return descs


class TestPrefilterBehaviour:
    def test_matched_query_verdict_parity_with_algorithm1(self):
        cascade = build_engine()
        descs = enrolled(cascade)
        exact = TextureSearchEngine(cfg(backend="algorithm1"))
        for i, d in descs.items():
            exact.add_reference(f"ref{i}", d)
        exact.flush()
        query = noisy_copy(descs[3], SIGMA)
        cas, ref = cascade.search(query), exact.search(query)
        assert cas.best().reference_id == ref.best().reference_id == "ref3"
        assert cas.best().good_matches == ref.best().good_matches
        # the prune actually fired: most non-matching images skipped GEMM
        assert cas.cascade_pruned > 0
        # prefilter-examined images still count as searched
        assert cas.images_searched == ref.images_searched == len(descs)

    def test_impostor_fully_pruned_and_short_circuited(self):
        engine = build_engine()
        descs = enrolled(engine)
        impostor = make_descriptors(N, seed=9999)
        result = engine.search(impostor)
        assert result.cascade_pruned == len(descs)
        assert all(m.good_matches == 0 for m in result.matches)
        assert result.best().score == 0
        # the engine-level counter tracks the prune
        assert (
            default_registry().value("repro_engine_cascade_pruned_total")
            == len(descs)
        )

    def test_pruned_sweep_cheaper_than_exact(self):
        config = cfg()
        cascade = build_engine(config)
        exact = TextureSearchEngine(cfg(backend="algorithm1"))
        for i, d in enrolled(cascade).items():
            exact.add_reference(f"ref{i}", d)
        exact.flush()
        impostor = make_descriptors(N, seed=4242)
        assert cascade.search(impostor).elapsed_us < exact.search(impostor).elapsed_us

    def test_verify_parity(self):
        engine = build_engine()
        ref = make_descriptors(M, seed=7001)
        ok, good = engine.verify(ref, noisy_copy(ref, SIGMA))
        assert ok and good >= engine.config.min_matches
        bad, none = engine.verify(ref, make_descriptors(N, seed=31337))
        assert not bad and none == 0

    def test_registry_constructed_backend(self):
        engine = TextureSearchEngine(cfg())
        assert engine.backend == "cascade"
        assert engine.kernel.has_prefilter and engine.kernel.needs_aux

    def test_knob_validation(self):
        config = cfg()
        with pytest.raises(ValueError, match="coarse_words"):
            CascadeKernel(config, n_bits=64, coarse_words=2)
        with pytest.raises(ValueError, match="coarse_threshold"):
            CascadeKernel(config, coarse_threshold=65)
        with pytest.raises(ValueError, match="fine_threshold"):
            CascadeKernel(config, fine_threshold=129)
        with pytest.raises(ValueError, match="min_hits"):
            CascadeKernel(config, min_hits=0)

    def test_zero_padded_columns_never_match(self):
        """The validity word: zero-padded columns must not survive."""
        engine = build_engine()
        sparse = make_descriptors(M, seed=55)
        sparse[:, M // 2:] = 0.0  # half the reference is padding
        engine.add_reference("sparse", sparse)
        engine.flush()
        probe = make_descriptors(N, seed=56)
        probe[:, N // 2:] = 0.0  # half the query is padding too
        result = engine.search(probe)
        assert result.cascade_pruned == 1
        assert result.best().score == 0


class TestDistributedStats:
    def test_cluster_aggregates_cascade_pruned_and_reports_stats(self):
        from repro.distributed import DistributedSearchSystem

        system = DistributedSearchSystem(n_nodes=2, engine_config=cfg())
        descs = {i: make_descriptors(M, seed=8800 + i) for i in range(8)}
        for i, d in descs.items():
            system.add(f"ref{i}", d)
        result = system.search(make_descriptors(N, seed=12345))
        assert result.cascade_pruned == len(descs)
        assert result.cascade_pruned == sum(
            r.cascade_pruned for r in result.per_node.values()
        )
        hit = system.search(noisy_copy(descs[2], SIGMA))
        assert hit.best().reference_id == "ref2"
        assert hit.cascade_pruned < len(descs)
        stats = system.stats()
        assert stats["schema_version"] == 8
        assert stats["cascade"]["enabled"] is True
        assert (
            stats["cascade"]["images_pruned_total"]
            == result.cascade_pruned + hit.cascade_pruned
        )
        assert all(n["cascade_prefilter"] for n in stats["nodes"])

    def test_group_search_rejected_like_algorithm1(self):
        # cascade inherits Algorithm 1's single-query pipeline; the
        # engine must refuse fused groups rather than skip the prefilter
        engine = build_engine()
        enrolled(engine, count=4)
        with pytest.raises(ValueError, match="multi-query"):
            engine.search_group([make_descriptors(N, seed=1), make_descriptors(N, seed=2)])


class TestCacheAccounting:
    """Satellite: packed codes ride the hybrid cache with the batch."""

    def _batches_with_aux(self, config, kernel, count=1, size=BATCH):
        builder = BatchBuilder(
            size, config.d, config.m, keep_norms=True, keep_aux=True
        )
        batches = []
        for i in range(count * size):
            matrix, norms = kernel.prepare_reference(
                make_descriptors(config.m, seed=100 + i)
            )
            sealed = builder.add(
                f"b{i // size}-{i % size}", matrix, norms,
                kernel.reference_aux(matrix),
            )
            if sealed is not None:
                batches.append(sealed)
        assert len(batches) == count
        return batches

    def _batch_with_aux(self, config, kernel, size=BATCH):
        return self._batches_with_aux(config, kernel, count=1, size=size)[0]

    def test_batch_nbytes_counts_aux(self):
        config = cfg()
        kernel = CascadeKernel(config)
        batch = self._batch_with_aux(config, kernel)
        assert batch.aux is not None
        assert batch.aux.dtype == np.uint64
        assert (
            batch.nbytes
            == batch.tensor.nbytes + batch.norms.nbytes + batch.aux.nbytes
        )

    @pytest.mark.parametrize("n_bits", [8, 64, 128, 192, 256, 512])
    def test_memory_per_image_matches_cached_bytes(self, n_bits):
        """Property: the advertised per-image footprint is exactly the
        bytes the cache accounts for, at every signature width."""
        config = cfg()
        kernel = CascadeKernel(
            config, n_bits=n_bits,
            coarse_threshold=min(16, n_bits),
            fine_threshold=min(16, n_bits),
        )
        batch = self._batch_with_aux(config, kernel)
        per_image = CascadeKernel.memory_per_image(config, n_bits=n_bits)
        assert batch.nbytes == per_image * batch.size
        # and the codes really occupy the advertised word count
        assert batch.aux.shape == (
            batch.size, config.m, words_for_bits(n_bits) + 1
        )

    def test_config_capacity_uses_cascade_footprint(self):
        config = cfg()
        assert (
            config.feature_matrix_bytes()
            == CascadeKernel.memory_per_image(config)
            == M * 128 * 4 + M * 4 + M * (words_for_bits(128) + 1) * 8
        )

    def test_demotion_and_remove_carry_aux_bytes(self):
        config = cfg()
        kernel = CascadeKernel(config)
        batches = self._batches_with_aux(config, kernel, count=2)
        nbytes = batches[0].nbytes
        device = GPUDevice(TESLA_P100)
        cache = HybridFeatureCache(
            device, gpu_budget_bytes=nbytes, host_budget_bytes=4 * nbytes
        )
        cache.add(batches[0])
        gpu_used, host_used = cache.used_bytes
        assert (gpu_used, host_used) == (nbytes, 0)
        # second add demotes the first batch — aux bytes move with it
        cache.add(batches[1])
        gpu_used, host_used = cache.used_bytes
        assert (gpu_used, host_used) == (nbytes, nbytes)
        demoted = next(iter(cache.batches()))
        assert demoted.batch.aux is not None
        # removal credits the full footprint, codes included
        assert cache.remove(batches[0].batch_id)
        assert cache.remove(batches[1].batch_id)
        assert cache.used_bytes == (0, 0)
        assert device.memory.used_bytes == 0

    def test_engine_eviction_drops_codes_with_the_batch(self):
        """Enrollment delete purges a sealed batch: codes go with it."""
        engine = build_engine()
        descs = enrolled(engine, count=BATCH)  # exactly one sealed batch
        before = engine.cache.used_bytes
        assert sum(before) > 0
        for i in range(BATCH):
            engine.remove_reference(f"ref{i}")
        assert engine.cache.used_bytes == (0, 0)
        assert engine.search(noisy_copy(descs[0], SIGMA)).matches == []
