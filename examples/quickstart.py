#!/usr/bin/env python
"""Quickstart: enrol reference textures, search, verify.

Runs entirely on synthetic SIFT feature sets (no image processing) so
it finishes in seconds.  See ``product_traceability.py`` for the full
image pipeline and ``distributed_search.py`` for the cluster service.
"""

import numpy as np

from repro import EngineConfig, TextureSearchEngine
from repro.data import SyntheticFeatureModel


def main() -> None:
    # The production configuration of the paper: asymmetric extraction
    # (m=384 reference / n=768 query features), RootSIFT, FP16 cache.
    config = EngineConfig(m=384, n=768, precision="fp16", scale_factor=0.25,
                          batch_size=64, min_matches=8)
    engine = TextureSearchEngine(config)

    # Enrol 100 "tea bricks" (one factory capture each).
    model = SyntheticFeatureModel(seed=42)
    print("enrolling 100 reference textures ...")
    for brick_id in range(100):
        capture = model.capture(brick_id, "reference").top(config.m)
        engine.add_reference(f"brick-{brick_id:03d}", capture.descriptors)
    engine.flush()
    print(f"  cached {engine.n_references} references; this engine "
          f"configuration could hold {engine.capacity_images():,} of them")

    # One-to-many search with a customer smartphone photo of brick 37.
    query = model.capture(37, "query").top(config.n)
    result = engine.search(query.descriptors)
    best = result.best()
    print(f"\nsearch over {result.images_searched} references:")
    print(f"  best match : {best.reference_id} "
          f"({best.good_matches} good matches)")
    print(f"  simulated  : {result.elapsed_us:,.0f} us "
          f"({result.throughput_images_per_s:,.0f} images/s on a {engine.device.spec.name})")
    for match in result.top(3):
        print(f"    {match.reference_id}: {match.good_matches} matches")

    # One-to-one verification.
    genuine = model.capture(37, "query", capture_index=1).top(config.n)
    impostor = model.capture(38, "query").top(config.n)
    reference = model.capture(37, "reference").top(config.m)
    same, count = engine.verify(reference.descriptors, genuine.descriptors)
    print(f"\nverify genuine pair : same={same} ({count} matches)")
    same, count = engine.verify(reference.descriptors, impostor.descriptors)
    print(f"verify impostor pair: same={same} ({count} matches)")

    # The k-NN math is a pluggable backend: the same engine API runs the
    # baselines the paper compares against (Table 1).  Here the OpenCV
    # CUDA cost model answers the same search, ~17x slower.
    baseline = TextureSearchEngine(
        config.with_updates(backend="opencv", precision="fp32")
    )
    for brick_id in range(100):
        capture = model.capture(brick_id, "reference").top(config.m)
        baseline.add_reference(f"brick-{brick_id:03d}", capture.descriptors)
    baseline_result = baseline.search(query.descriptors)
    print(f"\nbackend {baseline.backend!r}: best match "
          f"{baseline_result.best().reference_id}, "
          f"{baseline_result.throughput_images_per_s:,.0f} images/s")


if __name__ == "__main__":
    main()
