#!/usr/bin/env python
"""Capacity planning: how many reference textures fit on a node?

Reproduces the paper's capacity arithmetic across configurations —
precision, feature count m, hybrid-cache size — and shows where the
headline "20x larger capacity" (Fig. 1) comes from.
"""

from repro.bench.tables import format_table
from repro.cache import plan_capacity

GIB = 1024**3


def main() -> None:
    rows = []
    configs = [
        ("FP32, m=768, GPU only (baseline)", dict(m=768, precision="fp32")),
        ("FP16, m=768, GPU only (Sec. 6: ~85k)", dict(m=768, precision="fp16")),
        ("FP16, m=768, +64 GB host", dict(m=768, precision="fp16", host_cache_bytes=64 * 10**9)),
        ("FP16, m=384, +64 GB host", dict(m=384, precision="fp16", host_cache_bytes=64 * 10**9)),
        ("Sec. 8 container (4 GB reserved)", dict(
            m=384, precision="fp16",
            gpu_reserved_bytes=4 * GIB, host_cache_bytes=64 * 10**9,
        )),
    ]
    baseline = None
    for label, kwargs in configs:
        plan = plan_capacity(**kwargs)
        if baseline is None:
            baseline = plan.total_images
        rows.append([
            label,
            f"{plan.bytes_per_image / 1024:.1f} KiB",
            f"{plan.gpu_images:,}",
            f"{plan.host_images:,}",
            f"{plan.total_images:,}",
            f"{plan.total_images / baseline:.1f}x",
        ])
    print(format_table(
        ["configuration", "bytes/image", "GPU images", "host images", "total", "vs baseline"],
        rows,
        title="Single-node capacity (Tesla P100 16 GB)",
    ))

    sec8 = plan_capacity(m=384, precision="fp16",
                         gpu_reserved_bytes=4 * GIB, host_cache_bytes=64 * 10**9)
    print(f"\n14-container cluster: {sec8.total_images * 14 / 1e6:.1f} M cached "
          f"reference matrices (paper: 10.8 M)")


if __name__ == "__main__":
    main()
