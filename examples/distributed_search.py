#!/usr/bin/env python
"""The Sec. 8 distributed texture search service.

Builds the 14-container cluster (scaled-down functional enrolment),
drives it through the RESTful API (add / get / update / delete /
search / stats) and prints the full-scale capacity and throughput
arithmetic the paper reports (10.8 M cached matrices, 872,984 img/s).
"""

import numpy as np

from repro import DistributedSearchSystem, EngineConfig, build_api
from repro.bench.experiments import sec8_distributed
from repro.data import SyntheticFeatureModel
from repro.distributed import Request

N_NODES = 14
N_BRICKS = 42  # 3 per container, functionally enrolled


def main() -> None:
    # Functional engines run at reduced m/n so the demo is instant; the
    # capacity/throughput arithmetic below uses the paper's full scale.
    config = EngineConfig(m=96, n=128, precision="fp16", scale_factor=0.25,
                          batch_size=8, min_matches=8)
    system = DistributedSearchSystem(N_NODES, config)
    api = build_api(system)
    model = SyntheticFeatureModel(seed=8)

    print(f"enrolling {N_BRICKS} textures across {N_NODES} GPU containers via REST ...")
    for brick in range(N_BRICKS):
        capture = model.capture(brick, "reference").top(config.m)
        response = api.handle(Request("POST", "/textures", {
            "id": f"brick-{brick:04d}", "descriptors": capture.descriptors.tolist(),
        }))
        assert response.status == 201, response.body
    stats = api.handle(Request("GET", "/stats")).body
    per_node = [node["references"] for node in stats["nodes"]]
    print(f"  shard sizes: {per_node}")

    target = 17
    print(f"\nsearching for brick-{target:04d} ...")
    query = model.capture(target, "query").top(config.n)
    response = api.handle(Request("POST", "/search", {
        "descriptors": query.descriptors.tolist(), "top": 3,
    }))
    body = response.body
    for hit in body["results"]:
        print(f"  {hit['id']}: {hit['good_matches']} good matches")
    print(f"  scanned {body['images_searched']} references in "
          f"{body['elapsed_us']:,.0f} simulated us")

    print("\nexercising update and delete ...")
    new_capture = model.capture(target, "reference").top(config.m)
    put = api.handle(Request("PUT", f"/textures/brick-{target:04d}",
                             {"descriptors": new_capture.descriptors.tolist()}))
    print(f"  PUT -> {put.status} (node {put.body['node']})")
    delete = api.handle(Request("DELETE", "/textures/brick-0000"))
    print(f"  DELETE -> {delete.status}")
    print(f"  references now: {api.handle(Request('GET', '/stats')).body['references']}")

    print("\nfull-scale system arithmetic (paper Sec. 8):")
    result = sec8_distributed.run(functional_nodes=2, functional_bricks=4)
    print(result.to_text())


if __name__ == "__main__":
    main()
