#!/usr/bin/env python
"""Product traceability on the full image pipeline (the paper's use case).

Renders procedural tea-brick textures, photographs them with simulated
factory and smartphone cameras, extracts real SIFT features with the
asymmetric policy (Sec. 7), matches through the engine, and confirms
the top hit with RANSAC geometric verification (Fig. 2's final stage).

Takes ~1 minute: real Gaussian pyramids and descriptors for every image.
"""

import numpy as np

from repro import AsymmetricExtractor, AsymmetricPolicy, EngineConfig, TextureSearchEngine
from repro.core.ratio_test import ratio_test_mask
from repro.data import (
    QUERY_PROFILE,
    REFERENCE_PROFILE,
    CaptureSimulator,
    TeaBrickGenerator,
)
from repro.fp16 import pairwise_distances
from repro.geometry import ransac_verify

N_BRICKS = 8
IMAGE_SIZE = 192
M_REF, N_QUERY = 96, 128


def main() -> None:
    generator = TeaBrickGenerator(size=IMAGE_SIZE, seed=2024)
    factory_cam = CaptureSimulator(REFERENCE_PROFILE)
    phone_cam = CaptureSimulator(QUERY_PROFILE)
    extractor = AsymmetricExtractor(AsymmetricPolicy(m_reference=M_REF, n_query=N_QUERY))
    engine = TextureSearchEngine(
        EngineConfig(m=M_REF, n=N_QUERY, batch_size=4, min_matches=6, scale_factor=0.25)
    )

    print(f"manufacturing {N_BRICKS} tea bricks and enrolling factory photos ...")
    canonical = {}
    for brick_id in range(N_BRICKS):
        canonical[brick_id] = generator.brick(brick_id)
        rng = np.random.default_rng(1000 + brick_id)
        photo = factory_cam.capture(canonical[brick_id], rng)
        engine.add_reference(f"brick-{brick_id}", extractor.extract_reference(photo))
    engine.flush()

    target = N_BRICKS // 2
    print(f"\na customer photographs brick-{target} with a smartphone ...")
    rng = np.random.default_rng(99)
    customer_photo = phone_cam.capture(canonical[target], rng)
    query = extractor.extract_with_keypoints(customer_photo, budget=N_QUERY)
    print(f"  extracted {query.count} query features")

    result = engine.search(query.descriptors)
    best = result.best()
    print(f"  best match: {best.reference_id} with {best.good_matches} good matches")
    decision = "GENUINE" if best.good_matches >= engine.config.min_matches else "NOT FOUND"
    print(f"  ratio-test decision: {decision}")

    # Geometric verification of the top hit (re-extract its keypoints).
    ref_photo = factory_cam.capture(
        canonical[int(best.reference_id.split("-")[1])],
        np.random.default_rng(1000 + int(best.reference_id.split("-")[1])),
    )
    reference = extractor.extract_with_keypoints(ref_photo, budget=M_REF)
    dist = pairwise_distances(reference.descriptors, query.descriptors)
    top2 = np.sort(dist, axis=0)[:2]
    nn = np.argmin(dist, axis=0)
    mask = ratio_test_mask(top2, 0.85)
    matched = np.flatnonzero(mask)
    if len(matched) >= 4:
        src = np.array([[reference.keypoints[nn[j]].x, reference.keypoints[nn[j]].y] for j in matched])
        dst = np.array([[query.keypoints[j].x, query.keypoints[j].y] for j in matched])
        verification = ransac_verify(src, dst, "similarity", threshold=4.0)
        print(f"  geometric verification: {verification.inliers}/{verification.total} "
              f"inliers ({verification.inlier_ratio:.0%})")
        verdict = verification.inliers >= 4
    else:
        verdict = False
    print(f"  final verdict: {'traceable - genuine product' if verdict else 'inconclusive'}")

    # Cross-check: an impostor brick must NOT verify.
    print("\na counterfeit brick is photographed ...")
    fake = generator.brick(10_000)  # never enrolled
    fake_photo = phone_cam.capture(fake, np.random.default_rng(7))
    fake_result = engine.search(extractor.extract_query(fake_photo))
    fake_best = fake_result.best()
    print(f"  best match: {fake_best.reference_id} with {fake_best.good_matches} matches "
          f"(threshold {engine.config.min_matches})")
    verdict = fake_best.good_matches >= engine.config.min_matches
    print(f"  final verdict: {'!! false accept !!' if verdict else 'rejected - no enrolled texture matches'}")


if __name__ == "__main__":
    main()
