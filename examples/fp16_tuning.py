#!/usr/bin/env python
"""FP16 scale-factor tuning (Sec. 4.2 / Table 2).

Sweeps the scale factor over the paper's range on real matched feature
pairs, showing the overflow boundary, the flat compression-error
plateau, and the subnormal blow-up at tiny scales — then lets the
autoscaler pick the production value (the paper ships 2^-7).
"""

import numpy as np

from repro.bench.tables import format_table
from repro.data import SyntheticFeatureModel
from repro.errors import HalfPrecisionOverflowError
from repro.fp16 import choose_scale_factor, compression_error, max_safe_scale

SCALES = [(f"2^{p}" if p else "1", 2.0**p) for p in (0, -1, -2, -4, -7, -10, -12, -14, -16)]


def main() -> None:
    model = SyntheticFeatureModel(seed=5)
    pairs = [
        (model.capture(b, "reference").top(512).descriptors,
         model.capture(b, "query").top(512).descriptors)
        for b in range(4)
    ]

    rows = []
    for label, scale in SCALES:
        try:
            errors = [compression_error(r, q, scale) for r, q in pairs]
            rows.append([label, f"{np.mean(errors):.4%}", "ok"])
        except HalfPrecisionOverflowError as exc:
            rows.append([label, "-", f"overflow ({exc.max_value:,.0f} > 65,504)"])
    print(format_table(["scale factor", "avg compression error", "status"],
                       rows, title="Compression error vs scale factor (Eq. 2)"))

    samples = [r for r, _ in pairs]
    print(f"\nlargest overflow-safe scale: {max_safe_scale(samples):.4f}")
    choice = choose_scale_factor(samples, margin_bits=5)
    print(f"autoscaler choice (5 bits of headroom): 2^{choice.log2_scale} "
          f"= {choice.scale:g}  (the paper ships 2^-7)")
    print(f"worst-case dot product: {choice.max_dot:,.0f} "
          f"(512-normalized SIFT -> 512^2 = 262,144)")


if __name__ == "__main__":
    main()
