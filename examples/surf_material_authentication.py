#!/usr/bin/env python
"""Material authentication with SURF (d=64) descriptors.

The paper notes the engine is descriptor-agnostic ("d is 128 for SIFT,
while d is 64 for SURF", Sec. 4.1).  This example runs the whole stack
at d=64: SURF's box-filter Hessian detection on integral images, 64-D
Haar descriptors, L2 unit-normalisation (RootSIFT is SIFT-specific),
and the batched FP16 engine — halving both the cache footprint and the
GEMM work per comparison.
"""

import numpy as np

from repro.bench.tables import format_table
from repro.core import EngineConfig, TextureSearchEngine
from repro.data import QUERY_PROFILE, REFERENCE_PROFILE, CaptureSimulator, TeaBrickGenerator
from repro.features import SURFConfig, SURFExtractor

N_ITEMS = 6
IMAGE_SIZE = 160
M, N = 64, 96


def main() -> None:
    generator = TeaBrickGenerator(size=IMAGE_SIZE, seed=77)
    factory = CaptureSimulator(REFERENCE_PROFILE)
    phone = CaptureSimulator(QUERY_PROFILE)
    extractor = SURFExtractor(SURFConfig(n_features=N))

    engine = TextureSearchEngine(
        EngineConfig(d=64, m=M, n=N, batch_size=3, min_matches=5,
                     scale_factor=0.25, normalization="l2")
    )
    sift_bytes = M * 128 * 2
    surf_bytes = engine.config.feature_matrix_bytes()
    print(f"SURF cache footprint: {surf_bytes} B/item "
          f"(vs {sift_bytes} B with SIFT at the same m) — "
          f"{sift_bytes / surf_bytes:.0f}x smaller\n")

    print(f"enrolling {N_ITEMS} material samples ...")
    canonical = {}
    for item in range(N_ITEMS):
        canonical[item] = generator.brick(item)
        photo = factory.capture(canonical[item], np.random.default_rng(7000 + item))
        features = extractor.extract(photo, n_features=M)
        engine.add_reference(f"item-{item}", features.descriptors)
        print(f"  item-{item}: {features.count} SURF features")
    engine.flush()

    rows = []
    correct = 0
    for item in range(N_ITEMS):
        photo = phone.capture(canonical[item], np.random.default_rng(7100 + item))
        query = extractor.extract(photo, n_features=N)
        result = engine.search(query.descriptors)
        best = result.best()
        ok = best.reference_id == f"item-{item}" and best.score >= engine.config.min_matches
        correct += ok
        rows.append([f"item-{item}", query.count, best.reference_id,
                     best.good_matches, "OK" if ok else "MISS"])
    print()
    print(format_table(
        ["query of", "features", "best match", "good matches", "verdict"],
        rows, title="SURF identification round-trip",
    ))
    print(f"\n{correct}/{N_ITEMS} authenticated")
    print("\nsimulated per-step profile (d=64 halves the GEMM work):")
    print(engine.profile_report())


if __name__ == "__main__":
    main()
