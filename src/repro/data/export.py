"""Dataset persistence.

Accuracy experiments must be reproducible across sessions; this module
saves/loads :class:`IdentificationDataset` objects as ``.npz`` archives
(descriptor matrices + ground-truth ids), so a sweep can be re-run on
the exact same data without regenerating it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import SerializationError
from .dataset import IdentificationDataset, LabeledFeatures

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: IdentificationDataset, path: str | Path) -> Path:
    """Write a dataset to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays: dict[str, np.ndarray] = {
        "__version__": np.array([_FORMAT_VERSION]),
        "ref_ids": np.array([r.brick_id for r in dataset.references], dtype=np.int64),
        "query_ids": np.array([q.brick_id for q in dataset.queries], dtype=np.int64),
    }
    for i, ref in enumerate(dataset.references):
        arrays[f"ref_{i}"] = ref.descriptors
    for i, query in enumerate(dataset.queries):
        arrays[f"query_{i}"] = query.descriptors
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: str | Path) -> IdentificationDataset:
    """Load a :func:`save_dataset` archive."""
    path = Path(path)
    with np.load(path) as archive:
        try:
            version = int(archive["__version__"][0])
        except KeyError:
            raise SerializationError(f"{path} is not a dataset archive") from None
        if version > _FORMAT_VERSION:
            raise SerializationError(f"unsupported dataset version {version}")
        ref_ids = archive["ref_ids"]
        query_ids = archive["query_ids"]
        references = [
            LabeledFeatures(int(ref_ids[i]), archive[f"ref_{i}"])
            for i in range(len(ref_ids))
        ]
        queries = [
            LabeledFeatures(int(query_ids[i]), archive[f"query_{i}"])
            for i in range(len(query_ids))
        ]
    return IdentificationDataset(references=references, queries=queries)
