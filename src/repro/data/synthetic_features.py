"""Statistical SIFT-feature generator for large accuracy sweeps.

Extracting real SIFT from thousands of images is too slow for the
accuracy tables (Tables 2 and 7 sweep many configurations), so this
module generates feature *sets* directly from a generative model whose
statistics match what the image pipeline produces:

* each **brick** owns a pool of latent keypoints with strengths and
  canonical 128-D descriptors (non-negative, L2 norm 512, entries
  capped like SIFT's 0.2 clamp);
* a **capture** of a brick observes each keypoint with a strength- and
  capture-quality-dependent probability, perturbs its descriptor with
  capture noise, and ranks the observed features by a *noisy response*;
* reference captures (factory camera) have low descriptor noise and low
  ranking noise; query captures (smartphone) have high noise on both
  and a heavy-tailed difficulty that occasionally produces the hard
  queries responsible for the last percents of top-1 accuracy.

The asymmetric-extraction result (Table 7) follows from the ranking-
noise asymmetry: trimming a reference to its top-m features by response
removes genuinely weak keypoints, while trimming a query removes strong
keypoints mis-ranked by noise — so accuracy is far more sensitive to
``n`` than to ``m``, as the paper finds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FeatureModelConfig", "Capture", "SyntheticFeatureModel"]

SIFT_NORM = 512.0
SIFT_CLIP = 0.2 * SIFT_NORM
DESCRIPTOR_DIM = 128


@dataclass(frozen=True)
class FeatureModelConfig:
    """Generative-model parameters (defaults tuned to land the paper's
    accuracy plateau of ~97-98.5 % at m = n = 768).

    Descriptors are mixtures of a shared **visual-word prototype** and
    an idiosyncratic component: texture keypoints cluster into a small
    vocabulary (the premise of BoW retrieval), so a query feature's
    second-nearest neighbour is usually a same-word keypoint and the
    ratio test hinges on the idiosyncratic part surviving capture
    noise.  That is what makes match counts realistic (tens, not
    hundreds) and accuracy sensitive to the m/n budgets.
    """

    d: int = DESCRIPTOR_DIM
    pool_size: int = 1400
    #: visual vocabulary: number of word prototypes per model and the
    #: prototype mixing weight (0 = fully idiosyncratic descriptors).
    n_words: int = 96
    word_weight: float = 0.50
    #: descriptor perturbation (relative to the 512 norm).
    ref_descriptor_noise: float = 0.12
    query_descriptor_noise: float = 1.50
    #: lognormal sigma of the per-feature noise multipliers.
    feature_noise_spread: float = 0.7
    #: query captures add noise with capture difficulty:
    #: sigma += extra_noise_slope * max(0, -quality).
    query_extra_noise_slope: float = 0.60
    #: response = strength + N(0, rank_noise); strengths are ~Exp(1).
    ref_rank_noise: float = 0.10
    query_rank_noise: float = 0.90
    #: visibility: P(observe) = sigmoid((strength - v0 + quality)/T).
    visibility_midpoint: float = 0.55
    visibility_temperature: float = 0.35
    #: query capture quality ~ N(0, sigma) - difficulty_tail * Exp(1):
    #: the exponential tail produces the occasional terrible capture.
    query_quality_sigma: float = 0.25
    query_difficulty_tail: float = 0.40
    #: how strongly capture quality suppresses keypoint visibility
    #: (1 = fully; blur mainly corrupts descriptors rather than hiding
    #: keypoints, so the default is weak coupling).
    query_visibility_coupling: float = 0.25

    def __post_init__(self) -> None:
        if self.d <= 0 or self.pool_size <= 0:
            raise ValueError("d and pool_size must be positive")
        if self.n_words <= 0:
            raise ValueError("n_words must be positive")
        if not (0.0 <= self.word_weight < 1.0):
            raise ValueError("word_weight must be in [0, 1)")


@dataclass
class Capture:
    """One synthetic image's features, response-ranked (strongest first)."""

    brick_id: int
    descriptors: np.ndarray  # (d, count)
    keypoint_ids: np.ndarray  # (count,) indices into the brick pool

    @property
    def count(self) -> int:
        return self.descriptors.shape[1]

    def top(self, budget: int) -> "Capture":
        """The strongest ``budget`` features (already ranked)."""
        return Capture(
            self.brick_id,
            self.descriptors[:, :budget],
            self.keypoint_ids[:budget],
        )


def _normalize_sift(desc: np.ndarray) -> np.ndarray:
    """Project onto the SIFT descriptor manifold: non-negative, entries
    capped at 0.2 of the norm, L2 norm 512."""
    desc = np.maximum(desc, 0.0)
    norms = np.linalg.norm(desc, axis=0, keepdims=True)
    norms = np.maximum(norms, 1e-9)
    desc = desc / norms * SIFT_NORM
    desc = np.minimum(desc, SIFT_CLIP)
    norms = np.maximum(np.linalg.norm(desc, axis=0, keepdims=True), 1e-9)
    return (desc / norms * SIFT_NORM).astype(np.float32)


class SyntheticFeatureModel:
    """Deterministic generator of per-brick pools and captures."""

    def __init__(self, config: FeatureModelConfig | None = None, seed: int = 0) -> None:
        self.config = config or FeatureModelConfig()
        self.seed = int(seed)
        self._pool_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # The visual vocabulary is shared by *all* bricks of one model —
        # tea bricks are a single fine-grained category, so their local
        # appearances draw from one vocabulary (Sec. 2's point about
        # texture identification being harder than CBIR).
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 987654321]))
        self._words = _normalize_sift(
            rng.gamma(0.6, 1.0, size=(self.config.d, self.config.n_words))
        )

    # ------------------------------------------------------------------
    def _brick_rng(self, brick_id: int, tag: int) -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence([self.seed, int(brick_id), tag]))

    def brick_pool(self, brick_id: int) -> tuple[np.ndarray, np.ndarray]:
        """(strengths (K,), canonical descriptors (d, K)) for one brick."""
        if brick_id not in self._pool_cache:
            cfg = self.config
            rng = self._brick_rng(brick_id, 0)
            strengths = np.sort(rng.exponential(1.0, cfg.pool_size))[::-1].copy()
            # Each keypoint: its visual word's prototype plus an
            # idiosyncratic gamma component (SIFT-like sparse histogram).
            words = rng.integers(0, cfg.n_words, cfg.pool_size)
            indiv = _normalize_sift(rng.gamma(0.6, 1.0, size=(cfg.d, cfg.pool_size)))
            canon = cfg.word_weight * self._words[:, words] + (1.0 - cfg.word_weight) * indiv
            self._pool_cache[brick_id] = (strengths, _normalize_sift(canon))
        return self._pool_cache[brick_id]

    # ------------------------------------------------------------------
    def capture(
        self,
        brick_id: int,
        side: str,
        capture_index: int = 0,
    ) -> Capture:
        """Generate one capture ("reference" or "query") of a brick."""
        if side not in ("reference", "query"):
            raise ValueError(f"side must be 'reference' or 'query', got {side!r}")
        cfg = self.config
        strengths, canon = self.brick_pool(brick_id)
        rng = self._brick_rng(brick_id, 1000 + capture_index if side == "query" else 1)

        if side == "reference":
            quality = 0.0
            desc_noise = cfg.ref_descriptor_noise
            rank_noise = cfg.ref_rank_noise
        else:
            quality = float(
                rng.normal(0.0, cfg.query_quality_sigma)
                - cfg.query_difficulty_tail * rng.exponential(1.0)
            )
            desc_noise = cfg.query_descriptor_noise + cfg.query_extra_noise_slope * max(
                0.0, -quality
            )
            rank_noise = cfg.query_rank_noise

        vis_quality = quality if side == "reference" else cfg.query_visibility_coupling * quality
        logits = (strengths - cfg.visibility_midpoint + vis_quality) / cfg.visibility_temperature
        p_obs = 1.0 / (1.0 + np.exp(-logits))
        observed = rng.random(cfg.pool_size) < p_obs
        idx = np.flatnonzero(observed)
        if idx.size == 0:
            # Degenerate capture: keep the single strongest keypoint so
            # downstream shapes stay valid.
            idx = np.array([0])

        # Per-feature noise heterogeneity (lognormal multipliers): some
        # patches blur/occlude more than others within one photo, so a
        # capture's match count degrades *gradually* with quality rather
        # than all features failing the ratio test at once.
        per_feature = rng.lognormal(0.0, cfg.feature_noise_spread, idx.size)
        sigma = desc_noise * per_feature * SIFT_NORM / np.sqrt(cfg.d)
        noise = rng.normal(0.0, 1.0, size=(cfg.d, idx.size)) * sigma[None, :]
        descriptors = _normalize_sift(canon[:, idx] + noise)
        responses = strengths[idx] + rng.normal(0.0, rank_noise, idx.size)
        order = np.argsort(-responses, kind="stable")
        return Capture(
            brick_id=int(brick_id),
            descriptors=np.ascontiguousarray(descriptors[:, order]),
            keypoint_ids=idx[order].astype(np.int64),
        )

    # ------------------------------------------------------------------
    def reference_set(self, brick_ids: list[int], budget: int) -> list[Capture]:
        """One budgeted reference capture per brick."""
        return [self.capture(b, "reference").top(budget) for b in brick_ids]

    def query_set(
        self,
        brick_ids: list[int],
        budget: int,
        queries_per_brick: int = 1,
    ) -> list[Capture]:
        """Budgeted query captures; ``brick_id`` is the ground truth."""
        out = []
        for b in brick_ids:
            for q in range(queries_per_brick):
                out.append(self.capture(b, "query", capture_index=q).top(budget))
        return out
