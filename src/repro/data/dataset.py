"""Dataset containers and builders.

Two dataset flavours back the experiments:

* **image datasets** — canonical tea-brick textures rendered by
  :class:`~repro.data.teabrick.TeaBrickGenerator` plus capture
  transforms; features come from the real SIFT pipeline.  Used by the
  examples and the end-to-end tests (slow but fully faithful).
* **feature datasets** — descriptor sets straight from
  :class:`~repro.data.synthetic_features.SyntheticFeatureModel`.  Used
  by the accuracy sweeps (Tables 2 and 7), where thousands of
  extractions would dominate runtime without changing the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .synthetic_features import Capture, FeatureModelConfig, SyntheticFeatureModel
from .teabrick import TeaBrickGenerator
from .transforms import QUERY_PROFILE, REFERENCE_PROFILE, CaptureSimulator

__all__ = [
    "LabeledFeatures",
    "IdentificationDataset",
    "build_feature_dataset",
    "build_image_dataset",
]


@dataclass
class LabeledFeatures:
    """One image's descriptors with its ground-truth brick id."""

    brick_id: int
    descriptors: np.ndarray

    @property
    def count(self) -> int:
        return self.descriptors.shape[1]


@dataclass
class IdentificationDataset:
    """References (one per brick) + queries (ground truth known)."""

    references: list[LabeledFeatures] = field(default_factory=list)
    queries: list[LabeledFeatures] = field(default_factory=list)

    @property
    def n_bricks(self) -> int:
        return len(self.references)

    def reference_ids(self) -> list[int]:
        return [r.brick_id for r in self.references]


def build_feature_dataset(
    n_bricks: int,
    m_reference: int,
    n_query: int,
    queries_per_brick: int = 1,
    query_brick_fraction: float = 1.0,
    model: SyntheticFeatureModel | None = None,
    config: FeatureModelConfig | None = None,
    seed: int = 0,
) -> IdentificationDataset:
    """Synthetic-feature identification dataset.

    ``query_brick_fraction`` selects which fraction of bricks get
    queries (querying all bricks is the paper's protocol — every query
    has exactly one true reference).
    """
    if n_bricks <= 0:
        raise ValueError("n_bricks must be positive")
    if not (0.0 < query_brick_fraction <= 1.0):
        raise ValueError("query_brick_fraction must be in (0, 1]")
    model = model or SyntheticFeatureModel(config, seed=seed)
    brick_ids = list(range(n_bricks))
    refs = [
        LabeledFeatures(c.brick_id, c.descriptors)
        for c in model.reference_set(brick_ids, m_reference)
    ]
    n_query_bricks = max(1, int(round(n_bricks * query_brick_fraction)))
    queries = [
        LabeledFeatures(c.brick_id, c.descriptors)
        for c in model.query_set(brick_ids[:n_query_bricks], n_query, queries_per_brick)
    ]
    return IdentificationDataset(references=refs, queries=queries)


def build_image_dataset(
    n_bricks: int,
    extractor,
    queries_per_brick: int = 1,
    image_size: int = 256,
    seed: int = 0,
) -> IdentificationDataset:
    """Image-pipeline identification dataset.

    ``extractor`` must expose ``extract_reference(image)`` and
    ``extract_query(image)`` (e.g.
    :class:`~repro.core.asymmetric.AsymmetricExtractor`).
    """
    if n_bricks <= 0:
        raise ValueError("n_bricks must be positive")
    generator = TeaBrickGenerator(size=image_size, seed=seed)
    ref_cam = CaptureSimulator(REFERENCE_PROFILE)
    query_cam = CaptureSimulator(QUERY_PROFILE)
    dataset = IdentificationDataset()
    for brick_id in range(n_bricks):
        canonical = generator.brick(brick_id)
        rng = np.random.default_rng(np.random.SeedSequence([seed, brick_id, 77]))
        ref_img = ref_cam.capture(canonical, rng)
        dataset.references.append(
            LabeledFeatures(brick_id, extractor.extract_reference(ref_img))
        )
        for _q in range(queries_per_brick):
            query_img = query_cam.capture(canonical, rng)
            dataset.queries.append(
                LabeledFeatures(brick_id, extractor.extract_query(query_img))
            )
    return dataset
