"""Procedural tea-brick texture generator.

The paper evaluates on a proprietary dataset of 300,000 pressed Pu'er
tea-brick images (Sec. 3.2) which we cannot obtain, so this module
synthesises the closest structural equivalent: each *brick* is a
deterministic, seed-driven texture composed of

* multi-octave value noise (the pressed-leaf base relief), and
* anisotropic "flake" streaks (individual leaf fragments), each brick
  having its own random flake layout — the unique, non-repeating
  surface detail that makes texture *identification* possible.

Two images of the same brick share the latent texture but differ by
capture conditions (see :mod:`repro.data.transforms`), exactly the
property the identification task relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TeaBrickGenerator", "value_noise"]


def _smoothstep(t: np.ndarray) -> np.ndarray:
    return t * t * (3.0 - 2.0 * t)


def _unit_std(img: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-std copy (identity for constant images)."""
    out = img - img.mean()
    std = out.std()
    return out / std if std > 0 else out


def value_noise(shape: tuple[int, int], cells: int, rng: np.random.Generator) -> np.ndarray:
    """One octave of bilinear-interpolated lattice noise in [0, 1]."""
    if cells < 1:
        raise ValueError("cells must be >= 1")
    h, w = shape
    lattice = rng.random((cells + 1, cells + 1))
    ys = np.linspace(0, cells, h, endpoint=False)
    xs = np.linspace(0, cells, w, endpoint=False)
    y0 = ys.astype(np.int64)
    x0 = xs.astype(np.int64)
    ty = _smoothstep(ys - y0)[:, None]
    tx = _smoothstep(xs - x0)[None, :]
    v00 = lattice[np.ix_(y0, x0)]
    v01 = lattice[np.ix_(y0, x0 + 1)]
    v10 = lattice[np.ix_(y0 + 1, x0)]
    v11 = lattice[np.ix_(y0 + 1, x0 + 1)]
    top = v00 * (1 - tx) + v01 * tx
    bottom = v10 * (1 - tx) + v11 * tx
    return top * (1 - ty) + bottom * ty


class TeaBrickGenerator:
    """Deterministic per-brick texture synthesis.

    ``brick(brick_id)`` always returns the same canonical image for the
    same ``(seed, brick_id)`` pair — the ground truth identity the
    dataset builders rely on.
    """

    def __init__(
        self,
        size: int = 256,
        octaves: int | None = None,
        n_flakes: int | None = None,
        persistence: float = 0.8,
        seed: int = 0,
    ) -> None:
        if size < 32:
            raise ValueError("size must be >= 32")
        self.size = int(size)
        # Enough octaves to reach ~2-pixel detail: SIFT needs texture
        # energy near its finest scales or it detects almost nothing.
        self.octaves = int(octaves) if octaves is not None else max(3, int(np.log2(size)) - 2)
        if self.octaves < 1:
            raise ValueError("octaves must be >= 1")
        # Flake density per unit area (the pressed-leaf fragments are a
        # surface property, not a per-image count).
        self.n_flakes = (
            int(n_flakes) if n_flakes is not None else max(40, int(400 * (size / 256.0) ** 2))
        )
        self.persistence = float(persistence)
        self.seed = int(seed)

    def _rng_for(self, brick_id: int) -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence([self.seed, int(brick_id)]))

    def brick(self, brick_id: int) -> np.ndarray:
        """Canonical grayscale texture of one brick, float32 in [0, 1]."""
        rng = self._rng_for(brick_id)
        s = self.size
        img = np.zeros((s, s), dtype=np.float64)
        amplitude = 1.0
        total = 0.0
        for octave in range(self.octaves):
            cells = 4 * (2**octave)
            img += amplitude * value_noise((s, s), min(cells, s // 2), rng)
            total += amplitude
            amplitude *= self.persistence
        img /= total

        # Pressed-leaf flakes: short anti-aliased oriented streaks with
        # random polarity (ridges and grooves).  Widths floor at ~1 px so
        # the streak survives pixelisation at small render sizes.
        ys, xs = np.mgrid[0:s, 0:s].astype(np.float64)
        for _ in range(self.n_flakes):
            cx, cy = rng.random(2) * s
            theta = rng.random() * np.pi
            length = max(2.0, rng.uniform(0.02, 0.08) * s)
            width = max(1.0, rng.uniform(0.004, 0.012) * s)
            polarity = rng.choice([-1.0, 1.0])
            strength = rng.uniform(0.15, 0.40)
            dx = xs - cx
            dy = ys - cy
            along = dx * np.cos(theta) + dy * np.sin(theta)
            across = -dx * np.sin(theta) + dy * np.cos(theta)
            mask = np.exp(-(along / length) ** 2 - (across / width) ** 2)
            img += polarity * strength * mask

        # Fine granular relief (tea-leaf dust): band-passed white noise.
        # Bilinear value noise is too smooth to excite SIFT's finest DoG
        # scales; Gaussian-filtered white noise puts blob-like energy
        # exactly there (wavelengths of 2-6 px).  The grain carries a
        # comparable share of the variance to the coarse relief — that
        # is what makes each brick yield hundreds of keypoints, like the
        # real pressed-tea surfaces the paper photographs.
        from ..features.gaussian import gaussian_blur

        grain_fine = gaussian_blur(rng.random((s, s)).astype(np.float32), 2.0).astype(np.float64)
        grain_mid = gaussian_blur(rng.random((s, s)).astype(np.float32), 3.5).astype(np.float64)
        img = _unit_std(img) + 1.1 * _unit_std(grain_fine) + 0.5 * _unit_std(grain_mid)

        # Contrast-normalise to a fixed std (peak normalisation would let
        # one extreme flake flatten the whole texture below SIFT's
        # contrast threshold), then clip into [0, 1].
        img = _unit_std(img) * 0.16 + 0.5
        np.clip(img, 0.0, 1.0, out=img)
        return img.astype(np.float32)
