"""Capture-condition transforms.

The tea-brick dataset "has well considered the diverse image capturing
conditions, such as viewpoints, occlusions, and illuminations"
(Sec. 3.2): references come from industry cameras at the factory,
queries from customer smartphones.  :class:`CaptureSimulator` composes
the corresponding perturbations on a canonical brick texture; the
``reference`` profile is mild, the ``query`` profile aggressive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["CaptureProfile", "REFERENCE_PROFILE", "QUERY_PROFILE", "CaptureSimulator"]


@dataclass(frozen=True)
class CaptureProfile:
    """Perturbation magnitudes for one camera class."""

    max_rotation_deg: float
    max_scale_delta: float
    max_shift_frac: float
    max_perspective: float
    illumination_gain_range: tuple[float, float]
    illumination_gradient: float
    occlusion_prob: float
    max_occlusion_frac: float
    noise_sigma: float
    blur_sigma: float


#: factory capture: rigidly mounted industry camera, controlled light.
REFERENCE_PROFILE = CaptureProfile(
    max_rotation_deg=2.0,
    max_scale_delta=0.02,
    max_shift_frac=0.01,
    max_perspective=0.0,
    illumination_gain_range=(0.95, 1.05),
    illumination_gradient=0.02,
    occlusion_prob=0.0,
    max_occlusion_frac=0.0,
    noise_sigma=0.004,
    blur_sigma=0.0,
)

#: customer capture: handheld smartphone, arbitrary viewpoint and light.
QUERY_PROFILE = CaptureProfile(
    max_rotation_deg=15.0,
    max_scale_delta=0.12,
    max_shift_frac=0.04,
    max_perspective=1.5e-4,
    illumination_gain_range=(0.7, 1.25),
    illumination_gradient=0.15,
    occlusion_prob=0.3,
    max_occlusion_frac=0.12,
    noise_sigma=0.015,
    blur_sigma=0.6,
)


class CaptureSimulator:
    """Applies a :class:`CaptureProfile` to a canonical texture."""

    def __init__(self, profile: CaptureProfile) -> None:
        self.profile = profile

    def capture(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ValueError(f"expected 2-D image, got {image.shape}")
        p = self.profile
        h, w = image.shape

        # Viewpoint: similarity (+ mild perspective) warp about the centre.
        theta = np.deg2rad(rng.uniform(-p.max_rotation_deg, p.max_rotation_deg))
        scale = 1.0 + rng.uniform(-p.max_scale_delta, p.max_scale_delta)
        shift = rng.uniform(-p.max_shift_frac, p.max_shift_frac, size=2) * (h, w)
        cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
        cos_t, sin_t = np.cos(theta) / scale, np.sin(theta) / scale
        ys, xs = np.mgrid[0:h, 0:w].astype(np.float64)
        dy = ys - cy - shift[0]
        dx = xs - cx - shift[1]
        if p.max_perspective > 0:
            px, py = rng.uniform(-p.max_perspective, p.max_perspective, size=2)
            wgt = 1.0 + px * dx + py * dy
            dx = dx / wgt
            dy = dy / wgt
        src_y = cos_t * dy - sin_t * dx + cy
        src_x = sin_t * dy + cos_t * dx + cx
        warped = ndimage.map_coordinates(
            image, [src_y, src_x], order=1, mode="reflect"
        ).astype(np.float32)

        # Illumination: global gain plus a linear gradient.
        gain = rng.uniform(*p.illumination_gain_range)
        direction = rng.uniform(0, 2 * np.pi)
        ramp = (
            (xs - cx) * np.cos(direction) + (ys - cy) * np.sin(direction)
        ) / max(h, w)
        warped = warped * np.float32(gain) * (1.0 + p.illumination_gradient * ramp).astype(
            np.float32
        )

        # Occlusion: a flat random rectangle (finger / label / shadow).
        if p.occlusion_prob > 0 and rng.random() < p.occlusion_prob:
            frac = rng.uniform(0.3, 1.0) * p.max_occlusion_frac
            oh = max(2, int(h * np.sqrt(frac)))
            ow = max(2, int(w * np.sqrt(frac)))
            oy = rng.integers(0, h - oh + 1)
            ox = rng.integers(0, w - ow + 1)
            warped[oy : oy + oh, ox : ox + ow] = rng.uniform(0.0, 0.3)

        if p.blur_sigma > 0:
            warped = ndimage.gaussian_filter(warped, rng.uniform(0, p.blur_sigma))
        if p.noise_sigma > 0:
            warped = warped + rng.normal(0.0, p.noise_sigma, warped.shape).astype(np.float32)
        return np.clip(warped, 0.0, 1.0).astype(np.float32)
