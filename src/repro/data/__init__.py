"""Dataset substrate: procedural tea-brick textures, capture-condition
transforms, a statistical SIFT-feature generator for accuracy sweeps,
and dataset builders (see DESIGN.md Sec. 2 for why the paper's
proprietary dataset is replaced by these)."""

from .dataset import (
    IdentificationDataset,
    LabeledFeatures,
    build_feature_dataset,
    build_image_dataset,
)
from .export import load_dataset, save_dataset
from .synthetic_features import (
    Capture,
    FeatureModelConfig,
    SyntheticFeatureModel,
)
from .teabrick import TeaBrickGenerator, value_noise
from .transforms import (
    QUERY_PROFILE,
    REFERENCE_PROFILE,
    CaptureProfile,
    CaptureSimulator,
)

__all__ = [
    "Capture",
    "CaptureProfile",
    "CaptureSimulator",
    "FeatureModelConfig",
    "IdentificationDataset",
    "LabeledFeatures",
    "QUERY_PROFILE",
    "REFERENCE_PROFILE",
    "SyntheticFeatureModel",
    "TeaBrickGenerator",
    "build_feature_dataset",
    "build_image_dataset",
    "load_dataset",
    "save_dataset",
    "value_noise",
]
