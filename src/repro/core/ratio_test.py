"""Lowe ratio test and match counting (the CPU post-processing stage).

After the 2-NN kernel returns each query feature's nearest and second-
nearest reference distances, a query feature is a *good match* when

    d1 < ratio_threshold * d2

i.e. its best reference neighbour is distinctly closer than the runner-
up.  Two images are declared the same texture when the number of good
matches clears ``min_matches`` (Sec. 3.1).
"""

from __future__ import annotations

import numpy as np

from .results import ImageMatch, KnnResult

__all__ = [
    "ratio_test_mask",
    "batch_ratio_test_masks",
    "good_match_count",
    "match_images",
    "match_images_batch",
    "verify_pair",
]


def ratio_test_mask(distances: np.ndarray, ratio_threshold: float) -> np.ndarray:
    """Boolean mask of query features passing the ratio test.

    ``distances`` is ``(k>=2, n)`` with rows sorted ascending.  A second
    neighbour of zero distance (duplicate features) can never pass,
    matching OpenCV behaviour.
    """
    distances = np.asarray(distances)
    if distances.ndim != 2 or distances.shape[0] < 2:
        raise ValueError(f"expected (k>=2, n) distances, got {distances.shape}")
    if not (0.0 < ratio_threshold < 1.0):
        raise ValueError("ratio_threshold must be in (0, 1)")
    d1 = distances[0]
    d2 = distances[1]
    return d1 < ratio_threshold * d2


def batch_ratio_test_masks(distances: np.ndarray, ratio_threshold: float) -> np.ndarray:
    """Ratio-test masks for a whole batch in one array pass.

    ``distances`` carries any leading batch shape over the per-image
    ``(k>=2, n)`` layout — ``(batch, k, n)`` for a reference batch,
    ``(batch, n_queries, k, n)`` for a fused query group — and the
    returned boolean mask drops the ``k`` axis.  Identical per image to
    :func:`ratio_test_mask`; vectorised so the CPU post-processing of a
    sweep is one pass instead of one call per (image, query) pair.
    """
    distances = np.asarray(distances)
    if distances.ndim < 2 or distances.shape[-2] < 2:
        raise ValueError(
            f"expected (..., k>=2, n) distances, got {distances.shape}"
        )
    if not (0.0 < ratio_threshold < 1.0):
        raise ValueError("ratio_threshold must be in (0, 1)")
    d1 = distances[..., 0, :]
    d2 = distances[..., 1, :]
    return d1 < ratio_threshold * d2


def match_images_batch(
    reference_ids,
    distances: np.ndarray,
    indices: np.ndarray,
    ratio_threshold: float,
    keep_masks: bool = False,
) -> list[ImageMatch]:
    """Per-image :class:`ImageMatch` list for one ``(batch, k, n)``
    2-NN result, with the ratio test and match counting done in a
    single vectorised pass over the whole batch."""
    masks = batch_ratio_test_masks(distances, ratio_threshold)  # (batch, n)
    counts = masks.sum(axis=-1)
    n_query = distances.shape[-1]
    return [
        ImageMatch(
            reference_id=ref_id,
            good_matches=int(counts[i]),
            n_query_features=n_query,
            match_mask=masks[i] if keep_masks else None,
            matched_reference_indices=indices[i, 0][masks[i]] if keep_masks else None,
        )
        for i, ref_id in enumerate(reference_ids)
    ]


def good_match_count(distances: np.ndarray, ratio_threshold: float) -> int:
    """Number of query features passing the ratio test."""
    return int(ratio_test_mask(distances, ratio_threshold).sum())


def match_images(
    reference_id: str,
    knn: KnnResult,
    ratio_threshold: float,
    keep_mask: bool = False,
) -> ImageMatch:
    """Build an :class:`ImageMatch` from one reference's 2-NN result."""
    mask = ratio_test_mask(knn.distances, ratio_threshold)
    return ImageMatch(
        reference_id=reference_id,
        good_matches=int(mask.sum()),
        n_query_features=knn.n_query,
        match_mask=mask if keep_mask else None,
        matched_reference_indices=knn.indices[0][mask] if keep_mask else None,
    )


def verify_pair(
    knn: KnnResult,
    ratio_threshold: float,
    min_matches: int,
) -> tuple[bool, int]:
    """One-to-one verification decision: ``(same_texture, good_matches)``."""
    count = good_match_count(knn.distances, ratio_threshold)
    return count >= min_matches, count
