"""The complete identification pipeline of Fig. 2.

:class:`TextureSearchEngine` matches descriptor matrices; this module
wraps it with the stages the figure shows around it — local feature
extraction and geometric verification — into a single object a
traceability application uses directly::

    pipeline = IdentificationPipeline()
    pipeline.enroll("brick-1", factory_photo)
    decision = pipeline.identify(customer_photo)
    if decision.accepted:
        print(decision.reference_id, decision.inliers)

Geometric verification re-ranks the top candidates by RANSAC inlier
count over the matched keypoint pairs (the engine stores enrolled
keypoints for exactly this purpose) and the final decision requires
both a ratio-test match count and an inlier threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..features.keypoints import Keypoint
from ..fp16.error import pairwise_distances
from ..geometry.ransac import ransac_verify
from ..gpusim.engine_model import GPUDevice
from .asymmetric import AsymmetricExtractor, AsymmetricPolicy
from .config import EngineConfig
from .engine import TextureSearchEngine
from .ratio_test import ratio_test_mask

__all__ = ["IdentificationDecision", "IdentificationPipeline"]


@dataclass
class IdentificationDecision:
    """Outcome of one identification request."""

    accepted: bool
    reference_id: str | None
    good_matches: int
    inliers: int
    candidates_checked: int
    elapsed_us: float
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.accepted


@dataclass
class _EnrolledImage:
    descriptors: np.ndarray  # raw (pre-normalisation) descriptors, (d, count)
    keypoints: list[Keypoint] = field(default_factory=list)


class IdentificationPipeline:
    """Image in, traceability decision out (Fig. 2 end to end)."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        extractor: AsymmetricExtractor | None = None,
        device: GPUDevice | None = None,
        min_inliers: int = 6,
        verify_top: int = 3,
        host_cache_bytes: int = 0,
    ) -> None:
        self.config = config or EngineConfig(m=384, n=768, scale_factor=0.25)
        self.extractor = extractor or AsymmetricExtractor(
            AsymmetricPolicy(m_reference=self.config.m, n_query=self.config.n),
            use_rootsift=False,  # the engine applies its own normalisation
        )
        self.engine = TextureSearchEngine(
            self.config, device=device, host_cache_bytes=host_cache_bytes
        )
        if min_inliers < 2:
            raise ValueError("min_inliers must be >= 2")
        if verify_top < 1:
            raise ValueError("verify_top must be >= 1")
        self.min_inliers = int(min_inliers)
        self.verify_top = int(verify_top)
        self._enrolled: dict[str, _EnrolledImage] = {}

    # ------------------------------------------------------------------
    def enroll(self, ref_id: str, image: np.ndarray) -> int:
        """Extract reference features from a factory photo and enrol
        them; returns the number of (real) features extracted."""
        ref_id = str(ref_id)
        result = self.extractor.extract_with_keypoints(image, budget=self.config.m)
        self.engine.add_reference(ref_id, result.descriptors)
        self._enrolled[ref_id] = _EnrolledImage(
            descriptors=result.descriptors, keypoints=result.keypoints
        )
        return result.count

    def remove(self, ref_id: str) -> bool:
        self._enrolled.pop(str(ref_id), None)
        return self.engine.remove_reference(ref_id)

    @property
    def n_references(self) -> int:
        return self.engine.n_references

    # ------------------------------------------------------------------
    def _geometric_inliers(
        self,
        reference: _EnrolledImage,
        query_descriptors: np.ndarray,
        query_keypoints: list[Keypoint],
    ) -> int:
        """RANSAC inlier count between one candidate and the query."""
        if not reference.keypoints or not query_keypoints:
            return 0
        dist = pairwise_distances(reference.descriptors, query_descriptors)
        if dist.shape[0] < 2:
            return 0
        top2 = np.sort(dist, axis=0)[:2]
        nn = np.argmin(dist, axis=0)
        mask = ratio_test_mask(top2, self.config.ratio_threshold)
        matched = np.flatnonzero(mask)
        if len(matched) < 3:
            return 0
        src = np.array([[reference.keypoints[nn[j]].x, reference.keypoints[nn[j]].y]
                        for j in matched])
        dst = np.array([[query_keypoints[j].x, query_keypoints[j].y] for j in matched])
        return ransac_verify(src, dst, "similarity", threshold=4.0).inliers

    def identify(self, image: np.ndarray) -> IdentificationDecision:
        """One-to-many identification with geometric confirmation."""
        query = self.extractor.extract_with_keypoints(image, budget=self.config.n)
        if query.count < self.config.min_matches:
            return IdentificationDecision(
                accepted=False, reference_id=None, good_matches=0, inliers=0,
                candidates_checked=0, elapsed_us=0.0,
                reason=f"only {query.count} query features extracted",
            )
        result = self.engine.search(query.descriptors)
        candidates = [
            match for match in result.top(self.verify_top)
            if match.good_matches >= self.config.min_matches
        ]
        best_id, best_inliers, best_matches = None, 0, 0
        for match in candidates:
            enrolled = self._enrolled.get(match.reference_id)
            if enrolled is None:
                continue
            inliers = self._geometric_inliers(enrolled, query.descriptors, query.keypoints)
            if inliers > best_inliers:
                best_id, best_inliers, best_matches = (
                    match.reference_id, inliers, match.good_matches
                )
        accepted = best_inliers >= self.min_inliers
        if not candidates:
            reason = "no candidate cleared the ratio-test threshold"
        elif not accepted:
            reason = f"best candidate had only {best_inliers} geometric inliers"
        else:
            reason = "ratio test + geometric verification passed"
        return IdentificationDecision(
            accepted=accepted,
            reference_id=best_id if accepted else None,
            good_matches=best_matches,
            inliers=best_inliers,
            candidates_checked=len(candidates),
            elapsed_us=result.elapsed_us,
            reason=reason,
        )

    def verify(self, ref_id: str, image: np.ndarray) -> IdentificationDecision:
        """One-to-one verification of a claimed identity."""
        ref_id = str(ref_id)
        enrolled = self._enrolled.get(ref_id)
        if enrolled is None:
            return IdentificationDecision(
                accepted=False, reference_id=None, good_matches=0, inliers=0,
                candidates_checked=0, elapsed_us=0.0,
                reason=f"unknown reference {ref_id!r}",
            )
        query = self.extractor.extract_with_keypoints(image, budget=self.config.n)
        same, count = self.engine.verify(enrolled.descriptors, query.descriptors)
        inliers = (
            self._geometric_inliers(enrolled, query.descriptors, query.keypoints)
            if same else 0
        )
        accepted = same and inliers >= self.min_inliers
        return IdentificationDecision(
            accepted=accepted,
            reference_id=ref_id if accepted else None,
            good_matches=count,
            inliers=inliers,
            candidates_checked=1,
            elapsed_us=0.0,
            reason="verified" if accepted else "verification failed",
        )
