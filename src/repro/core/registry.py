"""Match-kernel backend registry.

The engine's k-NN math is pluggable: every backend implements the
:class:`~repro.core.kernels.MatchKernel` interface and is registered
here under a short name.  :class:`~repro.core.config.EngineConfig`
selects one via its ``backend`` field (with the legacy ``use_rootsift``
flag kept as a deprecated alias), and
:class:`~repro.core.engine.TextureSearchEngine` asks this module for
the kernel instance at construction time.

Built-in backends
-----------------

``algorithm2``
    The paper's RootSIFT pipeline (batched GEMM, no norm vectors) —
    the default, previously ``use_rootsift=True``.
``algorithm1``
    The paper's cuBLAS pipeline with cached ``N_R`` norms — previously
    ``use_rootsift=False``.
``garcia``
    Garcia et al. [9]: Algorithm 1 with the original modified insertion
    sort (Table 1, column 2), now runnable through the full engine.
``opencv``
    The OpenCV CUDA ``knnMatch`` cost model (Table 1, column 1).
``lsh``
    Kusamura et al. LSH compression baseline: Hamming candidate filter
    plus exact re-ranking.
``cascade``
    Cascade-hashing binary prefilter: coarse-to-fine XOR/popcount
    Hamming tests over cached sign-bit codes prune candidates before
    the exact cuBLAS 2-NN pipeline runs on the survivors.

Registration is lazy — the mapping stores import paths, so importing
this module pulls in no kernel code and no baseline code.  Third-party
kernels register classes directly with :func:`register_kernel`.
"""

from __future__ import annotations

from importlib import import_module
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import EngineConfig
    from .kernels import MatchKernel

__all__ = [
    "available_backends",
    "canonical_backend",
    "create_kernel",
    "kernel_class",
    "register_kernel",
    "resolve_backend",
]

#: built-in backends: name -> (module, class).  Lazy so that config
#: validation never triggers heavyweight imports (or import cycles).
_BUILTIN: dict[str, tuple[str, str]] = {
    "algorithm2": ("repro.core.kernels", "Algorithm2Kernel"),
    "algorithm1": ("repro.core.kernels", "Algorithm1Kernel"),
    "garcia": ("repro.baselines.adapters", "GarciaKernel"),
    "opencv": ("repro.baselines.adapters", "OpenCVKernel"),
    "lsh": ("repro.baselines.adapters", "LshKernel"),
    "cascade": ("repro.core.cascade", "CascadeKernel"),
}

#: historical / descriptive aliases.
_ALIASES: dict[str, str] = {
    "rootsift": "algorithm2",
    "cublas": "algorithm1",
}

#: classes registered at runtime (always take priority over aliases).
_CUSTOM: dict[str, type] = {}


def available_backends() -> list[str]:
    """Canonical names of every registered backend, built-ins first."""
    return list(_BUILTIN) + [n for n in _CUSTOM if n not in _BUILTIN]


def canonical_backend(name: str) -> str:
    """Resolve aliases; raise ``ValueError`` for unknown backends.

    The error lists *every* currently registered name — built-ins,
    runtime :func:`register_kernel` additions, and the aliases — so a
    typo'd config points at the real menu, not just the built-in set.
    """
    name = str(name).lower()
    name = _ALIASES.get(name, name)
    if name in _CUSTOM or name in _BUILTIN:
        return name
    aliases = ", ".join(
        f"{alias}->{target}" for alias, target in sorted(_ALIASES.items())
    )
    raise ValueError(
        f"unknown backend {name!r}; registered backends: "
        f"{', '.join(available_backends())} (aliases: {aliases})"
    )


def register_kernel(name: str, cls: type | None = None):
    """Register a kernel class under ``name`` (usable as a decorator).

    Re-registering an existing name replaces it — tests use this to
    shadow a built-in with an instrumented double.
    """

    def _register(kernel_cls: type) -> type:
        _CUSTOM[str(name).lower()] = kernel_cls
        return kernel_cls

    if cls is not None:
        return _register(cls)
    return _register


def kernel_class(name: str) -> type:
    """The kernel class registered under ``name`` (lazily imported)."""
    name = canonical_backend(name)
    if name in _CUSTOM:
        return _CUSTOM[name]
    module_name, attr = _BUILTIN[name]
    return getattr(import_module(module_name), attr)


def resolve_backend(config: "EngineConfig") -> str:
    """The backend a configuration selects.

    ``EngineConfig.backend`` wins when set; otherwise the deprecated
    ``use_rootsift`` flag picks between the paper's two algorithms.
    """
    if config.backend is not None:
        return canonical_backend(config.backend)
    return "algorithm2" if config.use_rootsift else "algorithm1"


def create_kernel(config: "EngineConfig", name: str | None = None) -> "MatchKernel":
    """Instantiate (and config-validate) the kernel for ``config``."""
    backend = canonical_backend(name) if name is not None else resolve_backend(config)
    cls = kernel_class(backend)
    cls.validate_config(config)
    return cls(config)
