"""The paper's primary contribution: the optimized 2-NN texture search
engine (Algorithms 1 & 2, batching, asymmetric extraction, ratio test)."""

from .algorithm1 import PreparedFeatures, knn_algorithm1, prepare_query, prepare_reference
from .algorithm2 import BatchKnnResult, knn_algorithm2
from .asymmetric import AsymmetricExtractor, AsymmetricPolicy
from .batching import BatchBuilder, ReferenceBatch
from .config import DEFAULT_SCALE_FACTOR, EngineConfig
from .engine import EngineStats, TextureSearchEngine
from .identification import IdentificationDecision, IdentificationPipeline
from .kernels import MatchKernel, PreparedQuery
from .query_batching import (
    MultiQueryResult,
    QueryBatchPoint,
    knn_algorithm2_multiquery,
    query_batch_tradeoff,
)
from .ratio_test import (
    batch_ratio_test_masks,
    good_match_count,
    match_images,
    match_images_batch,
    ratio_test_mask,
    verify_pair,
)
from .registry import available_backends, create_kernel, register_kernel, resolve_backend
from .results import GroupSearchResult, ImageMatch, KnnResult, SearchResult
from .topk import functional_topk, insertion_topk, top2_scan

__all__ = [
    "AsymmetricExtractor",
    "AsymmetricPolicy",
    "BatchBuilder",
    "BatchKnnResult",
    "DEFAULT_SCALE_FACTOR",
    "EngineConfig",
    "EngineStats",
    "GroupSearchResult",
    "IdentificationDecision",
    "IdentificationPipeline",
    "ImageMatch",
    "KnnResult",
    "MatchKernel",
    "MultiQueryResult",
    "PreparedFeatures",
    "PreparedQuery",
    "QueryBatchPoint",
    "ReferenceBatch",
    "SearchResult",
    "TextureSearchEngine",
    "available_backends",
    "batch_ratio_test_masks",
    "create_kernel",
    "functional_topk",
    "good_match_count",
    "insertion_topk",
    "knn_algorithm1",
    "knn_algorithm2",
    "knn_algorithm2_multiquery",
    "match_images",
    "match_images_batch",
    "query_batch_tradeoff",
    "prepare_query",
    "prepare_reference",
    "ratio_test_mask",
    "register_kernel",
    "resolve_backend",
    "top2_scan",
    "verify_pair",
]
