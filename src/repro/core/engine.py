"""The texture search engine — the paper's contributions, composed.

:class:`TextureSearchEngine` owns one simulated GPU, a hybrid feature
cache, an engine configuration and one *match kernel* (the pluggable
k-NN backend, see :mod:`repro.core.kernels` and
:mod:`repro.core.registry`), and exposes the paper's two tasks:

* :meth:`verify` — one-to-one verification of a (reference, query) pair;
* :meth:`search` — one-to-many search of a query against every cached
  reference image, batch by batch.

Every optimization is a config knob (precision, backend, batch size,
sort kind, streams, asymmetric m/n), so the benchmark harness can
reproduce each table by toggling exactly one of them.  All three entry
points run on a single private cache-sweep executor
(:meth:`_execute_sweep`) that owns the batch loop, H2D transfer
accounting, tombstone filtering, the multi-stream overlap correction
and stats — the kernels only see one batch at a time.

Timing: with a single stream the engine's event-driven device model is
exact (all stages serialise in-stream, as in Tables 1/3/5).  With
multiple streams the overlap is computed by the Table-6 steady-state
scheduler model, because real stream concurrency is a property the
serial NumPy execution cannot exhibit.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..cache.hybrid import CachedBatch, CacheLocation, HybridFeatureCache
from ..gpusim.device import TESLA_P100
from ..gpusim.engine_model import GPUDevice
from ..obs import current_deadline, default_registry, default_tracer
from ..pipeline.scheduler import plan_streams
from .batching import BatchBuilder, ReferenceBatch
from .config import EngineConfig
from .kernels import MatchKernel, PreparedQuery
from .registry import create_kernel
from .results import GroupSearchResult, ImageMatch, SearchResult

__all__ = ["TextureSearchEngine", "EngineStats"]

_REG = default_registry()
_TRACER = default_tracer()
_SWEEPS = _REG.counter(
    "repro_engine_sweeps_total",
    "Cache sweeps executed by search engines (search + fused groups)",
)
_SWEEP_US = _REG.histogram(
    "repro_engine_sweep_us",
    "Simulated time of one full cache sweep",
)
_STEP_US = _REG.histogram(
    "repro_engine_step_us",
    "Simulated per-sweep time by pipeline step (StepProfiler deltas)",
    ("step",),
)
_H2D_BYTES = _REG.counter(
    "repro_engine_h2d_bytes_total",
    "Bytes staged host-to-device for host-resident reference batches",
)
_SWEEP_LOOKUPS = _REG.counter(
    "repro_cache_sweep_lookups_total",
    "Reference-batch touches during sweeps, by cache residency",
    ("result",),
)
_DEADLINE_SWEEPS = _REG.counter(
    "repro_engine_deadline_expired_total",
    "Cache sweeps cut short by an expired request deadline",
)
_IMAGES_PRUNED = _REG.counter(
    "repro_engine_images_pruned_total",
    "Cached reference images skipped by candidate-routing restriction "
    "(first-tier pruning, not faults)",
)
_CASCADE_PRUNED = _REG.counter(
    "repro_engine_cascade_pruned_total",
    "Reference images whose exact GEMM was skipped by the cascade "
    "Hamming prefilter (the prune cost itself is still charged)",
)
#: pre-bound children — the sweep loop must not pay label resolution.
_SWEEP_HIT = _SWEEP_LOOKUPS.labels(result="hit")
_SWEEP_MISS = _SWEEP_LOOKUPS.labels(result="miss")

#: prefix of tombstoned slot ids (never collides with user ids, which
#: the REST layer validates).
_DEAD_PREFIX = "\x00dead:"


@dataclass
class EngineStats:
    """Aggregate simulated statistics for one engine."""

    references: int = 0
    searches: int = 0
    images_compared: int = 0
    total_search_us: float = 0.0
    step_times_us: dict = field(default_factory=dict)

    @property
    def mean_throughput_images_per_s(self) -> float:
        if self.total_search_us <= 0:
            return 0.0
        return self.images_compared / (self.total_search_us * 1e-6)


@dataclass
class _SweepOutcome:
    """What one cache sweep produced: per-query matches + accounting.

    ``images_skipped`` counts cached images the sweep never reached
    because the request's deadline expired mid-sweep; ``partial`` is
    True whenever that count is non-zero.  ``images_pruned`` counts
    images in batches the candidate restriction excluded — a
    deliberate first-tier decision that never marks the outcome
    partial.  ``cascade_pruned`` counts images whose exact GEMM the
    kernel's Hamming prefilter skipped — those images still count into
    ``images`` (they were examined and report zero matches), unlike
    routing-pruned ones.
    """

    per_query_matches: list[list[ImageMatch]]
    images: int
    elapsed_us: float
    images_skipped: int = 0
    images_pruned: int = 0
    cascade_pruned: int = 0

    @property
    def partial(self) -> bool:
        return self.images_skipped > 0


class TextureSearchEngine:
    """One-GPU texture identification engine.

    Parameters
    ----------
    config:
        Optimization knobs; see :class:`EngineConfig`.  The
        ``backend`` field selects the match kernel.
    device:
        Simulated GPU (defaults to a fresh Tesla P100).
    host_cache_bytes:
        Second-level (host) cache budget; 0 disables the hybrid cache
        and the engine holds references in GPU memory only.
    gpu_cache_bytes:
        First-level budget; defaults to all free device memory.
    pinned:
        Host cache memory is pinned (Table 5).
    kernel:
        Pre-built :class:`~repro.core.kernels.MatchKernel` instance,
        overriding registry resolution (e.g. an ``LshKernel`` with
        non-default codec parameters).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        device: GPUDevice | None = None,
        host_cache_bytes: int = 0,
        gpu_cache_bytes: int | None = None,
        pinned: bool = True,
        kernel: MatchKernel | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.kernel = kernel if kernel is not None else create_kernel(self.config)
        self.device = device or GPUDevice(TESLA_P100)
        self.cache = HybridFeatureCache(
            self.device,
            gpu_budget_bytes=gpu_cache_bytes,
            host_budget_bytes=host_cache_bytes,
            pinned=pinned,
        )
        cfg = self.config
        self._builder = BatchBuilder(
            batch_size=cfg.batch_size,
            d=cfg.d,
            m=cfg.m,
            keep_norms=self.kernel.needs_norms,
            keep_aux=self.kernel.needs_aux,
        )
        self.stats = EngineStats()
        #: live id -> (ReferenceBatch | None, slot index); ``None`` means
        #: the slot is still in the builder's pending batch.  Deleting or
        #: updating a reference renames its slot to a dead marker —
        #: batches are immutable, so the slot is still *compared* (honest
        #: cost) but its matches are dropped from results.
        self._locations: dict[str, tuple[ReferenceBatch | None, int]] = {}
        self._dead_slots = 0
        #: sealed batch id -> count of tombstoned slots.  When every
        #: slot of a batch is dead the whole batch is purged from the
        #: cache (capacity released in whole-batch units — swap
        #: accounting stays batch-granular).
        self._dead_in_batch: dict[int, int] = {}
        #: images_compared as of the last :meth:`reset_profile`, so
        #: profile-report means cover only the profiled window.
        self._images_at_profile_reset = 0

    @property
    def backend(self) -> str:
        """Name of the active match-kernel backend."""
        return self.kernel.name

    # ------------------------------------------------------------------
    # enrolment
    # ------------------------------------------------------------------
    def prepare_reference_matrix(self, descriptors: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Shape/normalise/quantise one reference descriptor matrix.

        Input is ``(d, count)`` FP32, response-ranked (the extractor's
        output order); output is the backend's cached representation:
        normalised if the kernel requires it, trimmed/zero-padded to
        ``m``, converted to engine precision, with ``N_R`` norms when
        the kernel needs them.
        """
        return self.kernel.prepare_reference(descriptors)

    def add_reference(self, ref_id: str, descriptors: np.ndarray) -> None:
        """Enrol one reference image's descriptors into the cache.

        Re-adding an existing id is an *update*: the old slot is
        tombstoned and the new matrix appended.
        """
        ref_id = str(ref_id)
        if ref_id in self._locations:
            self.remove_reference(ref_id)
        matrix, norms = self.prepare_reference_matrix(descriptors)
        aux = self.kernel.reference_aux(matrix) if self.kernel.needs_aux else None
        self._locations[ref_id] = (None, self._builder.pending)
        flushed = self._builder.add(ref_id, matrix, norms, aux)
        if flushed is not None:
            self._seal(flushed)
        self.stats.references += 1

    def _seal(self, batch: ReferenceBatch) -> None:
        """Install a completed batch and repoint its slots' locations.

        A batch whose every slot was tombstoned while still pending is
        never cached at all — there is nothing live to sweep; partially
        dead batches seed the per-batch dead count so later deletes can
        purge them once the last live slot goes.
        """
        dead = sum(
            1 for slot_id in batch.ids if slot_id.startswith(_DEAD_PREFIX)
        )
        if dead >= batch.size:
            return
        self.cache.add(batch)
        if dead:
            self._dead_in_batch[batch.batch_id] = dead
        for idx, slot_id in enumerate(batch.ids):
            if slot_id in self._locations:
                self._locations[slot_id] = (batch, idx)

    def add_prepared_reference(
        self,
        ref_id: str,
        matrix: np.ndarray,
        norms: np.ndarray | None = None,
    ) -> None:
        """Enrol an *already prepared* matrix (engine precision/scale,
        kernel normalisation applied, padded to ``(d, m)``).

        This is the warm-restart path: :meth:`export_records` emits
        stored-domain matrices, and re-applying the preprocessing to
        them would corrupt them (RootSIFT is not idempotent).
        """
        cfg = self.config
        ref_id = str(ref_id)
        matrix = np.asarray(matrix)
        if matrix.shape != (cfg.d, cfg.m):
            raise ValueError(f"prepared matrix must be ({cfg.d}, {cfg.m}), got {matrix.shape}")
        expected = np.float16 if cfg.precision == "fp16" else np.float32
        if matrix.dtype != expected:
            raise ValueError(f"prepared matrix must be {expected}, got {matrix.dtype}")
        if self.kernel.needs_norms and norms is None:
            raise ValueError(f"backend {self.backend!r} engines require the N_R vector")
        if ref_id in self._locations:
            self.remove_reference(ref_id)
        aux = self.kernel.reference_aux(matrix) if self.kernel.needs_aux else None
        self._locations[ref_id] = (None, self._builder.pending)
        flushed = self._builder.add(ref_id, matrix, norms, aux)
        if flushed is not None:
            self._seal(flushed)
        self.stats.references += 1

    def export_records(self):
        """Serialize every live reference's *stored* matrix.

        Returns a list of :class:`~repro.distributed.FeatureRecord` in
        enrolment-compatible form: feed them to
        :meth:`import_records` on an engine with the same configuration
        to rebuild the cache (e.g. after a container restart).
        """
        from ..distributed.serialization import FeatureRecord

        records = []
        for ref_id, (batch, slot) in self._locations.items():
            if batch is None:
                matrix = self._builder.pending_matrix(slot)
            else:
                matrix = batch.tensor[slot]
            records.append(
                FeatureRecord(
                    ref_id=ref_id,
                    matrix=np.asarray(matrix),
                    precision=self.config.precision,
                    scale=self.config.effective_scale,
                )
            )
        return records

    def import_records(self, records) -> int:
        """Re-enrol :meth:`export_records` output; returns the count.

        Records must match this engine's precision and scale — a
        mismatch means they were exported under a different
        configuration and would silently corrupt distances.
        """
        cfg = self.config
        count = 0
        for record in records:
            if record.precision != cfg.precision:
                raise ValueError(
                    f"record {record.ref_id!r} is {record.precision}, "
                    f"engine is {cfg.precision}"
                )
            if abs(record.scale - cfg.effective_scale) > 1e-12:
                raise ValueError(
                    f"record {record.ref_id!r} has scale {record.scale}, "
                    f"engine uses {cfg.effective_scale}"
                )
            norms = self.kernel.norms_for_stored(record.matrix) if self.kernel.needs_norms else None
            self.add_prepared_reference(record.ref_id, record.matrix, norms)
            count += 1
        return count

    def remove_reference(self, ref_id: str) -> bool:
        """Tombstone a reference; returns whether it was enrolled."""
        ref_id = str(ref_id)
        location = self._locations.pop(ref_id, None)
        if location is None:
            return False
        batch, slot = location
        marker = f"{_DEAD_PREFIX}{self._dead_slots}"
        self._dead_slots += 1
        if batch is None:
            self._builder.rename(slot, marker)
        else:
            batch.ids[slot] = marker
            dead = self._dead_in_batch.get(batch.batch_id, 0) + 1
            if dead >= batch.size:
                # every slot is tombstoned: purge the whole batch so the
                # cache releases its capacity (batch-granular, like swap)
                self.cache.remove(batch.batch_id)
                self._dead_in_batch.pop(batch.batch_id, None)
            else:
                self._dead_in_batch[batch.batch_id] = dead
        return True

    def has_reference(self, ref_id: str) -> bool:
        return str(ref_id) in self._locations

    def flush(self) -> None:
        """Seal the in-progress (partial) batch so it becomes searchable."""
        flushed = self._builder.flush()
        if flushed is not None:
            self._seal(flushed)

    @property
    def n_references(self) -> int:
        """Live (non-tombstoned) enrolled references."""
        return len(self._locations)

    def capacity_images(self) -> int:
        """The paper's capacity metric for this engine's configuration."""
        return self.cache.capacity_images(self.config.feature_matrix_bytes())

    # ------------------------------------------------------------------
    # query preparation
    # ------------------------------------------------------------------
    def prepare_query_matrix(self, descriptors: np.ndarray) -> np.ndarray:
        """Shape/normalise/quantise one query descriptor matrix to
        ``(d, n)`` engine precision (pure transform, never charged)."""
        return self.kernel.query_matrix(descriptors)

    # ------------------------------------------------------------------
    # the cache-sweep executor
    # ------------------------------------------------------------------
    def _execute_sweep(
        self,
        query: PreparedQuery,
        n_queries: int,
        keep_masks: bool = False,
        batches: Iterable[CachedBatch] | None = None,
        record_stats: bool = True,
        honor_deadline: bool = True,
        candidate_ids: set[str] | frozenset[str] | None = None,
    ) -> _SweepOutcome:
        """The one batch loop every match path runs on.

        Owns, for every backend: H2D transfer accounting for
        host-resident batches, tombstone filtering, the multi-stream
        overlap correction (Sec. 6.2) and stats/profile accumulation.
        ``batches`` overrides the cache iteration (``verify`` passes a
        transient single-image batch); ``record_stats`` is off for
        sweeps that are not searches.

        ``candidate_ids`` restricts the exact sweep to a routing
        tier's nominees (:mod:`repro.routing`): a reference batch with
        no live nominated slot is skipped outright (no H2D staging, no
        GEMM, no simulated cost) and its images counted into
        ``images_pruned``; in batches that *are* swept — the GEMM runs
        at full batch width, the honest cost of the immutable (batch,
        d, m) layout — matches are filtered to the nominated ids, so
        results depend only on the candidate set, never on batch
        co-location.

        When a request deadline (:func:`repro.obs.current_deadline`) is
        active, the loop charges the budget with each batch's simulated
        time and stops sweeping once it expires: remaining batches are
        counted into ``images_skipped`` instead of compared, and the
        outcome comes back ``partial``.  The batches that *were* swept
        produce bit-identical matches to a full sweep's prefix.

        Prefilter backends (``kernel.has_prefilter``) add a stage in
        front of the exact match: ``prefilter_batch`` runs on the
        cached aux codes *before* any H2D staging, its cost charged
        through the gpusim popcount model.  A batch with no survivor is
        short-circuited — no transfer, no GEMM — and its images report
        zero matches (they still count into ``images``: the prefilter
        *examined* them, unlike routing-pruned batches it never saw);
        partial survivors are handed to ``match_batch`` so pruned slots
        skip their per-image GEMM.  ``cascade_pruned`` counts the
        skipped GEMMs.
        """
        cfg = self.config
        deadline = current_deadline() if honor_deadline else None
        profile_before = self.device.profiler.as_dict() if record_stats else {}
        sweep_cm = (
            _TRACER.span(
                "engine.sweep", layer="engine",
                backend=self.kernel.name, queries=n_queries,
            )
            if _TRACER.enabled
            else nullcontext()
        )
        with sweep_cm as sweep_span:
            start_us = self.device.synchronize()
            per_query: list[list[ImageMatch]] = [[] for _ in range(n_queries)]
            images = 0
            host_images = 0
            images_skipped = 0
            images_pruned = 0
            cascade_pruned = 0
            charged_at_us = start_us
            prefilter_active = (
                self.kernel.has_prefilter and query.matrix.ndim == 2
            )
            source = self.cache.batches() if batches is None else batches
            traced = _TRACER.enabled
            for cached in source:
                if candidate_ids is not None and not any(
                    slot_id in candidate_ids for slot_id in cached.batch.ids
                ):
                    # no nominee lives here: the batch is never staged
                    # or compared, and no simulated time is charged.
                    images_pruned += cached.batch.size
                    continue
                if deadline is not None and deadline.expired:
                    # an expired deadline stops the sweep: remaining
                    # batches are never staged or compared.
                    images_skipped += cached.batch.size
                    continue
                batch = cached.batch
                resident = cached.location is not CacheLocation.HOST
                survivors = None
                if prefilter_active:
                    # the prefilter runs on the small cached codes before
                    # any feature staging; its popcount cost is charged.
                    survivors = self.kernel.prefilter_batch(self.device, batch, query)
                    if survivors is not None:
                        cascade_pruned += batch.size - int(survivors.sum())
                fully_pruned = survivors is not None and not survivors.any()
                if record_stats:
                    (_SWEEP_HIT if resident else _SWEEP_MISS).inc()
                batch_cm = (
                    _TRACER.span(
                        "cache.batch", layer="cache",
                        batch_id=batch.batch_id, images=batch.size,
                        location=cached.location.value,
                    )
                    if traced
                    else nullcontext()
                )
                with batch_cm:
                    if not resident and not fully_pruned:
                        # one H2D per reference batch per *sweep* — a query
                        # group shares the transfer, it is not paid per query
                        self.device.h2d(batch.nbytes, pinned=self.cache.pinned)
                        _H2D_BYTES.inc(batch.nbytes)
                        host_images += batch.size
                    if fully_pruned:
                        # no survivor: the batch never transfers and the
                        # exact stage is skipped outright.
                        groups = [self._pruned_matches(batch, keep_masks)]
                    elif query.matrix.ndim == 3:  # a prepared query *group*
                        groups = self.kernel.match_batch_multi(self.device, batch, query, keep_masks)
                    elif survivors is not None:
                        groups = [
                            self.kernel.match_batch(
                                self.device, batch, query, keep_masks,
                                survivors=survivors,
                            )
                        ]
                    else:
                        groups = [self.kernel.match_batch(self.device, batch, query, keep_masks)]
                    # tombstone filtering: resolve the batch's dead slots once
                    # (kernels emit one match per slot, in slot order), then
                    # drop them from every query's list by index.
                    alive: list[int] | None = None
                    if self._dead_slots or candidate_ids is not None:
                        alive = [
                            i for i, slot_id in enumerate(batch.ids)
                            if not slot_id.startswith(_DEAD_PREFIX)
                            and (candidate_ids is None or slot_id in candidate_ids)
                        ]
                        if len(alive) == batch.size:
                            alive = None
                    for q, matches in enumerate(groups):
                        if alive is not None:
                            matches = [matches[i] for i in alive]
                        per_query[q].extend(matches)
                    images += batch.size
                if deadline is not None:
                    # charge per batch (non-mutating clock read) so the
                    # expiry check above sees this batch's cost.
                    now_us = self.device.elapsed_us()
                    deadline.charge(now_us - charged_at_us)
                    charged_at_us = now_us
            elapsed = self.device.synchronize() - start_us

            if cfg.streams > 1 and host_images:
                # Replace the serial estimate for the host-resident part by
                # the multi-stream overlap model (Sec. 6.2).  A query group
                # widens the fused GEMM to ``n_queries * n`` columns while
                # the per-batch H2D transfer stays the same, so the plan is
                # computed at the group's fused width — the transfer is
                # amortised across the group instead of charged per query.
                plan = plan_streams(
                    self.device.spec, self.device.cal, cfg.streams, cfg.batch_size,
                    m=cfg.m, n=cfg.n * n_queries, d=cfg.d, precision=cfg.precision,
                    tensor_core=cfg.tensor_core, pinned=self.cache.pinned,
                    with_norms=self.kernel.needs_norms,
                )
                gpu_fraction = (images - host_images) / images if images else 0.0
                elapsed = (
                    elapsed * gpu_fraction
                    + host_images / plan.throughput_images_per_s * 1e6
                )

            if record_stats:
                self.stats.searches += n_queries
                self.stats.images_compared += images * n_queries
                self.stats.total_search_us += elapsed
                _SWEEPS.inc()
                _SWEEP_US.observe(elapsed)
                for name, total in self.device.profiler.as_dict().items():
                    delta = total - profile_before.get(name, 0.0)
                    if delta:
                        self.stats.step_times_us[name] = (
                            self.stats.step_times_us.get(name, 0.0) + delta
                        )
                        _STEP_US.labels(step=name).observe(delta)
            if images_skipped:
                _DEADLINE_SWEEPS.inc()
            if images_pruned and record_stats:
                _IMAGES_PRUNED.inc(images_pruned)
            if cascade_pruned and record_stats:
                _CASCADE_PRUNED.inc(cascade_pruned)
            if sweep_span is not None:
                sweep_span.set(sim_elapsed_us=elapsed, images=images,
                               images_skipped=images_skipped,
                               images_pruned=images_pruned,
                               cascade_pruned=cascade_pruned)
        return _SweepOutcome(
            per_query_matches=per_query,
            images=images,
            elapsed_us=elapsed,
            images_skipped=images_skipped,
            images_pruned=images_pruned,
            cascade_pruned=cascade_pruned,
        )

    def _pruned_matches(self, batch: ReferenceBatch, keep_masks: bool) -> list[ImageMatch]:
        """Zero-match entries for a fully Hamming-pruned batch — one per
        slot, in slot order, so the tombstone/candidate filtering below
        treats them exactly like kernel output."""
        n = self.config.n
        return [
            ImageMatch(
                reference_id=slot_id,
                good_matches=0,
                n_query_features=n,
                match_mask=np.zeros(n, dtype=bool) if keep_masks else None,
                matched_reference_indices=(
                    np.zeros(0, dtype=np.int32) if keep_masks else None
                ),
            )
            for slot_id in batch.ids
        ]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self,
        query_descriptors: np.ndarray,
        keep_masks: bool = False,
        candidate_ids: set[str] | frozenset[str] | None = None,
    ) -> SearchResult:
        """One-to-many search over every cached reference image.

        ``candidate_ids`` (from a :mod:`repro.routing` tier) restricts
        the sweep to the nominated references — see
        :meth:`_execute_sweep`; ``None`` keeps the exhaustive path
        bit-identical to the pre-routing engine.
        """
        self.flush()
        query = self.kernel.prepare_query(self.device, query_descriptors)
        outcome = self._execute_sweep(
            query, n_queries=1, keep_masks=keep_masks, candidate_ids=candidate_ids
        )
        return SearchResult(
            matches=outcome.per_query_matches[0],
            elapsed_us=outcome.elapsed_us,
            images_searched=outcome.images,
            partial=outcome.partial,
            images_skipped=outcome.images_skipped,
            images_pruned=outcome.images_pruned,
            cascade_pruned=outcome.cascade_pruned,
        )

    def search_group(
        self,
        query_descriptor_list: list[np.ndarray],
        keep_masks: bool = False,
        candidate_ids: set[str] | frozenset[str] | None = None,
    ) -> GroupSearchResult:
        """Fused query-group search (Sec. 5.3 extension) — the serving
        tier's unit of work.

        The whole group is answered in *one* sweep over the cache:
        every reference batch is transferred (H2D) once for the group,
        the GEMMs fuse to ``group * n`` query columns, tombstones are
        filtered once per batch, and the multi-stream overlap
        correction is applied at the fused width.  Higher throughput,
        but every query's ``elapsed_us`` is the group's completion time
        (the latency cost the paper warns about — quantified by the
        ``serving`` bench experiment).  Requires a multi-query backend
        (the RootSIFT Algorithm-2 pipeline).
        """
        if not self.kernel.supports_multiquery:
            raise ValueError(
                "query-group search requires a multi-query backend (the RootSIFT "
                f"Algorithm-2 pipeline); backend {self.backend!r} does not support it"
            )
        if not query_descriptor_list:
            return GroupSearchResult()
        self.flush()
        query = self.kernel.prepare_query_many(self.device, query_descriptor_list)
        n_queries = len(query_descriptor_list)
        outcome = self._execute_sweep(
            query, n_queries=n_queries, keep_masks=keep_masks,
            candidate_ids=candidate_ids,
        )
        return GroupSearchResult(
            results=[
                SearchResult(
                    matches=outcome.per_query_matches[q],
                    elapsed_us=outcome.elapsed_us,
                    images_searched=outcome.images,
                    partial=outcome.partial,
                    images_skipped=outcome.images_skipped,
                    images_pruned=outcome.images_pruned,
                    cascade_pruned=outcome.cascade_pruned,
                )
                for q in range(n_queries)
            ],
            elapsed_us=outcome.elapsed_us,
            images_searched=outcome.images,
            partial=outcome.partial,
            images_skipped=outcome.images_skipped,
            images_pruned=outcome.images_pruned,
            cascade_pruned=outcome.cascade_pruned,
        )

    def search_many(
        self,
        query_descriptor_list: list[np.ndarray],
        candidate_ids: set[str] | frozenset[str] | None = None,
    ) -> list[SearchResult]:
        """Query-batched one-to-many search; per-query view of
        :meth:`search_group` (kept for API compatibility)."""
        return self.search_group(
            query_descriptor_list, candidate_ids=candidate_ids
        ).results

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(
        self,
        reference_descriptors: np.ndarray,
        query_descriptors: np.ndarray,
    ) -> tuple[bool, int]:
        """One-to-one verification: ``(same_texture, good_matches)``."""
        cfg = self.config
        ref_matrix, norms = self.prepare_reference_matrix(reference_descriptors)
        aux = self.kernel.reference_aux(ref_matrix) if self.kernel.needs_aux else None
        query = self.kernel.prepare_query(self.device, query_descriptors)
        transient = ReferenceBatch(
            batch_id=-1,
            ids=["\x00verify"],
            tensor=ref_matrix[None, ...],
            norms=norms[None, ...] if norms is not None else None,
            aux=aux[None, ...] if aux is not None else None,
        )
        outcome = self._execute_sweep(
            query,
            n_queries=1,
            batches=[CachedBatch(batch=transient, location=CacheLocation.GPU)],
            record_stats=False,
            honor_deadline=False,  # a 1:1 verification is never sheddable
        )
        match = outcome.per_query_matches[0][0]
        return match.good_matches >= cfg.min_matches, match.good_matches

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def profile_report(self) -> str:
        """Per-step simulated-time breakdown of this engine's work so
        far, formatted like the paper's Table 1/3 rows.

        Covers every search/verify since construction (or the last
        :meth:`reset_profile`); per-image means use the number of image
        comparisons performed *in the profiled window*.
        """
        from ..bench.tables import format_table

        images = max(self.images_since_profile_reset, 1)
        rows = []
        total = 0.0
        for record in self.device.profiler.records():
            rows.append(
                [record.name, round(record.total_us, 1),
                 round(record.total_us / images, 3), record.calls]
            )
            total += record.total_us
        rows.append(["TOTAL", round(total, 1), round(total / images, 3), ""])
        header = (
            f"{self.device.spec.name} | {self.config.precision} {self.kernel.describe()}"
            f" | m={self.config.m} n={self.config.n} batch={self.config.batch_size}"
        )
        return format_table(
            ["step", "total (us)", "us/image", "calls"], rows, title=header
        )

    @property
    def images_since_profile_reset(self) -> int:
        """Image comparisons performed since the last :meth:`reset_profile`."""
        return self.stats.images_compared - self._images_at_profile_reset

    def reset_profile(self) -> None:
        """Clear the step profiler and simulated clock (stats survive,
        but profile-report means restart from this point)."""
        self.device.reset_timing()
        self._images_at_profile_reset = self.stats.images_compared
