"""The texture search engine — the paper's contributions, composed.

:class:`TextureSearchEngine` owns one simulated GPU, a hybrid feature
cache and an engine configuration, and exposes the paper's two tasks:

* :meth:`verify` — one-to-one verification of a (reference, query) pair;
* :meth:`search` — one-to-many search of a query against every cached
  reference image, batch by batch.

Every optimization is a config knob (precision, RootSIFT, batch size,
sort kind, streams, asymmetric m/n), so the benchmark harness can
reproduce each table by toggling exactly one of them.

Timing: with a single stream the engine's event-driven device model is
exact (all stages serialise in-stream, as in Tables 1/3/5).  With
multiple streams the overlap is computed by the Table-6 steady-state
scheduler model, because real stream concurrency is a property the
serial NumPy execution cannot exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache.hybrid import CacheLocation, HybridFeatureCache
from ..features.rootsift import l2_normalize, rootsift
from ..features.selection import pad_or_trim
from ..fp16.convert import to_scaled_fp16
from ..gpusim.device import TESLA_P100
from ..gpusim.engine_model import GPUDevice
from ..pipeline.scheduler import plan_streams
from .algorithm1 import knn_algorithm1, prepare_query, prepare_reference
from .algorithm2 import knn_algorithm2
from .batching import BatchBuilder, ReferenceBatch
from .config import EngineConfig
from .ratio_test import match_images, verify_pair
from .results import ImageMatch, SearchResult

__all__ = ["TextureSearchEngine", "EngineStats"]

#: prefix of tombstoned slot ids (never collides with user ids, which
#: the REST layer validates).
_DEAD_PREFIX = "\x00dead:"


@dataclass
class EngineStats:
    """Aggregate simulated statistics for one engine."""

    references: int = 0
    searches: int = 0
    images_compared: int = 0
    total_search_us: float = 0.0
    step_times_us: dict = field(default_factory=dict)

    @property
    def mean_throughput_images_per_s(self) -> float:
        if self.total_search_us <= 0:
            return 0.0
        return self.images_compared / (self.total_search_us * 1e-6)


class TextureSearchEngine:
    """One-GPU texture identification engine.

    Parameters
    ----------
    config:
        Optimization knobs; see :class:`EngineConfig`.
    device:
        Simulated GPU (defaults to a fresh Tesla P100).
    host_cache_bytes:
        Second-level (host) cache budget; 0 disables the hybrid cache
        and the engine holds references in GPU memory only.
    gpu_cache_bytes:
        First-level budget; defaults to all free device memory.
    pinned:
        Host cache memory is pinned (Table 5).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        device: GPUDevice | None = None,
        host_cache_bytes: int = 0,
        gpu_cache_bytes: int | None = None,
        pinned: bool = True,
    ) -> None:
        self.config = config or EngineConfig()
        self.device = device or GPUDevice(TESLA_P100)
        self.cache = HybridFeatureCache(
            self.device,
            gpu_budget_bytes=gpu_cache_bytes,
            host_budget_bytes=host_cache_bytes,
            pinned=pinned,
        )
        cfg = self.config
        self._builder = BatchBuilder(
            batch_size=cfg.batch_size,
            d=cfg.d,
            m=cfg.m,
            keep_norms=not cfg.use_rootsift,
        )
        self.stats = EngineStats()
        #: live id -> (ReferenceBatch | None, slot index); ``None`` means
        #: the slot is still in the builder's pending batch.  Deleting or
        #: updating a reference renames its slot to a dead marker —
        #: batches are immutable, so the slot is still *compared* (honest
        #: cost) but its matches are dropped from results.
        self._locations: dict[str, tuple[ReferenceBatch | None, int]] = {}
        self._dead_slots = 0

    # ------------------------------------------------------------------
    # enrolment
    # ------------------------------------------------------------------
    def _to_engine_precision(self, matrix: np.ndarray) -> np.ndarray:
        if self.config.precision == "fp16":
            return to_scaled_fp16(matrix, self.config.scale_factor).values
        return np.asarray(matrix, dtype=np.float32)

    def prepare_reference_matrix(self, descriptors: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Shape/normalise/quantise one reference descriptor matrix.

        Input is ``(d, count)`` FP32, response-ranked (the extractor's
        output order); output is the cached representation:
        RootSIFT-transformed if configured, trimmed/zero-padded to
        ``m``, converted to engine precision, with ``N_R`` norms when
        Algorithm 1 needs them.
        """
        cfg = self.config
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2 or descriptors.shape[0] != cfg.d:
            raise ValueError(
                f"descriptors must be ({cfg.d}, count), got {descriptors.shape}"
            )
        if cfg.use_rootsift:
            matrix = pad_or_trim(self._unit_normalize(descriptors), cfg.m)
            return self._to_engine_precision(matrix), None
        matrix = pad_or_trim(descriptors, cfg.m)
        prepared = prepare_reference(matrix, cfg.precision, cfg.effective_scale)
        return prepared.values, prepared.norms

    def add_reference(self, ref_id: str, descriptors: np.ndarray) -> None:
        """Enrol one reference image's descriptors into the cache.

        Re-adding an existing id is an *update*: the old slot is
        tombstoned and the new matrix appended.
        """
        ref_id = str(ref_id)
        if ref_id in self._locations:
            self.remove_reference(ref_id)
        matrix, norms = self.prepare_reference_matrix(descriptors)
        self._locations[ref_id] = (None, self._builder.pending)
        flushed = self._builder.add(ref_id, matrix, norms)
        if flushed is not None:
            self._seal(flushed)
        self.stats.references += 1

    def _seal(self, batch: ReferenceBatch) -> None:
        """Install a completed batch and repoint its slots' locations."""
        self.cache.add(batch)
        for idx, slot_id in enumerate(batch.ids):
            if slot_id in self._locations:
                self._locations[slot_id] = (batch, idx)

    def add_prepared_reference(
        self,
        ref_id: str,
        matrix: np.ndarray,
        norms: np.ndarray | None = None,
    ) -> None:
        """Enrol an *already prepared* matrix (engine precision/scale,
        RootSIFT applied, padded to ``(d, m)``).

        This is the warm-restart path: :meth:`export_records` emits
        stored-domain matrices, and re-applying the preprocessing to
        them would corrupt them (RootSIFT is not idempotent).
        """
        cfg = self.config
        ref_id = str(ref_id)
        matrix = np.asarray(matrix)
        if matrix.shape != (cfg.d, cfg.m):
            raise ValueError(f"prepared matrix must be ({cfg.d}, {cfg.m}), got {matrix.shape}")
        expected = np.float16 if cfg.precision == "fp16" else np.float32
        if matrix.dtype != expected:
            raise ValueError(f"prepared matrix must be {expected}, got {matrix.dtype}")
        if not cfg.use_rootsift and norms is None:
            raise ValueError("Algorithm-1 engines require the N_R vector")
        if ref_id in self._locations:
            self.remove_reference(ref_id)
        self._locations[ref_id] = (None, self._builder.pending)
        flushed = self._builder.add(ref_id, matrix, norms)
        if flushed is not None:
            self._seal(flushed)
        self.stats.references += 1

    def export_records(self):
        """Serialize every live reference's *stored* matrix.

        Returns a list of :class:`~repro.distributed.FeatureRecord` in
        enrolment-compatible form: feed them to
        :meth:`import_records` on an engine with the same configuration
        to rebuild the cache (e.g. after a container restart).
        """
        from ..distributed.serialization import FeatureRecord

        records = []
        for ref_id, (batch, slot) in self._locations.items():
            if batch is None:
                matrix = self._builder.pending_matrix(slot)
            else:
                matrix = batch.tensor[slot]
            records.append(
                FeatureRecord(
                    ref_id=ref_id,
                    matrix=np.asarray(matrix),
                    precision=self.config.precision,
                    scale=self.config.effective_scale,
                )
            )
        return records

    def import_records(self, records) -> int:
        """Re-enrol :meth:`export_records` output; returns the count.

        Records must match this engine's precision and scale — a
        mismatch means they were exported under a different
        configuration and would silently corrupt distances.
        """
        cfg = self.config
        count = 0
        for record in records:
            if record.precision != cfg.precision:
                raise ValueError(
                    f"record {record.ref_id!r} is {record.precision}, "
                    f"engine is {cfg.precision}"
                )
            if abs(record.scale - cfg.effective_scale) > 1e-12:
                raise ValueError(
                    f"record {record.ref_id!r} has scale {record.scale}, "
                    f"engine uses {cfg.effective_scale}"
                )
            norms = None
            if not cfg.use_rootsift:
                v = record.matrix.astype(np.float32)
                norms = np.einsum("dc,dc->c", v, v)
                if cfg.precision == "fp16":
                    # match prepare_reference's FP16-stored N_R exactly
                    norms = np.clip(norms, 0, 65504).astype(np.float16)
                norms = norms.astype(np.float32)
            self.add_prepared_reference(record.ref_id, record.matrix, norms)
            count += 1
        return count

    def remove_reference(self, ref_id: str) -> bool:
        """Tombstone a reference; returns whether it was enrolled."""
        ref_id = str(ref_id)
        location = self._locations.pop(ref_id, None)
        if location is None:
            return False
        batch, slot = location
        marker = f"{_DEAD_PREFIX}{self._dead_slots}"
        self._dead_slots += 1
        if batch is None:
            self._builder.rename(slot, marker)
        else:
            batch.ids[slot] = marker
        return True

    def has_reference(self, ref_id: str) -> bool:
        return str(ref_id) in self._locations

    def flush(self) -> None:
        """Seal the in-progress (partial) batch so it becomes searchable."""
        flushed = self._builder.flush()
        if flushed is not None:
            self._seal(flushed)

    @property
    def n_references(self) -> int:
        """Live (non-tombstoned) enrolled references."""
        return len(self._locations)

    def capacity_images(self) -> int:
        """The paper's capacity metric for this engine's configuration."""
        return self.cache.capacity_images(self.config.feature_matrix_bytes())

    # ------------------------------------------------------------------
    # query preparation
    # ------------------------------------------------------------------
    def prepare_query_matrix(self, descriptors: np.ndarray) -> np.ndarray:
        """Shape/normalise/quantise one query descriptor matrix to
        ``(d, n)`` engine precision."""
        cfg = self.config
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2 or descriptors.shape[0] != cfg.d:
            raise ValueError(
                f"descriptors must be ({cfg.d}, count), got {descriptors.shape}"
            )
        if cfg.use_rootsift:
            descriptors = self._unit_normalize(descriptors)
        matrix = pad_or_trim(descriptors, cfg.n)
        return self._to_engine_precision(matrix)

    def _unit_normalize(self, descriptors: np.ndarray) -> np.ndarray:
        """Unit-norm mapping for the Algorithm-2 path (config-selected)."""
        if not descriptors.size:
            return descriptors
        if self.config.normalization == "rootsift":
            return rootsift(descriptors)
        return l2_normalize(descriptors)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _match_batch(
        self,
        batch: ReferenceBatch,
        query_matrix: np.ndarray,
        keep_masks: bool,
    ) -> list[ImageMatch]:
        cfg = self.config
        if cfg.use_rootsift:
            result = knn_algorithm2(
                self.device,
                batch.tensor,
                query_matrix,
                scale=cfg.effective_scale,
                k=cfg.k,
                precision=cfg.precision,
                tensor_core=cfg.tensor_core,
            )
            self.device.cpu_postprocess(batch.size, cfg.precision, cfg.n)
            return [
                match_images(batch.ids[i], result.image(i), cfg.ratio_threshold, keep_masks)
                for i in range(batch.size)
            ]
        # Algorithm 1: per-image loop (the paper batches only the
        # RootSIFT pipeline).
        matches = []
        for i in range(batch.size):
            ref = _PreparedView(batch.tensor[i], batch.norms[i], cfg.precision, cfg.effective_scale)
            knn = knn_algorithm1(self.device, ref, self._prepared_query, k=cfg.k,
                                 sort_kind=cfg.sort_kind)
            self.device.cpu_postprocess(1, cfg.precision, cfg.n)
            matches.append(match_images(batch.ids[i], knn, cfg.ratio_threshold, keep_masks))
        return matches

    def search(self, query_descriptors: np.ndarray, keep_masks: bool = False) -> SearchResult:
        """One-to-many search over every cached reference image."""
        cfg = self.config
        self.flush()
        query_matrix = self.prepare_query_matrix(query_descriptors)
        if not cfg.use_rootsift:
            self._prepared_query = prepare_query(
                self.device, pad_or_trim(np.asarray(query_descriptors, dtype=np.float32), cfg.n),
                cfg.precision, cfg.effective_scale,
            )
        start_us = self.device.synchronize()
        all_matches: list[ImageMatch] = []
        images = 0
        host_images = 0
        for cached in self.cache.batches():
            batch = cached.batch
            if cached.location is CacheLocation.HOST:
                self.device.h2d(batch.nbytes, pinned=self.cache.pinned)
                host_images += batch.size
            matches = self._match_batch(batch, query_matrix, keep_masks)
            if self._dead_slots:
                matches = [m for m in matches if not m.reference_id.startswith(_DEAD_PREFIX)]
            all_matches.extend(matches)
            images += batch.size
        elapsed = self.device.synchronize() - start_us

        if cfg.streams > 1 and host_images:
            # Replace the serial estimate for the host-resident part by
            # the multi-stream overlap model (Sec. 6.2).
            plan = plan_streams(
                self.device.spec, self.device.cal, cfg.streams, cfg.batch_size,
                m=cfg.m, n=cfg.n, d=cfg.d, precision=cfg.precision,
                tensor_core=cfg.tensor_core, pinned=self.cache.pinned,
                with_norms=not cfg.use_rootsift,
            )
            gpu_images = images - host_images
            gpu_fraction = gpu_images / images if images else 0.0
            elapsed = elapsed * gpu_fraction + host_images / plan.throughput_images_per_s * 1e6

        self.stats.searches += 1
        self.stats.images_compared += images
        self.stats.total_search_us += elapsed
        for name, total in self.device.profiler.as_dict().items():
            self.stats.step_times_us[name] = self.stats.step_times_us.get(name, 0.0) + total
        return SearchResult(matches=all_matches, elapsed_us=elapsed, images_searched=images)

    def search_many(self, query_descriptor_list: list[np.ndarray]) -> list[SearchResult]:
        """Query-batched one-to-many search (Sec. 5.3 extension).

        All queries are answered in one sweep over the cache with fused
        GEMMs — higher throughput, but every query's ``elapsed_us`` is
        the whole group's completion time (the latency cost the paper
        warns about).  Requires the RootSIFT (Algorithm 2) pipeline.
        """
        cfg = self.config
        if not cfg.use_rootsift:
            raise ValueError("search_many requires the RootSIFT (Algorithm 2) pipeline")
        if not query_descriptor_list:
            return []
        from .query_batching import knn_algorithm2_multiquery

        self.flush()
        queries = np.stack(
            [self.prepare_query_matrix(q) for q in query_descriptor_list]
        )
        n_queries = queries.shape[0]
        start_us = self.device.synchronize()
        per_query_matches: list[list[ImageMatch]] = [[] for _ in range(n_queries)]
        images = 0
        for cached in self.cache.batches():
            batch = cached.batch
            if cached.location is CacheLocation.HOST:
                self.device.h2d(batch.nbytes, pinned=self.cache.pinned)
            result = knn_algorithm2_multiquery(
                self.device, batch.tensor, queries,
                scale=cfg.effective_scale, k=cfg.k,
                precision=cfg.precision, tensor_core=cfg.tensor_core,
            )
            self.device.cpu_postprocess(batch.size * n_queries, cfg.precision, cfg.n)
            for q in range(n_queries):
                view = result.query(q)
                matches = [
                    match_images(batch.ids[i], view.image(i), cfg.ratio_threshold)
                    for i in range(batch.size)
                ]
                if self._dead_slots:
                    matches = [m for m in matches if not m.reference_id.startswith(_DEAD_PREFIX)]
                per_query_matches[q].extend(matches)
            images += batch.size
        elapsed = self.device.synchronize() - start_us
        self.stats.searches += n_queries
        self.stats.images_compared += images * n_queries
        self.stats.total_search_us += elapsed
        return [
            SearchResult(matches=per_query_matches[q], elapsed_us=elapsed,
                         images_searched=images)
            for q in range(n_queries)
        ]

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(
        self,
        reference_descriptors: np.ndarray,
        query_descriptors: np.ndarray,
    ) -> tuple[bool, int]:
        """One-to-one verification: ``(same_texture, good_matches)``."""
        cfg = self.config
        ref_matrix, norms = self.prepare_reference_matrix(reference_descriptors)
        query_matrix = self.prepare_query_matrix(query_descriptors)
        if cfg.use_rootsift:
            result = knn_algorithm2(
                self.device, ref_matrix[None, ...], query_matrix,
                scale=cfg.effective_scale, k=cfg.k, precision=cfg.precision,
                tensor_core=cfg.tensor_core,
            )
            knn = result.image(0)
        else:
            ref = _PreparedView(ref_matrix, norms, cfg.precision, cfg.effective_scale)
            query = prepare_query(self.device, pad_or_trim(
                np.asarray(query_descriptors, dtype=np.float32), cfg.n),
                cfg.precision, cfg.effective_scale)
            knn = knn_algorithm1(self.device, ref, query, k=cfg.k, sort_kind=cfg.sort_kind)
        self.device.cpu_postprocess(1, cfg.precision, cfg.n)
        return verify_pair(knn, cfg.ratio_threshold, cfg.min_matches)


    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def profile_report(self) -> str:
        """Per-step simulated-time breakdown of this engine's work so
        far, formatted like the paper's Table 1/3 rows.

        Covers every search/verify since construction (or the last
        :meth:`reset_profile`); per-image means use the number of image
        comparisons performed.
        """
        from ..bench.tables import format_table

        images = max(self.stats.images_compared, 1)
        rows = []
        total = 0.0
        for record in self.device.profiler.records():
            rows.append(
                [record.name, round(record.total_us, 1),
                 round(record.total_us / images, 3), record.calls]
            )
            total += record.total_us
        rows.append(["TOTAL", round(total, 1), round(total / images, 3), ""])
        norm = (
            f" + {self.config.normalization}" if self.config.use_rootsift else " (Alg. 1)"
        )
        header = (
            f"{self.device.spec.name} | {self.config.precision}{norm}"
            f" | m={self.config.m} n={self.config.n} batch={self.config.batch_size}"
        )
        return format_table(
            ["step", "total (us)", "us/image", "calls"], rows, title=header
        )

    def reset_profile(self) -> None:
        """Clear the step profiler and simulated clock (stats survive)."""
        self.device.reset_timing()


class _PreparedView:
    """Adapter presenting a cached (matrix, norms) pair to Algorithm 1."""

    def __init__(self, values: np.ndarray, norms: np.ndarray, precision: str, scale: float) -> None:
        self.values = values
        self.norms = norms
        self.precision = precision
        self.scale = scale

    @property
    def count(self) -> int:
        return self.values.shape[1]

    @property
    def d(self) -> int:
        return self.values.shape[0]
