"""Batching of reference feature matrices (Sec. 5.2, Fig. 3).

Individually, one 768 x 128 reference matrix offers too little data
reuse to fill a GPU; stacking ``batch_size`` of them into a single
batched GEMM raises arithmetic intensity and is the paper's second
optimization.  :class:`BatchBuilder` accumulates prepared reference
matrices into fixed-shape ``(batch, d, m)`` blocks; the block is also
the swap granularity of the hybrid cache (Sec. 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ReferenceBatch", "BatchBuilder"]


@dataclass
class ReferenceBatch:
    """One GEMM-ready stack of reference matrices.

    ``tensor`` is ``(size, d, m)`` in engine precision (FP16 values are
    pre-scaled); ``norms`` is ``(size, m)`` when Algorithm 1 needs the
    ``N_R`` vectors, else ``None``.  ``aux`` carries kernel-specific
    per-image side data — the cascade prefilter's ``(size, m, words)``
    packed sign-bit codes — and is counted into :attr:`nbytes`, so the
    hybrid cache's capacity, eviction and ``remove()`` accounting cover
    it exactly like the feature tensors (the batch is the swap unit).
    """

    batch_id: int
    ids: list[str]
    tensor: np.ndarray
    norms: np.ndarray | None = None
    aux: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.tensor.shape[0]

    @property
    def nbytes(self) -> int:
        total = self.tensor.nbytes
        if self.norms is not None:
            total += self.norms.nbytes
        if self.aux is not None:
            total += self.aux.nbytes
        return total

    def __post_init__(self) -> None:
        if self.tensor.ndim != 3:
            raise ValueError(f"tensor must be (batch, d, m), got {self.tensor.shape}")
        if len(self.ids) != self.tensor.shape[0]:
            raise ValueError(
                f"{len(self.ids)} ids for a batch of {self.tensor.shape[0]}"
            )
        if self.norms is not None and self.norms.shape != (
            self.tensor.shape[0],
            self.tensor.shape[2],
        ):
            raise ValueError(f"norms shape {self.norms.shape} does not match tensor")
        if self.aux is not None and self.aux.shape[0] != self.tensor.shape[0]:
            raise ValueError(
                f"aux leading dim {self.aux.shape[0]} != batch size {self.tensor.shape[0]}"
            )


class BatchBuilder:
    """Accumulates reference matrices into :class:`ReferenceBatch` blocks.

    Matrices must share the ``(d, m)`` shape (the engine pads/trims to
    the configured ``m`` before adding).  The in-progress batch is
    flushed automatically when full, or explicitly via :meth:`flush`
    (the final, possibly partial batch).
    """

    def __init__(
        self,
        batch_size: int,
        d: int,
        m: int,
        keep_norms: bool = False,
        keep_aux: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = int(batch_size)
        self.d = int(d)
        self.m = int(m)
        self.keep_norms = keep_norms
        self.keep_aux = keep_aux
        self._ids: list[str] = []
        self._matrices: list[np.ndarray] = []
        self._norms: list[np.ndarray] = []
        self._aux: list[np.ndarray] = []
        self._next_batch_id = 0
        self._completed: list[ReferenceBatch] = []

    def add(
        self,
        ref_id: str,
        matrix: np.ndarray,
        norms: np.ndarray | None = None,
        aux: np.ndarray | None = None,
    ) -> ReferenceBatch | None:
        """Add one prepared matrix; returns a batch if one just filled."""
        matrix = np.asarray(matrix)
        if matrix.shape != (self.d, self.m):
            raise ValueError(
                f"matrix shape {matrix.shape} != expected ({self.d}, {self.m})"
            )
        if self.keep_norms:
            if norms is None:
                raise ValueError("this builder requires N_R norms per matrix")
            norms = np.asarray(norms)
            if norms.shape != (self.m,):
                raise ValueError(f"norms shape {norms.shape} != ({self.m},)")
            self._norms.append(norms)
        if self.keep_aux:
            if aux is None:
                raise ValueError("this builder requires per-matrix aux data")
            self._aux.append(np.asarray(aux))
        self._ids.append(str(ref_id))
        self._matrices.append(matrix)
        if len(self._ids) == self.batch_size:
            return self.flush()
        return None

    @property
    def pending(self) -> int:
        return len(self._ids)

    def rename(self, position: int, new_id: str) -> None:
        """Rename a pending slot (used for tombstoning before the batch
        seals)."""
        self._ids[position] = str(new_id)

    def pending_matrix(self, position: int) -> np.ndarray:
        """The matrix of a pending (unsealed) slot."""
        return self._matrices[position]

    def flush(self) -> ReferenceBatch | None:
        """Emit the in-progress (possibly partial) batch, or ``None``."""
        if not self._ids:
            return None
        tensor = np.stack(self._matrices, axis=0)
        norms = np.stack(self._norms, axis=0) if self.keep_norms else None
        aux = np.stack(self._aux, axis=0) if self.keep_aux else None
        batch = ReferenceBatch(
            batch_id=self._next_batch_id, ids=self._ids, tensor=tensor,
            norms=norms, aux=aux,
        )
        self._next_batch_id += 1
        self._ids = []
        self._matrices = []
        self._norms = []
        self._aux = []
        self._completed.append(batch)
        return batch

    @property
    def completed_batches(self) -> list[ReferenceBatch]:
        return list(self._completed)
