"""Query batching (the extension Sec. 5.3 discusses but defers).

"Similar to the batch process for reference feature matrix, the query
feature matrix can also be batched for higher performance.  However,
the search latency also increases" — the paper leaves the trade-off to
the DNN-serving literature.  This module implements it: ``Q_batch``
query matrices are concatenated column-wise into one ``(d, Q*n)``
matrix, so a single batched GEMM serves every (reference, query) pair
and the top-2 scan sees ``batch * Q * n`` columns.

Throughput rises (more data reuse per cached reference batch, more scan
occupancy); *per-query latency* becomes the whole group's completion
time.  :func:`query_batch_tradeoff` quantifies both from the calibrated
models — the ablation the paper hand-waves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import HalfPrecisionOverflowError
from ..gpusim.calibration import KernelCalibration
from ..gpusim.device import DeviceSpec
from ..gpusim.engine_model import GPUDevice
from ..gpusim.kernels import (
    d2h_result_us,
    dtype_bytes,
    elementwise_us,
    gemm_us,
    postprocess_us,
    top2_scan_us,
)
from ..gpusim.stream import Stream
from .algorithm2 import BatchKnnResult
from .topk import functional_topk

__all__ = ["MultiQueryResult", "knn_algorithm2_multiquery", "QueryBatchPoint", "query_batch_tradeoff"]


@dataclass
class MultiQueryResult:
    """Top-k results for every (reference image, query) pair.

    ``distances``/``indices`` have shape ``(batch, n_queries, k, n)``.
    """

    distances: np.ndarray
    indices: np.ndarray

    def query(self, q: int) -> BatchKnnResult:
        """The per-query view, shaped like a single-query Algorithm 2 run."""
        return BatchKnnResult(
            distances=np.ascontiguousarray(self.distances[:, q]),
            indices=np.ascontiguousarray(self.indices[:, q]),
        )

    @property
    def n_queries(self) -> int:
        return self.distances.shape[1]


def knn_algorithm2_multiquery(
    device: GPUDevice,
    references: np.ndarray,
    queries: np.ndarray,
    scale: float = 1.0,
    k: int = 2,
    precision: str = "fp16",
    tensor_core: bool = False,
    stream: Optional[Stream] = None,
) -> MultiQueryResult:
    """Batched-reference x batched-query 2-NN.

    ``references`` is ``(batch, d, m)``; ``queries`` is ``(Q, d, n)``.
    Functionally equivalent to running Algorithm 2 once per query, but
    charged as one fused GEMM + one wide scan.
    """
    references = np.asarray(references)
    queries = np.asarray(queries)
    if references.ndim != 3 or queries.ndim != 3:
        raise ValueError("references must be (batch, d, m) and queries (Q, d, n)")
    if references.shape[1] != queries.shape[1]:
        raise ValueError(
            f"dimension mismatch: references d={references.shape[1]}, "
            f"queries d={queries.shape[1]}"
        )
    batch, d, m = references.shape
    n_queries, _, n = queries.shape
    if not (1 <= k <= m):
        raise ValueError(f"k={k} out of range for m={m}")

    # Column-concatenate queries: (d, Q*n).
    q_all = np.transpose(queries, (1, 0, 2)).reshape(d, n_queries * n)

    if precision == "fp16":
        from ..blas.gemm import batched_hgemm

        prod, overflow = batched_hgemm(
            device, references, q_all, alpha=1.0, tensor_core=tensor_core, stream=stream
        )
        if overflow:
            raise HalfPrecisionOverflowError(scale, float(np.abs(prod).max()))
        a = -2.0 * prod
        const = 2.0 * scale * scale
    elif precision == "fp32":
        device.gemm(m, n_queries * n, d, batch=batch, dtype="fp32", stream=stream, step="GEMM")
        a = -2.0 * np.einsum(
            "bkm,kn->bmn",
            references.astype(np.float32),
            q_all.astype(np.float32),
            optimize=True,
        )
        const = 2.0
    else:
        raise ValueError(f"precision must be 'fp16' or 'fp32', got {precision!r}")

    device.top2_scan(m, batch * n_queries * n, dtype=precision, stream=stream, step="Top-2 sort")
    columns = np.transpose(a, (1, 0, 2)).reshape(m, batch * n_queries * n)
    top_vals, top_idx = functional_topk(columns, k)

    device.elementwise(k * batch * n_queries * n, dtype=precision, stream=stream, step="sqrt")
    sq = top_vals + np.float32(const)
    np.maximum(sq, 0.0, out=sq)
    dist = np.sqrt(sq, dtype=np.float32)
    if precision == "fp16":
        dist /= np.float32(scale)

    device.d2h_result(n_queries * n, batch=batch, k=k, dtype=precision, stream=stream)
    distances = dist.reshape(k, batch, n_queries, n).transpose(1, 2, 0, 3)
    indices = top_idx.reshape(k, batch, n_queries, n).transpose(1, 2, 0, 3).astype(np.int32)
    return MultiQueryResult(
        distances=np.ascontiguousarray(distances),
        indices=np.ascontiguousarray(indices),
    )


@dataclass(frozen=True)
class QueryBatchPoint:
    """One point of the throughput/latency trade-off curve."""

    query_batch: int
    throughput_images_per_s: float
    latency_ms_per_query: float


def query_batch_tradeoff(
    spec: DeviceSpec,
    cal: KernelCalibration,
    query_batches: list[int],
    reference_count: int = 100_000,
    ref_batch: int = 256,
    m: int = 384,
    n: int = 768,
    d: int = 128,
    precision: str = "fp16",
    host_resident: bool = True,
) -> list[QueryBatchPoint]:
    """Throughput vs. latency as the query batch grows.

    One query group must scan *all* ``reference_count`` references;
    latency is that full sweep's duration, throughput counts image
    comparisons (pairs) per second.

    With ``host_resident`` references (the hybrid-cache regime where
    query batching actually pays) every sweep streams each reference
    batch over PCIe *once*, so a larger query group amortises the
    transfer across more comparisons — this is the mechanism behind
    Sec. 5.3's "higher performance".
    """
    if reference_count < ref_batch:
        raise ValueError("reference_count must cover at least one batch")
    from ..gpusim.pcie import h2d_time_us

    points = []
    n_ref_batches = reference_count // ref_batch
    transfer = (
        h2d_time_us(spec, ref_batch * m * d * dtype_bytes(precision), pinned=True)
        if host_resident
        else 0.0
    )
    for qb in query_batches:
        if qb < 1:
            raise ValueError("query batch must be >= 1")
        compute = (
            gemm_us(spec, cal, m, qb * n, d, ref_batch, precision)
            + top2_scan_us(spec, cal, m, ref_batch * qb * n, precision)
            + elementwise_us(spec, cal, 2 * ref_batch * qb * n, precision)
            + d2h_result_us(spec, cal, qb * n, ref_batch, 2, precision)
            + postprocess_us(cal, ref_batch * qb, precision, n)
        )
        # Single-stream regime: transfer and compute serialise; the
        # transfer is paid once per reference batch per sweep.
        per_ref_batch = max(transfer, 0.0) + compute
        sweep_us = per_ref_batch * n_ref_batches
        pairs = reference_count * qb
        points.append(
            QueryBatchPoint(
                query_batch=qb,
                throughput_images_per_s=pairs / sweep_us * 1e6,
                latency_ms_per_query=sweep_us / 1e3,
            )
        )
    return points
