"""Cascade-hashing binary prefilter backend (ROADMAP item 1).

GPU Cascade Hashing (Xu et al.) and CUDA LATCH (Parker et al.) both
show that a cheap XOR/popcount Hamming stage in front of exact matching
prunes most candidates at equal accuracy.  :class:`CascadeKernel`
applies the idea to this engine: every reference image's stored matrix
is sign-binarized into packed uint64 codes (the shared
:mod:`repro.features.binarize` helpers, same machinery as the LSH
baseline codec) and cached *alongside* the FP16/FP32 features in the
``ReferenceBatch.aux`` slot, so the hybrid cache accounts and evicts
codes with the batch.  At query time a coarse-to-fine Hamming test runs
per batch:

* **coarse** — the first ``coarse_words`` uint64 words of each
  signature are compared pairwise; only pairs within
  ``coarse_threshold`` bits advance (the bucket test);
* **fine** — surviving pairs are compared at full ``n_bits`` width; a
  query feature whose best fine distance is within ``fine_threshold``
  is a *hit*, and an image with fewer than ``min_hits`` hits is pruned.

Only surviving images reach the exact cuBLAS 2-NN pipeline (Algorithm
1's steps 3-8); pruned images report zero good matches without any
GEMM — and a batch with no survivor is short-circuited by the engine
before its H2D transfer.  Both Hamming stages are charged through the
:func:`repro.gpusim.kernels.hamming_us` integer popcount cost model, so
the simulated speedup reflects popcount throughput vs GEMM FLOPs
rather than being free.

The default knobs are *conservative*: sign bits of genuinely matching
descriptor pairs disagree on only a few percent of planes, while
unrelated pairs sit near half the bits, so ``min_hits=1`` with wide
thresholds keeps matched/impostor verdicts bit-equal to ``algorithm1``
(the parity the ``cascade`` bench experiment checks) while pruning the
overwhelmingly common no-match references.  See ``docs/cascade.md`` for
the knob/parity methodology and the regimes where the prefilter loses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.binarize import hamming_distances, pack_bits, sign_planes, words_for_bits
from ..gpusim.engine_model import GPUDevice
from .algorithm1 import PreparedFeatures, knn_algorithm1
from .batching import ReferenceBatch
from .kernels import Algorithm1Kernel, PreparedQuery
from .ratio_test import match_images
from .results import ImageMatch

__all__ = ["CascadeKernel"]


@dataclass
class _CascadeQuery:
    """Query-side aux: the exact-path features plus the query's codes."""

    features: PreparedFeatures
    codes: np.ndarray  # (n, n_words + 1), last word the validity flag


class CascadeKernel(Algorithm1Kernel):
    """Hamming-prune candidates, then run Algorithm 1 on survivors.

    ``n_bits``/``coarse_words``/thresholds/``seed`` are kernel
    parameters, not engine knobs — pass a configured instance via
    ``TextureSearchEngine(config, kernel=CascadeKernel(config, ...))``
    to override the defaults (the bench experiment sweeps them).

    Signatures carry one extra uint64 *validity* word flagging non-zero
    descriptor columns: ``pad_or_trim`` zero-pads reference and query
    matrices alike, and without the flag every padded column would
    Hamming-match every other padded column at distance 0, defeating
    the prune.
    """

    name = "cascade"
    needs_norms = True
    needs_aux = True
    has_prefilter = True
    supports_multiquery = False

    #: default signature width (bits); :meth:`memory_per_image` assumes
    #: it unless told otherwise.
    DEFAULT_BITS = 128

    def __init__(
        self,
        config,
        n_bits: int = DEFAULT_BITS,
        coarse_words: int = 1,
        coarse_threshold: int = 16,
        fine_threshold: int = 16,
        min_hits: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(config)
        self.n_bits = int(n_bits)
        self.n_words = words_for_bits(self.n_bits)
        if not (1 <= int(coarse_words) <= self.n_words):
            raise ValueError(
                f"coarse_words must be in [1, {self.n_words}], got {coarse_words}"
            )
        if not (0 <= int(coarse_threshold) <= min(64 * int(coarse_words), self.n_bits)):
            raise ValueError("coarse_threshold out of range for the coarse width")
        if not (0 <= int(fine_threshold) <= self.n_bits):
            raise ValueError(f"fine_threshold must be in [0, {self.n_bits}]")
        if int(min_hits) < 1:
            raise ValueError("min_hits must be >= 1")
        self.coarse_words = int(coarse_words)
        self.coarse_threshold = int(coarse_threshold)
        self.fine_threshold = int(fine_threshold)
        self.min_hits = int(min_hits)
        self.seed = int(seed)
        self._planes = sign_planes(config.d, self.n_bits, seed)

    def describe(self) -> str:
        return (
            f"(cascade {self.n_bits}b "
            f"c{64 * self.coarse_words}/{self.coarse_threshold} "
            f"f{self.fine_threshold} h{self.min_hits})"
        )

    @classmethod
    def memory_per_image(cls, config, m=None, n_bits=None) -> int:
        """Exact cached bytes per image: features + ``N_R`` + codes.

        The ``N_R`` vector lives in a float32 container in both
        precisions (FP16 norms are rounded but stored widened), and the
        packed codes add ``words_for_bits(n_bits) + 1`` uint64 words per
        row (the ``+1`` is the validity flag word).
        """
        per_elem = 2 if config.precision == "fp16" else 4
        rows = config.m if m is None else int(m)
        bits = cls.DEFAULT_BITS if n_bits is None else int(n_bits)
        return (
            rows * config.d * per_elem
            + rows * 4
            + rows * (words_for_bits(bits) + 1) * 8
        )

    # -- binarization --------------------------------------------------
    def _encode(self, matrix: np.ndarray) -> np.ndarray:
        """Stored ``(d, count)`` matrix -> ``(count, n_words + 1)`` codes.

        Sign bits are taken from the stored representation (positive
        FP16 pre-scaling never flips a sign), so enrolment, record
        re-import and query encoding all agree bit-for-bit.
        """
        values = np.asarray(matrix, dtype=np.float32)
        codes = pack_bits(self._planes @ values > 0)
        valid = values.any(axis=0).astype(np.uint64)
        return np.concatenate([codes, valid[:, None]], axis=1)

    def reference_aux(self, matrix: np.ndarray) -> np.ndarray:
        return self._encode(matrix)

    def prepare_query(self, device: GPUDevice, descriptors: np.ndarray) -> PreparedQuery:
        prepared = super().prepare_query(device, descriptors)
        return PreparedQuery(
            matrix=prepared.matrix,
            aux=_CascadeQuery(
                features=prepared.aux, codes=self._encode(prepared.matrix)
            ),
        )

    # -- the prefilter -------------------------------------------------
    def _batch_codes(self, batch: ReferenceBatch, index: int) -> np.ndarray:
        if batch.aux is not None:
            return batch.aux[index]
        # transient batches built outside the engine: encode on the fly
        return self._encode(batch.tensor[index])

    def prefilter_batch(
        self,
        device: GPUDevice,
        batch: ReferenceBatch,
        query: PreparedQuery,
    ) -> np.ndarray:
        q_codes = query.aux.codes
        q_valid = q_codes[:, self.n_words] != 0
        qc = q_codes[:, : self.n_words]
        n = qc.shape[0]
        m = batch.tensor.shape[2]
        # coarse stage: every pair, prefix width, the whole batch fused.
        device.hamming_prefilter(m, n, self.coarse_words, batch=batch.size)
        survivors = np.zeros(batch.size, dtype=bool)
        fine_pairs = 0
        for i in range(batch.size):
            codes = self._batch_codes(batch, i)
            r_valid = codes[:, self.n_words] != 0
            rc = codes[:, : self.n_words]
            coarse = hamming_distances(qc, rc, words=self.coarse_words)
            cand = (
                (coarse <= self.coarse_threshold)
                & q_valid[:, None]
                & r_valid[None, :]
            )
            n_cand = int(cand.sum())
            if n_cand == 0:
                continue
            fine_pairs += n_cand
            fine = hamming_distances(qc, rc)
            best = np.where(cand, fine, self.n_bits + 1).min(axis=1)
            hits = int((best <= self.fine_threshold).sum())
            survivors[i] = hits >= self.min_hits
        if fine_pairs:
            # fine stage: full width, only the coarse-surviving pairs.
            device.hamming_prefilter(
                max(1, -(-fine_pairs // n)), n, self.n_words, batch=1
            )
        return survivors

    # -- matching ------------------------------------------------------
    def match_batch(self, device, batch, query, keep_masks=False, survivors=None):
        cfg = self.config
        features = query.aux.features if isinstance(query.aux, _CascadeQuery) else query.aux
        matches = []
        for i in range(batch.size):
            if survivors is not None and not survivors[i]:
                # Hamming-pruned: no GEMM, no scan, no post-processing.
                matches.append(
                    ImageMatch(
                        reference_id=batch.ids[i],
                        good_matches=0,
                        n_query_features=cfg.n,
                        match_mask=np.zeros(cfg.n, dtype=bool) if keep_masks else None,
                        matched_reference_indices=(
                            np.zeros(0, dtype=np.int32) if keep_masks else None
                        ),
                    )
                )
                continue
            ref = PreparedFeatures(
                values=batch.tensor[i],
                norms=batch.norms[i],
                precision=cfg.precision,
                scale=cfg.effective_scale,
            )
            knn = knn_algorithm1(
                device, ref, features, k=cfg.k, sort_kind=self._sort_kind()
            )
            device.cpu_postprocess(1, cfg.precision, cfg.n)
            matches.append(match_images(batch.ids[i], knn, cfg.ratio_threshold, keep_masks))
        return matches
