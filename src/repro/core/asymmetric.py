"""Asymmetric local feature extraction (Sec. 7).

Reference features exist only to let the ratio test tell distinct query
features from non-distinct ones, so fewer can be kept on the reference
side (``m``) than on the query side (``n``).  Table 7 finds m=384,
n=768 optimal: accuracy drops 0.28 % while speed rises 34.6 % and
cached matrices halve.

:class:`AsymmetricExtractor` packages the policy: one SIFT extractor,
two budgets, RootSIFT applied after selection, zero-padding to the
fixed engine shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.rootsift import rootsift
from ..features.selection import pad_or_trim
from ..features.sift import ExtractionResult, SIFTConfig, SIFTExtractor

__all__ = ["AsymmetricPolicy", "AsymmetricExtractor"]


@dataclass(frozen=True)
class AsymmetricPolicy:
    """Feature budgets for the two sides of the matching problem."""

    m_reference: int = 384
    n_query: int = 768

    def __post_init__(self) -> None:
        if self.m_reference <= 0 or self.n_query <= 0:
            raise ValueError("budgets must be positive")

    @property
    def reference_compression(self) -> float:
        """Cache-size factor vs. the symmetric n-feature baseline."""
        return self.m_reference / self.n_query


class AsymmetricExtractor:
    """Extracts reference features at budget ``m`` and query features at
    budget ``n`` with a shared SIFT configuration."""

    def __init__(
        self,
        policy: AsymmetricPolicy | None = None,
        sift_config: SIFTConfig | None = None,
        use_rootsift: bool = True,
    ) -> None:
        self.policy = policy or AsymmetricPolicy()
        base = sift_config or SIFTConfig()
        # Extraction budget = the larger side; selection trims afterwards.
        budget = max(self.policy.m_reference, self.policy.n_query, base.n_features)
        self._extractor = SIFTExtractor(
            SIFTConfig(
                n_features=budget,
                sigma0=base.sigma0,
                intervals=base.intervals,
                n_octaves=base.n_octaves,
                contrast_threshold=base.contrast_threshold,
                edge_ratio=base.edge_ratio,
                max_orientations=base.max_orientations,
                use_rootsift=False,  # applied here, after selection
            )
        )
        self.use_rootsift = use_rootsift

    def _finish(self, result: ExtractionResult, budget: int) -> np.ndarray:
        desc = result.descriptors[:, :budget]
        if self.use_rootsift and desc.size:
            desc = rootsift(desc)
        return pad_or_trim(desc, budget)

    def extract_reference(self, image: np.ndarray) -> np.ndarray:
        """``(d, m_reference)`` matrix, strongest-m, padded if needed."""
        return self._finish(self._extractor.extract(image), self.policy.m_reference)

    def extract_query(self, image: np.ndarray) -> np.ndarray:
        """``(d, n_query)`` matrix, strongest-n, padded if needed."""
        return self._finish(self._extractor.extract(image), self.policy.n_query)

    def extract_with_keypoints(self, image: np.ndarray, budget: int) -> ExtractionResult:
        """Budgeted extraction that keeps keypoints (for geometric
        verification), without padding."""
        result = self._extractor.extract(image, n_features=budget)
        if self.use_rootsift and result.descriptors.size:
            result.descriptors = rootsift(result.descriptors)
        return result
