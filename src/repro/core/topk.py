"""Top-2 selection kernels (Sec. 4.1).

Functional NumPy implementations of the two selection strategies the
paper compares:

* :func:`top2_scan` — the proposed register-resident single-pass scan.
  Each column is scanned once, keeping the two smallest values in
  registers; no intermediate stores.  81.9 % faster than insertion sort
  at batch 1 (Table 1).
* :func:`insertion_topk` — the Garcia et al. [9] modified insertion
  sort, the general-k baseline (functionally identical for k = 2 but
  charged its much higher memory-traffic cost).

Both return ``(values, indices)`` with shape ``(k, columns)``, smallest
first, over the *rows* of the input (one column = one query feature's
distance vector, as in Algorithm 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpusim.engine_model import GPUDevice
from ..gpusim.stream import Stream

__all__ = ["top2_scan", "insertion_topk", "functional_topk"]


def functional_topk(a: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Smallest ``k`` values (and row indices) of each column of ``a``.

    Deterministic tie-breaking: ties resolve to the lower row index,
    matching what a sequential scan produces.  For k ≪ m the selection
    runs in O(m) per column via ``np.argpartition`` instead of a full
    sort; a raw partition alone breaks ties arbitrarily at the k-th
    value boundary, so rows tied with the k-th smallest value are
    re-selected by ascending row index before the final (k-sized) sort.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected (m, columns), got shape {a.shape}")
    m, _cols = a.shape
    if not (1 <= k <= m):
        raise ValueError(f"k={k} out of range for m={m}")
    if 4 * k >= m:
        # k is a sizable fraction of m: a stable full sort is both
        # simpler and no slower.
        idx = np.argsort(a, axis=0, kind="stable")[:k, :]
        return np.take_along_axis(a, idx, axis=0), idx
    # k << m fast path.  The k-th smallest value per column bounds the
    # selection; rows strictly below it are always in, and the remaining
    # slots go to the lowest-index rows *equal* to it.
    thresh = np.partition(a, k - 1, axis=0)[k - 1 : k, :]
    below = a < thresh
    at_thresh = a == thresh
    need = k - below.sum(axis=0)  # per column: at-threshold rows to keep
    take_at = at_thresh & (np.cumsum(at_thresh, axis=0) <= need[None, :])
    rows = np.arange(m)[:, None]
    candidates = np.where(below | take_at, rows, m)  # m = "not selected" sentinel
    sel = np.sort(np.partition(candidates, k - 1, axis=0)[:k, :], axis=0)
    vals = np.take_along_axis(a, sel, axis=0)
    # ascending row order in, stable sort by value out => among equal
    # values the lower row index still comes first.
    order = np.argsort(vals, axis=0, kind="stable")
    idx = np.take_along_axis(sel, order, axis=0)
    return np.take_along_axis(a, idx, axis=0), idx


def top2_scan(
    device: GPUDevice,
    a: np.ndarray,
    dtype: str = "fp16",
    stream: Optional[Stream] = None,
    k: int = 2,
    step: str = "Top-2 sort",
) -> tuple[np.ndarray, np.ndarray]:
    """Register-resident top-k scan over the columns of ``(m, cols)``.

    Charged with the single-pass scan cost model.  ``k`` defaults to 2
    — the whole point of the kernel is that two registers per thread
    suffice (Sec. 4.1).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected (m, columns), got shape {a.shape}")
    m, cols = a.shape
    device.top2_scan(m, cols, dtype=dtype, stream=stream, step=step)
    return functional_topk(a, k)


def insertion_topk(
    device: GPUDevice,
    a: np.ndarray,
    k: int = 2,
    dtype: str = "fp32",
    stream: Optional[Stream] = None,
    step: str = "Top-2 sort",
) -> tuple[np.ndarray, np.ndarray]:
    """Modified insertion sort baseline (general k, heavy memory traffic)."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected (m, columns), got shape {a.shape}")
    m, cols = a.shape
    device.insertion_sort(m, cols, dtype=dtype, stream=stream, step=step)
    return functional_topk(a, k)
