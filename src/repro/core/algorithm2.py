"""Algorithm 2: RootSIFT-simplified 2-NN over a *batch* of references.

With unit-norm RootSIFT features, ``rho^2 = 2 - 2 r.q`` — the norm
vectors of Algorithm 1 vanish and the pipeline collapses to four steps::

    1. A = -2 R^T Q            (batched GEMM over the reference batch)
    2. top-2 of each column    (register scan)
    3. sqrt(2 + A) on winners  (merged, in-register)
    4. ship 2 x n x batch results to the host

For FP16 with scale factor ``s``, the stored features are ``s * r`` so
``A = -2 s^2 r.q`` and the constant becomes ``2 s^2``; distances are
divided by ``s`` in step 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..blas.gemm import batched_hgemm
from ..errors import HalfPrecisionOverflowError
from ..gpusim.engine_model import GPUDevice
from ..gpusim.stream import Stream
from .results import KnnResult
from .topk import functional_topk

__all__ = ["BatchKnnResult", "knn_algorithm2"]


@dataclass
class BatchKnnResult:
    """Top-k results for every reference image of one batch.

    ``distances``/``indices`` have shape ``(batch, k, n)``.
    """

    distances: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        if self.distances.shape != self.indices.shape:
            raise ValueError("distances/indices shape mismatch")
        if self.distances.ndim != 3:
            raise ValueError(f"expected (batch, k, n), got {self.distances.shape}")

    @property
    def batch(self) -> int:
        return self.distances.shape[0]

    def image(self, i: int) -> KnnResult:
        """The per-image result, as Algorithm 1 would have produced it."""
        return KnnResult(distances=self.distances[i], indices=self.indices[i])


def knn_algorithm2(
    device: GPUDevice,
    references: np.ndarray,
    query: np.ndarray,
    scale: float = 1.0,
    k: int = 2,
    precision: str = "fp16",
    tensor_core: bool = False,
    stream: Optional[Stream] = None,
) -> BatchKnnResult:
    """Batched RootSIFT 2-NN.

    Parameters
    ----------
    references:
        ``(batch, d, m)`` stack of reference feature matrices, already
        in engine precision (FP16 values pre-scaled by ``scale``).
    query:
        ``(d, n)`` query matrix in the same precision/scale.
    """
    references = np.asarray(references)
    query = np.asarray(query)
    if references.ndim != 3:
        raise ValueError(f"references must be (batch, d, m), got {references.shape}")
    if query.ndim != 2 or query.shape[0] != references.shape[1]:
        raise ValueError(
            f"query {query.shape} does not match references {references.shape}"
        )
    batch, d, m = references.shape
    n = query.shape[1]
    if not (1 <= k <= m):
        raise ValueError(f"k={k} out of range for m={m}")

    # Step 1: batched GEMM (one fused call => the Sec. 5 data reuse).
    if precision == "fp16":
        prod, overflow = batched_hgemm(
            device, references, query, alpha=1.0, tensor_core=tensor_core, stream=stream
        )
        if overflow:
            raise HalfPrecisionOverflowError(scale, float(np.abs(prod).max()))
        a = -2.0 * prod
        const = 2.0 * scale * scale
    elif precision == "fp32":
        device.gemm(m, n, d, batch=batch, dtype="fp32", stream=stream, step="GEMM")
        a = -2.0 * np.einsum(
            "bkm,kn->bmn",
            references.astype(np.float32),
            query.astype(np.float32),
            optimize=True,
        )
        const = 2.0
    else:
        raise ValueError(f"precision must be 'fp16' or 'fp32', got {precision!r}")

    # Step 2: one scan thread per (image, query-feature) column.
    device.top2_scan(m, batch * n, dtype=precision, stream=stream, step="Top-2 sort")
    columns = np.transpose(a, (1, 0, 2)).reshape(m, batch * n)
    top_vals, top_idx = functional_topk(columns, k)

    # Step 3: sqrt(const + A) in-register on the winners only.
    device.elementwise(k * batch * n, dtype=precision, stream=stream, step="sqrt")
    sq = top_vals + np.float32(const)
    np.maximum(sq, 0.0, out=sq)
    dist = np.sqrt(sq, dtype=np.float32)
    if precision == "fp16":
        dist /= np.float32(scale)

    # Step 4: batched result gather.
    device.d2h_result(n, batch=batch, k=k, dtype=precision, stream=stream)
    distances = dist.reshape(k, batch, n).transpose(1, 0, 2)
    indices = top_idx.reshape(k, batch, n).transpose(1, 0, 2).astype(np.int32)
    return BatchKnnResult(distances=np.ascontiguousarray(distances),
                          indices=np.ascontiguousarray(indices))
