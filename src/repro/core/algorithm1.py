"""Algorithm 1: cuBLAS implementation of k-nearest neighbours.

Reproduces the paper's Algorithm 1 faithfully, step by step::

    1. N_R  = squared norms of R            (offline for references)
    2. N_Q  = squared norms of Q            (once per query)
    3. A    = -2 R^T Q                      (GEMM)
    4. A   += N_R (row-broadcast, in place)
    5. top-k of each column of A            (scan or insertion sort)
    6. add N_Q[j] to the first k rows of column j
    7. sqrt of the first k rows             (merged with 6)
    8. move the k x n sub-matrix + indices to the host

Step 5 runs *before* N_Q is added — adding a per-column constant does
not change that column's ordering, so only ``k x n`` elements need the
final adjustment.  The FP16 path stores features pre-scaled by the
configured scale factor; squared quantities are scaled by ``s^2`` and
distances divided by ``s`` at step 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..blas.gemm import hgemm, sgemm
from ..blas.norms import squared_norms, squared_norms_fp16
from ..errors import HalfPrecisionOverflowError
from ..fp16.convert import FP16_MAX, to_scaled_fp16
from ..gpusim.engine_model import GPUDevice
from ..gpusim.stream import Stream
from .results import KnnResult
from .topk import functional_topk

__all__ = ["PreparedFeatures", "prepare_reference", "prepare_query", "knn_algorithm1"]


@dataclass
class PreparedFeatures:
    """Feature matrix in engine precision plus its squared-norm vector.

    ``values`` is ``(d, count)``; FP16 values are pre-scaled.  ``norms``
    holds the squared norms of the *stored* values (i.e. already in the
    ``s^2``-scaled domain for FP16), as the paper keeps ``N_R`` cached
    next to each reference matrix (Sec. 4.1).
    """

    values: np.ndarray
    norms: np.ndarray
    precision: str
    scale: float

    @property
    def count(self) -> int:
        return self.values.shape[1]

    @property
    def d(self) -> int:
        return self.values.shape[0]

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.norms.nbytes


def _prepare(
    features: np.ndarray,
    precision: str,
    scale: float,
    device: Optional[GPUDevice],
    stream: Optional[Stream],
    charge: bool,
) -> PreparedFeatures:
    features = np.asarray(features, dtype=np.float32)
    if features.ndim != 2:
        raise ValueError(f"features must be (d, count), got {features.shape}")
    if precision == "fp16":
        stored = to_scaled_fp16(features, scale)
        if charge and device is not None:
            norms, overflow = squared_norms_fp16(device, stored.values, stream=stream)
        else:
            v = stored.values.astype(np.float32)
            norms = np.einsum("dc,dc->c", v, v)
            overflow = bool(np.any(norms > FP16_MAX))
            norms = np.clip(norms, 0, FP16_MAX).astype(np.float16).astype(np.float32)
        if overflow:
            raise HalfPrecisionOverflowError(scale, float(norms.max()))
        return PreparedFeatures(stored.values, norms, "fp16", scale)
    if precision == "fp32":
        if charge and device is not None:
            norms = squared_norms(device, features, stream=stream)
        else:
            norms = np.einsum("dc,dc->c", features, features)
        return PreparedFeatures(features, norms.astype(np.float32), "fp32", 1.0)
    raise ValueError(f"precision must be 'fp16' or 'fp32', got {precision!r}")


def prepare_reference(
    features: np.ndarray,
    precision: str = "fp16",
    scale: float = 1.0,
) -> PreparedFeatures:
    """Offline reference preparation (steps 1 of Algorithm 1).

    Never charged to the device: the paper computes all reference
    matrices and their ``N_R`` vectors ahead of time (Sec. 4.1).
    """
    return _prepare(features, precision, scale, device=None, stream=None, charge=False)


def prepare_query(
    device: GPUDevice,
    features: np.ndarray,
    precision: str = "fp16",
    scale: float = 1.0,
    stream: Optional[Stream] = None,
) -> PreparedFeatures:
    """Query preparation: features move to the GPU and ``N_Q`` is
    computed there (step 2); both are charged."""
    features = np.asarray(features, dtype=np.float32)
    elem = 2 if precision == "fp16" else 4
    device.h2d(features.shape[0] * features.shape[1] * elem, stream=stream, step="query H2D")
    return _prepare(features, precision, scale, device=device, stream=stream, charge=True)


def knn_algorithm1(
    device: GPUDevice,
    reference: PreparedFeatures,
    query: PreparedFeatures,
    k: int = 2,
    sort_kind: str = "scan",
    stream: Optional[Stream] = None,
) -> KnnResult:
    """Run steps 3-8 of Algorithm 1 for one reference image.

    Returns a :class:`KnnResult` with *unscaled* Euclidean distances.
    """
    if reference.precision != query.precision:
        raise ValueError("reference/query precision mismatch")
    if reference.d != query.d:
        raise ValueError(f"dimension mismatch: {reference.d} vs {query.d}")
    if reference.precision == "fp16" and reference.scale != query.scale:
        raise ValueError("reference/query scale mismatch")
    m, n = reference.count, query.count
    if not (1 <= k <= m):
        raise ValueError(f"k={k} out of range for m={m}")
    dtype = reference.precision

    # Step 3: A = -2 R^T Q.
    if dtype == "fp16":
        a, overflow = hgemm(device, reference.values, query.values, alpha=1.0,
                            transpose_a=True, stream=stream)
        if overflow:
            raise HalfPrecisionOverflowError(reference.scale, float(np.abs(a).max()))
        a = -2.0 * a
    else:
        a = sgemm(device, reference.values, query.values, alpha=-2.0,
                  transpose_a=True, stream=stream)

    # Step 4: in-place row broadcast of N_R.
    device.elementwise(m * n, dtype=dtype, stream=stream, step="add N_R")
    a += reference.norms[:, None]

    # Step 5: column-parallel top-k.
    if sort_kind == "scan":
        device.top2_scan(m, n, dtype=dtype, stream=stream, step="Top-2 sort")
    elif sort_kind == "insertion":
        device.insertion_sort(m, n, dtype=dtype, stream=stream, step="Top-2 sort")
    else:
        raise ValueError(f"sort_kind must be 'scan' or 'insertion', got {sort_kind!r}")
    top_vals, top_idx = functional_topk(a, k)

    # Steps 6-7 (merged kernel): add N_Q to the k winners, sqrt.
    device.elementwise(k * n, dtype=dtype, stream=stream, step="add N_Q + sqrt")
    sq = top_vals + query.norms[None, :]
    np.maximum(sq, 0.0, out=sq)
    distances = np.sqrt(sq, dtype=np.float32)
    if dtype == "fp16":
        distances /= np.float32(reference.scale)

    # Step 8: ship the k x n result (+ indices) to the host.
    device.d2h_result(n, batch=1, k=k, dtype=dtype, stream=stream)
    return KnnResult(distances=distances, indices=top_idx.astype(np.int32))
