"""Result types shared across the matching pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["KnnResult", "ImageMatch", "SearchResult", "GroupSearchResult"]


@dataclass
class KnnResult:
    """Top-k output of one 2-NN computation against one reference image.

    ``distances`` is ``(k, n)`` — row 0 the nearest, row 1 the second
    nearest — and ``indices`` the matching reference-feature indices,
    exactly the sub-matrix step 8 of Algorithm 1 ships back to the host.
    """

    distances: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        if self.distances.shape != self.indices.shape:
            raise ValueError(
                f"distances {self.distances.shape} and indices "
                f"{self.indices.shape} must have the same shape"
            )

    @property
    def k(self) -> int:
        return self.distances.shape[0]

    @property
    def n_query(self) -> int:
        return self.distances.shape[1]


@dataclass
class ImageMatch:
    """Outcome of matching the query against one reference image."""

    reference_id: str
    good_matches: int
    n_query_features: int
    match_mask: np.ndarray | None = None
    matched_reference_indices: np.ndarray | None = None
    inliers: int | None = None  # populated by geometric verification

    @property
    def score(self) -> int:
        """Ranking score: inlier count when verified, else match count."""
        return self.inliers if self.inliers is not None else self.good_matches


@dataclass
class SearchResult:
    """Outcome of a one-to-many search.

    ``partial`` is True when the sweep was cut short by an expired
    request deadline (:mod:`repro.obs.reqctx`): the reference batches
    it *did* scan produced exactly the matches a full sweep would have
    (same order, same counts), and ``images_skipped`` counts the cached
    images the sweep never reached.  ``images_pruned`` counts cached
    images *deliberately* not swept because a candidate-routing tier
    (:mod:`repro.routing`) restricted the sweep — pruning is a
    first-tier decision, not a fault, so it never sets ``partial``.
    ``cascade_pruned`` counts images whose exact GEMM a Hamming
    prefilter backend skipped (:mod:`repro.core.cascade`); unlike
    routing prunes they still count into ``images_searched`` — the
    prefilter examined them and they report zero matches.
    """

    matches: list[ImageMatch] = field(default_factory=list)
    elapsed_us: float = 0.0
    images_searched: int = 0
    partial: bool = False
    images_skipped: int = 0
    images_pruned: int = 0
    cascade_pruned: int = 0

    def top(self, count: int = 1) -> list[ImageMatch]:
        """Best ``count`` reference images by score (descending)."""
        return sorted(self.matches, key=lambda m: (-m.score, m.reference_id))[:count]

    def best(self) -> ImageMatch | None:
        top = self.top(1)
        return top[0] if top else None

    @property
    def throughput_images_per_s(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.images_searched / (self.elapsed_us * 1e-6)


@dataclass
class GroupSearchResult:
    """Outcome of one fused query-group sweep (Sec. 5.3 extension).

    ``results`` holds one :class:`SearchResult` per query, in
    submission order; every member shares the group's completion time.
    ``images_searched`` counts cached references scanned *once* —
    the whole point of the group is that the sweep (and its H2D
    traffic) is shared, so pair throughput multiplies by the group
    size.
    """

    results: list[SearchResult] = field(default_factory=list)
    elapsed_us: float = 0.0
    images_searched: int = 0
    partial: bool = False
    images_skipped: int = 0
    images_pruned: int = 0
    cascade_pruned: int = 0

    @property
    def group_size(self) -> int:
        return len(self.results)

    @property
    def pairs_compared(self) -> int:
        """Image comparisons across the whole group."""
        return self.images_searched * self.group_size

    @property
    def throughput_images_per_s(self) -> float:
        """Fused throughput: (reference, query) pairs per second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.pairs_compared / (self.elapsed_us * 1e-6)
