"""Engine configuration.

One dataclass gathers every optimization knob the paper studies, so the
benchmark harness can toggle them independently (Fig. 1 applies them
cumulatively; Tables 1-7 each vary one).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["EngineConfig", "DEFAULT_SCALE_FACTOR"]

#: the paper's production scale factor (Sec. 4.2: "In real practice,
#: the scale factor is set to 2^-7").
DEFAULT_SCALE_FACTOR = 2.0**-7


@dataclass(frozen=True)
class EngineConfig:
    """Texture-search engine knobs.

    Attributes
    ----------
    d:
        Feature dimension (128 for SIFT, 64 for SURF).
    m / n:
        Reference / query features per image.  Symmetric extraction uses
        ``m == n`` (Secs. 4-6); the asymmetric optimum is ``m=384,
        n=768`` (Table 7).
    precision:
        ``"fp16"`` or ``"fp32"`` storage/compute for feature matrices.
    scale_factor:
        FP16 pre-scale (ignored for fp32).
    backend:
        Match-kernel backend name from :mod:`repro.core.registry`
        (``"algorithm2"``, ``"algorithm1"``, ``"garcia"``, ``"opencv"``,
        ``"lsh"``, ...).  ``None`` resolves from the deprecated
        ``use_rootsift`` flag.
    use_rootsift:
        Deprecated alias for ``backend``: ``True`` selects
        ``"algorithm2"``, ``False`` selects ``"algorithm1"``.  Ignored
        when ``backend`` is set.
    normalization:
        Unit-norm mapping for the Algorithm-2 path: ``"rootsift"``
        (Hellinger, requires non-negative SIFT histograms) or ``"l2"``
        (plain normalisation, for signed descriptors such as SURF).
    batch_size:
        Reference images per batched GEMM (Sec. 5.2).
    sort_kind:
        ``"scan"`` (the paper's register top-2) or ``"insertion"`` (the
        Garcia et al. baseline).
    tensor_core:
        Use tensor-core GEMM where the device supports it.
    ratio_threshold:
        Lowe ratio-test threshold.
    min_matches:
        Good matches required to declare two textures identical.
    streams:
        CUDA streams / CPU worker threads for the hybrid cache overlap.
    k:
        Neighbours retrieved (always 2 in the paper).
    """

    d: int = 128
    m: int = 768
    n: int = 768
    precision: str = "fp16"
    scale_factor: float = DEFAULT_SCALE_FACTOR
    backend: str | None = None
    use_rootsift: bool = True
    normalization: str = "rootsift"
    batch_size: int = 256
    sort_kind: str = "scan"
    tensor_core: bool = False
    ratio_threshold: float = 0.8
    min_matches: int = 8
    streams: int = 1
    k: int = 2

    def __post_init__(self) -> None:
        if self.d <= 0 or self.m <= 0 or self.n <= 0:
            raise ValueError("d, m, n must be positive")
        if self.precision not in ("fp16", "fp32"):
            raise ValueError(f"precision must be 'fp16' or 'fp32', got {self.precision!r}")
        if self.precision == "fp16" and not (self.scale_factor > 0):
            raise ValueError("scale_factor must be positive for fp16")
        if self.normalization not in ("rootsift", "l2"):
            raise ValueError(
                f"normalization must be 'rootsift' or 'l2', got {self.normalization!r}"
            )
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.sort_kind not in ("scan", "insertion"):
            raise ValueError(f"sort_kind must be 'scan' or 'insertion', got {self.sort_kind!r}")
        if not (0.0 < self.ratio_threshold < 1.0):
            raise ValueError("ratio_threshold must be in (0, 1)")
        if self.min_matches < 1:
            raise ValueError("min_matches must be >= 1")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.k < 2:
            raise ValueError("k must be >= 2 (the ratio test needs two neighbours)")
        if self.backend is not None:
            from .registry import canonical_backend

            # normalise aliases once; raises ValueError for unknown names
            object.__setattr__(self, "backend", canonical_backend(self.backend))

    @property
    def dtype(self) -> str:
        return self.precision

    @property
    def effective_scale(self) -> float:
        """Scale applied before FP16 conversion (1.0 in fp32 mode)."""
        return self.scale_factor if self.precision == "fp16" else 1.0

    @property
    def resolved_backend(self) -> str:
        """The match-kernel backend this configuration selects."""
        from .registry import resolve_backend

        return resolve_backend(self)

    def feature_matrix_bytes(self, m: int | None = None) -> int:
        """Bytes of one cached reference feature matrix.

        Backend-dependent: Algorithm-1-family kernels also cache the
        squared-norm vector ``N_R``; the LSH kernel adds its packed
        signature words.
        """
        from .registry import kernel_class

        return kernel_class(self.resolved_backend).memory_per_image(self, m)

    def with_updates(self, **kwargs) -> "EngineConfig":
        """Functional update helper (frozen dataclass)."""
        return replace(self, **kwargs)
