"""Match-kernel backends: the pluggable k-NN math behind the engine.

:class:`~repro.core.engine.TextureSearchEngine` owns the cache, the
batch builder and the sweep loop; everything algorithm-specific —
reference preparation, query preparation and the per-batch 2-NN match —
lives behind the :class:`MatchKernel` interface.  The paper's two
pipelines are :class:`Algorithm1Kernel` (cuBLAS + cached ``N_R`` norms)
and :class:`Algorithm2Kernel` (RootSIFT, norm-free, batched); the
baselines the paper compares against are adapted to the same interface
in :mod:`repro.baselines.adapters`, so they run through the real
engine, hybrid cache and bench harness.

Query preparation returns an explicit :class:`PreparedQuery` value
that the engine threads through the sweep — kernels hold no per-query
mutable state, which is what makes one engine instance safe to use for
interleaved ``search``/``verify`` calls.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..features.rootsift import l2_normalize, rootsift
from ..features.selection import pad_or_trim
from ..fp16.convert import FP16_MAX, to_scaled_fp16
from ..gpusim.engine_model import GPUDevice
from .algorithm1 import PreparedFeatures, knn_algorithm1, prepare_query, prepare_reference
from .algorithm2 import knn_algorithm2
from .batching import ReferenceBatch
from .ratio_test import batch_ratio_test_masks, match_images, match_images_batch
from .results import ImageMatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import EngineConfig

__all__ = [
    "Algorithm1Kernel",
    "Algorithm2Kernel",
    "MatchKernel",
    "PreparedQuery",
]


@dataclass
class PreparedQuery:
    """A query in kernel-ready form, returned by ``prepare_query``.

    ``matrix`` is the engine-precision query matrix — ``(d, n)`` for a
    single query, ``(Q, d, n)`` for a ``prepare_query_many`` group.
    ``aux`` carries kernel-specific extras (Algorithm 1 keeps its
    :class:`PreparedFeatures` with the on-device ``N_Q`` vector here;
    the LSH adapter keeps the query's hash codes).
    """

    matrix: np.ndarray
    aux: Any = None

    @property
    def n_queries(self) -> int:
        return 1 if self.matrix.ndim == 2 else self.matrix.shape[0]


class MatchKernel(ABC):
    """One match-kernel backend.

    A kernel is constructed once per engine with that engine's
    :class:`~repro.core.config.EngineConfig` and must be stateless with
    respect to queries: everything a sweep needs is in the
    :class:`PreparedQuery` it returned.

    Class attributes
    ----------------
    name:
        Registry name (see :mod:`repro.core.registry`).
    needs_norms:
        Whether cached :class:`ReferenceBatch` blocks carry ``N_R``
        squared-norm vectors next to the feature tensors.
    needs_aux:
        Whether cached batches carry a kernel-computed per-image aux
        array (:meth:`reference_aux`) next to the feature tensors —
        the cascade kernel's packed sign-bit codes.  Aux rides inside
        ``ReferenceBatch.nbytes``, so the hybrid cache accounts and
        evicts it with the batch.
    has_prefilter:
        Whether :meth:`prefilter_batch` prunes references ahead of the
        exact match — the engine calls it *before* staging a
        host-resident batch, so a fully-pruned batch never pays its
        H2D transfer.
    supports_multiquery:
        Whether :meth:`match_batch_multi` is implemented (enables
        ``TextureSearchEngine.search_many``).
    """

    name: str = "abstract"
    needs_norms: bool = False
    needs_aux: bool = False
    has_prefilter: bool = False
    supports_multiquery: bool = False

    def __init__(self, config: "EngineConfig") -> None:
        self.config = config

    # -- configuration -------------------------------------------------
    @classmethod
    def validate_config(cls, config: "EngineConfig") -> None:
        """Raise ``ValueError`` when ``config`` cannot drive this kernel."""

    @classmethod
    def memory_per_image(cls, config: "EngineConfig", m: int | None = None) -> int:
        """Bytes one cached reference image occupies under this kernel."""
        per_elem = 2 if config.precision == "fp16" else 4
        rows = config.m if m is None else int(m)
        nbytes = rows * config.d * per_elem
        if cls.needs_norms:
            nbytes += rows * per_elem  # the cached N_R vector
        return nbytes

    def describe(self) -> str:
        """Short tag for profile-report headers."""
        return self.name

    # -- shared helpers ------------------------------------------------
    def _check_descriptors(self, descriptors: np.ndarray) -> np.ndarray:
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2 or descriptors.shape[0] != self.config.d:
            raise ValueError(
                f"descriptors must be ({self.config.d}, count), got {descriptors.shape}"
            )
        return descriptors

    def _to_engine_precision(self, matrix: np.ndarray) -> np.ndarray:
        cfg = self.config
        if cfg.precision == "fp16":
            return to_scaled_fp16(matrix, cfg.scale_factor).values
        return np.asarray(matrix, dtype=np.float32)

    # -- reference side ------------------------------------------------
    @abstractmethod
    def prepare_reference(
        self, descriptors: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Shape/normalise/quantise one ``(d, count)`` reference matrix.

        Returns the stored representation: the ``(d, m)`` matrix in
        engine precision plus the ``N_R`` vector when
        :attr:`needs_norms` (else ``None``).
        """

    def norms_for_stored(self, matrix: np.ndarray) -> np.ndarray | None:
        """Recover the ``N_R`` vector of an already *stored* matrix.

        Used by ``import_records``: serialized records hold only the
        stored-domain matrix, and norm-free kernels return ``None``.
        """
        return None

    def reference_aux(self, matrix: np.ndarray) -> np.ndarray:
        """Per-image aux array for one *stored* ``(d, m)`` matrix.

        Called by the engine when :attr:`needs_aux`, both at enrolment
        and when re-importing serialized records (aux is deterministic
        given the stored matrix, so it is recomputed, never persisted).
        """
        raise ValueError(f"backend {self.name!r} does not cache aux data")

    # -- prefilter -----------------------------------------------------
    def prefilter_batch(
        self,
        device: GPUDevice,
        batch: ReferenceBatch,
        query: PreparedQuery,
    ) -> np.ndarray | None:
        """Survivor mask (``(batch.size,)`` bool) ahead of the exact
        match, charging the device for the prune test itself.

        ``None`` means "no pruning decision" (all slots survive).  The
        engine short-circuits batches whose mask is all-False before
        any H2D staging, and passes the mask to :meth:`match_batch` as
        ``survivors`` so the kernel skips the exact GEMM for pruned
        slots.  Only called when :attr:`has_prefilter`.
        """
        return None

    # -- query side ----------------------------------------------------
    @abstractmethod
    def query_matrix(self, descriptors: np.ndarray) -> np.ndarray:
        """Pure transform of ``(d, count)`` descriptors to the
        ``(d, n)`` engine-precision query matrix (never charged)."""

    def prepare_query(self, device: GPUDevice, descriptors: np.ndarray) -> PreparedQuery:
        """Full query preparation, charging the device where the paper
        does (e.g. Algorithm 1's query H2D + ``N_Q``)."""
        return PreparedQuery(matrix=self.query_matrix(descriptors))

    def prepare_query_many(
        self, device: GPUDevice, descriptor_list: list[np.ndarray]
    ) -> PreparedQuery:
        """Prepare a query *group* for a multi-query sweep."""
        raise ValueError(
            f"backend {self.name!r} does not support query-batched search"
        )

    # -- matching ------------------------------------------------------
    @abstractmethod
    def match_batch(
        self,
        device: GPUDevice,
        batch: ReferenceBatch,
        query: PreparedQuery,
        keep_masks: bool = False,
    ) -> list[ImageMatch]:
        """Match one prepared query against one reference batch."""

    def match_batch_multi(
        self,
        device: GPUDevice,
        batch: ReferenceBatch,
        query: PreparedQuery,
        keep_masks: bool = False,
    ) -> list[list[ImageMatch]]:
        """Match a query group against one batch; per-query match lists."""
        raise ValueError(
            f"backend {self.name!r} does not support query-batched search"
        )


class Algorithm2Kernel(MatchKernel):
    """The paper's RootSIFT pipeline (previously ``use_rootsift=True``).

    Unit-normalised features make the norm vectors vanish; references
    batch into fused GEMMs and the whole sweep is four steps per batch
    (:mod:`repro.core.algorithm2`).  Also the only built-in kernel with
    a fused multi-query path (Sec. 5.3 extension).
    """

    name = "algorithm2"
    needs_norms = False
    supports_multiquery = True

    def describe(self) -> str:
        return f"+ {self.config.normalization}"

    def _unit_normalize(self, descriptors: np.ndarray) -> np.ndarray:
        if not descriptors.size:
            return descriptors
        if self.config.normalization == "rootsift":
            return rootsift(descriptors)
        return l2_normalize(descriptors)

    def prepare_reference(self, descriptors):
        cfg = self.config
        descriptors = self._check_descriptors(descriptors)
        matrix = pad_or_trim(self._unit_normalize(descriptors), cfg.m)
        return self._to_engine_precision(matrix), None

    def query_matrix(self, descriptors):
        cfg = self.config
        descriptors = self._check_descriptors(descriptors)
        matrix = pad_or_trim(self._unit_normalize(descriptors), cfg.n)
        return self._to_engine_precision(matrix)

    def prepare_query_many(self, device, descriptor_list):
        return PreparedQuery(
            matrix=np.stack([self.query_matrix(q) for q in descriptor_list])
        )

    def match_batch(self, device, batch, query, keep_masks=False):
        cfg = self.config
        result = knn_algorithm2(
            device,
            batch.tensor,
            query.matrix,
            scale=cfg.effective_scale,
            k=cfg.k,
            precision=cfg.precision,
            tensor_core=cfg.tensor_core,
        )
        device.cpu_postprocess(batch.size, cfg.precision, cfg.n)
        # one vectorised ratio-test/count pass over the whole batch
        return match_images_batch(
            batch.ids, result.distances, result.indices, cfg.ratio_threshold, keep_masks
        )

    def match_batch_multi(self, device, batch, query, keep_masks=False):
        from .query_batching import knn_algorithm2_multiquery

        cfg = self.config
        n_queries = query.n_queries
        result = knn_algorithm2_multiquery(
            device,
            batch.tensor,
            query.matrix,
            scale=cfg.effective_scale,
            k=cfg.k,
            precision=cfg.precision,
            tensor_core=cfg.tensor_core,
        )
        device.cpu_postprocess(batch.size * n_queries, cfg.precision, cfg.n)
        # one vectorised ratio-test/count pass over the whole
        # (batch, n_queries) group, instead of per-pair calls
        masks = batch_ratio_test_masks(result.distances, cfg.ratio_threshold)
        counts = masks.sum(axis=-1)  # (batch, n_queries)
        n_query = result.distances.shape[-1]
        groups: list[list[ImageMatch]] = []
        for q in range(n_queries):
            groups.append(
                [
                    ImageMatch(
                        reference_id=batch.ids[i],
                        good_matches=int(counts[i, q]),
                        n_query_features=n_query,
                        match_mask=masks[i, q] if keep_masks else None,
                        matched_reference_indices=(
                            result.indices[i, q, 0][masks[i, q]] if keep_masks else None
                        ),
                    )
                    for i in range(batch.size)
                ]
            )
        return groups


class Algorithm1Kernel(MatchKernel):
    """The paper's cuBLAS pipeline (previously ``use_rootsift=False``).

    Raw descriptors with cached ``N_R`` squared-norm vectors; matching
    loops per image because the paper batches only the RootSIFT
    pipeline.  The sort is the register top-2 scan by default
    (``EngineConfig.sort_kind``).
    """

    name = "algorithm1"
    needs_norms = True
    supports_multiquery = False

    def describe(self) -> str:
        return "(Alg. 1)"

    def _sort_kind(self) -> str:
        return self.config.sort_kind

    def prepare_reference(self, descriptors):
        cfg = self.config
        descriptors = self._check_descriptors(descriptors)
        matrix = pad_or_trim(descriptors, cfg.m)
        prepared = prepare_reference(matrix, cfg.precision, cfg.effective_scale)
        return prepared.values, prepared.norms

    def norms_for_stored(self, matrix):
        cfg = self.config
        v = matrix.astype(np.float32)
        norms = np.einsum("dc,dc->c", v, v)
        if cfg.precision == "fp16":
            # match prepare_reference's FP16-stored N_R exactly
            norms = np.clip(norms, 0, FP16_MAX).astype(np.float16)
        return norms.astype(np.float32)

    def query_matrix(self, descriptors):
        cfg = self.config
        descriptors = self._check_descriptors(descriptors)
        return self._to_engine_precision(pad_or_trim(descriptors, cfg.n))

    def prepare_query(self, device, descriptors):
        cfg = self.config
        descriptors = self._check_descriptors(descriptors)
        features = prepare_query(
            device,
            pad_or_trim(descriptors, cfg.n),
            cfg.precision,
            cfg.effective_scale,
        )
        return PreparedQuery(matrix=features.values, aux=features)

    def match_batch(self, device, batch, query, keep_masks=False):
        cfg = self.config
        matches = []
        for i in range(batch.size):
            ref = PreparedFeatures(
                values=batch.tensor[i],
                norms=batch.norms[i],
                precision=cfg.precision,
                scale=cfg.effective_scale,
            )
            knn = knn_algorithm1(
                device, ref, query.aux, k=cfg.k, sort_kind=self._sort_kind()
            )
            device.cpu_postprocess(1, cfg.precision, cfg.n)
            matches.append(match_images(batch.ids[i], knn, cfg.ratio_threshold, keep_masks))
        return matches
