"""Throughput and efficiency metrics (Eqs. 3 and 4).

The paper's two efficiency numbers:

* **GPU efficiency** (Eq. 3) — achieved TFLOPS over theoretical peak,
  where achieved TFLOPS counts the 2-NN's GEMM work (``2 m n d`` FLOPs
  per image comparison) against wall-clock search time (Table 4);
* **schedule efficiency** (Eq. 4) — achieved search speed over the
  PCIe-bound theoretical speed when references stream from host memory
  (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec

__all__ = ["EfficiencyReport", "gemm_flops_per_image", "gpu_efficiency", "schedule_efficiency"]


def gemm_flops_per_image(m: int, n: int, d: int) -> float:
    """Multiply-add work of one image comparison's similarity matrix."""
    if m <= 0 or n <= 0 or d <= 0:
        raise ValueError("m, n, d must be positive")
    return 2.0 * m * n * d


@dataclass(frozen=True)
class EfficiencyReport:
    """Achieved vs. theoretical arithmetic throughput."""

    images_per_s: float
    achieved_tflops: float
    theoretical_tflops: float

    @property
    def efficiency(self) -> float:
        if self.theoretical_tflops <= 0:
            return 0.0
        return self.achieved_tflops / self.theoretical_tflops


def gpu_efficiency(
    spec: DeviceSpec,
    images_per_s: float,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    dtype: str = "fp16",
    tensor_core: bool = False,
) -> EfficiencyReport:
    """Eq. 3 for a measured search speed."""
    if images_per_s < 0:
        raise ValueError("images_per_s must be non-negative")
    achieved = images_per_s * gemm_flops_per_image(m, n, d) / 1e12
    return EfficiencyReport(
        images_per_s=images_per_s,
        achieved_tflops=achieved,
        theoretical_tflops=spec.peak_tflops(dtype, tensor_core),
    )


def schedule_efficiency(achieved_images_per_s: float, theoretical_images_per_s: float) -> float:
    """Eq. 4."""
    if theoretical_images_per_s <= 0:
        raise ValueError("theoretical speed must be positive")
    if achieved_images_per_s < 0:
        raise ValueError("achieved speed must be non-negative")
    return achieved_images_per_s / theoretical_images_per_s
