"""Evaluation metrics: top-1 identification accuracy, GPU efficiency
(Eq. 3) and schedule efficiency (Eq. 4)."""

from .accuracy import AccuracyReport, evaluate_top1
from .throughput import (
    EfficiencyReport,
    gemm_flops_per_image,
    gpu_efficiency,
    schedule_efficiency,
)
from .verification import (
    RocPoint,
    VerificationReport,
    evaluate_verification,
    roc_from_scores,
)

__all__ = [
    "AccuracyReport",
    "EfficiencyReport",
    "RocPoint",
    "VerificationReport",
    "evaluate_top1",
    "evaluate_verification",
    "gemm_flops_per_image",
    "gpu_efficiency",
    "roc_from_scores",
    "schedule_efficiency",
]
