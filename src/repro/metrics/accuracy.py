"""Identification accuracy metrics.

Top-1 accuracy over an :class:`IdentificationDataset`: a query is
correct when the best-scoring reference is its true brick *and* the
score clears the engine's ``min_matches`` decision threshold — "only
when the number [of matched keypoints is] higher than a pre-defined
threshold can these two images be considered with the same texture"
(Sec. 3.1), so a below-threshold best hit is a failed identification.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import TextureSearchEngine
from ..data.dataset import IdentificationDataset

__all__ = ["AccuracyReport", "evaluate_top1"]


@dataclass
class AccuracyReport:
    correct: int
    total: int
    per_query_scores: list[int]

    @property
    def top1_accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"top-1 {self.top1_accuracy:.2%} ({self.correct}/{self.total})"


def evaluate_top1(
    engine: TextureSearchEngine,
    dataset: IdentificationDataset,
    enroll: bool = True,
) -> AccuracyReport:
    """Enroll the dataset's references (optionally) and run every query.

    Reference ids are the stringified brick ids, so ground truth is
    checked directly against :attr:`ImageMatch.reference_id`.
    """
    if enroll:
        for ref in dataset.references:
            engine.add_reference(str(ref.brick_id), ref.descriptors)
        engine.flush()
    threshold = engine.config.min_matches
    correct = 0
    scores: list[int] = []
    for query in dataset.queries:
        result = engine.search(query.descriptors)
        best = result.best()
        if (
            best is not None
            and best.score >= threshold
            and best.reference_id == str(query.brick_id)
        ):
            correct += 1
        scores.append(0 if best is None else best.score)
    return AccuracyReport(correct=correct, total=len(dataset.queries), per_query_scores=scores)
