"""One-to-one verification metrics.

The paper's verification task (Sec. 1) decides whether two texture
images show the same physical object by thresholding the good-match
count.  This module characterises that decision: score distributions
for genuine and impostor pairs, FAR/FRR across thresholds, and the
equal-error rate — the standard biometric-style analysis the
identification threshold (``min_matches``) is chosen from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RocPoint", "VerificationReport", "evaluate_verification", "roc_from_scores"]


@dataclass(frozen=True)
class RocPoint:
    """Operating point at one decision threshold."""

    threshold: float
    far: float  # impostors accepted / impostors
    frr: float  # genuines rejected / genuines

    @property
    def tar(self) -> float:
        """True-accept rate (1 - FRR)."""
        return 1.0 - self.frr


@dataclass
class VerificationReport:
    """Score distributions + ROC for a verification protocol."""

    genuine_scores: np.ndarray
    impostor_scores: np.ndarray
    roc: list[RocPoint] = field(default_factory=list)

    @property
    def eer(self) -> float:
        """Equal-error rate: where FAR crosses FRR (linear interp)."""
        if not self.roc:
            return float("nan")
        fars = np.array([p.far for p in self.roc])
        frrs = np.array([p.frr for p in self.roc])
        diff = fars - frrs
        idx = int(np.argmin(np.abs(diff)))
        return float((fars[idx] + frrs[idx]) / 2.0)

    def operating_point(self, threshold: float) -> RocPoint:
        """FAR/FRR at an arbitrary threshold (scores >= threshold accept)."""
        far = float(np.mean(self.impostor_scores >= threshold)) if len(self.impostor_scores) else 0.0
        frr = float(np.mean(self.genuine_scores < threshold)) if len(self.genuine_scores) else 0.0
        return RocPoint(threshold=float(threshold), far=far, frr=frr)

    def best_threshold(self) -> float:
        """Threshold minimising FAR + FRR."""
        if not self.roc:
            return float("nan")
        totals = [p.far + p.frr for p in self.roc]
        return self.roc[int(np.argmin(totals))].threshold


def roc_from_scores(
    genuine_scores: np.ndarray,
    impostor_scores: np.ndarray,
    thresholds: np.ndarray | None = None,
) -> VerificationReport:
    """Build a report from raw score samples (higher = more similar)."""
    genuine = np.asarray(genuine_scores, dtype=np.float64)
    impostor = np.asarray(impostor_scores, dtype=np.float64)
    if genuine.size == 0 or impostor.size == 0:
        raise ValueError("need at least one genuine and one impostor score")
    if thresholds is None:
        hi = max(genuine.max(), impostor.max())
        thresholds = np.arange(0.0, hi + 2.0)
    report = VerificationReport(genuine_scores=genuine, impostor_scores=impostor)
    for t in thresholds:
        report.roc.append(report.operating_point(float(t)))
    return report


def evaluate_verification(
    engine,
    model,
    n_bricks: int = 20,
    impostors_per_brick: int = 2,
    seed: int = 0,
) -> VerificationReport:
    """Run the verification protocol on a synthetic feature model.

    For each brick: one genuine (reference, query) pair and
    ``impostors_per_brick`` impostor pairs (query against other bricks'
    references).  ``engine`` is a :class:`TextureSearchEngine`;
    ``model`` a :class:`~repro.data.SyntheticFeatureModel`.
    """
    if n_bricks < 2:
        raise ValueError("need at least two bricks for impostor pairs")
    m = engine.config.m
    n = engine.config.n
    genuine, impostor = [], []
    for brick in range(n_bricks):
        reference = model.capture(brick, "reference").top(m).descriptors
        query = model.capture(brick, "query").top(n).descriptors
        _, count = engine.verify(reference, query)
        genuine.append(count)
        for j in range(1, impostors_per_brick + 1):
            other = model.capture((brick + j) % n_bricks, "reference").top(m).descriptors
            _, count = engine.verify(other, query)
            impostor.append(count)
    return roc_from_scores(np.array(genuine), np.array(impostor))
