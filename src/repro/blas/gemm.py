"""cuBLAS-like GEMM entry points.

These functions compute the *actual* product with NumPy and charge the
simulated device for the time cuBLAS would take (see
:func:`repro.gpusim.kernels.gemm_us`).  Numerical behaviour mirrors the
hardware paths:

* ``sgemm`` — FP32 in, FP32 accumulate.
* ``hgemm`` — FP16 in.  Plain HGEMM accumulates in FP16 (the paper's
  Table 2 overflow column exists *because* of FP16 accumulation); the
  tensor-core path (``tensor_core=True``) accumulates in FP32, as Volta
  tensor cores do.

SIFT descriptors are element-wise non-negative, so all partial sums of
``R^T Q`` are monotone non-decreasing — the largest intermediate equals
the final dot product.  That lets us detect FP16 accumulation overflow
exactly without emulating the 128-step summation: a product overflows
iff its FP32 value exceeds ``float16`` max.  Inputs with mixed signs
fall back to a conservative bound (sum of absolute values).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpusim.engine_model import GPUDevice
from ..gpusim.stream import Stream

__all__ = ["sgemm", "hgemm", "batched_hgemm", "FP16_MAX"]

FP16_MAX = float(np.finfo(np.float16).max)  # 65504.0


def _as_2d(a: np.ndarray, name: str) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {a.shape}")
    return a


def sgemm(
    device: GPUDevice,
    a: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    transpose_a: bool = False,
    stream: Optional[Stream] = None,
    step: str = "GEMM",
) -> np.ndarray:
    """``alpha * op(A) @ B`` in FP32, charging simulated GEMM time."""
    a = _as_2d(a, "a").astype(np.float32, copy=False)
    b = _as_2d(b, "b").astype(np.float32, copy=False)
    op_a = a.T if transpose_a else a
    if op_a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {op_a.shape} @ {b.shape}")
    m, k = op_a.shape
    n = b.shape[1]
    device.gemm(m, n, k, batch=1, dtype="fp32", stream=stream, step=step)
    return np.float32(alpha) * (op_a @ b)


def _hgemm_product(op_a: np.ndarray, b: np.ndarray, tensor_core: bool) -> tuple[np.ndarray, bool]:
    """FP16 product with accumulation-overflow detection.

    Returns ``(result_fp32, overflowed)``.  ``result`` is the value an
    FP32-accumulating engine would produce from FP16 operands; callers
    that model plain HGEMM must treat ``overflowed=True`` outputs as
    saturated/invalid (the library raises, see :mod:`repro.fp16`).
    """
    a16 = op_a.astype(np.float16)
    b16 = b.astype(np.float16)
    exact = a16.astype(np.float32) @ b16.astype(np.float32)
    if tensor_core:
        # FP32 accumulation: only the final store can overflow.
        overflow = bool(np.any(np.abs(exact) > FP16_MAX))
        return exact, overflow
    if np.all(a16 >= 0) and np.all(b16 >= 0):
        # Non-negative operands: partial sums are monotone, the max
        # intermediate is the final value.
        overflow = bool(np.any(exact > FP16_MAX))
    else:
        # Conservative bound on the largest partial sum.
        bound = np.abs(a16).astype(np.float32) @ np.abs(b16).astype(np.float32)
        overflow = bool(np.any(bound > FP16_MAX))
    # Model FP16 rounding of the accumulator on the final result.  (The
    # per-step rounding error is dominated by input quantization for the
    # d=128 sums used here.)
    result = np.clip(exact, -FP16_MAX, FP16_MAX).astype(np.float16).astype(np.float32)
    return result, overflow


def hgemm(
    device: GPUDevice,
    a: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    transpose_a: bool = False,
    tensor_core: bool = False,
    stream: Optional[Stream] = None,
    step: str = "GEMM",
) -> tuple[np.ndarray, bool]:
    """FP16 GEMM; returns ``(alpha * op(A) @ B as float32, overflowed)``."""
    a = _as_2d(a, "a")
    b = _as_2d(b, "b")
    op_a = a.T if transpose_a else a
    if op_a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {op_a.shape} @ {b.shape}")
    m, k = op_a.shape
    n = b.shape[1]
    device.gemm(m, n, k, batch=1, dtype="fp16", tensor_core=tensor_core, stream=stream, step=step)
    result, overflow = _hgemm_product(op_a, b, tensor_core)
    scaled = np.float32(alpha) * result
    if abs(alpha) != 1.0 and not tensor_core:
        overflow = overflow or bool(np.any(np.abs(scaled) > FP16_MAX))
    return scaled, overflow


def batched_hgemm(
    device: GPUDevice,
    a_batch: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    tensor_core: bool = False,
    stream: Optional[Stream] = None,
    step: str = "GEMM",
) -> tuple[np.ndarray, bool]:
    """Batched FP16 GEMM: ``a_batch`` is ``(batch, k, m)`` reference
    matrices (features stored column-wise, as in Fig. 3); ``b`` is the
    shared ``(k, n)`` query matrix.  Returns ``(batch, m, n)`` products.

    This is the Sec. 5 batching optimization: the whole batch is charged
    as *one* GEMM call of ``batch`` times the work, which is where the
    data-reuse efficiency gain comes from.
    """
    a_batch = np.asarray(a_batch)
    if a_batch.ndim != 3:
        raise ValueError(f"a_batch must be (batch, k, m), got shape {a_batch.shape}")
    b = _as_2d(b, "b")
    batch, k, m = a_batch.shape
    if k != b.shape[0]:
        raise ValueError(f"inner-dimension mismatch: {a_batch.shape} vs {b.shape}")
    n = b.shape[1]
    device.gemm(m, n, k, batch=batch, dtype="fp16", tensor_core=tensor_core, stream=stream, step=step)
    a16 = a_batch.astype(np.float16)
    b16 = b.astype(np.float16)
    # (batch, m, k) @ (k, n) -> (batch, m, n), FP32 accumulate.
    exact = np.einsum(
        "bkm,kn->bmn", a16.astype(np.float32), b16.astype(np.float32), optimize=True
    )
    if tensor_core:
        overflow = bool(np.any(np.abs(exact) > FP16_MAX))
    elif np.all(a16 >= 0) and np.all(b16 >= 0):
        overflow = bool(np.any(exact > FP16_MAX))
    else:
        bound = np.einsum(
            "bkm,kn->bmn",
            np.abs(a16).astype(np.float32),
            np.abs(b16).astype(np.float32),
            optimize=True,
        )
        overflow = bool(np.any(bound > FP16_MAX))
    result = np.clip(exact, -FP16_MAX, FP16_MAX).astype(np.float16).astype(np.float32)
    return np.float32(alpha) * result, overflow
