"""cuBLAS-like linear-algebra layer over the simulated device.

Functional results are exact NumPy; simulated time is charged per call
via the device cost models.  ``hgemm``/``batched_hgemm`` model FP16
accumulation (overflow detection included), which is what makes the
paper's Table 2 scale-factor study reproducible.
"""

from .gemm import FP16_MAX, batched_hgemm, hgemm, sgemm
from .norms import squared_norms, squared_norms_fp16

__all__ = [
    "FP16_MAX",
    "batched_hgemm",
    "hgemm",
    "sgemm",
    "squared_norms",
    "squared_norms_fp16",
]
