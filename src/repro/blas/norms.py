"""Squared-L2-norm kernels (steps 1-2 of Algorithm 1).

``N_R`` and ``N_Q`` are stored as *vectors* of length ``m`` and ``n``
rather than materialised as matrices — the paper calls this out as a
GPU-memory saving (Sec. 4.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpusim.engine_model import GPUDevice
from ..gpusim.stream import Stream

__all__ = ["squared_norms", "squared_norms_fp16"]


def squared_norms(
    device: GPUDevice,
    features: np.ndarray,
    stream: Optional[Stream] = None,
    step: str = "norms",
) -> np.ndarray:
    """Column-wise squared L2 norms of a ``(d, count)`` feature matrix.

    Charged as a bandwidth-bound reduction in FP32.
    """
    features = np.asarray(features, dtype=np.float32)
    if features.ndim != 2:
        raise ValueError(f"features must be (d, count), got shape {features.shape}")
    d, count = features.shape
    device.norm_vector(count, d, dtype="fp32", stream=stream, step=step)
    return np.einsum("dc,dc->c", features, features, optimize=True)


def squared_norms_fp16(
    device: GPUDevice,
    features16: np.ndarray,
    stream: Optional[Stream] = None,
    step: str = "norms",
) -> tuple[np.ndarray, bool]:
    """FP16 variant; returns ``(norms_fp32, overflowed)``.

    Squares of non-negative FP16 values are summed monotonically, so
    overflow occurs iff the final sum exceeds ``float16`` max.
    """
    f16 = np.asarray(features16, dtype=np.float16)
    if f16.ndim != 2:
        raise ValueError(f"features must be (d, count), got shape {f16.shape}")
    d, count = f16.shape
    device.norm_vector(count, d, dtype="fp16", stream=stream, step=step)
    exact = np.einsum(
        "dc,dc->c", f16.astype(np.float32), f16.astype(np.float32), optimize=True
    )
    fp16_max = float(np.finfo(np.float16).max)
    overflow = bool(np.any(exact > fp16_max))
    quantized = np.clip(exact, 0.0, fp16_max).astype(np.float16).astype(np.float32)
    return quantized, overflow
