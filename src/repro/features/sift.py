"""SIFT extractor facade.

Ties the pyramid, detector, orientation and descriptor stages together
behind one configurable object, mirroring ``cv2.SIFT_create``.  The
paper's pipeline computes reference features offline on CPU and query
features on CPU at request time (Sec. 4.1); the extractor is therefore
a pure-host component with no simulated-GPU cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .descriptor import DESCRIPTOR_DIM, compute_descriptors
from .dog import DEFAULT_CONTRAST_THRESHOLD, DEFAULT_EDGE_RATIO, detect_keypoints
from .gaussian import build_gaussian_pyramid
from .keypoints import Keypoint
from .rootsift import rootsift
from .selection import select_top_features

__all__ = ["SIFTConfig", "ExtractionResult", "SIFTExtractor"]


@dataclass(frozen=True)
class SIFTConfig:
    """Extractor knobs (defaults follow Lowe / OpenCV conventions)."""

    n_features: int = 768
    sigma0: float = 1.6
    intervals: int = 3
    n_octaves: int | None = None
    contrast_threshold: float = DEFAULT_CONTRAST_THRESHOLD
    edge_ratio: float = DEFAULT_EDGE_RATIO
    max_orientations: int = 2
    use_rootsift: bool = False

    def __post_init__(self) -> None:
        if self.n_features <= 0:
            raise ValueError("n_features must be positive")


@dataclass
class ExtractionResult:
    """Features from one image: ``(d, count)`` descriptors + keypoints."""

    descriptors: np.ndarray
    keypoints: list[Keypoint] = field(default_factory=list)

    @property
    def count(self) -> int:
        return self.descriptors.shape[1]

    @property
    def dim(self) -> int:
        return self.descriptors.shape[0]


class SIFTExtractor:
    """Extract (optionally Root-)SIFT features from grayscale images."""

    def __init__(self, config: SIFTConfig | None = None) -> None:
        self.config = config or SIFTConfig()

    def extract(self, image: np.ndarray, n_features: int | None = None) -> ExtractionResult:
        """Run the full pipeline on a float image in [0, 1].

        ``n_features`` overrides the configured budget — this is how the
        asymmetric extractor requests m features for references and n
        for queries from the same extractor instance.
        """
        cfg = self.config
        budget = cfg.n_features if n_features is None else int(n_features)
        if budget <= 0:
            raise ValueError("n_features must be positive")
        image = np.asarray(image, dtype=np.float32)
        if image.ndim == 3:
            # Luminance conversion for (H, W, 3) inputs.
            image = image @ np.array([0.299, 0.587, 0.114], dtype=np.float32)
        if image.max() > 1.5:
            image = image / 255.0

        pyramid = build_gaussian_pyramid(
            image,
            sigma0=cfg.sigma0,
            intervals=cfg.intervals,
            n_octaves=cfg.n_octaves,
        )
        from .orientation import assign_orientations  # local import avoids cycle

        keypoints = detect_keypoints(
            pyramid,
            contrast_threshold=cfg.contrast_threshold,
            edge_ratio=cfg.edge_ratio,
        )
        oriented = assign_orientations(pyramid, keypoints, cfg.max_orientations)
        descriptors, kept = compute_descriptors(pyramid, oriented)
        descriptors, kept = select_top_features(descriptors, kept, budget)
        if cfg.use_rootsift and descriptors.size:
            descriptors = rootsift(descriptors)
        return ExtractionResult(descriptors=descriptors, keypoints=kept)

    @property
    def descriptor_dim(self) -> int:
        return DESCRIPTOR_DIM
