"""SIFT descriptor computation (Lowe Sec. 6).

For each oriented keypoint, gradients in a rotated, scale-normalised
16x16 window are pooled into a 4x4 grid of 8-bin orientation histograms
with trilinear interpolation, Gaussian-weighted, illumination-
normalised (clip at 0.2 and renormalise), and finally scaled so the
descriptor's L2 norm is 512 — the OpenCV convention the paper's FP16
scale-factor analysis assumes (a 512-norm makes the worst-case dot
product 512^2 = 262,144, which is why scale 2^-1 overflows FP16 and
2^-2 does not; Table 2).
"""

from __future__ import annotations

import numpy as np

from .gaussian import GaussianPyramid
from .keypoints import Keypoint
from .orientation import image_gradients

__all__ = ["compute_descriptors", "DESCRIPTOR_DIM", "DESCRIPTOR_L2_NORM"]

GRID = 4  # 4x4 spatial cells
ORI_BINS = 8
DESCRIPTOR_DIM = GRID * GRID * ORI_BINS  # 128
DESCRIPTOR_L2_NORM = 512.0
CLIP = 0.2


def _descriptor_for(
    magnitude: np.ndarray,
    angle: np.ndarray,
    cx: float,
    cy: float,
    octave_sigma: float,
    orientation: float,
) -> np.ndarray | None:
    """One 128-D descriptor, or ``None`` if the window leaves the image."""
    h, w = magnitude.shape
    hist_width = 3.0 * octave_sigma  # pixels per descriptor cell
    # Window radius covering the rotated 4x4 grid (+0.5 for interpolation).
    radius = int(np.round(hist_width * np.sqrt(2.0) * (GRID + 1) * 0.5))
    radius = min(radius, int(np.hypot(h, w)))
    x0, x1 = int(cx) - radius, int(cx) + radius + 1
    y0, y1 = int(cy) - radius, int(cy) + radius + 1
    if x0 < 0 or y0 < 0 or x1 > w or y1 > h:
        return None

    ys, xs = np.mgrid[y0:y1, x0:x1]
    dx = xs - cx
    dy = ys - cy
    cos_t = np.cos(orientation)
    sin_t = np.sin(orientation)
    # Rotate into the keypoint frame and express in cell units, offset
    # so that (r, c) = (0, 0) is the top-left interior cell corner.
    r_rot = (-sin_t * dx + cos_t * dy) / hist_width + GRID / 2 - 0.5
    c_rot = (cos_t * dx + sin_t * dy) / hist_width + GRID / 2 - 0.5
    inside = (r_rot > -1) & (r_rot < GRID) & (c_rot > -1) & (c_rot < GRID)
    if not np.any(inside):
        return None

    r_rot = r_rot[inside]
    c_rot = c_rot[inside]
    mag = magnitude[y0:y1, x0:x1][inside]
    ang = (angle[y0:y1, x0:x1][inside] - orientation) % (2.0 * np.pi)
    # Gaussian window over the whole descriptor, sigma = half its width.
    weight = np.exp(-(r_rot - GRID / 2 + 0.5) ** 2 / (2 * (0.5 * GRID) ** 2)
                    - (c_rot - GRID / 2 + 0.5) ** 2 / (2 * (0.5 * GRID) ** 2))
    mag = mag * weight

    o = ang / (2.0 * np.pi) * ORI_BINS
    r0 = np.floor(r_rot).astype(np.int64)
    c0 = np.floor(c_rot).astype(np.int64)
    o0 = np.floor(o).astype(np.int64)
    fr = r_rot - r0
    fc = c_rot - c0
    fo = o - o0

    hist = np.zeros((GRID + 2, GRID + 2, ORI_BINS), dtype=np.float64)
    # Trilinear scatter: 8 corner contributions, fully vectorised via
    # np.add.at on flattened indices.
    for dr in (0, 1):
        wr = mag * (fr if dr else (1.0 - fr))
        rr = r0 + dr + 1  # +1: histogram has a border ring
        for dc in (0, 1):
            wc = wr * (fc if dc else (1.0 - fc))
            cc = c0 + dc + 1
            for do in (0, 1):
                wo = wc * (fo if do else (1.0 - fo))
                oo = (o0 + do) % ORI_BINS
                np.add.at(hist, (rr, cc, oo), wo)
    desc = hist[1 : GRID + 1, 1 : GRID + 1, :].reshape(DESCRIPTOR_DIM)

    norm = np.linalg.norm(desc)
    if norm < 1e-12:
        return None
    desc = np.minimum(desc / norm, CLIP)
    norm = np.linalg.norm(desc)
    if norm < 1e-12:
        return None
    return (desc / norm * DESCRIPTOR_L2_NORM).astype(np.float32)


def compute_descriptors(
    pyramid: GaussianPyramid,
    keypoints: list[Keypoint],
) -> tuple[np.ndarray, list[Keypoint]]:
    """Descriptors for ``keypoints``.

    Returns ``(D, kept)`` where ``D`` is ``(d, count)`` with descriptors
    stored column-wise (the layout Algorithm 1 expects) and ``kept``
    lists the keypoints that yielded a descriptor (window fully inside
    the image).
    """
    grad_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    columns: list[np.ndarray] = []
    kept: list[Keypoint] = []
    for kp in keypoints:
        layer = int(np.clip(kp.layer, 0, len(pyramid.octaves[kp.octave]) - 1))
        key = (kp.octave, layer)
        if key not in grad_cache:
            grad_cache[key] = image_gradients(pyramid.octaves[kp.octave][layer])
        magnitude, angle = grad_cache[key]
        cx, cy = kp.scaled_to_octave(kp.octave)
        octave_sigma = kp.sigma / (2.0**kp.octave)
        desc = _descriptor_for(magnitude, angle, cx, cy, octave_sigma, kp.orientation)
        if desc is not None:
            columns.append(desc)
            kept.append(kp)
    if not columns:
        return np.zeros((DESCRIPTOR_DIM, 0), dtype=np.float32), []
    return np.stack(columns, axis=1), kept
