"""Integral images and box filters (the SURF substrate).

SURF's speed comes from evaluating box filters in O(1) via the integral
image; this module provides exactly that, vectorised over whole grids
of evaluation points.
"""

from __future__ import annotations

import numpy as np

__all__ = ["integral_image", "box_sum", "BoxFilter"]


def integral_image(image: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top/left border.

    ``ii[y, x]`` is the sum of ``image[:y, :x]``, so any axis-aligned
    rectangle sums in four lookups.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {image.shape}")
    ii = np.zeros((image.shape[0] + 1, image.shape[1] + 1), dtype=np.float64)
    np.cumsum(np.cumsum(image, axis=0), axis=1, out=ii[1:, 1:])
    return ii


def box_sum(ii: np.ndarray, y0, x0, y1, x1) -> np.ndarray:
    """Sum of ``image[y0:y1, x0:x1]`` from an integral image.

    All four bounds may be arrays (broadcast together); out-of-range
    bounds are clamped to the image, so partially-outside boxes return
    the sum of their in-image part.
    """
    h, w = ii.shape[0] - 1, ii.shape[1] - 1
    y0 = np.clip(np.asarray(y0), 0, h)
    y1 = np.clip(np.asarray(y1), 0, h)
    x0 = np.clip(np.asarray(x0), 0, w)
    x1 = np.clip(np.asarray(x1), 0, w)
    return ii[y1, x1] - ii[y0, x1] - ii[y1, x0] + ii[y0, x0]


class BoxFilter:
    """A weighted set of boxes, evaluated at many points at once.

    Boxes are (dy0, dx0, dy1, dx1, weight) offsets relative to the
    evaluation point; SURF's Dxx/Dyy/Dxy approximations and Haar
    wavelets are all instances.
    """

    def __init__(self, boxes: list[tuple[int, int, int, int, float]]) -> None:
        if not boxes:
            raise ValueError("a box filter needs at least one box")
        self.boxes = [tuple(b) for b in boxes]

    def apply(self, ii: np.ndarray, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
        """Evaluate at integer points ``(ys, xs)`` (broadcastable)."""
        ys = np.asarray(ys)
        xs = np.asarray(xs)
        out = np.zeros(np.broadcast(ys, xs).shape, dtype=np.float64)
        for dy0, dx0, dy1, dx1, weight in self.boxes:
            out += weight * box_sum(ii, ys + dy0, xs + dx0, ys + dy1, xs + dx1)
        return out

    def scaled(self, factor: int) -> "BoxFilter":
        """The same filter with all offsets scaled by ``factor``."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return BoxFilter(
            [(dy0 * factor, dx0 * factor, dy1 * factor, dx1 * factor, w)
             for dy0, dx0, dy1, dx1, w in self.boxes]
        )
