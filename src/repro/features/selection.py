"""Response-ranked feature selection (asymmetric extraction, Sec. 7).

The paper keeps the strongest ``m`` features for *reference* images and
a larger ``n`` for *query* images, halving the cached feature-matrix
size with negligible accuracy loss (Table 7).  Selection is by detector
response (|DoG| value), the same ranking OpenCV's ``nfeatures`` uses.
"""

from __future__ import annotations

import numpy as np

from .keypoints import Keypoint

__all__ = ["select_top_features", "pad_or_trim"]


def select_top_features(
    descriptors: np.ndarray,
    keypoints: list[Keypoint],
    count: int,
) -> tuple[np.ndarray, list[Keypoint]]:
    """Keep the ``count`` strongest features by response.

    ``descriptors`` is ``(d, total)`` column-aligned with ``keypoints``.
    Output preserves descending-response order (ties broken by original
    index for determinism).
    """
    descriptors = np.asarray(descriptors)
    if descriptors.ndim != 2 or descriptors.shape[1] != len(keypoints):
        raise ValueError(
            f"descriptors {descriptors.shape} do not align with {len(keypoints)} keypoints"
        )
    if count < 0:
        raise ValueError("count must be non-negative")
    responses = np.array([k.response for k in keypoints])
    # Stable argsort on -response keeps original order among ties.  The
    # output is *always* response-descending, even under budget — the
    # engine trims cached matrices by slicing leading columns, so the
    # ranking must be baked into the column order.
    order = np.argsort(-responses, kind="stable")[:count]
    return descriptors[:, order], [keypoints[i] for i in order]


def pad_or_trim(descriptors: np.ndarray, count: int) -> np.ndarray:
    """Force a ``(d, count)`` matrix by truncation or zero-padding.

    The batched engine requires uniform reference-matrix shapes
    (Fig. 3); images with fewer detected features are zero-padded.
    Zero columns have maximal distance to every (unit-norm RootSIFT)
    query feature, so padding never creates spurious matches.
    """
    descriptors = np.asarray(descriptors, dtype=np.float32)
    if descriptors.ndim != 2:
        raise ValueError(f"expected (d, count), got {descriptors.shape}")
    d, have = descriptors.shape
    if have == count:
        return descriptors
    if have > count:
        return descriptors[:, :count]
    out = np.zeros((d, count), dtype=np.float32)
    out[:, :have] = descriptors
    return out
