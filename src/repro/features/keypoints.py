"""Keypoint container and geometric filters.

``Keypoint`` carries everything downstream stages need: image-space
position (in base-image pixels), scale, orientation, the DoG response
used for ranking (the asymmetric extraction of Sec. 7 keeps the top-m
by response), and the pyramid coordinates it was detected at.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["Keypoint", "keypoints_to_arrays", "remove_border_keypoints"]


@dataclass(frozen=True)
class Keypoint:
    """One detected local feature (before/after orientation assignment)."""

    x: float
    y: float
    sigma: float
    response: float
    octave: int
    layer: int
    orientation: float = 0.0

    def with_orientation(self, theta: float) -> "Keypoint":
        return replace(self, orientation=float(theta))

    def scaled_to_octave(self, octave: int) -> tuple[float, float]:
        """(x, y) in the pixel grid of ``octave``."""
        factor = 2.0**octave
        return self.x / factor, self.y / factor


def keypoints_to_arrays(keypoints: list[Keypoint]) -> dict[str, np.ndarray]:
    """Column-wise arrays for vectorised consumers (and for tests)."""
    return {
        "x": np.array([k.x for k in keypoints], dtype=np.float32),
        "y": np.array([k.y for k in keypoints], dtype=np.float32),
        "sigma": np.array([k.sigma for k in keypoints], dtype=np.float32),
        "response": np.array([k.response for k in keypoints], dtype=np.float32),
        "orientation": np.array([k.orientation for k in keypoints], dtype=np.float32),
    }


def remove_border_keypoints(
    keypoints: list[Keypoint],
    image_shape: tuple[int, int],
    border: int,
) -> list[Keypoint]:
    """Drop keypoints whose descriptor window would leave the image.

    This is the "edge feature removing" post-processing step the paper
    applies after the ratio test (Sec. 4.1, Table 1 note).
    """
    h, w = image_shape
    return [
        k
        for k in keypoints
        if border <= k.x < w - border and border <= k.y < h - border
    ]
