"""Simplified SURF feature extraction (Bay et al. 2008).

The paper uses SIFT throughout but calls out SURF's 64-dimensional
descriptors as the alternative (`d is 64 for SURF`, Sec. 4.1); the
engine is dimension-agnostic, so this extractor lets the whole stack
run at d=64 with half the GEMM work per comparison.

Implementation follows the original at "reproduction" fidelity:

* **detection** — determinant of the box-filter-approximated Hessian on
  integral images, over a scale stack (9, 15, 21, 27, ... lobes), 3-D
  non-maximum suppression;
* **orientation** — dominant direction of Gaussian-weighted Haar
  responses in a circular window (sliding-arc step simplified to the
  argmax of binned response vectors);
* **descriptor** — 4x4 subregions of (sum dx, sum |dx|, sum dy,
  sum |dy|) Haar statistics, L2-normalised then scaled to norm 512 to
  match the engine's SIFT conventions (one FP16 scale factor serves
  both descriptor types).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .integral import BoxFilter, box_sum, integral_image
from .keypoints import Keypoint
from .selection import select_top_features

__all__ = ["SURFConfig", "SURFExtractor", "SURF_DESCRIPTOR_DIM"]

SURF_DESCRIPTOR_DIM = 64
DESCRIPTOR_L2_NORM = 512.0

def _hessian_filters(lobe: int) -> tuple[BoxFilter, BoxFilter, BoxFilter]:
    """(Dyy, Dxx, Dxy) box approximations with lobe size ``lobe``.

    Box bounds are half-open ``[y0, y1) x [x0, x1)`` offsets from the
    evaluation pixel.  For (odd) lobe L the filter spans ``3L`` rows
    (``b = (3L)//2`` each side) and ``2L - 1`` columns — the standard
    9x9 layout at L=3, scaled.
    """
    b = (3 * lobe) // 2
    x0, x1 = -(lobe - 1), lobe  # 2L-1 columns
    # Dyy: three stacked boxes (+1, -2, +1), each L rows tall.
    dyy = BoxFilter(
        [
            (-b, x0, -b + lobe, x1, 1.0),
            (-b + lobe, x0, -b + 2 * lobe, x1, -2.0),
            (-b + 2 * lobe, x0, b + 1, x1, 1.0),
        ]
    )
    # Dxx is Dyy transposed (swap the axis roles of every box).
    dxx = BoxFilter([(bx0, by0, bx1, by1, w) for by0, bx0, by1, bx1, w in dyy.boxes])
    # Dxy: four L x L quadrant boxes with a one-pixel cross-shaped gap.
    dxy = BoxFilter(
        [
            (-lobe, 1, 0, lobe + 1, +1.0),
            (-lobe, -lobe, 0, 0, -1.0),
            (1, -lobe, lobe + 1, 0, +1.0),
            (1, 1, lobe + 1, lobe + 1, -1.0),
        ]
    )
    return dyy, dxx, dxy


@dataclass(frozen=True)
class SURFConfig:
    """Extractor knobs."""

    n_features: int = 768
    n_scales: int = 4
    hessian_threshold: float = 1e-4
    step: int = 1

    def __post_init__(self) -> None:
        if self.n_features <= 0 or self.n_scales < 2:
            raise ValueError("need n_features > 0 and n_scales >= 2")


class SURFExtractor:
    """Extract 64-D SURF descriptors from grayscale images."""

    def __init__(self, config: SURFConfig | None = None) -> None:
        self.config = config or SURFConfig()
        #: lobe sizes of the scale stack: 3, 5, 7, 9, ... (filters 9,
        #: 15, 21, 27 px), as in the first SURF octave.
        self.lobes = [3 + 2 * i for i in range(self.config.n_scales)]

    # ------------------------------------------------------------------
    def _hessian_stack(self, ii: np.ndarray, h: int, w: int) -> np.ndarray:
        stack = np.zeros((len(self.lobes), h, w), dtype=np.float64)
        ys, xs = np.mgrid[0:h, 0:w]
        for si, lobe in enumerate(self.lobes):
            dyy_f, dxx_f, dxy_f = _hessian_filters(lobe)
            area = (3 * lobe) ** 2
            dyy = dyy_f.apply(ii, ys, xs) / area
            dxx = dxx_f.apply(ii, ys, xs) / area
            dxy = dxy_f.apply(ii, ys, xs) / area
            stack[si] = dxx * dyy - (0.9 * dxy) ** 2
        return stack

    def _detect(self, image: np.ndarray) -> list[Keypoint]:
        h, w = image.shape
        ii = integral_image(image)
        stack = self._hessian_stack(ii, h, w)
        maxf = ndimage.maximum_filter(stack, size=3, mode="nearest")
        is_max = (stack == maxf) & (stack > self.config.hessian_threshold)
        is_max[0] = False
        is_max[-1] = False
        border = 3 * self.lobes[-1] // 2 + 1
        is_max[:, :border, :] = False
        is_max[:, -border:, :] = False
        is_max[:, :, :border] = False
        is_max[:, :, -border:] = False
        keypoints = []
        for si, y, x in np.argwhere(is_max):
            lobe = self.lobes[si]
            keypoints.append(
                Keypoint(
                    x=float(x),
                    y=float(y),
                    sigma=0.4 * (3 * lobe),  # SURF scale s = 1.2 * L/9 * 3
                    response=float(stack[si, y, x]),
                    octave=0,
                    layer=int(si),
                )
            )
        return keypoints

    # ------------------------------------------------------------------
    def _haar_responses(
        self, ii: np.ndarray, ys: np.ndarray, xs: np.ndarray, size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(dx, dy) Haar wavelet responses of side ``2 * size``."""
        left = box_sum(ii, ys - size, xs - size, ys + size, xs)
        right = box_sum(ii, ys - size, xs, ys + size, xs + size)
        top = box_sum(ii, ys - size, xs - size, ys, xs + size)
        bottom = box_sum(ii, ys, xs - size, ys + size, xs + size)
        return right - left, bottom - top

    def _orientation(self, ii: np.ndarray, kp: Keypoint) -> float:
        s = max(2, int(round(kp.sigma)))
        radius = 6
        offsets = [(dy, dx) for dy in range(-radius, radius + 1)
                   for dx in range(-radius, radius + 1)
                   if dy * dy + dx * dx <= radius * radius]
        ys = np.array([kp.y + dy * s / 2 for dy, _ in offsets], dtype=np.int64)
        xs = np.array([kp.x + dx * s / 2 for _, dx in offsets], dtype=np.int64)
        dx, dy = self._haar_responses(ii, ys, xs, s)
        weights = np.exp(-np.array([o[0] ** 2 + o[1] ** 2 for o in offsets]) / (2 * 2.5**2))
        angles = np.arctan2(dy, dx)
        bins = ((angles + np.pi) / (2 * np.pi) * 12).astype(np.int64) % 12
        strength = np.hypot(dx, dy) * weights
        hist_x = np.bincount(bins, weights=dx * weights, minlength=12)
        hist_y = np.bincount(bins, weights=dy * weights, minlength=12)
        power = np.bincount(bins, weights=strength, minlength=12)
        best = int(np.argmax(power))
        return float(np.arctan2(hist_y[best], hist_x[best]) % (2 * np.pi))

    def _descriptor(self, ii: np.ndarray, kp: Keypoint, theta: float) -> np.ndarray | None:
        s = max(1, int(round(kp.sigma / 2)))
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        # 20s window: 4x4 subregions of 5x5 samples.
        grid = np.arange(-10, 10) + 0.5
        gy, gx = np.meshgrid(grid, grid, indexing="ij")
        # Rotate sample offsets into image space.
        sample_x = kp.x + (cos_t * gx - sin_t * gy) * s
        sample_y = kp.y + (sin_t * gx + cos_t * gy) * s
        h, w = ii.shape[0] - 1, ii.shape[1] - 1
        if (sample_x.min() < s or sample_y.min() < s
                or sample_x.max() >= w - s or sample_y.max() >= h - s):
            return None
        ys = sample_y.astype(np.int64)
        xs = sample_x.astype(np.int64)
        raw_dx, raw_dy = self._haar_responses(ii, ys, xs, s)
        # Rotate responses into the keypoint frame.
        dx = cos_t * raw_dx + sin_t * raw_dy
        dy = -sin_t * raw_dx + cos_t * raw_dy
        weight = np.exp(-(gx**2 + gy**2) / (2 * 3.3**2))
        dx *= weight
        dy *= weight
        desc = np.zeros((4, 4, 4), dtype=np.float64)
        for by in range(4):
            for bx in range(4):
                block_dx = dx[by * 5 : by * 5 + 5, bx * 5 : bx * 5 + 5]
                block_dy = dy[by * 5 : by * 5 + 5, bx * 5 : bx * 5 + 5]
                desc[by, bx] = (
                    block_dx.sum(),
                    np.abs(block_dx).sum(),
                    block_dy.sum(),
                    np.abs(block_dy).sum(),
                )
        flat = desc.reshape(SURF_DESCRIPTOR_DIM)
        norm = np.linalg.norm(flat)
        if norm < 1e-12:
            return None
        return (flat / norm * DESCRIPTOR_L2_NORM).astype(np.float32)

    # ------------------------------------------------------------------
    def extract(self, image: np.ndarray, n_features: int | None = None):
        """Full pipeline; returns an object with ``descriptors`` (64 x
        count, response-ranked) and ``keypoints`` like the SIFT
        extractor's :class:`~repro.features.sift.ExtractionResult`."""
        from .sift import ExtractionResult

        budget = self.config.n_features if n_features is None else int(n_features)
        if budget <= 0:
            raise ValueError("n_features must be positive")
        image = np.asarray(image, dtype=np.float32)
        if image.ndim == 3:
            image = image @ np.array([0.299, 0.587, 0.114], dtype=np.float32)
        if image.max() > 1.5:
            image = image / 255.0
        ii = integral_image(image)
        keypoints = self._detect(image)
        columns = []
        kept = []
        for kp in keypoints:
            theta = self._orientation(ii, kp)
            desc = self._descriptor(ii, kp, theta)
            if desc is not None:
                columns.append(desc)
                kept.append(kp.with_orientation(theta))
        if not columns:
            return ExtractionResult(np.zeros((SURF_DESCRIPTOR_DIM, 0), np.float32), [])
        descriptors = np.stack(columns, axis=1)
        descriptors, kept = select_top_features(descriptors, kept, budget)
        return ExtractionResult(descriptors=descriptors, keypoints=kept)

    @property
    def descriptor_dim(self) -> int:
        return SURF_DESCRIPTOR_DIM
