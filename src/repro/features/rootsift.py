"""RootSIFT transform (Arandjelovic & Zisserman, Sec. 5.1 of the paper).

Each SIFT descriptor is L1-normalised and element-wise square-rooted.
The Euclidean distance between RootSIFT vectors equals the Hellinger
kernel distance between the original SIFT histograms, and — crucially
for Algorithm 2 — every RootSIFT vector has unit L2 norm, so

    rho^2(r, q) = 2 - 2 r.q

and the ``N_R``/``N_Q`` vectors of Algorithm 1 disappear entirely.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rootsift", "l2_normalize", "is_unit_normalized"]

_EPS = 1e-12


def rootsift(descriptors: np.ndarray) -> np.ndarray:
    """Apply RootSIFT column-wise to a ``(d, count)`` descriptor matrix.

    Descriptors must be non-negative (SIFT histograms are).  Zero
    columns are passed through as zeros.
    """
    d = np.asarray(descriptors, dtype=np.float32)
    if d.ndim != 2:
        raise ValueError(f"expected (d, count) matrix, got shape {d.shape}")
    if np.any(d < 0):
        raise ValueError("RootSIFT requires non-negative descriptors")
    l1 = d.sum(axis=0, keepdims=True)
    safe = np.maximum(l1, _EPS)
    return np.sqrt(d / safe, dtype=np.float32)


def l2_normalize(descriptors: np.ndarray) -> np.ndarray:
    """Column-wise L2 normalisation (unit norm without the Hellinger
    mapping).

    The Algorithm-2 simplification only needs *unit-norm* features;
    RootSIFT is the right mapping for SIFT histograms, while signed
    descriptors (SURF's Haar sums) use plain L2 normalisation — the
    conventional SURF normalisation anyway.
    """
    d = np.asarray(descriptors, dtype=np.float32)
    if d.ndim != 2:
        raise ValueError(f"expected (d, count) matrix, got shape {d.shape}")
    norms = np.linalg.norm(d, axis=0, keepdims=True)
    return d / np.maximum(norms, _EPS)


def is_unit_normalized(descriptors: np.ndarray, atol: float = 1e-4) -> bool:
    """True if every non-zero column has unit L2 norm (RootSIFT output)."""
    d = np.asarray(descriptors, dtype=np.float64)
    norms = np.sqrt(np.einsum("dc,dc->c", d, d))
    nonzero = norms > _EPS
    return bool(np.all(np.abs(norms[nonzero] - 1.0) <= atol))
