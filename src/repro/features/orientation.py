"""Keypoint orientation assignment (Lowe Sec. 5).

A 36-bin gradient-orientation histogram is accumulated in a Gaussian-
weighted window around each keypoint; every peak within 80 % of the
maximum spawns an oriented copy of the keypoint, with the peak position
refined by parabolic interpolation.
"""

from __future__ import annotations

import numpy as np

from .gaussian import GaussianPyramid
from .keypoints import Keypoint

__all__ = ["image_gradients", "assign_orientations", "orientation_histogram"]

N_BINS = 36
PEAK_RATIO = 0.8


def image_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference gradient magnitude and angle (radians, [0, 2pi))."""
    image = np.asarray(image, dtype=np.float32)
    dy = np.empty_like(image)
    dx = np.empty_like(image)
    dy[1:-1, :] = (image[2:, :] - image[:-2, :]) / 2.0
    dy[0, :] = image[1, :] - image[0, :]
    dy[-1, :] = image[-1, :] - image[-2, :]
    dx[:, 1:-1] = (image[:, 2:] - image[:, :-2]) / 2.0
    dx[:, 0] = image[:, 1] - image[:, 0]
    dx[:, -1] = image[:, -1] - image[:, -2]
    magnitude = np.hypot(dx, dy)
    angle = np.mod(np.arctan2(dy, dx), 2.0 * np.pi)
    return magnitude, angle


def orientation_histogram(
    magnitude: np.ndarray,
    angle: np.ndarray,
    cx: float,
    cy: float,
    sigma: float,
    n_bins: int = N_BINS,
) -> np.ndarray:
    """Gaussian-weighted orientation histogram around ``(cx, cy)``.

    Window radius is ``3 * 1.5 * sigma`` as in Lowe; the histogram is
    smoothed with a [1,1,1]/3 circular box filter twice to suppress
    quantisation spikes.
    """
    h, w = magnitude.shape
    weight_sigma = 1.5 * sigma
    radius = max(1, int(np.round(3.0 * weight_sigma)))
    x0, x1 = max(0, int(cx) - radius), min(w, int(cx) + radius + 1)
    y0, y1 = max(0, int(cy) - radius), min(h, int(cy) + radius + 1)
    if x0 >= x1 or y0 >= y1:
        return np.zeros(n_bins, dtype=np.float64)
    ys, xs = np.mgrid[y0:y1, x0:x1]
    d2 = (xs - cx) ** 2 + (ys - cy) ** 2
    mask = d2 <= radius * radius
    weights = np.exp(-d2 / (2.0 * weight_sigma**2)) * magnitude[y0:y1, x0:x1]
    bins = np.floor(angle[y0:y1, x0:x1] / (2.0 * np.pi) * n_bins).astype(np.int64) % n_bins
    hist = np.bincount(bins[mask].ravel(), weights=weights[mask].ravel(), minlength=n_bins)
    for _ in range(2):
        hist = (np.roll(hist, 1) + hist + np.roll(hist, -1)) / 3.0
    return hist


def _interpolate_peak(hist: np.ndarray, peak: int) -> float:
    """Parabolic sub-bin refinement of a histogram peak; returns the
    orientation in radians."""
    n = len(hist)
    left = hist[(peak - 1) % n]
    right = hist[(peak + 1) % n]
    denom = left - 2.0 * hist[peak] + right
    delta = 0.0 if abs(denom) < 1e-12 else 0.5 * (left - right) / denom
    return ((peak + 0.5 + delta) / n) * 2.0 * np.pi % (2.0 * np.pi)


def assign_orientations(
    pyramid: GaussianPyramid,
    keypoints: list[Keypoint],
    max_orientations: int = 2,
) -> list[Keypoint]:
    """Return oriented keypoints (a keypoint may appear multiple times).

    Gradients are computed on the Gaussian image closest to each
    keypoint's scale, in its own octave's pixel grid.
    """
    # Cache gradients per (octave, layer) — keypoints cluster on few layers.
    grad_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    oriented: list[Keypoint] = []
    for kp in keypoints:
        layer = int(np.clip(kp.layer, 0, len(pyramid.octaves[kp.octave]) - 1))
        key = (kp.octave, layer)
        if key not in grad_cache:
            grad_cache[key] = image_gradients(pyramid.octaves[kp.octave][layer])
        magnitude, angle = grad_cache[key]
        cx, cy = kp.scaled_to_octave(kp.octave)
        octave_sigma = kp.sigma / (2.0**kp.octave)
        hist = orientation_histogram(magnitude, angle, cx, cy, octave_sigma)
        if hist.max() <= 0:
            continue
        threshold = PEAK_RATIO * hist.max()
        n = len(hist)
        is_peak = (hist >= np.roll(hist, 1)) & (hist > np.roll(hist, -1)) & (hist >= threshold)
        peaks = np.flatnonzero(is_peak)
        # Strongest peaks first, capped.
        peaks = peaks[np.argsort(hist[peaks])[::-1][:max_orientations]]
        for peak in peaks:
            oriented.append(kp.with_orientation(_interpolate_peak(hist, int(peak))))
    return oriented
