"""Separable Gaussian filtering and the SIFT scale-space pyramid.

Implemented directly on NumPy (separable 1-D convolutions with reflect
padding) so the whole feature extractor is self-contained; the test
suite cross-checks against ``scipy.ndimage.gaussian_filter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["gaussian_kernel1d", "gaussian_blur", "GaussianPyramid", "build_gaussian_pyramid"]


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Normalized 1-D Gaussian kernel.

    ``radius`` defaults to ``ceil(4 * sigma)`` — wide enough that the
    truncation error is below float32 resolution for the sigmas SIFT
    uses.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = int(np.ceil(4.0 * sigma))
    radius = max(int(radius), 1)
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    k = np.exp(-0.5 * (x / sigma) ** 2)
    k /= k.sum()
    return k.astype(np.float32)


def _convolve_axis(image: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """1-D convolution along ``axis`` with reflect (mirror) padding."""
    radius = len(kernel) // 2
    moved = np.moveaxis(image, axis, -1)
    padded = np.pad(moved, [(0, 0)] * (moved.ndim - 1) + [(radius, radius)], mode="reflect")
    # Accumulate shifted-and-scaled copies: O(kernel) passes over the
    # image, each a contiguous vectorized FMA — fast for SIFT's small
    # kernels and free of per-pixel Python work.
    out = np.zeros_like(moved, dtype=np.float32)
    n = moved.shape[-1]
    for i, w in enumerate(kernel):
        out += w * padded[..., i : i + n]
    return np.moveaxis(out, -1, axis)


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable 2-D Gaussian blur of a float32 image."""
    image = np.asarray(image, dtype=np.float32)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got shape {image.shape}")
    kernel = gaussian_kernel1d(sigma)
    return _convolve_axis(_convolve_axis(image, kernel, 0), kernel, 1)


def _downsample2(image: np.ndarray) -> np.ndarray:
    """Decimate by 2 (every other pixel), as in Lowe's pyramid."""
    return image[::2, ::2]


@dataclass
class GaussianPyramid:
    """Gaussian scale space: ``octaves[o][i]`` has absolute scale
    ``sigma0 * 2**(o + i / intervals)``.

    Each octave holds ``intervals + 3`` images so that difference-of-
    Gaussian extrema can be localised across ``intervals`` scales.
    """

    sigma0: float
    intervals: int
    octaves: list[list[np.ndarray]] = field(default_factory=list)

    @property
    def n_octaves(self) -> int:
        return len(self.octaves)

    def scale_of(self, octave: int, index: int) -> float:
        """Absolute sigma of image ``index`` in ``octave`` (w.r.t. the
        base image's pixel grid)."""
        return self.sigma0 * (2.0 ** (octave + index / self.intervals))

    def octave_scale(self, octave: int, index: int) -> float:
        """Sigma relative to the octave's own pixel grid."""
        return self.sigma0 * (2.0 ** (index / self.intervals))


def build_gaussian_pyramid(
    image: np.ndarray,
    sigma0: float = 1.6,
    intervals: int = 3,
    n_octaves: int | None = None,
    assumed_blur: float = 0.5,
    min_size: int = 16,
) -> GaussianPyramid:
    """Build the SIFT Gaussian pyramid.

    The input is assumed to carry ``assumed_blur`` of camera blur; the
    first level tops it up to ``sigma0``.  Within an octave, level
    ``i+1`` is level ``i`` blurred by the incremental sigma such that
    absolute scales follow ``sigma0 * 2^(i/intervals)``.  Each new
    octave starts from the level with twice the octave's base sigma,
    downsampled by 2.
    """
    image = np.asarray(image, dtype=np.float32)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got shape {image.shape}")
    if intervals < 1:
        raise ValueError("intervals must be >= 1")
    if sigma0 <= assumed_blur:
        raise ValueError("sigma0 must exceed the assumed camera blur")

    if n_octaves is None:
        n_octaves = max(1, int(np.log2(min(image.shape) / min_size)) + 1)

    levels_per_octave = intervals + 3
    k = 2.0 ** (1.0 / intervals)
    # Incremental sigmas within an octave (same for every octave).
    sig_prev = sigma0
    increments = []
    for i in range(1, levels_per_octave):
        sig_total = sigma0 * k**i
        increments.append(float(np.sqrt(sig_total**2 - sig_prev**2)))
        sig_prev = sig_total

    base = gaussian_blur(image, float(np.sqrt(sigma0**2 - assumed_blur**2)))
    pyramid = GaussianPyramid(sigma0=sigma0, intervals=intervals)
    current = base
    for _ in range(n_octaves):
        if min(current.shape) < min_size:
            break
        octave = [current]
        for inc in increments:
            octave.append(gaussian_blur(octave[-1], inc))
        pyramid.octaves.append(octave)
        # Next octave seeds from the image at 2x the octave base sigma
        # (index == intervals), decimated.
        current = _downsample2(octave[intervals])
    return pyramid
