"""Sign-bit binarization shared by every Hamming-space consumer.

Three subsystems reduce float descriptors to packed sign bits and
compare them with XOR + popcount: the LSH compression baseline
(:mod:`repro.baselines.lsh`), the LSH-banding candidate router
(:mod:`repro.routing.router`) and the cascade-hashing prefilter kernel
(:mod:`repro.core.cascade`).  Historically the packing/popcount code
was private to the baseline codec; this module is the one shared
implementation, so a bit-layout change (or a faster popcount) lands in
all three at once.

Bit layout: bit ``b`` of a signature lives in uint64 word ``b // 64``
at offset ``b % 64`` (LSB first).  All helpers are pure NumPy and make
no assumption about where the bits came from — random-hyperplane
signs, band values, or anything else.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hamming_distances",
    "pack_bits",
    "popcount",
    "sign_planes",
    "unpack_bits",
    "words_for_bits",
]


def words_for_bits(n_bits: int) -> int:
    """uint64 words needed to hold ``n_bits`` packed bits."""
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    return (int(n_bits) + 63) // 64


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element popcount for unsigned integer arrays.

    Uses ``np.bitwise_count`` where available (NumPy >= 2.0), else a
    byte-table fallback.
    """
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(values)
    # fallback: byte-table popcount
    table = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
    out = np.zeros(values.shape, dtype=np.int64)
    view = values.copy()
    for _ in range(values.dtype.itemsize):
        out += table[(view & 0xFF).astype(np.uint8)]
        view >>= 8
    return out


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """``(n_bits, count)`` boolean matrix -> ``(count, n_words)`` uint64 codes.

    Row ``b`` of ``bits`` becomes bit ``b`` of every signature (word
    ``b // 64``, offset ``b % 64``).
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"bits must be (n_bits, count), got {bits.shape}")
    n_bits, count = bits.shape
    codes = np.zeros((count, words_for_bits(n_bits)), dtype=np.uint64)
    for b in range(n_bits):
        word, offset = divmod(b, 64)
        codes[:, word] |= bits[b].astype(np.uint64) << np.uint64(offset)
    return codes


def unpack_bits(codes: np.ndarray, n_bits: int) -> np.ndarray:
    """``(count, n_words)`` packed codes -> ``(count, n_bits)`` uint8 bits.

    The inverse of :func:`pack_bits` (up to the transposed layout the
    band-splitting router wants).
    """
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.ndim != 2:
        raise ValueError(f"codes must be (count, n_words), got {codes.shape}")
    if codes.shape[1] < words_for_bits(n_bits):
        raise ValueError(
            f"{codes.shape[1]} words cannot hold {n_bits} bits"
        )
    bits = np.zeros((codes.shape[0], int(n_bits)), dtype=np.uint8)
    for b in range(int(n_bits)):
        word, offset = divmod(b, 64)
        bits[:, b] = (codes[:, word] >> np.uint64(offset)) & np.uint64(1)
    return bits


def hamming_distances(
    codes_a: np.ndarray, codes_b: np.ndarray, words: int | None = None
) -> np.ndarray:
    """Pairwise Hamming distances: ``(len(a), len(b))``.

    ``words`` restricts the comparison to the first ``words`` uint64
    words of each signature — the cascade prefilter's coarse stage
    tests a short prefix before paying for the full width.
    """
    codes_a = np.asarray(codes_a, dtype=np.uint64)
    codes_b = np.asarray(codes_b, dtype=np.uint64)
    if words is not None:
        codes_a = codes_a[:, :words]
        codes_b = codes_b[:, :words]
    xor = codes_a[:, None, :] ^ codes_b[None, :, :]
    return popcount(xor).sum(axis=2)


def sign_planes(d: int, n_bits: int, seed: int = 0) -> np.ndarray:
    """Random hyperplane normals for sign-bit signatures: ``(n_bits, d)``
    standard-normal FP32 rows, seeded for reproducibility."""
    if n_bits < 8:
        raise ValueError("n_bits must be >= 8")
    rng = np.random.default_rng(seed)
    return rng.normal(size=(int(n_bits), int(d))).astype(np.float32)
