"""Difference-of-Gaussian extrema detection and sub-pixel refinement.

Implements the detection half of Lowe's SIFT: DoG stacks per octave,
26-neighbour extrema, quadratic (3-D Taylor) localisation, contrast and
edge-response rejection.  All heavy steps are vectorised; the per-
candidate refinement loops only over the (small) candidate set.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .gaussian import GaussianPyramid
from .keypoints import Keypoint

__all__ = ["build_dog", "detect_keypoints", "DEFAULT_CONTRAST_THRESHOLD", "DEFAULT_EDGE_RATIO"]

DEFAULT_CONTRAST_THRESHOLD = 0.03
DEFAULT_EDGE_RATIO = 10.0


def build_dog(pyramid: GaussianPyramid) -> list[np.ndarray]:
    """Per-octave DoG stacks of shape ``(levels - 1, H, W)``."""
    dogs = []
    for octave in pyramid.octaves:
        stack = np.stack(octave, axis=0)
        dogs.append(stack[1:] - stack[:-1])
    return dogs


def _find_extrema(dog: np.ndarray, threshold: float) -> np.ndarray:
    """Candidate (layer, y, x) indices of 26-neighbour extrema.

    Only interior layers can host extrema.  The pre-threshold at 80 % of
    the contrast threshold mirrors Lowe's implementation: weak extrema
    are discarded before the expensive refinement.
    """
    pre = 0.8 * threshold
    maxf = ndimage.maximum_filter(dog, size=3, mode="nearest")
    minf = ndimage.minimum_filter(dog, size=3, mode="nearest")
    is_ext = ((dog == maxf) | (dog == minf)) & (np.abs(dog) > pre)
    is_ext[0] = False
    is_ext[-1] = False
    # Exclude the one-pixel image border (refinement needs neighbours).
    is_ext[:, :1, :] = False
    is_ext[:, -1:, :] = False
    is_ext[:, :, :1] = False
    is_ext[:, :, -1:] = False
    return np.argwhere(is_ext)


def _quadratic_fit(dog: np.ndarray, layer: int, y: int, x: int) -> tuple[np.ndarray, float, np.ndarray]:
    """Gradient/Hessian Taylor fit at one sample; returns
    ``(offset, refined_value, hessian_xy)``."""
    d = dog
    g = np.array(
        [
            (d[layer, y, x + 1] - d[layer, y, x - 1]) / 2.0,
            (d[layer, y + 1, x] - d[layer, y - 1, x]) / 2.0,
            (d[layer + 1, y, x] - d[layer - 1, y, x]) / 2.0,
        ]
    )
    dxx = d[layer, y, x + 1] - 2 * d[layer, y, x] + d[layer, y, x - 1]
    dyy = d[layer, y + 1, x] - 2 * d[layer, y, x] + d[layer, y - 1, x]
    dss = d[layer + 1, y, x] - 2 * d[layer, y, x] + d[layer - 1, y, x]
    dxy = (
        d[layer, y + 1, x + 1]
        - d[layer, y + 1, x - 1]
        - d[layer, y - 1, x + 1]
        + d[layer, y - 1, x - 1]
    ) / 4.0
    dxs = (
        d[layer + 1, y, x + 1]
        - d[layer + 1, y, x - 1]
        - d[layer - 1, y, x + 1]
        + d[layer - 1, y, x - 1]
    ) / 4.0
    dys = (
        d[layer + 1, y + 1, x]
        - d[layer + 1, y - 1, x]
        - d[layer - 1, y + 1, x]
        + d[layer - 1, y - 1, x]
    ) / 4.0
    h = np.array([[dxx, dxy, dxs], [dxy, dyy, dys], [dxs, dys, dss]])
    try:
        offset = -np.linalg.solve(h, g)
    except np.linalg.LinAlgError:
        offset = np.zeros(3)
    value = d[layer, y, x] + 0.5 * float(g @ offset)
    return offset, value, np.array([[dxx, dxy], [dxy, dyy]])


def _passes_edge_test(h2: np.ndarray, edge_ratio: float) -> bool:
    """Reject edge-like responses via the principal-curvature ratio."""
    tr = h2[0, 0] + h2[1, 1]
    det = h2[0, 0] * h2[1, 1] - h2[0, 1] * h2[1, 0]
    if det <= 0:
        return False
    r = edge_ratio
    return (tr * tr) / det < ((r + 1.0) ** 2) / r


def detect_keypoints(
    pyramid: GaussianPyramid,
    contrast_threshold: float = DEFAULT_CONTRAST_THRESHOLD,
    edge_ratio: float = DEFAULT_EDGE_RATIO,
    max_refine_steps: int = 3,
) -> list[Keypoint]:
    """Detect refined DoG keypoints across all octaves.

    ``response`` is ``|refined DoG value|`` — the quantity the asymmetric
    extractor ranks by when keeping the strongest ``m`` features.
    """
    dogs = build_dog(pyramid)
    intervals = pyramid.intervals
    keypoints: list[Keypoint] = []
    for octave_idx, dog in enumerate(dogs):
        n_layers, h, w = dog.shape
        for layer, y, x in _find_extrema(dog, contrast_threshold):
            layer, y, x = int(layer), int(y), int(x)
            converged = False
            for _ in range(max_refine_steps):
                offset, value, h2 = _quadratic_fit(dog, layer, y, x)
                if np.all(np.abs(offset) < 0.5):
                    converged = True
                    break
                x += int(np.round(offset[0]))
                y += int(np.round(offset[1]))
                layer += int(np.round(offset[2]))
                if not (1 <= layer < n_layers - 1 and 1 <= y < h - 1 and 1 <= x < w - 1):
                    break
            if not converged:
                continue
            if abs(value) < contrast_threshold:
                continue
            if not _passes_edge_test(h2, edge_ratio):
                continue
            scale_factor = 2.0**octave_idx
            refined_layer = layer + float(offset[2])
            sigma = pyramid.sigma0 * (2.0 ** (octave_idx + refined_layer / intervals))
            keypoints.append(
                Keypoint(
                    x=(x + float(offset[0])) * scale_factor,
                    y=(y + float(offset[1])) * scale_factor,
                    sigma=float(sigma),
                    response=float(abs(value)),
                    octave=octave_idx,
                    layer=layer,
                )
            )
    return keypoints
