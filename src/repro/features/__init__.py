"""Local feature extraction substrate: SIFT implemented from scratch
(Gaussian pyramid, DoG detection, orientation, 128-D descriptors),
RootSIFT, and response-ranked selection for asymmetric extraction."""

from .binarize import (
    hamming_distances,
    pack_bits,
    popcount,
    sign_planes,
    unpack_bits,
    words_for_bits,
)
from .descriptor import DESCRIPTOR_DIM, DESCRIPTOR_L2_NORM, compute_descriptors
from .dog import build_dog, detect_keypoints
from .gaussian import GaussianPyramid, build_gaussian_pyramid, gaussian_blur, gaussian_kernel1d
from .keypoints import Keypoint, keypoints_to_arrays, remove_border_keypoints
from .orientation import assign_orientations, image_gradients, orientation_histogram
from .integral import BoxFilter, box_sum, integral_image
from .rootsift import is_unit_normalized, rootsift
from .selection import pad_or_trim, select_top_features
from .sift import ExtractionResult, SIFTConfig, SIFTExtractor
from .surf import SURF_DESCRIPTOR_DIM, SURFConfig, SURFExtractor

__all__ = [
    "BoxFilter",
    "DESCRIPTOR_DIM",
    "DESCRIPTOR_L2_NORM",
    "ExtractionResult",
    "GaussianPyramid",
    "Keypoint",
    "SIFTConfig",
    "SIFTExtractor",
    "SURFConfig",
    "SURFExtractor",
    "SURF_DESCRIPTOR_DIM",
    "box_sum",
    "integral_image",
    "assign_orientations",
    "build_dog",
    "build_gaussian_pyramid",
    "compute_descriptors",
    "detect_keypoints",
    "gaussian_blur",
    "gaussian_kernel1d",
    "hamming_distances",
    "image_gradients",
    "is_unit_normalized",
    "keypoints_to_arrays",
    "orientation_histogram",
    "pack_bits",
    "pad_or_trim",
    "remove_border_keypoints",
    "popcount",
    "rootsift",
    "select_top_features",
    "sign_planes",
    "unpack_bits",
    "words_for_bits",
]
