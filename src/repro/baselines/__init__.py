"""Comparison baselines: the OpenCV CUDA brute-force matcher and the
Garcia et al. cuBLAS KNN with insertion sort (Table 1 columns 1-2)."""

from .cbir_ivf import CbirVote, IVFPQIndex, ProductQuantizer, kmeans
from .lsh import LshCodec, LshMatcher
from .cublas_garcia import garcia_knn_match, garcia_memory_bytes, make_prepared
from .opencv_cuda import (
    CONTEXT_OVERHEAD_BYTES,
    DIST_KERNEL_EFF_FP32,
    opencv_knn_match,
    opencv_memory_bytes,
    opencv_search_time_us,
)

__all__ = [
    "CONTEXT_OVERHEAD_BYTES",
    "CbirVote",
    "DIST_KERNEL_EFF_FP32",
    "IVFPQIndex",
    "LshCodec",
    "LshMatcher",
    "ProductQuantizer",
    "garcia_knn_match",
    "kmeans",
    "garcia_memory_bytes",
    "make_prepared",
    "opencv_knn_match",
    "opencv_memory_bytes",
    "opencv_search_time_us",
]
