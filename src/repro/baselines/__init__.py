"""Comparison baselines: the OpenCV CUDA brute-force matcher, the
Garcia et al. cuBLAS KNN with insertion sort (Table 1 columns 1-2) and
LSH descriptor compression — plus :mod:`.adapters`, which wraps each of
them as a :class:`~repro.core.kernels.MatchKernel` so they run through
the real engine (``EngineConfig(backend="opencv" | "garcia" | "lsh")``).
"""

from .adapters import GarciaKernel, LshKernel, OpenCVKernel
from .cbir_ivf import CbirVote, IVFPQIndex, ProductQuantizer, kmeans
from .cublas_garcia import garcia_knn_match, garcia_memory_bytes, make_prepared
from .lsh import LshCodec, LshMatcher
from .opencv_cuda import (
    CONTEXT_OVERHEAD_BYTES,
    DIST_KERNEL_EFF_FP32,
    opencv_knn_match,
    opencv_memory_bytes,
    opencv_search_time_us,
)

__all__ = [
    "CONTEXT_OVERHEAD_BYTES",
    "CbirVote",
    "DIST_KERNEL_EFF_FP32",
    "GarciaKernel",
    "IVFPQIndex",
    "LshCodec",
    "LshKernel",
    "LshMatcher",
    "OpenCVKernel",
    "ProductQuantizer",
    "garcia_knn_match",
    "garcia_memory_bytes",
    "kmeans",
    "make_prepared",
    "opencv_knn_match",
    "opencv_memory_bytes",
    "opencv_search_time_us",
]
