"""Model of the OpenCV CUDA ``knnMatch`` baseline (Table 1, column 1).

The paper's starting point: OpenCV's native CUDA brute-force matcher,
which computes per-pair distances without GEMM data reuse and selects
neighbours with a general-k in-memory sort.  The paper measures
2,012 img/s on a P100 and 2,937 img/s on a V100 (Sec. 3.3) and
attributes the gap to ~4 % utilisation of the card's compute potential.

Functionally this produces *identical* 2-NN results to Algorithm 1 (it
is the same mathematics); only the cost model differs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.results import KnnResult
from ..core.topk import functional_topk
from ..gpusim.engine_model import GPUDevice
from ..gpusim.kernels import postprocess_us
from ..gpusim.stream import Stream

__all__ = ["opencv_knn_match", "opencv_memory_bytes", "DIST_KERNEL_EFF_FP32"]

#: efficiency of OpenCV's non-GEMM distance kernel, anchored so the
#: P100 total lands on Table 1's 497.0 us/img (distance part 215.6 us).
DIST_KERNEL_EFF_FP32 = 0.0753

#: fixed CUDA context + library overhead observed in Table 1's memory
#: column (4,271 MB for 10,000 FP32 matrices = 3,932 MB of features).
CONTEXT_OVERHEAD_BYTES = int(344e6)


def opencv_knn_match(
    device: GPUDevice,
    reference: np.ndarray,
    query: np.ndarray,
    k: int = 2,
    stream: Optional[Stream] = None,
) -> KnnResult:
    """Brute-force FP32 2-NN, charged with the OpenCV cost model.

    ``reference``/``query`` are ``(d, m)`` / ``(d, n)`` FP32 matrices.
    """
    reference = np.asarray(reference, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    if reference.ndim != 2 or query.ndim != 2 or reference.shape[0] != query.shape[0]:
        raise ValueError(f"incompatible shapes {reference.shape} / {query.shape}")
    d, m = reference.shape
    n = query.shape[1]
    if not (1 <= k <= m):
        raise ValueError(f"k={k} out of range for m={m}")

    # Distance kernel: each thread block recomputes its tile of
    # reference/query columns from scratch — no GEMM reuse.
    flops = 2.0 * m * n * d
    dist_us = device.spec.kernel_launch_us + flops / (
        device.spec.fp32_tflops * 1e12 * DIST_KERNEL_EFF_FP32
    ) * 1e6
    device.submit("compute", dist_us, stream, step="distance kernel")

    nr = np.einsum("dm,dm->m", reference, reference)
    nq = np.einsum("dn,dn->n", query, query)
    sq = nr[:, None] + nq[None, :] - 2.0 * (reference.T @ query)
    np.maximum(sq, 0.0, out=sq)

    # General-k selection: the library's in-memory insertion sort.
    device.insertion_sort(m, n, dtype="fp32", stream=stream, step="Top-2 sort")
    vals, idx = functional_topk(sq, k)
    device.d2h_result(n, batch=1, k=k, dtype="fp32", stream=stream)
    return KnnResult(distances=np.sqrt(vals, dtype=np.float32), indices=idx.astype(np.int32))


def opencv_search_time_us(device: GPUDevice, m: int = 768, n: int = 768, d: int = 128) -> float:
    """Per-image serial-chain time, including CPU post-processing."""
    flops = 2.0 * m * n * d
    dist_us = device.spec.kernel_launch_us + flops / (
        device.spec.fp32_tflops * 1e12 * DIST_KERNEL_EFF_FP32
    ) * 1e6
    from ..gpusim.kernels import d2h_result_us, insertion_sort_us

    return (
        dist_us
        + insertion_sort_us(device.spec, device.cal, m, n, "fp32")
        + d2h_result_us(device.spec, device.cal, n, 1, 2, "fp32")
        + postprocess_us(device.cal, 1, "fp32", n)
    )


def opencv_memory_bytes(n_references: int, m: int = 768, d: int = 128) -> int:
    """GPU memory for caching ``n_references`` FP32 feature matrices
    (Table 1, last row)."""
    if n_references < 0:
        raise ValueError("n_references must be non-negative")
    return n_references * m * d * 4 + CONTEXT_OVERHEAD_BYTES
