"""Garcia et al. [9] cuBLAS KNN baseline (Table 1, column 2).

Algorithm 1 with the GEMM formulation but the original *modified
insertion sort* for neighbour selection — the configuration whose
profile revealed sorting as 67 % of the pipeline and motivated the
paper's register-resident top-2 scan.  Implemented by running our
Algorithm 1 with ``sort_kind="insertion"``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.algorithm1 import PreparedFeatures, knn_algorithm1
from ..core.results import KnnResult
from ..gpusim.engine_model import GPUDevice
from ..gpusim.stream import Stream

__all__ = ["garcia_knn_match", "garcia_memory_bytes"]

from .opencv_cuda import CONTEXT_OVERHEAD_BYTES


def garcia_knn_match(
    device: GPUDevice,
    reference: PreparedFeatures,
    query: PreparedFeatures,
    k: int = 2,
    stream: Optional[Stream] = None,
) -> KnnResult:
    """Steps 3-8 of Algorithm 1 with insertion-sort selection."""
    return knn_algorithm1(device, reference, query, k=k, sort_kind="insertion", stream=stream)


def garcia_memory_bytes(
    n_references: int,
    m: int = 768,
    d: int = 128,
    precision: str = "fp32",
) -> int:
    """Feature + N_R cache footprint (Table 1, last row, columns 2-4)."""
    if n_references < 0:
        raise ValueError("n_references must be non-negative")
    elem = 2 if precision == "fp16" else 4
    per_image = m * d * elem + m * elem  # matrix + norm vector
    return n_references * per_image + CONTEXT_OVERHEAD_BYTES


def make_prepared(features: np.ndarray, precision: str = "fp32", scale: float = 1.0) -> PreparedFeatures:
    """Convenience wrapper over :func:`prepare_reference` for benchmarks."""
    from ..core.algorithm1 import prepare_reference

    return prepare_reference(features, precision, scale)
