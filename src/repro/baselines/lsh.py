"""Locality-sensitive-hashing compression baseline (related work [15]).

Kusamura et al. compress SIFT descriptors with LSH to accelerate
GPU-based retrieval; the paper cites this family of approaches as the
compression alternative its FP16 + asymmetric scheme competes with.
Implemented here: random-hyperplane signatures (sign bits of random
projections) packed into uint64 words, Hamming-distance candidate
filtering, and exact re-ranking — so the accuracy/compression trade-off
can be measured against the engine's FP16 path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.binarize import hamming_distances, pack_bits, sign_planes, words_for_bits

__all__ = ["LshCodec", "LshMatcher"]


class LshCodec:
    """Random-hyperplane LSH over mean-centred descriptors.

    ``n_bits`` sign bits per descriptor, packed into ``ceil(n_bits/64)``
    uint64 words: 768 SIFT floats (3 KB) become e.g. 32 bytes at 256
    bits — a 96x compression, at the cost of Hamming-space candidate
    recall.  Packing and Hamming math live in the shared
    :mod:`repro.features.binarize` helpers (also used by the LSH
    candidate router and the cascade prefilter kernel).
    """

    def __init__(self, d: int = 128, n_bits: int = 256, seed: int = 0) -> None:
        self.d = d
        self.n_bits = int(n_bits)
        self.n_words = words_for_bits(self.n_bits)
        self._planes = sign_planes(d, self.n_bits, seed)
        #: hyperplanes pass through the data mean, set during train().
        self._center = np.zeros(d, dtype=np.float32)

    def train(self, sample: np.ndarray) -> None:
        """Centre the hyperplanes on a data sample ((d, count) matrix)."""
        sample = np.asarray(sample, dtype=np.float32)
        if sample.ndim != 2 or sample.shape[0] != self.d:
            raise ValueError(f"sample must be ({self.d}, count)")
        self._center = sample.mean(axis=1)

    def encode(self, descriptors: np.ndarray) -> np.ndarray:
        """``(d, count)`` descriptors -> ``(count, n_words)`` uint64 codes."""
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2 or descriptors.shape[0] != self.d:
            raise ValueError(f"descriptors must be ({self.d}, count)")
        bits = (self._planes @ (descriptors - self._center[:, None])) > 0  # (bits, count)
        return pack_bits(bits)

    def hamming(self, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
        """Pairwise Hamming distances: (len(a), len(b))."""
        return hamming_distances(codes_a, codes_b)

    @property
    def bytes_per_descriptor(self) -> int:
        return self.n_words * 8


@dataclass
class _CompressedImage:
    image_id: str
    codes: np.ndarray
    descriptors: np.ndarray  # kept FP16 for exact re-ranking


class LshMatcher:
    """Per-image 2-NN matching over LSH-compressed references.

    For each query feature the ``n_candidates`` Hamming-nearest
    reference features are re-ranked exactly; the ratio test then runs
    on the exact distances of that candidate set.  With enough bits and
    candidates this converges to brute force; the interesting regime is
    how fast accuracy degrades as the compression tightens.
    """

    def __init__(self, codec: LshCodec, n_candidates: int = 8) -> None:
        if n_candidates < 2:
            raise ValueError("need at least 2 candidates for the ratio test")
        self.codec = codec
        self.n_candidates = int(n_candidates)
        self._images: list[_CompressedImage] = []

    def add(self, image_id: str, descriptors: np.ndarray) -> None:
        descriptors = np.asarray(descriptors, dtype=np.float32)
        self._images.append(
            _CompressedImage(
                image_id=str(image_id),
                codes=self.codec.encode(descriptors),
                descriptors=descriptors.astype(np.float16),
            )
        )

    @property
    def n_images(self) -> int:
        return len(self._images)

    def good_matches(self, query_descriptors: np.ndarray, image: _CompressedImage,
                     ratio_threshold: float = 0.8) -> int:
        query_descriptors = np.asarray(query_descriptors, dtype=np.float32)
        q_codes = self.codec.encode(query_descriptors)
        hamming = self.codec.hamming(q_codes, image.codes)  # (n, m)
        k = min(self.n_candidates, hamming.shape[1])
        candidates = np.argpartition(hamming, k - 1, axis=1)[:, :k]
        ref = image.descriptors.astype(np.float32)
        good = 0
        for j in range(query_descriptors.shape[1]):
            cand = ref[:, candidates[j]]
            diff = cand - query_descriptors[:, j : j + 1]
            dists = np.sqrt(np.einsum("dc,dc->c", diff, diff))
            dists.sort()
            if len(dists) >= 2 and dists[0] < ratio_threshold * dists[1]:
                good += 1
        return good

    def search(self, query_descriptors: np.ndarray, ratio_threshold: float = 0.8):
        """Per-image match counts, best first: list of (image_id, count)."""
        scores = [
            (image.image_id, self.good_matches(query_descriptors, image, ratio_threshold))
            for image in self._images
        ]
        return sorted(scores, key=lambda s: (-s[1], s[0]))
