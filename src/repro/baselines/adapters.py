"""Baseline matchers adapted to the engine's :class:`MatchKernel` seam.

The paper benchmarks its engine against three external systems — the
OpenCV CUDA matcher, the Garcia et al. cuBLAS KNN, and LSH descriptor
compression.  Historically those lived in bespoke benchmark scripts;
these adapters wrap them as match kernels so they run through the real
:class:`~repro.core.engine.TextureSearchEngine` — same hybrid cache,
same tombstones, same stats and profile reports — and the comparison
in ``bench`` is apples to apples.

Functional results stay exact where the underlying math is exact: the
OpenCV and Garcia kernels compute the same FP32 2-NN as Algorithm 1,
so match counts are bit-identical; only their *cost models* differ.
The LSH kernel is approximate by design (Hamming candidate filtering),
converging to brute force as ``n_candidates`` approaches ``m``.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Algorithm1Kernel, MatchKernel, PreparedQuery
from ..core.ratio_test import match_images
from ..core.results import KnnResult
from ..features.selection import pad_or_trim
from .lsh import LshCodec
from .opencv_cuda import opencv_knn_match

__all__ = ["GarciaKernel", "LshKernel", "OpenCVKernel"]


class GarciaKernel(Algorithm1Kernel):
    """Garcia et al. [9]: Algorithm 1 with the original modified
    insertion sort (Table 1, column 2).

    Identical math and memory layout to :class:`Algorithm1Kernel`; the
    configured ``sort_kind`` is overridden, which only changes the
    simulated sort cost (67 % of the pipeline on the P100 profile that
    motivated the paper's register scan).
    """

    name = "garcia"

    def describe(self) -> str:
        return "(Garcia [9])"

    def _sort_kind(self) -> str:
        return "insertion"


class OpenCVKernel(MatchKernel):
    """OpenCV CUDA ``knnMatch`` baseline (Table 1, column 1).

    Raw FP32 descriptors, per-pair distance kernel without GEMM reuse,
    general-k insertion-sort selection.  Produces the same 2-NN results
    as Algorithm 1 in FP32; the cost model is the library's (~4 %
    compute utilisation on a P100).
    """

    name = "opencv"
    needs_norms = False
    supports_multiquery = False

    def describe(self) -> str:
        return "(OpenCV CUDA)"

    @classmethod
    def validate_config(cls, config) -> None:
        if config.precision != "fp32":
            raise ValueError(
                "backend 'opencv' models the library's FP32 matcher; "
                "set precision='fp32'"
            )

    def prepare_reference(self, descriptors):
        descriptors = self._check_descriptors(descriptors)
        return pad_or_trim(descriptors, self.config.m), None

    def query_matrix(self, descriptors):
        descriptors = self._check_descriptors(descriptors)
        return pad_or_trim(descriptors, self.config.n)

    def match_batch(self, device, batch, query, keep_masks=False):
        cfg = self.config
        matches = []
        for i in range(batch.size):
            knn = opencv_knn_match(device, batch.tensor[i], query.matrix, k=cfg.k)
            device.cpu_postprocess(1, "fp32", cfg.n)
            matches.append(match_images(batch.ids[i], knn, cfg.ratio_threshold, keep_masks))
        return matches


class LshKernel(MatchKernel):
    """Kusamura et al. LSH compression baseline (related work [15]).

    References are cached as FP32 matrices (so the hybrid cache and
    tombstones behave normally) and hashed on first contact with a
    sweep; queries carry their hash codes in ``PreparedQuery.aux``.
    Matching filters candidates in Hamming space and re-ranks exactly,
    so with ``n_candidates >= m`` the results equal FP32 brute force.

    ``n_bits``/``n_candidates``/``seed`` are kernel parameters, not
    engine knobs — pass a configured instance to
    ``TextureSearchEngine(config, kernel=LshKernel(config, ...))`` to
    override the defaults.
    """

    name = "lsh"
    needs_norms = False
    supports_multiquery = False

    def __init__(self, config, n_bits: int = 256, n_candidates: int = 16, seed: int = 0) -> None:
        super().__init__(config)
        if n_candidates < 2:
            raise ValueError("need at least 2 candidates for the ratio test")
        self.codec = LshCodec(d=config.d, n_bits=n_bits, seed=seed)
        self.n_candidates = int(n_candidates)
        #: per-batch reference codes, keyed by batch id (batches are
        #: immutable; transient verify batches use negative ids and are
        #: never memoised).
        self._ref_codes: dict[tuple[int, int], np.ndarray] = {}

    def describe(self) -> str:
        return f"(LSH {self.codec.n_bits}b/{self.n_candidates}c)"

    @classmethod
    def validate_config(cls, config) -> None:
        if config.precision != "fp32":
            raise ValueError(
                "backend 'lsh' re-ranks in FP32; set precision='fp32' "
                "(the compression lives in the hash codes, not the cache)"
            )

    @classmethod
    def memory_per_image(cls, config, m=None) -> int:
        rows = config.m if m is None else int(m)
        # FP32 re-rank matrix + packed signature words (256 bits -> 32 B)
        return rows * config.d * 4 + rows * ((256 + 63) // 64) * 8

    def prepare_reference(self, descriptors):
        descriptors = self._check_descriptors(descriptors)
        return pad_or_trim(descriptors, self.config.m), None

    def query_matrix(self, descriptors):
        descriptors = self._check_descriptors(descriptors)
        return pad_or_trim(descriptors, self.config.n)

    def prepare_query(self, device, descriptors):
        matrix = self.query_matrix(descriptors)
        return PreparedQuery(matrix=matrix, aux=self.codec.encode(matrix))

    def _codes_for(self, batch, index: int) -> np.ndarray:
        key = (batch.batch_id, index)
        if batch.batch_id < 0:
            return self.codec.encode(batch.tensor[index])
        codes = self._ref_codes.get(key)
        if codes is None:
            codes = self.codec.encode(batch.tensor[index])
            self._ref_codes[key] = codes
        return codes

    def match_batch(self, device, batch, query, keep_masks=False):
        cfg = self.config
        q = query.matrix
        q_codes = query.aux if query.aux is not None else self.codec.encode(q)
        n = q.shape[1]
        matches = []
        for i in range(batch.size):
            ref = batch.tensor[i]
            m = ref.shape[1]
            codes = self._codes_for(batch, i)
            # Hamming filter: one XOR+popcount pass over all pairs.
            device.elementwise(n * m * self.codec.n_words, dtype="fp32", step="Hamming filter")
            hamming = self.codec.hamming(q_codes, codes)  # (n, m)
            k_cand = min(self.n_candidates, m)
            if k_cand < m:
                candidates = np.argpartition(hamming, k_cand - 1, axis=1)[:, :k_cand]
            else:
                candidates = np.broadcast_to(np.arange(m), (n, m)).copy()
            # Exact re-rank of the candidate set only.
            device.elementwise(2 * n * k_cand * cfg.d, dtype="fp32", step="re-rank")
            cand = ref[:, candidates]  # (d, n, k_cand)
            diff = cand - q[:, :, None]
            dists = np.sqrt(np.einsum("dnk,dnk->nk", diff, diff, optimize=True))
            order = np.argsort(dists, axis=1)[:, : cfg.k]
            top_d = np.take_along_axis(dists, order, axis=1)  # (n, k)
            top_i = np.take_along_axis(candidates, order, axis=1)
            knn = KnnResult(
                distances=np.ascontiguousarray(top_d.T.astype(np.float32)),
                indices=np.ascontiguousarray(top_i.T.astype(np.int32)),
            )
            device.d2h_result(n, batch=1, k=cfg.k, dtype="fp32")
            device.cpu_postprocess(1, "fp32", cfg.n)
            matches.append(match_images(batch.ids[i], knn, cfg.ratio_threshold, keep_masks))
        return matches
