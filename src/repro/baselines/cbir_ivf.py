"""CBIR-style IVF-PQ retrieval baseline (Faiss-like).

Sec. 2/3 of the paper argue that content-based image retrieval engines
(inverted-file indexes with product quantization, as in Faiss [12]) are
the *wrong* tool for texture identification: they pool every reference
feature into one global index and answer a single nearest-neighbour
query across all of them, losing the per-image ratio test that gives
identification its discriminative power.  This module implements that
approach from scratch — k-means coarse quantizer, product-quantized
residual codes, ADC search with ``nprobe`` lists, per-image voting — so
the accuracy gap can be *measured* (see the ablation experiments)
instead of asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["kmeans", "ProductQuantizer", "IVFPQIndex", "CbirVote"]


def kmeans(
    data: np.ndarray,
    k: int,
    iterations: int = 15,
    seed: int = 0,
) -> np.ndarray:
    """Plain Lloyd's k-means; returns ``(k, d)`` centroids.

    Deterministic (seeded k-means++ -ish spread init: random distinct
    samples).  Empty clusters are re-seeded from the farthest points.
    """
    data = np.asarray(data, dtype=np.float32)
    if data.ndim != 2:
        raise ValueError(f"data must be (count, d), got {data.shape}")
    count = data.shape[0]
    if not (1 <= k <= count):
        raise ValueError(f"k={k} out of range for {count} samples")
    rng = np.random.default_rng(seed)
    centroids = data[rng.choice(count, size=k, replace=False)].copy()
    sq = np.einsum("nd,nd->n", data, data)[:, None]
    for _ in range(iterations):
        # squared distances to centroids, (count, k)
        d2 = (
            sq
            - 2.0 * data @ centroids.T
            + np.einsum("kd,kd->k", centroids, centroids)[None, :]
        )
        assign = np.argmin(d2, axis=1)
        empty = []
        for c in range(k):
            members = data[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:
                empty.append(c)
        if empty:
            # Re-seed from the points farthest from the *updated*
            # non-empty centroids (the pre-update distances are stale),
            # handing each empty cluster a distinct farthest point so
            # two empties can never collapse onto the same centroid.
            occupied = centroids[[c for c in range(k) if c not in empty]]
            d2_new = (
                sq
                - 2.0 * data @ occupied.T
                + np.einsum("kd,kd->k", occupied, occupied)[None, :]
            )
            far_order = np.argsort(-d2_new.min(axis=1), kind="stable")
            for rank, c in enumerate(empty):
                centroids[c] = data[int(far_order[rank])]
    return centroids


class ProductQuantizer:
    """Product quantization (Jegou et al. [10]).

    Splits ``d`` dimensions into ``n_subspaces`` contiguous blocks, each
    quantized against its own ``n_centroids``-entry codebook; a vector
    becomes ``n_subspaces`` uint8 codes.
    """

    def __init__(self, d: int, n_subspaces: int = 8, n_centroids: int = 64) -> None:
        if d % n_subspaces != 0:
            raise ValueError(f"d={d} not divisible by {n_subspaces} subspaces")
        if not (2 <= n_centroids <= 256):
            raise ValueError("n_centroids must be in [2, 256]")
        self.d = d
        self.n_subspaces = n_subspaces
        self.sub_d = d // n_subspaces
        self.n_centroids = n_centroids
        self.codebooks: np.ndarray | None = None  # (S, n_centroids, sub_d)

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    def train(self, data: np.ndarray, seed: int = 0) -> None:
        data = np.asarray(data, dtype=np.float32)
        if data.shape[1] != self.d:
            raise ValueError(f"expected (count, {self.d}) training data, got {data.shape}")
        books = []
        for s in range(self.n_subspaces):
            block = data[:, s * self.sub_d : (s + 1) * self.sub_d]
            k = min(self.n_centroids, len(block))
            books.append(kmeans(block, k, seed=seed + s))
        self.codebooks = np.stack(books)

    def encode(self, data: np.ndarray) -> np.ndarray:
        """``(count, d)`` vectors -> ``(count, S)`` uint8 codes."""
        if not self.is_trained:
            raise RuntimeError("quantizer is not trained")
        data = np.asarray(data, dtype=np.float32)
        codes = np.empty((data.shape[0], self.n_subspaces), dtype=np.uint8)
        for s in range(self.n_subspaces):
            block = data[:, s * self.sub_d : (s + 1) * self.sub_d]
            book = self.codebooks[s]
            d2 = (
                np.einsum("nd,nd->n", block, block)[:, None]
                - 2.0 * block @ book.T
                + np.einsum("kd,kd->k", book, book)[None, :]
            )
            codes[:, s] = np.argmin(d2, axis=1)
        return codes

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Asymmetric-distance lookup table for one query: (S, n_centroids)."""
        return self.adc_tables(np.asarray(query, dtype=np.float32)[None, :])[0]

    def adc_tables(self, queries: np.ndarray) -> np.ndarray:
        """Batched ADC lookup tables: ``(count, d)`` queries ->
        ``(count, S, n_centroids)`` (one :meth:`adc_table` per row)."""
        if not self.is_trained:
            raise RuntimeError("quantizer is not trained")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.d:
            raise ValueError(f"queries must be (count, {self.d}), got {queries.shape}")
        tables = np.empty(
            (queries.shape[0], self.n_subspaces, self.codebooks.shape[1]),
            dtype=np.float32,
        )
        for s in range(self.n_subspaces):
            sub = queries[:, s * self.sub_d : (s + 1) * self.sub_d]
            diff = self.codebooks[s][None, :, :] - sub[:, None, :]
            sq = diff * diff
            # Accumulate the sub-dimension axis with explicit sequential
            # adds: numpy's axis reduction picks a strategy (pairwise vs
            # sequential) based on the full array shape, so the same row
            # sums to different low bits at different batch sizes.  A
            # fixed left-to-right order keeps one query's table
            # bit-identical whether computed alone or in a batch.
            acc = sq[:, :, 0].copy()
            for j in range(1, self.sub_d):
                acc += sq[:, :, j]
            tables[:, s, :] = acc
        return tables


@dataclass
class CbirVote:
    """Per-image vote tally of a CBIR retrieval."""

    image_id: str
    votes: int
    total_distance: float


class IVFPQIndex:
    """Inverted-file index with PQ-compressed residual-free codes.

    The retrieval contract mirrors Faiss IVF-PQ at reproduction
    fidelity: coarse k-means partitioning, per-list PQ codes, ADC scan
    of ``nprobe`` lists.  Identification is then *voting*: each query
    feature's nearest indexed feature votes for its source image.
    """

    def __init__(
        self,
        d: int = 128,
        n_lists: int = 64,
        n_subspaces: int = 8,
        n_centroids: int = 64,
        seed: int = 0,
    ) -> None:
        self.d = d
        self.n_lists = n_lists
        self.seed = seed
        self.pq = ProductQuantizer(d, n_subspaces, n_centroids)
        self.coarse: np.ndarray | None = None
        self._list_codes: list[list[np.ndarray]] = []
        self._list_owners: list[list[int]] = []
        self._image_ids: list[str] = []
        #: per-list concatenated (codes, owners) pairs, rebuilt lazily
        #: after :meth:`add` — the search hot path must not re-concatenate
        #: every inverted list on every query.
        self._sealed: list[tuple[np.ndarray, np.ndarray] | None] | None = None

    @property
    def is_trained(self) -> bool:
        return self.coarse is not None and self.pq.is_trained

    @property
    def n_images(self) -> int:
        return len(self._image_ids)

    def train(self, sample_features: np.ndarray) -> None:
        """Train coarse + PQ codebooks on ``(count, d)`` sample vectors.

        When the sample is smaller than the configured list count the
        actual count is clamped — and ``self.n_lists`` updated to match,
        so callers sizing ``nprobe`` off ``index.n_lists`` see the real
        list count instead of silently over-probing.
        """
        sample = np.asarray(sample_features, dtype=np.float32)
        n_lists = min(self.n_lists, len(sample))
        self.coarse = kmeans(sample, n_lists, seed=self.seed)
        self.n_lists = n_lists
        self.pq.train(sample, seed=self.seed + 1)
        self._list_codes = [[] for _ in range(len(self.coarse))]
        self._list_owners = [[] for _ in range(len(self.coarse))]
        self._sealed = None

    def _assign_lists(self, vectors: np.ndarray) -> np.ndarray:
        d2 = (
            np.einsum("nd,nd->n", vectors, vectors)[:, None]
            - 2.0 * vectors @ self.coarse.T
            + np.einsum("kd,kd->k", self.coarse, self.coarse)[None, :]
        )
        return np.argmin(d2, axis=1)

    def add(self, image_id: str, features: np.ndarray) -> None:
        """Pool one image's ``(d, count)`` features into the global index."""
        if not self.is_trained:
            raise RuntimeError("index is not trained")
        vectors = np.ascontiguousarray(np.asarray(features, dtype=np.float32).T)
        owner = len(self._image_ids)
        self._image_ids.append(str(image_id))
        lists = self._assign_lists(vectors)
        codes = self.pq.encode(vectors)
        for lst in np.unique(lists):
            mask = lists == lst
            self._list_codes[lst].append(codes[mask])
            self._list_owners[lst].extend([owner] * int(mask.sum()))
        self._sealed = None

    def _sealed_lists(self) -> list[tuple[np.ndarray, np.ndarray] | None]:
        """Concatenated ``(codes, owners)`` per inverted list (cached)."""
        if self._sealed is None:
            self._sealed = [
                (np.concatenate(codes), np.asarray(owners, dtype=np.int64))
                if codes
                else None
                for codes, owners in zip(self._list_codes, self._list_owners)
            ]
        return self._sealed

    def search(self, query_features: np.ndarray, nprobe: int = 4) -> list[CbirVote]:
        """Vote tally over all images for a ``(d, n)`` query.

        The scan is vectorized list-by-list over batched ADC tables
        (the per-query Python loop of the original implementation put
        an interpreter iteration on the routing hot path); votes are
        bit-identical to the per-query formulation.  Tied tallies are
        broken by ascending total ADC distance, so identification on
        equal-vote images is deterministic instead of insertion-order.
        """
        if not self.is_trained:
            raise RuntimeError("index is not trained")
        queries = np.asarray(query_features, dtype=np.float32).T
        if queries.shape[1] != self.d:
            raise ValueError(f"query features must be ({self.d}, n)")
        nprobe = max(1, min(nprobe, len(self.coarse)))
        n_queries = queries.shape[0]
        votes = np.zeros(self.n_images, dtype=np.int64)
        dist_sum = np.zeros(self.n_images, dtype=np.float64)
        # coarse distances per query feature
        d2 = (
            np.einsum("nd,nd->n", queries, queries)[:, None]
            - 2.0 * queries @ self.coarse.T
            + np.einsum("kd,kd->k", self.coarse, self.coarse)[None, :]
        )
        probe_lists = np.argsort(d2, axis=1)[:, :nprobe]
        tables = self.pq.adc_tables(queries)
        sealed = self._sealed_lists()
        subspace_idx = np.arange(self.pq.n_subspaces)[None, :]
        best_dist = np.full(n_queries, np.inf, dtype=np.float32)
        best_owner = np.full(n_queries, -1, dtype=np.int64)
        # probe rank of each query's current best — on exact distance
        # ties the earlier-probed (closer) list wins, matching the
        # sequential probe order of the scalar formulation.
        best_rank = np.full(n_queries, np.iinfo(np.int64).max, dtype=np.int64)
        for lst in np.unique(probe_lists):
            entry = sealed[lst]
            if entry is None:
                continue
            codes, owners = entry
            hit = probe_lists == lst  # (n_queries, nprobe)
            q_sel = np.nonzero(hit.any(axis=1))[0]
            ranks = np.argmax(hit[q_sel], axis=1)
            # ADC: sum table entries along subspaces, all queries probing
            # this list at once -> (len(q_sel), list_len).  Sequential
            # accumulation for the same batch-size-invariance reason as
            # in :meth:`ProductQuantizer.adc_tables`.
            looked = tables[q_sel][:, subspace_idx, codes]
            dists = looked[:, :, 0].copy()
            for j in range(1, looked.shape[2]):
                dists += looked[:, :, j]
            idx = np.argmin(dists, axis=1)
            d_best = dists[np.arange(len(q_sel)), idx]
            better = (d_best < best_dist[q_sel]) | (
                (d_best == best_dist[q_sel]) & (ranks < best_rank[q_sel])
            )
            chosen = q_sel[better]
            best_dist[chosen] = d_best[better]
            best_owner[chosen] = owners[idx[better]]
            best_rank[chosen] = ranks[better]
        found = np.nonzero(best_owner >= 0)[0]
        np.add.at(votes, best_owner[found], 1)
        np.add.at(dist_sum, best_owner[found], best_dist[found].astype(np.float64))
        # most votes first; equal tallies ordered by ascending total
        # distance (lexsort is stable, so full ties keep insertion order)
        order = np.lexsort((dist_sum, -votes))
        return [
            CbirVote(self._image_ids[i], int(votes[i]), float(dist_sum[i]))
            for i in order
            if votes[i] > 0
        ]
