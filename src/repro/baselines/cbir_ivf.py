"""CBIR-style IVF-PQ retrieval baseline (Faiss-like).

Sec. 2/3 of the paper argue that content-based image retrieval engines
(inverted-file indexes with product quantization, as in Faiss [12]) are
the *wrong* tool for texture identification: they pool every reference
feature into one global index and answer a single nearest-neighbour
query across all of them, losing the per-image ratio test that gives
identification its discriminative power.  This module implements that
approach from scratch — k-means coarse quantizer, product-quantized
residual codes, ADC search with ``nprobe`` lists, per-image voting — so
the accuracy gap can be *measured* (see the ablation experiments)
instead of asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["kmeans", "ProductQuantizer", "IVFPQIndex", "CbirVote"]


def kmeans(
    data: np.ndarray,
    k: int,
    iterations: int = 15,
    seed: int = 0,
) -> np.ndarray:
    """Plain Lloyd's k-means; returns ``(k, d)`` centroids.

    Deterministic (seeded k-means++ -ish spread init: random distinct
    samples).  Empty clusters are re-seeded from the farthest points.
    """
    data = np.asarray(data, dtype=np.float32)
    if data.ndim != 2:
        raise ValueError(f"data must be (count, d), got {data.shape}")
    count = data.shape[0]
    if not (1 <= k <= count):
        raise ValueError(f"k={k} out of range for {count} samples")
    rng = np.random.default_rng(seed)
    centroids = data[rng.choice(count, size=k, replace=False)].copy()
    for _ in range(iterations):
        # squared distances to centroids, (count, k)
        d2 = (
            np.einsum("nd,nd->n", data, data)[:, None]
            - 2.0 * data @ centroids.T
            + np.einsum("kd,kd->k", centroids, centroids)[None, :]
        )
        assign = np.argmin(d2, axis=1)
        for c in range(k):
            members = data[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:
                centroids[c] = data[int(np.argmax(d2.min(axis=1)))]
    return centroids


class ProductQuantizer:
    """Product quantization (Jegou et al. [10]).

    Splits ``d`` dimensions into ``n_subspaces`` contiguous blocks, each
    quantized against its own ``n_centroids``-entry codebook; a vector
    becomes ``n_subspaces`` uint8 codes.
    """

    def __init__(self, d: int, n_subspaces: int = 8, n_centroids: int = 64) -> None:
        if d % n_subspaces != 0:
            raise ValueError(f"d={d} not divisible by {n_subspaces} subspaces")
        if not (2 <= n_centroids <= 256):
            raise ValueError("n_centroids must be in [2, 256]")
        self.d = d
        self.n_subspaces = n_subspaces
        self.sub_d = d // n_subspaces
        self.n_centroids = n_centroids
        self.codebooks: np.ndarray | None = None  # (S, n_centroids, sub_d)

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    def train(self, data: np.ndarray, seed: int = 0) -> None:
        data = np.asarray(data, dtype=np.float32)
        if data.shape[1] != self.d:
            raise ValueError(f"expected (count, {self.d}) training data, got {data.shape}")
        books = []
        for s in range(self.n_subspaces):
            block = data[:, s * self.sub_d : (s + 1) * self.sub_d]
            k = min(self.n_centroids, len(block))
            books.append(kmeans(block, k, seed=seed + s))
        self.codebooks = np.stack(books)

    def encode(self, data: np.ndarray) -> np.ndarray:
        """``(count, d)`` vectors -> ``(count, S)`` uint8 codes."""
        if not self.is_trained:
            raise RuntimeError("quantizer is not trained")
        data = np.asarray(data, dtype=np.float32)
        codes = np.empty((data.shape[0], self.n_subspaces), dtype=np.uint8)
        for s in range(self.n_subspaces):
            block = data[:, s * self.sub_d : (s + 1) * self.sub_d]
            book = self.codebooks[s]
            d2 = (
                np.einsum("nd,nd->n", block, block)[:, None]
                - 2.0 * block @ book.T
                + np.einsum("kd,kd->k", book, book)[None, :]
            )
            codes[:, s] = np.argmin(d2, axis=1)
        return codes

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Asymmetric-distance lookup table for one query: (S, n_centroids)."""
        if not self.is_trained:
            raise RuntimeError("quantizer is not trained")
        query = np.asarray(query, dtype=np.float32)
        table = np.empty((self.n_subspaces, self.codebooks.shape[1]), dtype=np.float32)
        for s in range(self.n_subspaces):
            sub = query[s * self.sub_d : (s + 1) * self.sub_d]
            diff = self.codebooks[s] - sub[None, :]
            table[s] = np.einsum("kd,kd->k", diff, diff)
        return table


@dataclass
class CbirVote:
    """Per-image vote tally of a CBIR retrieval."""

    image_id: str
    votes: int
    total_distance: float


class IVFPQIndex:
    """Inverted-file index with PQ-compressed residual-free codes.

    The retrieval contract mirrors Faiss IVF-PQ at reproduction
    fidelity: coarse k-means partitioning, per-list PQ codes, ADC scan
    of ``nprobe`` lists.  Identification is then *voting*: each query
    feature's nearest indexed feature votes for its source image.
    """

    def __init__(
        self,
        d: int = 128,
        n_lists: int = 64,
        n_subspaces: int = 8,
        n_centroids: int = 64,
        seed: int = 0,
    ) -> None:
        self.d = d
        self.n_lists = n_lists
        self.seed = seed
        self.pq = ProductQuantizer(d, n_subspaces, n_centroids)
        self.coarse: np.ndarray | None = None
        self._list_codes: list[list[np.ndarray]] = []
        self._list_owners: list[list[int]] = []
        self._image_ids: list[str] = []

    @property
    def is_trained(self) -> bool:
        return self.coarse is not None and self.pq.is_trained

    @property
    def n_images(self) -> int:
        return len(self._image_ids)

    def train(self, sample_features: np.ndarray) -> None:
        """Train coarse + PQ codebooks on ``(count, d)`` sample vectors."""
        sample = np.asarray(sample_features, dtype=np.float32)
        n_lists = min(self.n_lists, len(sample))
        self.coarse = kmeans(sample, n_lists, seed=self.seed)
        self.pq.train(sample, seed=self.seed + 1)
        self._list_codes = [[] for _ in range(len(self.coarse))]
        self._list_owners = [[] for _ in range(len(self.coarse))]

    def _assign_lists(self, vectors: np.ndarray) -> np.ndarray:
        d2 = (
            np.einsum("nd,nd->n", vectors, vectors)[:, None]
            - 2.0 * vectors @ self.coarse.T
            + np.einsum("kd,kd->k", self.coarse, self.coarse)[None, :]
        )
        return np.argmin(d2, axis=1)

    def add(self, image_id: str, features: np.ndarray) -> None:
        """Pool one image's ``(d, count)`` features into the global index."""
        if not self.is_trained:
            raise RuntimeError("index is not trained")
        vectors = np.ascontiguousarray(np.asarray(features, dtype=np.float32).T)
        owner = len(self._image_ids)
        self._image_ids.append(str(image_id))
        lists = self._assign_lists(vectors)
        codes = self.pq.encode(vectors)
        for lst in np.unique(lists):
            mask = lists == lst
            self._list_codes[lst].append(codes[mask])
            self._list_owners[lst].extend([owner] * int(mask.sum()))

    def search(self, query_features: np.ndarray, nprobe: int = 4) -> list[CbirVote]:
        """Vote tally over all images for a ``(d, n)`` query."""
        if not self.is_trained:
            raise RuntimeError("index is not trained")
        queries = np.asarray(query_features, dtype=np.float32).T
        if queries.shape[1] != self.d:
            raise ValueError(f"query features must be ({self.d}, n)")
        nprobe = max(1, min(nprobe, len(self.coarse)))
        votes = np.zeros(self.n_images, dtype=np.int64)
        dist_sum = np.zeros(self.n_images, dtype=np.float64)
        # coarse distances per query feature
        d2 = (
            np.einsum("nd,nd->n", queries, queries)[:, None]
            - 2.0 * queries @ self.coarse.T
            + np.einsum("kd,kd->k", self.coarse, self.coarse)[None, :]
        )
        probe_lists = np.argsort(d2, axis=1)[:, :nprobe]
        for qi, query in enumerate(queries):
            table = self.pq.adc_table(query)
            best_dist = np.inf
            best_owner = -1
            for lst in probe_lists[qi]:
                if not self._list_codes[lst]:
                    continue
                codes = np.concatenate(self._list_codes[lst])
                owners = np.asarray(self._list_owners[lst])
                # ADC: sum table entries along subspaces.
                dists = table[np.arange(self.pq.n_subspaces)[None, :], codes].sum(axis=1)
                idx = int(np.argmin(dists))
                if dists[idx] < best_dist:
                    best_dist = float(dists[idx])
                    best_owner = int(owners[idx])
            if best_owner >= 0:
                votes[best_owner] += 1
                dist_sum[best_owner] += best_dist
        order = np.argsort(-votes, kind="stable")
        return [
            CbirVote(self._image_ids[i], int(votes[i]), float(dist_sum[i]))
            for i in order
            if votes[i] > 0
        ]
