"""Table 7 — asymmetric feature counts (d = 128, batch 256, Tesla P100).

The paper sweeps (m, n) over {768,512,384,256} x 768 and 384 x
{1024,768,512,384}: accuracy barely moves while m >= 384 but collapses
when n shrinks; the optimum m=384/n=768 trades 0.28 % accuracy for
34.6 % more speed and half the cache footprint.

Speed comes from the calibrated chain model at the paper's dimensions;
accuracy from the functional engine over the synthetic feature dataset
(RootSIFT + FP16, the production configuration).
"""

from __future__ import annotations

from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...data.dataset import build_feature_dataset
from ...data.synthetic_features import SyntheticFeatureModel
from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ...gpusim.engine_model import GPUDevice
from ...metrics.accuracy import evaluate_top1
from ..chains import algorithm2_steps, chain_speed
from ..tables import ExperimentResult

__all__ = ["run", "DEFAULT_GRID"]

DEFAULT_GRID = [
    (768, 768),
    (512, 768),
    (384, 768),
    (256, 768),
    (384, 1024),
    (384, 512),
    (384, 384),
]

_PAPER = {
    (768, 768): (0.9774, 46323),
    (512, 768): (0.9774, 57859),
    (384, 768): (0.9746, 62356),
    (256, 768): (0.9407, 68472),
    (384, 1024): (0.9802, 46204),
    (384, 512): (0.9576, 91367),
    (384, 384): (0.9181, 111818),
}


def run(
    spec: DeviceSpec = TESLA_P100,
    grid: list[tuple[int, int]] | None = None,
    batch: int = 256,
    d: int = 128,
    n_bricks: int = 40,
    queries_per_brick: int = 1,
    with_accuracy: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    grid = grid if grid is not None else list(DEFAULT_GRID)
    cal = KernelCalibration.for_device(spec)
    model = SyntheticFeatureModel(seed=seed)

    result = ExperimentResult(
        name=f"Table 7: asymmetric feature counts, d={d}, batch={batch}, {spec.name}",
        headers=["m (reference)", "n (query)", "Accuracy", "Speed (img/s)",
                 "paper acc", "paper speed"],
    )
    speeds = {}
    accuracies = {}
    for m, n in grid:
        steps = algorithm2_steps(spec, cal, m, n, d, batch, "fp16")
        speed = chain_speed(steps, batch)
        speeds[(m, n)] = speed
        if with_accuracy:
            dataset = build_feature_dataset(
                n_bricks, m, n, queries_per_brick=queries_per_brick,
                model=model, seed=seed,
            )
            engine = TextureSearchEngine(
                EngineConfig(m=m, n=n, precision="fp16", use_rootsift=True,
                             batch_size=min(batch, n_bricks), scale_factor=0.25),
                device=GPUDevice(spec),
            )
            acc = evaluate_top1(engine, dataset).top1_accuracy
        else:
            acc = float("nan")
        accuracies[(m, n)] = acc
        paper_acc, paper_speed = _PAPER.get((m, n), (float("nan"), float("nan")))
        result.rows.append(
            [m, n, f"{acc:.2%}" if acc == acc else "-", int(round(speed)),
             f"{paper_acc:.2%}" if paper_acc == paper_acc else "-", paper_speed]
        )

    if (768, 768) in speeds and (384, 768) in speeds:
        result.summary["speed_gain_384_768"] = speeds[(384, 768)] / speeds[(768, 768)] - 1.0
        if with_accuracy:
            result.summary["accuracy_loss_384_768"] = (
                accuracies[(768, 768)] - accuracies[(384, 768)]
            )
    result.notes.append(
        "paper: optimum m=384 n=768 — accuracy -0.28%, speed +34.6%, cache halved"
    )
    return result
