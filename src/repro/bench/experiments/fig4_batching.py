"""Figure 4 — search speed vs. batch size (RootSIFT + FP16 batching).

The paper sweeps batch size 1..1024 on P100 and V100 (with and without
tensor cores), all references GPU-resident: P100 climbs 5,753 ->
45,539 img/s (7.9x), V100 7.5x, tensor cores peak at 86,519 img/s, and
the curve flattens past batch 256.
"""

from __future__ import annotations

from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, TESLA_V100, DeviceSpec
from ..chains import algorithm2_steps, chain_speed
from ..tables import ExperimentResult

__all__ = ["run", "DEFAULT_BATCHES"]

DEFAULT_BATCHES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


def speed_at(
    spec: DeviceSpec,
    cal: KernelCalibration,
    batch: int,
    m: int,
    n: int,
    d: int,
    tensor_core: bool = False,
) -> float:
    steps = algorithm2_steps(spec, cal, m, n, d, batch, "fp16", tensor_core)
    return chain_speed(steps, batch)


def run(
    batches: list[int] | None = None,
    m: int = 768,
    n: int = 768,
    d: int = 128,
) -> ExperimentResult:
    batches = batches if batches is not None else list(DEFAULT_BATCHES)
    p100_cal = KernelCalibration.for_device(TESLA_P100)
    v100_cal = KernelCalibration.for_device(TESLA_V100)

    result = ExperimentResult(
        name=f"Fig. 4: speed vs batch size (RootSIFT + FP16, m={m} n={n} d={d})",
        headers=["batch", "P100 (img/s)", "V100 (img/s)", "V100 + TensorCore (img/s)"],
    )
    series: dict[str, list[float]] = {"p100": [], "v100": [], "v100_tc": []}
    for batch in batches:
        p = speed_at(TESLA_P100, p100_cal, batch, m, n, d)
        v = speed_at(TESLA_V100, v100_cal, batch, m, n, d)
        vt = speed_at(TESLA_V100, v100_cal, batch, m, n, d, tensor_core=True)
        series["p100"].append(p)
        series["v100"].append(v)
        series["v100_tc"].append(vt)
        result.rows.append([batch, int(round(p)), int(round(v)), int(round(vt))])

    result.summary = {
        "p100_speedup": series["p100"][-1] / series["p100"][0],
        "v100_speedup": series["v100"][-1] / series["v100"][0],
        "tensor_core_gain_at_max_batch": series["v100_tc"][-1] / series["v100"][-1],
        "tensor_core_gain_at_batch1": series["v100_tc"][0] / series["v100"][0],
        "p100_peak": series["p100"][-1],
        "v100_tc_peak": series["v100_tc"][-1],
    }
    result.notes.append(
        "paper: P100 5,753 -> 45,539 (7.9x); V100 7.5x; TC peak 86,519 "
        "(+1.3x at batch 1024, only 1.15x at batch 1); flat past 256"
    )
    return result
