"""Elastic — static vs autoscaled fleets on diurnal and flash-crowd traffic.

The paper sizes its fleet once (14 containers) and benchmarks it at
full load; a production service sees diurnal traffic, so a statically
peak-sized fleet idles through every trough.  This experiment runs the
same seeded diurnal trace through three fleets of the replica-group
cluster:

* **static-lean** — one replica per shard (the trough-sized fleet):
  cheapest, but the peak overruns it and goodput collapses into
  deadline misses and shedding.
* **static-peak** — ``_R_MAX`` replicas per shard (the peak-sized
  fleet): goodput holds, but every replica is billed for the whole
  trace.
* **elastic** — starts lean with an :class:`~repro.distributed.
  autoscaler.Autoscaler` target-tracking the per-replica serving queue
  depth: replicas warm up from the KV store on the rising edge and
  drain away after the peak.  The claim under test: goodput within
  5 % of the peak-sized fleet at measurably fewer node-seconds.

The flash-crowd section replays a rectangular burst (the worst case
for a reactive controller) with a burn-rate :class:`~repro.obs.slo.
SloEngine` wired into the autoscaler as an alert sink, so a CRITICAL
page can bypass the scale-out cooldown.  The replica-kill section
crashes one replica of an R=2 shard under load and requires **zero
partial results** — the sibling absorbs every slice.  Everything runs
on the simulated clock with seeded workloads; the elastic run and the
replica-kill run are both executed twice and their payloads must be
byte-identical.

Results land in ``BENCH_elastic.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ...core.config import EngineConfig
from ...distributed import DistributedSearchSystem, FaultInjector
from ...gpusim.device import GIB, DeviceSpec
from ...distributed.autoscaler import Autoscaler, AutoscalerPolicy
from ...distributed.replica import WARMUP_BASE_US, WARMUP_US_PER_REF
from ...obs import default_registry
from ...obs.slo import (
    BurnRateRule,
    SloEngine,
    SloPolicy,
    install_engine,
    uninstall_engine,
)
from ...obs.timeseries import (
    TimeSeriesRecorder,
    install_recorder,
    uninstall_recorder,
)
from ...serving import (
    BatchPolicy,
    ClusterGroupExecutor,
    build_trace,
    diurnal_arrivals,
    flash_crowd_arrivals,
    simulate_serving,
)
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy

__all__ = ["run"]

#: shards in every fleet (replication varies, sharding does not).
_N_SHARDS = 2
#: references enrolled per shard.
_REFS_PER_SHARD = 8
#: serving group size (also the capacity unit, as in the other benches).
_MAX_BATCH = 16

#: the elastic fleet runs on a compute-starved edge tier rather than
#: the paper's P100s: on a P100 this bench's tiny shards finish so fast
#: that group time is all fixed overhead (web tier + H2D staging) and
#: an extra replica adds no capacity.  Starving FP32 throughput makes
#: the per-query GEMM dominate, so splitting a group's queries across
#: replicas genuinely multiplies capacity — the regime where
#: elasticity is worth measuring.  Wall-clock cost is unchanged: the
#: NumPy work is identical, only the simulated time scales.
_EDGE_DEVICE = DeviceSpec(
    name="Edge (sim)",
    sm_count=8,
    fp32_tflops=0.005,
    fp16_tflops=0.01,
    tensor_tflops=0.0,
    mem_bandwidth_gbs=160.0,
    mem_bytes=16 * GIB,
)
#: peak replication tier: what static-peak runs at and the elastic
#: fleet may scale to.
_R_MAX = 3
#: admission-queue bound, in groups (overload pressure becomes shedding
#: rather than an unbounded backlog, like a real front door).
_QUEUE_GROUPS = 4
#: per-request latency budget as a multiple of the lean group time.
_DEADLINE_GROUPS = 3.0

_LATENCY_METRIC = "repro_serving_latency_us"


def _make_workload(seed: int, config: EngineConfig):
    rng = np.random.default_rng(seed)
    n_refs = _N_SHARDS * _REFS_PER_SHARD
    refs = {f"r{i}": _make_descriptors(rng, count=config.n, d=config.d)
            for i in range(n_refs)}
    ref_list = list(refs.values())
    pool = [
        _noisy(rng, ref_list[int(rng.integers(0, n_refs))])
        for _ in range(2 * _MAX_BATCH)
    ]
    return refs, pool


def _build_system(
    config: EngineConfig,
    refs: dict[str, np.ndarray],
    replication: int,
    fault_injector: FaultInjector | None = None,
) -> DistributedSearchSystem:
    system = DistributedSearchSystem(
        _N_SHARDS,
        config,
        replication_factor=replication,
        device_spec=_EDGE_DEVICE,
        fault_injector=fault_injector,
    )
    for ref_id in sorted(refs):
        system.add(ref_id, refs[ref_id])
    return system


def _calibrate(config: EngineConfig, refs, pool, replication: int) -> float:
    """One warmed fused-group time (µs) on a ``replication``-tier fleet
    — the capacity unit all rates and windows are expressed in."""
    system = _build_system(config, refs, replication)
    executor = ClusterGroupExecutor(system)
    executor.execute(pool[:_MAX_BATCH])  # first sweep pays H2D staging
    _, elapsed_us = executor.execute(pool[:_MAX_BATCH])
    return float(elapsed_us)


def _scaler_policy(group_us: float) -> AutoscalerPolicy:
    """Target tracking tuned to the calibrated group time: the high
    band only trips on real backlog (the bounded queue pinned well
    above one group), the low band only on a near-idle queue, and the
    scale-out cooldown covers one replica warm-up so the controller
    sees the effect of its last action before acting again."""
    warmup_us = WARMUP_BASE_US + WARMUP_US_PER_REF * _REFS_PER_SHARD
    return AutoscalerPolicy(
        target_queue_depth=4.0,
        band=0.5,
        window_us=4.0 * group_us,
        max_replicas_per_shard=_R_MAX,
        cooldown_out_us=warmup_us + 2.0 * group_us,
        cooldown_in_us=10.0 * group_us,
        critical_boost_cooldown_us=warmup_us + 2.0 * group_us,
    )


def _slo_policies(group_us: float, slo_us: float) -> list[SloPolicy]:
    """Burn-rate pager for the flash-crowd section (same shape as the
    SLO bench: 3x burn over a 2/6-group window pair pages CRITICAL)."""
    return [
        SloPolicy(
            name="latency-elastic",
            kind="latency",
            objective=0.9,
            metric=_LATENCY_METRIC,
            threshold_us=slo_us,
            critical=BurnRateRule(2 * group_us, 6 * group_us, 3.0),
            warning=BurnRateRule(4 * group_us, 12 * group_us, 1.0),
            clear_hold_us=4 * group_us,
        )
    ]


def _run_fleet(
    config: EngineConfig,
    refs: dict[str, np.ndarray],
    pool: list[np.ndarray],
    arrivals: list[float],
    *,
    replication: int,
    elastic: bool,
    group_us: float,
    deadline_us: float,
    with_slo: bool = False,
) -> dict:
    """One serving replay on a fresh fleet; returns a JSON-ready,
    fully run-local payload (no process-global counters, so two
    identical runs produce byte-identical payloads)."""
    system = _build_system(config, refs, replication)
    recorder = TimeSeriesRecorder(interval_us=group_us / 2.0, retention=8192)
    install_recorder(recorder)
    slo_engine = None
    scaler = None
    try:
        if with_slo:
            # the pager watches a latency objective *tighter* than the
            # shed deadline: the bounded admission queue caps waiting
            # below the deadline, so a deadline-level threshold would
            # never burn — the page must fire while the backlog builds,
            # before shedding starts
            bounds = default_registry().get(_LATENCY_METRIC).buckets
            slo_us = TimeSeriesRecorder.effective_threshold_us(
                bounds, 1.25 * group_us
            )
            if slo_us == float("inf"):
                slo_us = float(bounds[-1])
            slo_engine = SloEngine(_slo_policies(group_us, slo_us))
            slo_engine.attach(recorder)
            install_engine(slo_engine)
        if elastic:
            scaler = Autoscaler(system, _scaler_policy(group_us))
            scaler.attach(recorder)
            if slo_engine is not None:
                scaler.subscribe(slo_engine)
        queries = [pool[i % len(pool)] for i in range(len(arrivals))]
        trace = build_trace(arrivals, queries, deadline_us=deadline_us)
        policy = BatchPolicy(
            max_batch=_MAX_BATCH,
            max_wait_us=0.0,
            max_queue_depth=_QUEUE_GROUPS * _MAX_BATCH,
            shed="reject-new",
        )
        report = simulate_serving(ClusterGroupExecutor(system), trace, policy)
        recorder.flush()
        node_seconds = system.node_seconds()
        replication_final = {
            shard_id: len(group.nodes)
            for shard_id, group in sorted(system.groups.items())
        }
    finally:
        if scaler is not None:
            scaler.detach()
        if slo_engine is not None:
            uninstall_engine()
        uninstall_recorder()

    n_offered = len(arrivals)
    n_good = sum(
        1 for r in report.records
        if r.deadline_us is None or r.completed_us <= r.deadline_us
    )
    pct = report.latency_percentiles((50, 95, 99))
    first_critical = None
    if slo_engine is not None:
        from ...obs.slo import CRITICAL

        event = slo_engine.log.first_at("latency-elastic", CRITICAL)
        first_critical = event.t_us if event is not None else None
    return {
        "replication_initial": replication,
        "replication_final": replication_final,
        "elastic": elastic,
        "n_offered": n_offered,
        "n_completed": report.n_requests,
        "n_good": n_good,
        "n_shed": report.n_rejected,
        "goodput_fraction": round(n_good / n_offered, 6) if n_offered else 1.0,
        "p50_us": round(pct["p50"], 3),
        "p95_us": round(pct["p95"], 3),
        "p99_us": round(pct["p99"], 3),
        "makespan_us": round(report.makespan_us, 3),
        "node_seconds": round(node_seconds, 6),
        "scaling_events": [e.to_dict() for e in scaler.events] if scaler else [],
        "first_critical_us": first_critical,
    }


def _run_replica_kill(
    config: EngineConfig,
    refs: dict[str, np.ndarray],
    pool: list[np.ndarray],
    seed: int,
    n_groups: int,
) -> dict:
    """Kill one replica of an R=2 shard mid-stream: every group before,
    during, and after the crash must come back non-partial (the sibling
    absorbs the dead reader's slices), and repair must detach the dead
    replica without touching placement."""
    injector = FaultInjector(seed=seed)
    system = _build_system(config, refs, replication=2, fault_injector=injector)
    shard_id = sorted(system.groups)[0]
    victim = next(
        node for node in system.groups[shard_id].nodes
        if node.node_id != shard_id
    )
    executor = ClusterGroupExecutor(system)
    partials = 0
    retries_before = default_registry().value(
        "repro_cluster_replica_retries_total"
    )
    for k in range(n_groups):
        if k == n_groups // 3:
            injector.crash(victim.node_id)
        payloads, _ = executor.execute(pool[:_MAX_BATCH])
        partials += sum(1 for r in payloads if r.partial)
    replica_retries = default_registry().value(
        "repro_cluster_replica_retries_total"
    ) - retries_before
    return {
        "shard": shard_id,
        "victim": victim.node_id,
        "n_groups": n_groups,
        "partial_results": partials,
        "replica_retries": replica_retries,
        "victim_detached": system._group_of_node(victim.node_id) is None,
        "replicas_after": {
            sid: len(group.nodes) for sid, group in sorted(system.groups.items())
        },
    }


def run(
    quick: bool = False,
    json_path: str | Path = "BENCH_elastic.json",
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    refs, pool = _make_workload(seed, config)

    lean_us = _calibrate(config, refs, pool, replication=1)
    peak_us = _calibrate(config, refs, pool, replication=_R_MAX)
    capacity_lean_rps = _MAX_BATCH / lean_us * 1e6
    capacity_peak_rps = _MAX_BATCH / peak_us * 1e6
    deadline_us = _DEADLINE_GROUPS * lean_us

    # diurnal trace: trough at ~half the lean fleet's capacity, peak at
    # 80 % of the peak fleet's — well over the lean fleet, inside the
    # peak fleet, so only elasticity separates the cheap configurations
    period_us = (36.0 if quick else 60.0) * lean_us
    trough_rps = 0.55 * capacity_lean_rps
    peak_rps = 0.8 * capacity_peak_rps
    diurnal = diurnal_arrivals(
        duration_us=period_us,
        trough_rate_per_s=trough_rps,
        peak_rate_per_s=peak_rps,
        period_us=period_us,
        seed=seed + 1,
    )

    fleets = {
        "static-lean": dict(replication=1, elastic=False),
        "static-peak": dict(replication=_R_MAX, elastic=False),
        "elastic": dict(replication=1, elastic=True),
    }
    diurnal_out: dict[str, dict] = {}
    for label, kwargs in fleets.items():
        diurnal_out[label] = _run_fleet(
            config, refs, pool, diurnal,
            group_us=lean_us, deadline_us=deadline_us, **kwargs,
        )

    # determinism: the elastic replay is a pure function of the seed
    rerun = _run_fleet(
        config, refs, pool, diurnal,
        replication=1, elastic=True,
        group_us=lean_us, deadline_us=deadline_us,
    )
    deterministic = json.dumps(rerun, sort_keys=True) == json.dumps(
        diurnal_out["elastic"], sort_keys=True
    )

    # flash crowd: a rectangular burst with the burn-rate pager wired
    # into the autoscaler (CRITICAL bypasses the scale-out cooldown)
    flash_duration_us = (28.0 if quick else 40.0) * lean_us
    spike_start_us = 8.0 * lean_us
    spike_width_us = 12.0 * lean_us
    # the spike briefly exceeds even the fully scaled-out fleet: the
    # burn-rate pager must go CRITICAL, and the page lets the scaler
    # bypass its own cooldown on the way up
    flash = flash_crowd_arrivals(
        duration_us=flash_duration_us,
        base_rate_per_s=0.5 * capacity_lean_rps,
        spike_rate_per_s=1.15 * capacity_peak_rps,
        spike_start_us=spike_start_us,
        spike_width_us=spike_width_us,
        seed=seed + 2,
    )
    flash_out = {
        "static-lean": _run_fleet(
            config, refs, pool, flash,
            replication=1, elastic=False,
            group_us=lean_us, deadline_us=deadline_us,
        ),
        "elastic": _run_fleet(
            config, refs, pool, flash,
            replication=1, elastic=True,
            group_us=lean_us, deadline_us=deadline_us, with_slo=True,
        ),
    }
    first_scale_out = next(
        (
            e["t_us"] for e in flash_out["elastic"]["scaling_events"]
            if e["action"] == "scale_out"
        ),
        None,
    )
    reaction_us = (
        first_scale_out - spike_start_us if first_scale_out is not None else None
    )

    # replica kill under load: R=2, zero partials, deterministic replay
    kill_groups = 9 if quick else 15
    kill = _run_replica_kill(config, refs, pool, seed + 3, kill_groups)
    kill_rerun = _run_replica_kill(config, refs, pool, seed + 3, kill_groups)
    kill_deterministic = json.dumps(kill, sort_keys=True) == json.dumps(
        kill_rerun, sort_keys=True
    )

    lean = diurnal_out["static-lean"]
    peak = diurnal_out["static-peak"]
    elastic = diurnal_out["elastic"]
    goodput_vs_peak = (
        elastic["goodput_fraction"] / peak["goodput_fraction"]
        if peak["goodput_fraction"] else 1.0
    )
    node_seconds_saved = peak["node_seconds"] - elastic["node_seconds"]

    result = ExperimentResult(
        "Elastic: static vs autoscaled fleets on a diurnal trace",
        ["fleet", "goodput", "p99 ms", "shed", "node-s", "scale events"],
    )
    for label in ("static-lean", "static-peak", "elastic"):
        out = diurnal_out[label]
        result.rows.append([
            label,
            f"{out['goodput_fraction']:.3f}",
            round(out["p99_us"] / 1e3, 2),
            out["n_shed"],
            round(out["node_seconds"], 3),
            len(out["scaling_events"]),
        ])
    result.summary = {
        "capacity_lean_rps": round(capacity_lean_rps, 1),
        "capacity_peak_rps": round(capacity_peak_rps, 1),
        "deadline_us": round(deadline_us, 1),
        "goodput_lean": lean["goodput_fraction"],
        "goodput_peak": peak["goodput_fraction"],
        "goodput_elastic": elastic["goodput_fraction"],
        "elastic_within_5pct_of_peak": goodput_vs_peak >= 0.95,
        "node_seconds_peak": peak["node_seconds"],
        "node_seconds_elastic": elastic["node_seconds"],
        "node_seconds_saved": round(node_seconds_saved, 6),
        "elastic_cheaper_than_peak": node_seconds_saved > 0,
        "flash_reaction_us": (
            round(reaction_us, 1) if reaction_us is not None else None
        ),
        "flash_critical_fired": flash_out["elastic"]["first_critical_us"] is not None,
        "replica_kill_partials": kill["partial_results"],
        "replica_kill_zero_partials": kill["partial_results"] == 0,
        "deterministic_replay": deterministic and kill_deterministic,
    }
    result.notes.append(
        f"diurnal: trough {trough_rps:.0f} rps -> peak {peak_rps:.0f} rps over "
        f"{period_us / 1e3:.1f} ms; elastic goodput is "
        f"{goodput_vs_peak:.1%} of static-peak at "
        f"{node_seconds_saved:.3f} node-s less"
    )
    result.notes.append(
        "replica kill: one R=2 replica crashed mid-stream, "
        f"{kill['partial_results']} partial results across "
        f"{kill['n_groups']} groups ({kill['replica_retries']:.0f} sibling "
        "retries absorbed the dead reader)"
    )

    payload = {
        "experiment": "elastic",
        "seed": seed,
        "quick": quick,
        "workload": {
            "n_shards": _N_SHARDS,
            "refs_per_shard": _REFS_PER_SHARD,
            "max_batch": _MAX_BATCH,
            "r_max": _R_MAX,
            "group_us_lean": round(lean_us, 3),
            "group_us_peak": round(peak_us, 3),
            "deadline_us": round(deadline_us, 3),
            "diurnal": {
                "period_us": round(period_us, 3),
                "trough_rps": round(trough_rps, 3),
                "peak_rps": round(peak_rps, 3),
                "n_arrivals": len(diurnal),
            },
            "flash": {
                "duration_us": round(flash_duration_us, 3),
                "spike_start_us": round(spike_start_us, 3),
                "spike_width_us": round(spike_width_us, 3),
                "n_arrivals": len(flash),
            },
        },
        "diurnal": diurnal_out,
        "flash": flash_out,
        "replica_kill": kill,
        "determinism": {
            "elastic_rerun_identical": deterministic,
            "replica_kill_rerun_identical": kill_deterministic,
        },
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"full timelines written to {json_path}")
    return result
