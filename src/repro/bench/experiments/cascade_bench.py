"""Cascade prefilter — GEMM-pair reduction at verdict parity.

The ``cascade`` backend (:mod:`repro.core.cascade`) puts a
coarse-to-fine XOR/popcount Hamming prune in front of Algorithm 1's
exact cuBLAS 2-NN sweep.  This experiment measures what that prune
buys and what it risks:

* **verdict parity** — every matched query (noisy copy of an enrolled
  reference) and impostor query (fresh descriptors) must produce the
  same identification verdict as the unfiltered ``algorithm1`` engine:
  same accept/reject, same best reference, same good-match count.
  ``algorithm2`` (the RootSIFT default) is cross-checked at the
  accept/reject + best-reference level (its FP16 math rounds the match
  counts differently by design).
* **GEMM pair reduction** — descriptor pairs swept by the exact GEMM
  (``(images_searched - cascade_pruned) * m * n``) divided into the
  exhaustive baseline's ``images_searched * m * n``.
* **per-image match cost** — simulated µs per cached image, cascade vs
  ``algorithm1``; both Hamming stages are charged through the
  :func:`repro.gpusim.kernels.hamming_us` popcount model, so the
  reduction is honest, not free.

The grid sweeps signature width (hash bits), the coarse bucket
threshold, and corpus size.  Acceptance (ISSUE 8): at the default
knobs on the largest benched corpus, verdicts are bit-equal to
``algorithm1`` while >= ``MIN_PAIR_REDUCTION``x fewer descriptor pairs
reach the exact GEMM and the simulated per-image cost drops by at
least the same factor.  Results land in ``BENCH_cascade.json``
(deterministic: seeded workload, simulated clock, no timestamps).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ...core.cascade import CascadeKernel
from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy

__all__ = ["run"]

#: acceptance bar (ISSUE 8): at default knobs on the largest corpus,
#: >= this many times fewer descriptor pairs through the exact GEMM
#: (and at least the same factor off the per-image simulated cost),
#: with verdicts bit-equal to algorithm1.
MIN_PAIR_REDUCTION = 3.0

#: the kernel's default knobs — the acceptance cell of the sweep.
DEFAULT_BITS = CascadeKernel.DEFAULT_BITS
DEFAULT_COARSE_THRESHOLD = 16


def _config(backend: str | None) -> EngineConfig:
    kwargs = dict(m=48, n=48, batch_size=4, min_matches=5, backend=backend)
    if backend == "algorithm2":
        kwargs["scale_factor"] = 0.25
    else:
        kwargs["precision"] = "fp32"
    return EngineConfig(**kwargs)


def _build(backend: str | None, refs, kernel=None) -> TextureSearchEngine:
    config = _config(backend)
    engine = TextureSearchEngine(config, kernel=kernel)
    for ref_id, desc in refs.items():
        engine.add_reference(ref_id, desc)
    engine.flush()
    return engine


def _verdict(result, min_matches: int) -> tuple:
    """Identification verdict: (accepted, best reference, good matches)."""
    best = result.best()
    if best is None or best.good_matches < min_matches:
        return (False, None, 0)
    return (True, best.reference_id, best.good_matches)


def run(
    quick: bool = False,
    json_path: str | Path = "BENCH_cascade.json",
    seed: int = 0,
) -> ExperimentResult:
    corpus_sizes = (24,) if quick else (48, 120)
    n_matched = 6 if quick else 10
    n_impostor = 6 if quick else 10
    bits_grid = (64, 128) if quick else (64, 128, 256)
    coarse_grid = (8, 16) if quick else (8, 16, 24)

    base_cfg = _config("algorithm1")
    result = ExperimentResult(
        "Cascade prefilter: GEMM-pair reduction at verdict parity",
        ["corpus", "bits", "coarse thr", "parity", "pruned/query",
         "pair reduction x", "us/img", "cost reduction x"],
    )
    cells: list[dict] = []
    largest = max(corpus_sizes)
    acceptance: dict | None = None

    rng = np.random.default_rng(seed)
    for corpus in corpus_sizes:
        refs = {
            f"r{i:04d}": _make_descriptors(rng, count=base_cfg.n, d=base_cfg.d)
            for i in range(corpus)
        }
        matched_ids = [
            f"r{int(i):04d}" for i in rng.integers(0, corpus, size=n_matched)
        ]
        queries = [("matched", qid, _noisy(rng, refs[qid])) for qid in matched_ids]
        queries += [
            ("impostor", None, _make_descriptors(rng, count=base_cfg.n, d=base_cfg.d))
            for _ in range(n_impostor)
        ]

        # unfiltered baselines (one build per corpus, shared by the grid)
        algo1 = _build("algorithm1", refs)
        algo1_results = [algo1.search(q) for _, _, q in queries]
        algo1_verdicts = [
            _verdict(r, base_cfg.min_matches) for r in algo1_results
        ]
        algo1_cost = sum(r.elapsed_us for r in algo1_results) / max(
            1, sum(r.images_searched for r in algo1_results)
        )
        algo1_pairs = sum(
            r.images_searched * base_cfg.m * base_cfg.n for r in algo1_results
        )
        algo2 = _build("algorithm2", refs)
        algo2_verdicts = [
            _verdict(algo2.search(q), base_cfg.min_matches)[:2]
            for _, _, q in queries
        ]

        for bits in bits_grid:
            for coarse_thr in coarse_grid:
                config = _config("cascade")
                kernel = CascadeKernel(
                    config, n_bits=bits, coarse_threshold=coarse_thr, seed=seed
                )
                cascade = _build("cascade", refs, kernel=kernel)
                cas_results = [cascade.search(q) for _, _, q in queries]
                cas_verdicts = [
                    _verdict(r, config.min_matches) for r in cas_results
                ]
                parity1 = cas_verdicts == algo1_verdicts
                parity2 = [v[:2] for v in cas_verdicts] == algo2_verdicts
                pruned = sum(r.cascade_pruned for r in cas_results)
                searched = sum(r.images_searched for r in cas_results)
                cas_pairs = (searched - pruned) * config.m * config.n
                pair_reduction = (
                    algo1_pairs / cas_pairs if cas_pairs else float("inf")
                )
                cas_cost = sum(r.elapsed_us for r in cas_results) / max(1, searched)
                cost_reduction = algo1_cost / cas_cost if cas_cost else float("inf")
                default_knobs = (
                    bits == DEFAULT_BITS and coarse_thr == DEFAULT_COARSE_THRESHOLD
                )
                result.rows.append([
                    corpus,
                    bits,
                    coarse_thr,
                    "yes" if parity1 else "NO",
                    round(pruned / len(queries), 1),
                    round(pair_reduction, 2),
                    round(cas_cost, 2),
                    round(cost_reduction, 2),
                ])
                cells.append({
                    "corpus": corpus,
                    "n_bits": bits,
                    "coarse_threshold": coarse_thr,
                    "default_knobs": default_knobs,
                    "verdict_parity_vs_algorithm1": parity1,
                    "verdict_parity_vs_algorithm2": parity2,
                    "images_pruned_per_query": round(pruned / len(queries), 3),
                    "gemm_pairs": int(cas_pairs),
                    "gemm_pairs_exhaustive": int(algo1_pairs),
                    "gemm_pair_reduction_x": round(pair_reduction, 3),
                    "us_per_image_cascade": round(cas_cost, 3),
                    "us_per_image_algorithm1": round(algo1_cost, 3),
                    "cost_reduction_x": round(cost_reduction, 3),
                })
                if corpus == largest and default_knobs:
                    acceptance = {
                        "n_bits": bits,
                        "coarse_threshold": coarse_thr,
                        "verdict_parity_vs_algorithm1": parity1,
                        "verdict_parity_vs_algorithm2": parity2,
                        "gemm_pair_reduction_x": round(pair_reduction, 3),
                        "cost_reduction_x": round(cost_reduction, 3),
                    }

    passes = bool(
        acceptance
        and acceptance["verdict_parity_vs_algorithm1"]
        and acceptance["gemm_pair_reduction_x"] >= MIN_PAIR_REDUCTION
        and acceptance["cost_reduction_x"] >= MIN_PAIR_REDUCTION
    )
    result.summary = {
        "largest_corpus": largest,
        "default_knobs_operating_point": acceptance,
        "meets_reduction_bar": passes,
        "reduction_bar_x": MIN_PAIR_REDUCTION,
    }
    result.notes.append(
        "pair reduction = exhaustive (images * m * n) / cascade survivor "
        "pairs; pruned images report zero matches without any GEMM"
    )
    result.notes.append(
        "both Hamming stages are charged through the gpusim popcount cost "
        "model (hamming_us) — the prune is paid for, not free"
    )

    payload = {
        "experiment": "cascade",
        "seed": seed,
        "quick": quick,
        "workload": {
            "corpus_sizes": list(corpus_sizes),
            "n_matched_queries": n_matched,
            "n_impostor_queries": n_impostor,
            "bits_grid": list(bits_grid),
            "coarse_threshold_grid": list(coarse_grid),
            "engine": {"m": base_cfg.m, "n": base_cfg.n,
                       "batch_size": base_cfg.batch_size, "d": base_cfg.d,
                       "min_matches": base_cfg.min_matches},
        },
        "grid": cells,
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"full grid written to {json_path}")
    return result
