"""Backend sweep — every registered match kernel through the *real*
engine path (cache sweep, tombstones, stats), at Table 1's operating
point (m = n = 768, d = 128, Tesla P100).

Historically the Table 1 baselines were modelled by bespoke per-image
chains (``bench/chains.py``, ``baselines/opencv_cuda.py``); with the
kernel registry they also run end to end through
:class:`~repro.core.engine.TextureSearchEngine`.  This experiment
measures the engine-path throughput per backend and cross-checks it
against the closed-form chain models and the paper's published speeds —
the engine path must reproduce the baseline columns within the repo's
existing anchor tolerances.
"""

from __future__ import annotations

import numpy as np

from ...baselines.opencv_cuda import CONTEXT_OVERHEAD_BYTES, opencv_search_time_us
from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...core.registry import canonical_backend
from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ...gpusim.engine_model import GPUDevice
from ..chains import algorithm1_steps
from ..tables import ExperimentResult
from .table1_cublas import PAPER_SPEEDS

__all__ = ["run", "VARIANTS"]

#: (row label, backend, precision) — the Table 1 columns plus the
#: paper's own Algorithm-2 pipeline for context.
VARIANTS: list[tuple[str, str, str]] = [
    ("CUDA (OpenCV)", "opencv", "fp32"),
    ("cuBLAS [9]", "garcia", "fp32"),
    ("cuBLAS (ours)", "algorithm1", "fp32"),
    ("cuBLAS+FP16 (ours)", "algorithm1", "fp16"),
    ("RootSIFT (Alg. 2)", "algorithm2", "fp16"),
    ("LSH [15]", "lsh", "fp32"),
]

#: paper-speed anchor per row label (Table 1; Alg. 2 has no column).
_PAPER_BY_LABEL = {
    "CUDA (OpenCV)": PAPER_SPEEDS["CUDA (OpenCV)"],
    "cuBLAS [9]": PAPER_SPEEDS["cuBLAS [9]"],
    "cuBLAS (ours)": PAPER_SPEEDS["cuBLAS (ours)"],
    "cuBLAS+FP16 (ours)": PAPER_SPEEDS["cuBLAS+FP16 (ours)"],
}


def _synthetic_descriptors(count: int, d: int, seed: int) -> np.ndarray:
    """SIFT-like non-negative descriptors, L2 norm 512 per column."""
    rng = np.random.default_rng(seed)
    desc = rng.gamma(0.6, 1.0, size=(d, count)).astype(np.float32)
    desc /= np.maximum(np.linalg.norm(desc, axis=0, keepdims=True), 1e-9)
    return (desc * 512.0).astype(np.float32)


def _model_speed(spec: DeviceSpec, cal: KernelCalibration, backend: str,
                 precision: str, m: int, n: int, d: int) -> float | None:
    """Closed-form chain-model prediction (img/s), where one exists."""
    if backend == "opencv":
        return 1e6 / opencv_search_time_us(GPUDevice(spec, cal), m, n, d)
    if backend in ("algorithm1", "garcia"):
        sort = "insertion" if backend == "garcia" else "scan"
        return 1e6 / sum(algorithm1_steps(spec, cal, m, n, d, precision, sort).values())
    return None


def run(
    backends: list[str] | None = None,
    spec: DeviceSpec = TESLA_P100,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    n_references: int = 16,
    batch_size: int = 16,
    cached_references: int = 10_000,
) -> ExperimentResult:
    """Measure each backend's engine-path throughput.

    ``n_references`` only needs to cover a couple of batches — the
    simulated per-image cost is independent of the cache size (single
    stream, GPU-resident).  ``cached_references`` scales the reported
    memory column to Table 1's 10,000-image cache.
    """
    cal = KernelCalibration.for_device(spec)
    wanted = {canonical_backend(b) for b in backends} if backends else None
    variants = [v for v in VARIANTS if wanted is None or v[1] in wanted]
    if not variants:
        raise ValueError(f"no variant matches backends={backends!r}")

    result = ExperimentResult(
        name=f"Backend sweep (engine path): m={m} n={n} d={d}, {spec.name}",
        headers=["Backend", "precision", "engine img/s", "model img/s",
                 "delta %", "paper img/s", "memory (MB)"],
    )
    deltas: dict[str, float] = {}
    for label, backend, precision in variants:
        cfg = EngineConfig(
            m=m, n=n, d=d, backend=backend, precision=precision,
            batch_size=batch_size,
        )
        engine = TextureSearchEngine(cfg, device=GPUDevice(spec, cal))
        for i in range(n_references):
            engine.add_reference(f"ref{i}", _synthetic_descriptors(m, d, seed=1000 + i))
        search = engine.search(_synthetic_descriptors(n, d, seed=999))
        engine_speed = search.throughput_images_per_s
        model = _model_speed(spec, cal, backend, precision, m, n, d)
        delta = (engine_speed / model - 1.0) * 100.0 if model else None
        if model:
            deltas[label] = delta
        memory_mb = (
            cfg.feature_matrix_bytes() * cached_references + CONTEXT_OVERHEAD_BYTES
        ) / 1e6
        result.rows.append([
            label, precision, int(round(engine_speed)),
            int(round(model)) if model else "-",
            round(delta, 2) if delta is not None else "-",
            _PAPER_BY_LABEL.get(label, "-"),
            int(round(memory_mb)),
        ])

    result.summary = {f"engine_vs_model_delta_pct[{k}]": v for k, v in deltas.items()}
    result.notes.append(
        "engine img/s is measured through TextureSearchEngine's cache sweep; "
        "model img/s is the per-image serial chain (Table 1 methodology)."
    )
    return result
