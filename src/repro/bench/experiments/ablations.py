"""Ablations of the paper's design choices.

Four studies the paper motivates but does not tabulate:

* **sort kind** — register top-2 scan vs. modified insertion sort
  across batch sizes (quantifies Sec. 4.1's choice beyond the single
  batch-1 cell of Table 1);
* **query batching** — the throughput/latency trade-off Sec. 5.3
  mentions and defers;
* **CBIR vs. identification** — a from-scratch Faiss-style IVF-PQ
  retrieval engine on the *same* dataset, measuring the accuracy gap
  that justifies the paper's one-by-one matching design (Secs. 2-3);
* **stream scheduling** — the fair-share analytic model (what the
  paper's thread-per-stream code achieves) vs. an event-driven ideal
  pipeline (what perfect asynchrony could achieve).
"""

from __future__ import annotations

import numpy as np

from ...baselines.cbir_ivf import IVFPQIndex
from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...core.query_batching import query_batch_tradeoff
from ...data.dataset import build_feature_dataset
from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ...gpusim.kernels import insertion_sort_us, top2_scan_us
from ...metrics.accuracy import evaluate_top1
from ...pipeline.event_sim import simulate_stream_pipeline
from ...pipeline.scheduler import plan_streams
from ..tables import ExperimentResult

__all__ = [
    "run_sort_ablation",
    "run_query_batch_ablation",
    "run_cbir_ablation",
    "run_stream_model_ablation",
    "run_verification_ablation",
    "run_lsh_ablation",
]


def run_sort_ablation(
    spec: DeviceSpec = TESLA_P100,
    batches: list[int] | None = None,
    m: int = 768,
    n: int = 768,
) -> ExperimentResult:
    """Scan vs. insertion sort across batch sizes and precisions."""
    batches = batches or [1, 16, 256, 1024]
    cal = KernelCalibration.for_device(spec)
    result = ExperimentResult(
        name=f"Ablation: top-2 selection kernel, m={m} n={n}, {spec.name}",
        headers=["batch", "scan fp32 (us/img)", "scan fp16 (us/img)",
                 "insertion fp32 (us/img)", "scan speedup"],
    )
    for batch in batches:
        cols = batch * n
        scan32 = top2_scan_us(spec, cal, m, cols, "fp32") / batch
        scan16 = top2_scan_us(spec, cal, m, cols, "fp16") / batch
        ins32 = insertion_sort_us(spec, cal, m, cols, "fp32") / batch
        result.rows.append(
            [batch, round(scan32, 2), round(scan16, 2), round(ins32, 2),
             f"{ins32 / scan32:.1f}x"]
        )
    first, last = result.rows[0], result.rows[-1]
    result.summary = {
        "batch1_scan_speedup": float(first[4].rstrip("x")),
        "fp16_scan_penalty_batch1": first[2] / first[1],
        "fp16_scan_gain_large_batch": last[1] / last[2],
    }
    result.notes.append(
        "the FP16 scan is slower at batch 1 (half intrinsics, Sec. 4.2) "
        "but wins at scale where the kernel is bandwidth bound"
    )
    return result


def run_query_batch_ablation(
    spec: DeviceSpec = TESLA_P100,
    query_batches: list[int] | None = None,
    reference_count: int = 100_000,
) -> ExperimentResult:
    """Throughput vs. latency as queries are batched (Sec. 5.3)."""
    query_batches = query_batches or [1, 2, 4, 8, 16, 32]
    cal = KernelCalibration.for_device(spec)
    points = query_batch_tradeoff(spec, cal, query_batches, reference_count)
    result = ExperimentResult(
        name=f"Ablation: query batching over {reference_count:,} references ({spec.name})",
        headers=["query batch", "throughput (pairs/s)", "latency per query (ms)"],
    )
    for point in points:
        result.rows.append(
            [point.query_batch,
             int(round(point.throughput_images_per_s)),
             round(point.latency_ms_per_query, 1)]
        )
    result.summary = {
        "throughput_gain": points[-1].throughput_images_per_s / points[0].throughput_images_per_s,
        "latency_cost": points[-1].latency_ms_per_query / points[0].latency_ms_per_query,
    }
    result.notes.append(
        "paper: 'the query feature matrix can also be batched for higher "
        "performance. However, the search latency also increases'"
    )
    return result


def run_cbir_ablation(
    n_bricks: int = 40,
    m: int = 384,
    n: int = 768,
    nprobe: int = 4,
    min_score: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Identification accuracy: per-image 2-NN matching vs. IVF-PQ CBIR.

    Both systems see the same references and queries.  CBIR pools all
    features into one global index and votes; identification matches
    image-by-image with the ratio test.  Two criteria are reported:

    * **argmax** — best candidate is the true brick;
    * **decisive** — argmax is correct *and* the evidence clears a
      traceability-grade confidence bar (match count >= ``min_score``
      for identification; >= ``min_score`` votes *and* a 2x margin over
      the runner-up for CBIR).  Product traceability needs decisive
      answers — this is where the CBIR approach collapses, which is the
      paper's Sec. 3 argument for per-image matching.
    """
    dataset = build_feature_dataset(n_bricks, m, n, queries_per_brick=1, seed=seed)

    # --- per-image matching (the paper's approach) ---------------------
    engine = TextureSearchEngine(
        EngineConfig(m=m, n=n, precision="fp16", scale_factor=0.25,
                     batch_size=min(64, n_bricks), min_matches=min_score)
    )
    for ref in dataset.references:
        engine.add_reference(str(ref.brick_id), ref.descriptors)
    engine.flush()

    # --- CBIR: global IVF-PQ + voting -----------------------------------
    index = IVFPQIndex(d=128, n_lists=32, n_subspaces=8, n_centroids=16, seed=seed)
    sample = np.hstack([ref.descriptors for ref in dataset.references[: min(10, n_bricks)]])
    index.train(sample.T)
    for ref in dataset.references:
        index.add(str(ref.brick_id), ref.descriptors)

    ident_argmax = ident_decisive = cbir_argmax = cbir_decisive = 0
    for query in dataset.queries:
        truth = str(query.brick_id)
        best = engine.search(query.descriptors).best()
        if best is not None and best.reference_id == truth:
            ident_argmax += 1
            if best.score >= min_score:
                ident_decisive += 1
        votes = index.search(query.descriptors, nprobe=nprobe)
        top1 = votes[0].votes if votes else 0
        top2 = votes[1].votes if len(votes) > 1 else 0
        if votes and votes[0].image_id == truth:
            cbir_argmax += 1
            if top1 >= min_score and top1 >= 2 * top2:
                cbir_decisive += 1

    total = len(dataset.queries)
    result = ExperimentResult(
        name=f"Ablation: identification vs CBIR retrieval ({n_bricks} bricks, m={m} n={n})",
        headers=["approach", "argmax accuracy", "decisive accuracy"],
        rows=[
            ["per-image 2-NN + ratio test (paper)",
             f"{ident_argmax / total:.2%}", f"{ident_decisive / total:.2%}"],
            [f"IVF-PQ CBIR voting (nprobe={nprobe})",
             f"{cbir_argmax / total:.2%}", f"{cbir_decisive / total:.2%}"],
        ],
    )
    result.summary = {
        "identification_decisive": ident_decisive / total,
        "cbir_decisive": cbir_decisive / total,
        "decisive_gap": (ident_decisive - cbir_decisive) / total,
    }
    result.notes.append(
        "paper Sec. 3: CBIR approaches 'can be very efficient but suffer "
        "low accuracy' for fine-grained identification; the collapse "
        "shows under the decisive (traceability-grade) criterion"
    )
    return result


def run_verification_ablation(
    n_bricks: int = 24,
    m: int = 384,
    n: int = 768,
    impostors_per_brick: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """One-to-one verification operating points (FAR/FRR/EER).

    Characterises the good-match-count score the paper thresholds
    (Sec. 3.1) and shows where ``min_matches`` sits on the ROC.
    """
    from ...data.synthetic_features import SyntheticFeatureModel
    from ...metrics.verification import evaluate_verification

    engine = TextureSearchEngine(
        EngineConfig(m=m, n=n, precision="fp16", scale_factor=0.25, batch_size=32)
    )
    model = SyntheticFeatureModel(seed=seed)
    report = evaluate_verification(engine, model, n_bricks, impostors_per_brick)

    result = ExperimentResult(
        name=f"Ablation: verification ROC ({n_bricks} genuine / "
        f"{n_bricks * impostors_per_brick} impostor pairs, m={m} n={n})",
        headers=["threshold (matches)", "FAR", "FRR"],
    )
    for threshold in (1, 2, 4, 8, 16, 32):
        point = report.operating_point(threshold)
        result.rows.append([threshold, f"{point.far:.2%}", f"{point.frr:.2%}"])
    result.summary = {
        "eer": report.eer,
        "best_threshold": report.best_threshold(),
        "genuine_median": float(np.median(report.genuine_scores)),
        "impostor_median": float(np.median(report.impostor_scores)),
    }
    result.notes.append(
        "paper Sec. 3.1: two images are the same texture 'only when the "
        "number [of matches] is higher than a pre-defined threshold'"
    )
    return result


def run_lsh_ablation(
    n_bricks: int = 16,
    m: int = 256,
    n: int = 256,
    bit_widths: list[int] | None = None,
    n_candidates: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """LSH compression (related work [15]) vs. the FP16 engine.

    The Hamming candidate filter truncates each query feature's
    competitor set, which *inflates* match counts — genuine and
    impostor alike.  At small gallery sizes top-1 accuracy survives;
    what degrades as the signatures shrink is the **verification
    margin** (genuine score over best-impostor score), i.e. exactly the
    decisive evidence product traceability needs.  The FP16 engine
    keeps the exact ratio-test margin at a fixed 2x compression.
    """
    from ...baselines.lsh import LshCodec, LshMatcher

    bit_widths = bit_widths or [64, 256, 1024]
    dataset = build_feature_dataset(n_bricks, m, n, queries_per_brick=1, seed=seed)
    sample = np.hstack([ref.descriptors for ref in dataset.references])
    fp32_bytes = m * 128 * 4

    result = ExperimentResult(
        name=f"Ablation: LSH compression vs FP16 ({n_bricks} bricks, m={m} n={n})",
        headers=["representation", "bytes/image", "compression",
                 "top-1 accuracy", "genuine med.", "impostor med.", "margin"],
    )

    def margin_stats(scores):
        genuine = np.array([s[0] for s in scores], dtype=np.float64)
        impostor = np.array([s[1] for s in scores], dtype=np.float64)
        med_g = float(np.median(genuine))
        med_i = float(np.median(impostor))
        return med_g, med_i, med_g / max(med_i, 1.0)

    # --- FP16 engine -----------------------------------------------------
    engine = TextureSearchEngine(
        EngineConfig(m=m, n=n, precision="fp16", scale_factor=0.25,
                     batch_size=min(32, n_bricks))
    )
    for ref in dataset.references:
        engine.add_reference(str(ref.brick_id), ref.descriptors)
    engine.flush()
    engine_scores = []
    engine_correct = 0
    for query in dataset.queries:
        search = engine.search(query.descriptors)
        by_id = {match.reference_id: match.good_matches for match in search.matches}
        truth = str(query.brick_id)
        true_score = by_id.get(truth, 0)
        imp_score = max((s for rid, s in by_id.items() if rid != truth), default=0)
        engine_scores.append((true_score, imp_score))
        best = search.best()
        if best is not None and best.reference_id == truth and best.score >= 8:
            engine_correct += 1
    med_g, med_i, margin = margin_stats(engine_scores)
    fp16_bytes = m * 128 * 2
    result.rows.append(
        ["FP16 engine (paper)", fp16_bytes, f"{fp32_bytes / fp16_bytes:.0f}x",
         f"{engine_correct / len(dataset.queries):.2%}", med_g, med_i, round(margin, 1)]
    )
    result.summary["fp16_margin"] = margin
    result.summary["fp16_accuracy"] = engine_correct / len(dataset.queries)

    # --- LSH sweep --------------------------------------------------------
    for bits in bit_widths:
        codec = LshCodec(d=128, n_bits=bits, seed=seed)
        codec.train(sample)
        matcher = LshMatcher(codec, n_candidates=n_candidates)
        for ref in dataset.references:
            matcher.add(str(ref.brick_id), ref.descriptors)
        scores = []
        correct = 0
        for query in dataset.queries:
            ranked = matcher.search(query.descriptors)
            by_id = dict(ranked)
            truth = str(query.brick_id)
            true_score = by_id.get(truth, 0)
            imp_score = max((s for rid, s in by_id.items() if rid != truth), default=0)
            scores.append((true_score, imp_score))
            if ranked and ranked[0][0] == truth and ranked[0][1] >= 8:
                correct += 1
        med_g, med_i, margin = margin_stats(scores)
        per_image = codec.bytes_per_descriptor * m
        result.rows.append(
            [f"LSH {bits}-bit signatures", per_image, f"{fp32_bytes / per_image:.0f}x",
             f"{correct / len(dataset.queries):.2%}", med_g, med_i, round(margin, 1)]
        )
        result.summary[f"lsh{bits}_margin"] = margin
        result.summary[f"lsh{bits}_impostor_median"] = med_i
    result.notes.append(
        "tighter LSH signatures inflate impostor scores (candidate-set "
        "truncation biases the ratio test), eroding the verification "
        "margin; the FP16 engine keeps the exact margin at 2x compression"
    )
    return result


def run_stream_model_ablation(
    spec: DeviceSpec = TESLA_P100,
    streams_list: list[int] | None = None,
    batch: int = 512,
    n_batches: int = 64,
) -> ExperimentResult:
    """Fair-share analytic model vs. event-driven ideal pipelining."""
    streams_list = streams_list or [1, 2, 4, 8]
    cal = KernelCalibration.for_device(spec)
    result = ExperimentResult(
        name=f"Ablation: stream scheduling models, batch={batch}, {spec.name}",
        headers=["streams", "fair-share (img/s)", "event-driven ideal (img/s)",
                 "paper (img/s)"],
    )
    paper = {1: 24984, 2: 29459, 4: 37955, 8: 41546}
    for streams in streams_list:
        fair = plan_streams(spec, cal, streams, batch).throughput_images_per_s
        ideal = simulate_stream_pipeline(
            spec, cal, streams, n_batches, batch
        ).throughput_images_per_s
        result.rows.append(
            [streams, int(round(fair)), int(round(ideal)), paper.get(streams, "-")]
        )
    result.summary = {
        "ideal_saturates_by_2_streams": result.rows[1][2] / result.rows[-1][2] > 0.95,
    }
    result.notes.append(
        "perfect asynchrony would hit the PCIe bound with 2 streams; the "
        "paper's measured ramp (and our fair-share model) reflect the "
        "synchronous-issue CPU threads of the real implementation"
    )
    return result
