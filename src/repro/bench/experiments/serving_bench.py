"""Serving — dynamic batching throughput/latency sweep.

The paper reports per-query latency only; any production deployment of
its Fig. 6 architecture faces concurrent queries, and the win of the
fused multi-query sweep (one H2D staging + one wide GEMM per reference
batch for the whole group) only materialises if a serving layer
actually forms groups.  This experiment drives the
:mod:`repro.serving` event loop over burst arrival traces at offered
concurrency 1–8 and sweeps the batching policy (``max_batch`` ×
``max_wait_us``), reporting per cell:

* **img/s** — query-reference pairs compared per second of makespan;
* **p50/p95/p99 ms** — end-to-end request latency percentiles
  (queue wait + execution), nearest-rank;
* **mean group / occupancy** — how full the fused GEMMs ran.

``max_batch=1`` rows use the per-query serial executor — the paper's
implicit baseline — so the fused speedup is read directly off the
table.  Two extra rows push groups through the sharded cluster and the
full REST/load-balancer tier (``POST /search/batch``).  Results are
also written to ``BENCH_serving.json`` (deterministic: no timestamps,
seeded workload).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...distributed.cluster import DistributedSearchSystem
from ...distributed.loadbalancer import WebTier
from ...serving import (
    BatchPolicy,
    ClusterGroupExecutor,
    FusedEngineExecutor,
    SerialEngineExecutor,
    WebTierBatchExecutor,
    build_trace,
    burst_arrivals,
    simulate_serving,
)
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy

__all__ = ["run"]

#: inter-burst gap; short enough that the device (not the arrival
#: process) is the bottleneck at concurrency >= 2, so throughput
#: differences between policies are visible in the makespan.
_INTERVAL_US = 2_000.0


def _make_workload(
    n_refs: int, n_queries: int, seed: int, config: EngineConfig
) -> tuple[dict[str, np.ndarray], list[np.ndarray]]:
    rng = np.random.default_rng(seed)
    refs = {f"r{i}": _make_descriptors(rng, count=config.n, d=config.d)
            for i in range(n_refs)}
    ref_list = list(refs.values())
    queries = [
        _noisy(rng, ref_list[int(rng.integers(0, n_refs))])
        for _ in range(n_queries)
    ]
    return refs, queries


def _row(tier: str, concurrency: int, policy: BatchPolicy, report) -> list:
    pct = report.latency_percentiles()
    return [
        tier,
        concurrency,
        policy.max_batch,
        int(policy.max_wait_us),
        int(report.throughput_images_per_s),
        round(pct["p50"] / 1e3, 2),
        round(pct["p95"] / 1e3, 2),
        round(pct["p99"] / 1e3, 2),
        round(report.mean_group_size, 2),
        round(report.fused_occupancy, 2),
    ]


def run(
    quick: bool = False,
    json_path: str | Path = "BENCH_serving.json",
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    n_refs = 16
    n_bursts = 3 if quick else 6
    concurrencies = (1, 4) if quick else (1, 2, 4, 8)
    policies = (
        [(1, 0.0), (4, 2_000.0)]
        if quick
        else [(1, 0.0), (4, 2_000.0), (8, 2_000.0), (8, 8_000.0)]
    )

    max_queries = max(concurrencies) * n_bursts
    refs, queries = _make_workload(n_refs, max_queries, seed, config)

    engine = TextureSearchEngine(config)
    for ref_id, desc in refs.items():
        engine.add_reference(ref_id, desc)
    fused = FusedEngineExecutor(engine)
    serial = SerialEngineExecutor(engine)

    result = ExperimentResult(
        "Serving: dynamic batching throughput/latency sweep",
        ["tier", "conc", "max_batch", "wait_us", "img/s",
         "p50 ms", "p95 ms", "p99 ms", "grp", "occ"],
    )
    cells: list[dict] = []
    baseline_by_conc: dict[int, float] = {}
    best_fused_by_conc: dict[int, float] = {}
    for concurrency in concurrencies:
        arrivals = burst_arrivals(n_bursts, concurrency, _INTERVAL_US)
        trace = build_trace(arrivals, queries[: len(arrivals)])
        for max_batch, max_wait_us in policies:
            policy = BatchPolicy(max_batch=max_batch, max_wait_us=max_wait_us)
            executor = serial if max_batch == 1 else fused
            report = simulate_serving(executor, trace, policy)
            result.rows.append(_row("engine", concurrency, policy, report))
            cells.append(
                {"tier": "engine", "executor": executor.name,
                 "concurrency": concurrency, **report.to_dict()}
            )
            images_per_s = report.throughput_images_per_s
            if max_batch == 1:
                baseline_by_conc[concurrency] = images_per_s
            else:
                best_fused_by_conc[concurrency] = max(
                    best_fused_by_conc.get(concurrency, 0.0), images_per_s
                )

    # The same policy through the distributed tier: whole groups per
    # shard RPC, then through the REST front door (/search/batch).
    cluster_conc = 4
    cluster_policy = BatchPolicy(max_batch=4, max_wait_us=2_000.0)
    system = DistributedSearchSystem(4, config)
    for ref_id, desc in refs.items():
        system.add(ref_id, desc)
    tier = WebTier(system, n_workers=1)
    arrivals = burst_arrivals(n_bursts, cluster_conc, _INTERVAL_US)
    trace = build_trace(arrivals, queries[: len(arrivals)])
    for tier_name, executor in (
        ("cluster", ClusterGroupExecutor(system)),
        ("webtier", WebTierBatchExecutor(tier)),
    ):
        report = simulate_serving(executor, trace, cluster_policy)
        result.rows.append(_row(tier_name, cluster_conc, cluster_policy, report))
        cells.append(
            {"tier": tier_name, "executor": executor.name,
             "concurrency": cluster_conc, **report.to_dict()}
        )

    speedup_conc = 4 if 4 in baseline_by_conc else max(baseline_by_conc)
    fused_speedup = (
        best_fused_by_conc[speedup_conc] / baseline_by_conc[speedup_conc]
        if baseline_by_conc.get(speedup_conc) else 0.0
    )
    result.summary = {
        "fused_speedup_at_conc4": round(fused_speedup, 2),
        "baseline_images_per_s": int(baseline_by_conc[speedup_conc]),
        "best_fused_images_per_s": int(best_fused_by_conc[speedup_conc]),
    }
    result.notes.append(
        "max_batch=1 rows run the per-query serial executor (the baseline); "
        "fused rows share one cache sweep per group"
    )
    result.notes.append(
        f"bursts of <conc> queries every {int(_INTERVAL_US)}us; "
        "latency = queue wait + execution (nearest-rank percentiles)"
    )

    payload = {
        "experiment": "serving",
        "seed": seed,
        "quick": quick,
        "workload": {
            "n_refs": n_refs,
            "n_bursts": n_bursts,
            "interval_us": _INTERVAL_US,
            "engine": {"m": config.m, "n": config.n,
                       "batch_size": config.batch_size, "d": config.d},
        },
        "grid": cells,
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"full grid written to {json_path}")
    return result
