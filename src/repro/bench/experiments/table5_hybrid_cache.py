"""Table 5 — search speed by cache location (batch 1024, m = n = 768,
FP16, Tesla P100, PCIe Gen3 x16).

Paper: GPU memory 45,539 img/s; host memory w/o pinned 17,619; host
memory w/ pinned 25,362 — the PCIe link is the bottleneck (Sec. 6.1).
"""

from __future__ import annotations

from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ..chains import hybrid_speed
from ..tables import ExperimentResult

__all__ = ["run"]

_PAPER = {"GPU memory": 45539, "Host memory w/o pinned": 17619, "Host memory w/ pinned": 25362}


def run(
    spec: DeviceSpec = TESLA_P100,
    batch: int = 1024,
    m: int = 768,
    n: int = 768,
    d: int = 128,
) -> ExperimentResult:
    cal = KernelCalibration.for_device(spec)
    rows = [
        ("GPU memory", "gpu"),
        ("Host memory w/o pinned", "host-pageable"),
        ("Host memory w/ pinned", "host-pinned"),
    ]
    result = ExperimentResult(
        name=f"Table 5: hybrid cache speed, batch={batch}, m={m} n={n}, {spec.name}",
        headers=["Cache type", "Speed (images/s)", "paper (images/s)"],
    )
    speeds = {}
    for label, location in rows:
        speed = hybrid_speed(spec, cal, location, m, n, d, batch)
        speeds[label] = speed
        result.rows.append([label, int(round(speed)), _PAPER[label]])
    result.summary = {
        "pinned_drop": 1.0 - speeds["Host memory w/ pinned"] / speeds["GPU memory"],
        "pageable_vs_pinned": speeds["Host memory w/o pinned"] / speeds["Host memory w/ pinned"],
    }
    result.notes.append("paper: pinned drop 44.3%; pageable a further ~30% below pinned")
    return result
