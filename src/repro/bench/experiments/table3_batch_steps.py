"""Table 3 — per-step times at batch 1 vs. batch 1024 (Algorithm 2,
FP16, m = n = 768, Tesla P100; batch-1024 times normalised per image).
"""

from __future__ import annotations

from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ..chains import algorithm2_steps
from ..tables import ExperimentResult

__all__ = ["run"]

_STEP_ORDER = [
    "HGEMM/step1",
    "Sort and Sqrt/step2&3",
    "D2H memory copy/step4",
    "Post-processing/CPU",
]


def run(
    spec: DeviceSpec = TESLA_P100,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    small_batch: int = 1,
    large_batch: int = 1024,
) -> ExperimentResult:
    cal = KernelCalibration.for_device(spec)
    small = algorithm2_steps(spec, cal, m, n, d, small_batch, "fp16")
    large = algorithm2_steps(spec, cal, m, n, d, large_batch, "fp16")

    result = ExperimentResult(
        name=f"Table 3: batched Algorithm 2 step times (FP16, m={m} n={n}, {spec.name})",
        headers=["Execution step", f"BatchSize={small_batch} (us)",
                 f"BatchSize={large_batch} (us/img)"],
    )
    for step in _STEP_ORDER:
        result.rows.append(
            [step, round(small[step] / small_batch, 2), round(large[step] / large_batch, 2)]
        )
    small_total = sum(small.values()) / small_batch
    large_total = sum(large.values()) / large_batch
    result.rows.append(["Total time (us)", round(small_total, 2), round(large_total, 2)])
    result.rows.append(
        ["Speed (images/s)", int(round(1e6 / small_total)), int(round(1e6 / large_total))]
    )
    result.summary = {
        "hgemm_reduction": 1.0 - (large["HGEMM/step1"] / large_batch) / (small["HGEMM/step1"] / small_batch),
        "sort_reduction": 1.0
        - (large["Sort and Sqrt/step2&3"] / large_batch) / (small["Sort and Sqrt/step2&3"] / small_batch),
        "speedup": small_total / large_total,
    }
    result.notes.append(
        "paper: HGEMM 26.11 -> 11.58, sort 70.69 -> 3.82, D2H 60.15 -> 2.72, "
        "post 16.85 -> 3.85; total 173.8 -> 21.96 us (5,753 -> 45,539 img/s)"
    )
    return result
