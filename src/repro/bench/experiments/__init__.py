"""One experiment runner per paper table/figure (see DESIGN.md Sec. 4
for the experiment index)."""

from types import SimpleNamespace

from . import (
    ablations,
    backend_bench,
    device_sweep,
    fault_tolerance,
    fig1_waterfall,
    fig4_batching,
    observability,
    overload_bench,
    routing_bench,
    sec8_distributed,
    serving_bench,
    table1_cublas,
    table2_fp16,
    table3_batch_steps,
    table4_efficiency,
    table5_hybrid_cache,
    table6_streams,
    table7_asymmetric,
)

ALL_EXPERIMENTS = {
    "fig1": fig1_waterfall,
    "table1": table1_cublas,
    "table2": table2_fp16,
    "table3": table3_batch_steps,
    "fig4": fig4_batching,
    "table4": table4_efficiency,
    "table5": table5_hybrid_cache,
    "table6": table6_streams,
    "table7": table7_asymmetric,
    "sec8": sec8_distributed,
    "serving": serving_bench,
    "overload": overload_bench,
    "routing": routing_bench,
    "fault-tolerance": fault_tolerance,
    "observability": observability,
    "backends": backend_bench,
    # design-choice ablations (DESIGN.md Sec. 4)
    "ablation-sort": SimpleNamespace(run=ablations.run_sort_ablation),
    "ablation-query-batch": SimpleNamespace(run=ablations.run_query_batch_ablation),
    "ablation-cbir": SimpleNamespace(run=ablations.run_cbir_ablation),
    "ablation-streams": SimpleNamespace(run=ablations.run_stream_model_ablation),
    "ablation-verification": SimpleNamespace(run=ablations.run_verification_ablation),
    "ablation-lsh": SimpleNamespace(run=ablations.run_lsh_ablation),
    "device-sweep": device_sweep,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ablations",
    "backend_bench",
    "device_sweep",
    "fault_tolerance",
    "fig1_waterfall",
    "fig4_batching",
    "observability",
    "overload_bench",
    "routing_bench",
    "sec8_distributed",
    "serving_bench",
    "table1_cublas",
    "table2_fp16",
    "table3_batch_steps",
    "table4_efficiency",
    "table5_hybrid_cache",
    "table6_streams",
    "table7_asymmetric",
]
