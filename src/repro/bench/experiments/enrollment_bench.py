"""Enrollment — mixed search+enroll serving under epoched indexes.

The static-corpus benches load every reference before the first query;
any deployment of the paper's Fig. 6 architecture instead enrolls new
textures *while* serving searches.  This experiment drives one arrival
trace (equal offered load in every row) through the
:class:`~repro.serving.executors.MixedClusterExecutor` on a routed
(IVF) cluster, sweeping the fraction of requests that are online
enrollments, and reports per cell:

* **search p50/p99 ms** — end-to-end latency of the *search* requests
  only (queue wait + execution), nearest-rank;
* **enroll/s** — enrollment throughput over the makespan;
* **search recall@1** — searches for pre-loaded references that still
  return them (the routed index keeps working while it grows);
* **rw recall** — read-your-writes: every enrolled reference is probed
  by a later search, which must (a) return it as the best match and
  (b) carry a ``corpus_epoch`` for the acking shard at or past the
  ack's epoch.

The acceptance bar encoded in the summary: at every non-zero enroll
fraction, search p99 degrades by less than ``MAX_P99_DEGRADATION``
relative to the search-only row at the same offered load, and
read-your-writes recall is 1.0.  Results land in
``BENCH_enrollment.json`` (deterministic: seeded workload, simulated
clock, no timestamps).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ...core.config import EngineConfig
from ...distributed.cluster import DistributedSearchSystem
from ...routing import RouterPolicy
from ...serving import (
    BatchPolicy,
    MixedClusterExecutor,
    build_trace,
    percentile,
    poisson_arrivals,
    simulate_serving,
)
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy

__all__ = ["run"]

#: acceptance bar (ISSUE): search p99 under mixed traffic stays within
#: this relative degradation of the search-only baseline.
MAX_P99_DEGRADATION = 0.20

#: offered load: mean arrival rate of the (shared) Poisson trace.
_RATE_PER_S = 200.0


def _mutation_slots(n_total: int, n_mut: int) -> list[int]:
    """Evenly spaced request indices that become enrollments."""
    return sorted({int((k + 0.5) * n_total / n_mut) for k in range(n_mut)})


def _build_requests(
    rng: np.random.Generator,
    n_total: int,
    fraction: float,
    base_refs: dict[str, np.ndarray],
    config: EngineConfig,
) -> tuple[list, dict[int, str], dict[int, str], dict[int, str]]:
    """One request mix at the given enroll fraction.

    Returns ``(payloads, enroll_slot_to_ref, probe_slot_to_ref,
    search_slot_to_ref)``: every enrolled reference gets exactly one
    read-your-writes probe at a later search slot; the remaining
    search slots query pre-loaded references.
    """
    base_ids = list(base_refs)
    n_mut = int(round(fraction * n_total))
    mut_slots = _mutation_slots(n_total, n_mut) if n_mut else []
    enrolled: dict[int, str] = {}
    new_descs: dict[str, np.ndarray] = {}
    payloads: list = [None] * n_total
    for k, slot in enumerate(mut_slots):
        new_id = f"new{k:04d}"
        desc = _make_descriptors(rng, count=config.n, d=config.d)
        new_descs[new_id] = desc
        enrolled[slot] = new_id
        payloads[slot] = ("enroll", new_id, desc)

    # each enrollment claims the search slot ~3 requests later (or the
    # last free one) as its read-your-writes probe
    free = [i for i in range(n_total) if payloads[i] is None]
    probes: dict[int, str] = {}
    for slot, new_id in enrolled.items():
        later = [i for i in free if i > slot and i not in probes]
        if not later:
            continue
        probe = later[min(2, len(later) - 1)]
        probes[probe] = new_id
        payloads[probe] = _noisy(rng, new_descs[new_id])

    searches: dict[int, str] = {}
    for i in range(n_total):
        if payloads[i] is None:
            qid = base_ids[int(rng.integers(0, len(base_ids)))]
            searches[i] = qid
            payloads[i] = _noisy(rng, base_refs[qid])
    return payloads, enrolled, probes, searches


def run(
    quick: bool = False,
    json_path: str | Path = "BENCH_enrollment.json",
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    n_nodes = 4
    corpus = 48 if quick else 320
    n_total = 32 if quick else 80
    fractions = (0.0, 0.25) if quick else (0.0, 0.1, 0.25, 0.5)
    policy = BatchPolicy(max_batch=4, max_wait_us=2_000.0)

    rng = np.random.default_rng(seed)
    base_refs = {
        f"r{i:04d}": _make_descriptors(rng, count=config.n, d=config.d)
        for i in range(corpus)
    }
    # the SAME arrival times in every row: equal offered load, only the
    # request composition changes
    arrivals = poisson_arrivals(n_total, _RATE_PER_S, seed=seed + 1)

    result = ExperimentResult(
        "Enrollment: mixed search+enroll serving (epoched indexes)",
        ["enroll %", "searches", "enrolls", "p50 ms", "p99 ms",
         "enroll/s", "recall@1", "rw recall", "final epoch"],
    )
    cells: list[dict] = []
    baseline_p99 = None
    degradations: list[float] = []
    rw_recalls: list[float] = []

    for fraction in fractions:
        mix_rng = np.random.default_rng(seed + 17)
        payloads, enrolled, probes, searches = _build_requests(
            mix_rng, n_total, fraction, base_refs, config
        )
        router_policy = RouterPolicy(
            kind="ivf", n_lists=max(8, corpus // 10), seed=seed
        )
        system = DistributedSearchSystem(
            n_nodes=n_nodes, engine_config=config, router_policy=router_policy
        )
        for ref_id, desc in base_refs.items():
            system.add(ref_id, desc)
        system.build_router()

        executor = MixedClusterExecutor(system, nprobe=4)
        trace = build_trace(arrivals, payloads)
        report = simulate_serving(executor, trace, policy)
        records = {r.request_id: r for r in report.records}

        search_lat = [
            records[i].latency_us for i in records if i not in enrolled
        ]
        p50 = percentile(search_lat, 50)
        p99 = percentile(search_lat, 99)
        makespan_s = max(r.completed_us for r in report.records) / 1e6
        enroll_per_s = len(enrolled) / makespan_s if enrolled else 0.0

        hits = sum(
            1 for slot, qid in searches.items()
            if records[slot].result.best()
            and records[slot].result.best().reference_id == qid
        )
        recall = hits / len(searches) if searches else 0.0

        acks = {records[slot].result.ref_id: records[slot].result
                for slot in enrolled}
        rw_hits = 0
        for slot, new_id in probes.items():
            res = records[slot].result
            ack = acks[new_id]
            best = res.best()
            if (
                best is not None
                and best.reference_id == new_id
                and res.corpus_epoch.get(ack.node_id, -1) >= ack.epoch
            ):
                rw_hits += 1
        rw_recall = rw_hits / len(probes) if probes else 1.0

        final_epoch = max(system.epochs.snapshot().values(), default=0)
        if fraction == 0.0:
            baseline_p99 = p99
        else:
            degradations.append(p99 / baseline_p99 - 1.0)
            rw_recalls.append(rw_recall)

        result.rows.append([
            int(fraction * 100),
            len(searches) + len(probes),
            len(enrolled),
            round(p50 / 1e3, 2),
            round(p99 / 1e3, 2),
            round(enroll_per_s, 1),
            round(recall, 3),
            round(rw_recall, 3),
            final_epoch,
        ])
        cells.append({
            "enroll_fraction": fraction,
            "n_searches": len(searches) + len(probes),
            "n_enrolls": len(enrolled),
            "n_probes": len(probes),
            "search_p50_us": round(p50, 1),
            "search_p99_us": round(p99, 1),
            "enrolls_per_s": round(enroll_per_s, 3),
            "search_recall_at_1": round(recall, 4),
            "read_your_writes_recall": round(rw_recall, 4),
            "makespan_us": round(makespan_s * 1e6, 1),
            "max_shard_epoch": final_epoch,
            "mean_group_size": round(report.mean_group_size, 3),
        })

    worst_degradation = max(degradations) if degradations else 0.0
    passes = (
        worst_degradation < MAX_P99_DEGRADATION
        and all(r == 1.0 for r in rw_recalls)
    )
    result.summary = {
        "baseline_search_p99_us": round(baseline_p99, 1),
        "worst_p99_degradation": round(worst_degradation, 4),
        "degradation_bar": MAX_P99_DEGRADATION,
        "read_your_writes_recall_min": min(rw_recalls) if rw_recalls else 1.0,
        "meets_bar": passes,
    }
    result.notes.append(
        "every row replays the SAME Poisson arrival trace (equal offered "
        "load); only the search/enroll composition changes"
    )
    result.notes.append(
        "rw recall: each enrolled reference is probed by a later search, "
        "which must return it AND carry corpus_epoch >= its ack's epoch"
    )

    payload = {
        "experiment": "enrollment",
        "seed": seed,
        "quick": quick,
        "workload": {
            "n_nodes": n_nodes,
            "base_corpus": corpus,
            "n_requests": n_total,
            "rate_per_s": _RATE_PER_S,
            "fractions": list(fractions),
            "policy": {"max_batch": policy.max_batch,
                       "max_wait_us": policy.max_wait_us},
            "engine": {"m": config.m, "n": config.n,
                       "batch_size": config.batch_size, "d": config.d},
        },
        "grid": cells,
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"full grid written to {json_path}")
    return result
