"""Table 6 — multi-stream overlap (all references host-resident,
m = n = 768, Tesla P100).

Paper: batch 512 climbs 24,984 -> 41,546 img/s (52.5 % -> 87.3 %
schedule efficiency) from 1 to 8 streams; batch 256 similar; extra GPU
memory grows ~0.7 GB (batch 512) per stream; theoretical PCIe-bound
speed 47,592 img/s.
"""

from __future__ import annotations

from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ...pipeline.scheduler import plan_streams
from ..tables import ExperimentResult

__all__ = ["run", "DEFAULT_GRID"]

DEFAULT_GRID = [(512, 1), (512, 2), (512, 4), (512, 8), (256, 1), (256, 2), (256, 4), (256, 8)]


def run(
    spec: DeviceSpec = TESLA_P100,
    grid: list[tuple[int, int]] | None = None,
    m: int = 768,
    n: int = 768,
    d: int = 128,
) -> ExperimentResult:
    grid = grid if grid is not None else list(DEFAULT_GRID)
    cal = KernelCalibration.for_device(spec)
    result = ExperimentResult(
        name=f"Table 6: CPU threads / CUDA streams, m={m} n={n}, {spec.name}",
        headers=["BatchSize", "CUDA streams", "Extra GPU mem (GB)",
                 "Speed (images/s)", "Schedule efficiency"],
    )
    plans = {}
    for batch, streams in grid:
        plan = plan_streams(spec, cal, streams, batch, m, n, d, "fp16")
        plans[(batch, streams)] = plan
        result.rows.append(
            [
                batch,
                streams,
                round(plan.extra_gpu_bytes / 1e9, 3),
                int(round(plan.throughput_images_per_s)),
                f"{plan.schedule_efficiency:.1%}",
            ]
        )
    any_plan = next(iter(plans.values()))
    result.summary = {
        "theoretical_images_per_s": any_plan.theoretical_images_per_s,
    }
    if (512, 1) in plans and (512, 8) in plans:
        result.summary["b512_streams_gain"] = (
            plans[(512, 8)].throughput_images_per_s / plans[(512, 1)].throughput_images_per_s
        )
        result.summary["b512_s8_efficiency"] = plans[(512, 8)].schedule_efficiency
    result.notes.append(
        "paper: b512 speeds 24,984 / 29,459 / 37,955 / 41,546 (eff 52.5/61.9/79.8/87.3%); "
        "theoretical 47,592 img/s; extra mem 0.989 -> 5.819 GB"
    )
    return result
