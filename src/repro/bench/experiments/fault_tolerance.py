"""Fault tolerance — throughput and recall under injected failures.

The paper's Sec. 8 cluster assumes every container answers every query;
this experiment measures what the fault-tolerance layer preserves when
they don't.  A functional mini-cluster runs a fixed query workload
while a seeded :class:`~repro.distributed.FaultInjector` crashes
containers and injects transient errors at increasing rates.  Reported
per failure rate:

* **recall@1** — fraction of queries whose best match equals the
  no-fault baseline's (partial results can miss the true shard);
* **partial fraction** — queries answered with ``partial=True``;
* **mean throughput** — simulated images/s of the gather (retries,
  backoff and timeouts all charge simulated time);
* **failed-over containers** — nodes auto-decommissioned and
  re-hydrated from the KV store during the workload.

Everything is hash-seeded, so rows reproduce bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ...core.config import EngineConfig
from ...distributed.cluster import DistributedSearchSystem, RetryPolicy
from ...distributed.faults import FaultInjector, FaultSpec
from ..tables import ExperimentResult

__all__ = ["run"]


def _make_descriptors(rng: np.random.Generator, count: int = 32, d: int = 128) -> np.ndarray:
    desc = rng.gamma(0.6, 1.0, size=(d, count)).astype(np.float32)
    desc /= np.linalg.norm(desc, axis=0, keepdims=True)
    desc = np.minimum(desc, 0.2)
    desc /= np.linalg.norm(desc, axis=0, keepdims=True)
    return (desc * 512.0).astype(np.float32)


def _noisy(rng: np.random.Generator, desc: np.ndarray, sigma: float = 8.0) -> np.ndarray:
    out = np.maximum(desc + rng.normal(0, sigma, desc.shape).astype(np.float32), 0)
    norms = np.maximum(np.linalg.norm(out, axis=0, keepdims=True), 1e-9)
    return (out / norms * 512.0).astype(np.float32)


def run(
    n_nodes: int = 8,
    n_refs: int = 24,
    n_queries: int = 12,
    failure_rates: tuple = (0.0, 0.02, 0.05, 0.1, 0.2),
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=32, n=32, batch_size=2, min_matches=5, scale_factor=0.25)
    rng = np.random.default_rng(seed)
    refs = {i: _make_descriptors(rng) for i in range(n_refs)}
    query_ids = [int(i) for i in rng.integers(0, n_refs, size=n_queries)]
    queries = [_noisy(rng, refs[i]) for i in query_ids]

    # no-fault baseline answers (ground truth for recall@1)
    baseline_system = DistributedSearchSystem(n_nodes, config)
    for i, desc in refs.items():
        baseline_system.add(f"r{i}", desc)
    baseline_best = [baseline_system.search(q).best().reference_id for q in queries]

    result = ExperimentResult(
        "Fault tolerance: recall/throughput vs injected failure rate",
        ["failure rate", "recall@1", "partial frac", "mean img/s", "failed over", "retries"],
    )
    for rate in failure_rates:
        injector = FaultInjector(
            FaultSpec(crash_rate=rate / 4.0, transient_rate=rate), seed=seed
        )
        system = DistributedSearchSystem(
            n_nodes, config,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, backoff_us=500.0),
            min_shard_fraction=0.25,
        )
        for i, desc in refs.items():
            system.add(f"r{i}", desc)
        n_start = len(system.nodes)
        correct = partial = retries = 0
        throughputs = []
        for query, expected in zip(queries, baseline_best):
            answer = system.search(query)
            best = answer.best()
            correct += int(best is not None and best.reference_id == expected)
            partial += int(answer.partial)
            retries += answer.retries
            throughputs.append(answer.throughput_images_per_s)
        result.rows.append(
            [
                rate,
                round(correct / n_queries, 3),
                round(partial / n_queries, 3),
                int(np.mean(throughputs)),
                n_start - len(system.nodes),
                retries,
            ]
        )

    clean = result.row_by("failure rate", failure_rates[0])
    worst = result.rows[-1]
    result.summary = {
        "clean_recall": clean[1],
        "worst_rate_recall": worst[1],
        "clean_images_per_s": clean[3],
        "worst_rate_images_per_s": worst[3],
        "total_failed_over": sum(row[4] for row in result.rows),
    }
    result.notes.append(
        "crash rate is failure_rate/4 per node op; transient rate is failure_rate; "
        "crashed containers fail over automatically (KV re-hydration)"
    )
    return result
