"""Overload — goodput vs offered load, protected vs unprotected.

The serving bench measures the happy path; this experiment measures
the *sad* one.  Open-loop Poisson traffic is offered at multiples of
the engine's calibrated capacity, and two serving configurations run
the identical trace:

* **unprotected** — unbounded admission queue, no deadlines: the
  textbook metastable collapse.  Past saturation the queue grows with
  every arrival, p99 latency grows with the trace length, and goodput
  (requests answered within the SLO) falls toward zero even though
  the device never idles.
* **protected** — bounded queue (``max_queue_depth``) shedding
  ``reject-new`` with a ``retry_after_us`` hint, plus a per-request
  deadline at the SLO: excess load is refused in O(1) instead of
  queued, and goodput *plateaus* near capacity no matter how hard the
  trace pushes.

The acceptance bar encoded in the summary: at the highest offered
multiplier the protected goodput stays within 10 % of its peak across
all multipliers, while the unprotected p99 keeps growing with offered
load.  Results land in ``BENCH_overload.json`` (deterministic: seeded
workload, simulated clock, no timestamps).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...serving import (
    BatchPolicy,
    FusedEngineExecutor,
    build_trace,
    poisson_arrivals,
    simulate_serving,
)
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy

__all__ = ["run"]

#: SLO (and deadline) as a multiple of one full fused-group execution.
_SLO_GROUPS = 4.0

#: admission-queue bound for the protected configuration, in groups.
_QUEUE_GROUPS = 2


def _make_workload(
    n_refs: int, n_queries: int, seed: int, config: EngineConfig
) -> tuple[dict[str, np.ndarray], list[np.ndarray]]:
    rng = np.random.default_rng(seed)
    refs = {f"r{i}": _make_descriptors(rng, count=config.n, d=config.d)
            for i in range(n_refs)}
    ref_list = list(refs.values())
    queries = [
        _noisy(rng, ref_list[int(rng.integers(0, n_refs))])
        for _ in range(n_queries)
    ]
    return refs, queries


def _calibrate(executor, queries, max_batch: int) -> float:
    """One full fused group's execution time (µs) — the capacity unit."""
    _, elapsed_us = executor.execute(queries[:max_batch])
    return float(elapsed_us)


def run(
    quick: bool = False,
    json_path: str | Path = "BENCH_overload.json",
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    n_refs = 16
    max_batch = 8
    n_queries = 48 if quick else 160
    multipliers = (0.5, 1.0, 4.0) if quick else (0.5, 1.0, 2.0, 4.0)

    refs, queries = _make_workload(n_refs, n_queries, seed, config)
    engine = TextureSearchEngine(config)
    for ref_id, desc in refs.items():
        engine.add_reference(ref_id, desc)
    executor = FusedEngineExecutor(engine)

    # Capacity: one fused group of max_batch requests per group_us.
    group_us = _calibrate(executor, queries, max_batch)
    capacity_rps = max_batch / group_us * 1e6
    slo_us = _SLO_GROUPS * group_us

    unprotected = BatchPolicy(max_batch=max_batch, max_wait_us=0.0)
    protected = BatchPolicy(
        max_batch=max_batch,
        max_wait_us=0.0,
        max_queue_depth=_QUEUE_GROUPS * max_batch,
        shed="reject-new",
    )

    result = ExperimentResult(
        "Overload: goodput vs offered load (protected vs unprotected)",
        ["config", "offered x", "offered rps", "good rps", "shed %",
         "p99 ms", "n_good", "n_shed"],
    )
    cells: list[dict] = []
    goodput_protected: dict[float, float] = {}
    p99_unprotected: dict[float, float] = {}
    for multiplier in multipliers:
        rate = capacity_rps * multiplier
        arrivals = poisson_arrivals(n_queries, rate, seed=seed + int(multiplier * 10))
        for label, policy, deadline_us in (
            ("unprotected", unprotected, None),
            ("protected", protected, slo_us),
        ):
            trace = build_trace(arrivals, queries, deadline_us=deadline_us)
            report = simulate_serving(executor, trace, policy)
            # goodput counts SLO-meeting completions even when the run
            # carried no explicit deadline (the unprotected baseline)
            n_good = sum(
                1 for r in report.records
                if r.latency_us <= slo_us
            )
            span_s = report.makespan_us / 1e6
            goodput = n_good / span_s if span_s > 0 else 0.0
            p99 = report.latency_percentiles()["p99"]
            if label == "protected":
                goodput_protected[multiplier] = goodput
            else:
                p99_unprotected[multiplier] = p99
            result.rows.append([
                label,
                multiplier,
                int(rate),
                int(goodput),
                round(report.shed_rate * 100, 1),
                round(p99 / 1e3, 2),
                n_good,
                report.n_rejected,
            ])
            cells.append({
                "config": label,
                "offered_multiplier": multiplier,
                "offered_rps": round(rate, 3),
                "goodput_rps": round(goodput, 3),
                "n_good": n_good,
                "slo_us": round(slo_us, 3),
                **report.to_dict(),
            })

    peak = max(goodput_protected.values())
    worst_multiplier = max(goodput_protected)
    at_overload = goodput_protected[worst_multiplier]
    plateau_ratio = at_overload / peak if peak > 0 else 0.0
    p99_growth = (
        p99_unprotected[max(p99_unprotected)] / p99_unprotected[min(p99_unprotected)]
        if p99_unprotected.get(min(p99_unprotected)) else 0.0
    )
    result.summary = {
        "capacity_rps": round(capacity_rps, 1),
        "slo_us": round(slo_us, 1),
        "protected_peak_goodput_rps": round(peak, 1),
        "protected_goodput_at_max_load_rps": round(at_overload, 1),
        "goodput_plateau_ratio": round(plateau_ratio, 3),
        "goodput_plateaus": plateau_ratio >= 0.9,
        "unprotected_p99_growth_x": round(p99_growth, 2),
    }
    result.notes.append(
        f"capacity calibrated at {capacity_rps:.0f} rps "
        f"(one {max_batch}-query fused group per {group_us:.0f}us); "
        f"SLO/deadline = {_SLO_GROUPS:g} group times"
    )
    result.notes.append(
        "protected = bounded queue (reject-new) + per-request deadline; "
        "goodput = SLO-meeting completions per second of makespan"
    )

    payload = {
        "experiment": "overload",
        "seed": seed,
        "quick": quick,
        "workload": {
            "n_refs": n_refs,
            "n_queries": n_queries,
            "max_batch": max_batch,
            "queue_depth": _QUEUE_GROUPS * max_batch,
            "multipliers": list(multipliers),
            "engine": {"m": config.m, "n": config.n,
                       "batch_size": config.batch_size, "d": config.d},
        },
        "grid": cells,
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"full grid written to {json_path}")
    return result
