"""Routing — recall vs sweep reduction for two-tier retrieval.

The routing tier (:mod:`repro.routing`) puts a coarse candidate router
in front of the exhaustive per-image matcher: pooled per-image
descriptors nominate a candidate set, and only the shards (and cached
batches) holding nominees are swept.  This experiment measures the
trade that tier buys:

* **recall@1 vs exhaustive** — how often the routed search's best
  match agrees with the exhaustive scatter-gather's best match;
* **sweep reduction** — exhaustive references swept divided by routed
  references swept (the batches the router let the engines skip never
  pay H2D staging or kernel time);
* **router overhead** — host wall-clock µs per nomination, read back
  from the ``repro_router_overhead_us`` histogram.

Both router kinds run the same grid (IVF coarse centroids and LSH
banding), with ``nprobe`` widening the candidate set from "cheapest"
to "probe everything".  At full ``nprobe`` the IVF candidate set
covers the whole corpus, and the bench asserts the routed results are
**bit-identical** to the router-less cluster's — routing degenerates
to exhaustive search, it never forks it.

The acceptance bar encoded in the summary: on the largest benched
corpus the IVF router reaches >= 5x sweep reduction while keeping
recall@1 vs exhaustive >= 0.95.  Results land in
``BENCH_routing.json`` (deterministic: seeded workload, simulated
clock, no timestamps).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ...core.config import EngineConfig
from ...distributed.cluster import DistributedSearchSystem
from ...routing import RouterPolicy
from ...routing.router import _OVERHEAD_US
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy

__all__ = ["run"]

#: acceptance bar (ISSUE): on the largest corpus, >= MIN_REDUCTION x
#: fewer references swept while agreeing with exhaustive top-1 on at
#: least MIN_RECALL of the queries.
MIN_REDUCTION = 5.0
MIN_RECALL = 0.95


def _build_cluster(
    refs: dict[str, np.ndarray],
    config: EngineConfig,
    n_nodes: int,
    policy: RouterPolicy | None,
) -> DistributedSearchSystem:
    system = DistributedSearchSystem(
        n_nodes=n_nodes, engine_config=config, router_policy=policy
    )
    for ref_id, desc in refs.items():
        system.add(ref_id, desc)
    return system


def _match_key(result) -> list[tuple]:
    """Canonical, order-independent view of a result's matches for the
    bit-identity check (score/good_matches are exact floats/ints)."""
    return sorted(
        (m.reference_id, m.score, m.good_matches) for m in result.matches
    )


def _overhead_snapshot(kind: str) -> tuple[float, int]:
    child = _OVERHEAD_US.labels(kind=kind)
    return float(child.sum), int(child.count)


def run(
    quick: bool = False,
    json_path: str | Path = "BENCH_routing.json",
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    n_nodes = 6
    corpus_sizes = (96,) if quick else (192, 480)
    n_queries = 12 if quick else 24
    nprobes = (1, 2, 4)

    result = ExperimentResult(
        "Routing: recall vs sweep reduction (two-tier retrieval)",
        ["corpus", "router", "nprobe", "recall@1", "swept/query",
         "pruned/query", "reduction x", "overhead us"],
    )
    cells: list[dict] = []
    largest = max(corpus_sizes)
    acceptance: dict[str, float | bool] = {}
    identity_ok = True

    rng = np.random.default_rng(seed)
    for corpus in corpus_sizes:
        refs = {
            f"r{i:04d}": _make_descriptors(rng, count=config.n, d=config.d)
            for i in range(corpus)
        }
        query_ids = [f"r{int(i):04d}" for i in rng.integers(0, corpus, size=n_queries)]
        queries = [_noisy(rng, refs[qid]) for qid in query_ids]

        # Router-less baseline: the pre-routing exhaustive scatter-gather.
        exhaustive = _build_cluster(refs, config, n_nodes, None)
        base_results = [exhaustive.search(q) for q in queries]
        base_top = [r.best().reference_id if r.best() else None for r in base_results]
        base_swept = sum(r.images_searched for r in base_results)
        gt_recall = sum(
            1 for qid, top in zip(query_ids, base_top) if top == qid
        ) / n_queries

        n_lists = max(8, corpus // 10)
        policies = {
            "ivf": RouterPolicy(kind="ivf", n_lists=n_lists, seed=seed),
            "lsh": RouterPolicy(kind="lsh", seed=seed),
        }
        for kind, policy in policies.items():
            routed = _build_cluster(refs, config, n_nodes, policy)
            probe_grid = list(nprobes)
            if kind == "ivf" and n_lists not in probe_grid:
                probe_grid.append(n_lists)  # full probe = exhaustive coverage
            for nprobe in probe_grid:
                over_sum0, over_n0 = _overhead_snapshot(kind)
                routed_results = [routed.search(q, nprobe=nprobe) for q in queries]
                over_sum1, over_n1 = _overhead_snapshot(kind)
                swept = sum(r.images_searched for r in routed_results)
                pruned = sum(r.images_pruned for r in routed_results)
                agree = sum(
                    1
                    for r, top in zip(routed_results, base_top)
                    if (r.best().reference_id if r.best() else None) == top
                )
                recall = agree / n_queries
                reduction = base_swept / swept if swept else float("inf")
                overhead_us = (
                    (over_sum1 - over_sum0) / (over_n1 - over_n0)
                    if over_n1 > over_n0
                    else 0.0
                )
                full_probe = kind == "ivf" and nprobe >= n_lists
                if full_probe:
                    # full-width probe must degenerate to the exhaustive
                    # path bit-for-bit (same matches, same scores)
                    identical = all(
                        _match_key(r) == _match_key(b)
                        for r, b in zip(routed_results, base_results)
                    )
                    identity_ok = identity_ok and identical
                result.rows.append([
                    corpus,
                    kind,
                    nprobe,
                    round(recall, 3),
                    round(swept / n_queries, 1),
                    round(pruned / n_queries, 1),
                    round(reduction, 2),
                    round(overhead_us, 1),
                ])
                cells.append({
                    "corpus": corpus,
                    "router": kind,
                    "nprobe": nprobe,
                    "n_lists": n_lists if kind == "ivf" else None,
                    "recall_at_1_vs_exhaustive": round(recall, 4),
                    "recall_at_1_ground_truth_exhaustive": round(gt_recall, 4),
                    "images_swept_per_query": round(swept / n_queries, 3),
                    "images_pruned_per_query": round(pruned / n_queries, 3),
                    "sweep_reduction_x": round(reduction, 3),
                    "router_overhead_us_per_query": round(overhead_us, 3),
                    "full_probe": full_probe,
                    "partials": sum(1 for r in routed_results if r.partial),
                })
                if (
                    corpus == largest
                    and kind == "ivf"
                    and not full_probe
                    and recall >= MIN_RECALL
                    and reduction > acceptance.get("sweep_reduction_x", 0.0)
                ):
                    acceptance = {
                        "nprobe": nprobe,
                        "recall_at_1_vs_exhaustive": round(recall, 4),
                        "sweep_reduction_x": round(reduction, 3),
                    }

    passes = bool(acceptance) and acceptance["sweep_reduction_x"] >= MIN_REDUCTION
    result.summary = {
        "largest_corpus": largest,
        "router_off_bit_identical_at_full_probe": identity_ok,
        "best_operating_point": acceptance or None,
        "meets_reduction_bar": passes,
        "reduction_bar_x": MIN_REDUCTION,
        "recall_bar": MIN_RECALL,
    }
    result.notes.append(
        "reduction = exhaustive references swept / routed references swept; "
        "pruned batches never pay H2D or kernel time"
    )
    result.notes.append(
        "router overhead is host wall-clock (perf_counter), not simulated "
        "GPU time — nomination runs on the CPU in front of the scatter"
    )

    payload = {
        "experiment": "routing",
        "seed": seed,
        "quick": quick,
        "workload": {
            "n_nodes": n_nodes,
            "corpus_sizes": list(corpus_sizes),
            "n_queries": n_queries,
            "nprobes": list(nprobes),
            "engine": {"m": config.m, "n": config.n,
                       "batch_size": config.batch_size, "d": config.d},
        },
        "grid": cells,
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"full grid written to {json_path}")
    return result
