"""Observability — instrumentation overhead on the hot sweep path.

The metrics registry and the request tracer sit directly on the
engine's cache-sweep loop — the code path every other experiment
times.  This experiment quantifies what they cost: the same fused
``search_group`` sweep is wall-clock timed with instrumentation

* **off** — registry disabled, tracer disabled (one boolean check per
  instrument site: the price every uninstrumented run pays);
* **metrics** — registry counters/histograms live, tracer off;
* **full** — registry live, request tracer recording spans, and a
  :class:`~repro.gpusim.tracing.TimelineTracer` attached to the
  device (every ``submit`` wrapped).

Each mode reports the *minimum* per-sweep wall-clock over several
repeats (minimum, not mean: the floor is the intrinsic cost; the
spread is scheduler noise).  The acceptance bar for the observability
layer is **full-mode overhead < 5%** relative to off.

Results go to ``BENCH_observability.json``.  Simulated time is
identical across modes by construction — instrumentation never touches
the device clock — and the experiment asserts that.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...gpusim import TimelineTracer
from ...obs import default_registry, default_tracer
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy

__all__ = ["run"]


def _time_sweeps(engine, queries, repeats: int) -> tuple[float, float]:
    """Min wall-clock seconds per fused sweep, and the (simulated)
    elapsed_us of the last sweep for the cross-mode invariance check."""
    best = float("inf")
    sim_us = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        group = engine.search_group(queries)
        best = min(best, time.perf_counter() - start)
        sim_us = group.elapsed_us
    return best, sim_us


def run(
    n_refs: int = 48,
    group_size: int = 8,
    repeats: int = 7,
    json_path: str | Path = "BENCH_observability.json",
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=64, n=128, batch_size=8, min_matches=5, scale_factor=0.25)
    rng = np.random.default_rng(seed)
    refs = {
        f"r{i}": _make_descriptors(rng, count=config.n, d=config.d)
        for i in range(n_refs)
    }
    ref_list = list(refs.values())
    queries = [
        _noisy(rng, ref_list[int(rng.integers(0, n_refs))])
        for _ in range(group_size)
    ]

    engine = TextureSearchEngine(config)
    for ref_id, desc in refs.items():
        engine.add_reference(ref_id, desc)

    registry = default_registry()
    tracer = default_tracer()
    timeline = TimelineTracer()
    was_enabled = registry.enabled
    was_tracing = tracer.enabled

    timings: dict[str, float] = {}
    sim: dict[str, float] = {}
    try:
        # warm up caches/allocator before any timed mode
        engine.search_group(queries)

        registry.disable()
        tracer.disable()
        timings["off"], sim["off"] = _time_sweeps(engine, queries, repeats)

        registry.enable()
        timings["metrics"], sim["metrics"] = _time_sweeps(engine, queries, repeats)

        tracer.enable()
        with timeline.attached(engine.device):
            timings["full"], sim["full"] = _time_sweeps(engine, queries, repeats)
        tracer.disable()
        spans_per_sweep = len(tracer.spans) // repeats
        events_recorded = len(timeline.events)
    finally:
        registry.enabled = was_enabled
        tracer.enabled = was_tracing

    # the device clock's absolute value grows across repeats, so the
    # end-start subtraction loses trailing ULPs between modes — compare
    # with a relative tolerance, not exact equality
    if not all(
        math.isclose(value, sim["off"], rel_tol=1e-9)
        for value in sim.values()
    ):
        raise RuntimeError(
            f"instrumentation changed simulated time: {sim}"
        )

    def _pct(mode: str) -> float:
        return (timings[mode] / timings["off"] - 1.0) * 100.0

    result = ExperimentResult(
        "Observability: instrumentation overhead on the fused sweep",
        ["mode", "sweep ms", "overhead %"],
    )
    for mode in ("off", "metrics", "full"):
        result.rows.append(
            [mode, round(timings[mode] * 1e3, 3), round(_pct(mode), 2)]
        )
    overhead = _pct("full")
    result.summary = {
        "overhead_pct": round(overhead, 2),
        "within_budget": overhead < 5.0,
        "budget_pct": 5.0,
        "spans_per_sweep": spans_per_sweep,
        "timeline_events": events_recorded,
        "sim_elapsed_us": round(sim["full"], 1),
    }
    result.notes.append(
        f"min of {repeats} repeats; {n_refs} refs x {group_size}-query fused "
        f"group, batch_size={config.batch_size}"
    )
    result.notes.append(
        "full = labeled metrics + request spans + TimelineTracer on "
        "device.submit; simulated elapsed_us identical across modes"
    )

    payload = {
        "experiment": "observability",
        "seed": seed,
        "workload": {
            "n_refs": n_refs,
            "group_size": group_size,
            "repeats": repeats,
            "engine": {"m": config.m, "n": config.n,
                       "batch_size": config.batch_size, "d": config.d},
        },
        "sweep_ms": {k: round(v * 1e3, 3) for k, v in timings.items()},
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"timings written to {json_path}")
    return result
