"""Table 2 — compression error and search accuracy vs. FP16 scale factor.

The paper samples 1,000 reference/query image pairs for the error metric
(Eq. 2) and measures top-1 search accuracy at m = n = 768 with raw SIFT
features (Algorithm 1 path, where overflow is governed by the 512-norm
convention: scale >= 2^-1 overflows, 2^-2 .. 2^-12 is the plateau).

We run the same protocol on the synthetic feature model, at a scale
configurable for runtime (defaults keep the benchmark minutes-fast).
"""

from __future__ import annotations

import numpy as np

from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...data.dataset import build_feature_dataset
from ...data.synthetic_features import SyntheticFeatureModel
from ...errors import HalfPrecisionOverflowError
from ...fp16.error import compression_error
from ...gpusim.device import TESLA_P100
from ...gpusim.engine_model import GPUDevice
from ...metrics.accuracy import evaluate_top1
from ..tables import ExperimentResult

__all__ = ["run", "DEFAULT_SCALES"]

DEFAULT_SCALES = [1.0, 2.0**-1, 2.0**-2, 2.0**-7, 2.0**-12, 2.0**-14, 2.0**-16]
_SCALE_LABELS = {
    1.0: "1",
    2.0**-1: "2^-1",
    2.0**-2: "2^-2",
    2.0**-7: "2^-7",
    2.0**-12: "2^-12",
    2.0**-14: "2^-14",
    2.0**-16: "2^-16",
}


def _accuracy_at(
    scales: list[float],
    n_bricks: int,
    m: int,
    n: int,
    seed: int,
) -> tuple[dict[float, str], float]:
    """Top-1 accuracy per scale (or "overflow") and the FP32 baseline."""
    dataset = build_feature_dataset(n_bricks, m, n, queries_per_brick=1, seed=seed)

    def evaluate(precision: str, scale: float) -> float:
        config = EngineConfig(
            m=m, n=n, precision=precision, scale_factor=scale,
            use_rootsift=False, batch_size=64, sort_kind="scan",
        )
        engine = TextureSearchEngine(config, device=GPUDevice(TESLA_P100))
        return evaluate_top1(engine, dataset).top1_accuracy

    baseline = evaluate("fp32", 1.0)
    results: dict[float, str] = {}
    for scale in scales:
        try:
            results[scale] = f"{evaluate('fp16', scale):.2%}"
        except HalfPrecisionOverflowError:
            results[scale] = "overflow"
    return results, baseline


def run(
    scales: list[float] | None = None,
    n_pairs: int = 12,
    n_bricks: int = 30,
    m: int = 768,
    n: int = 768,
    seed: int = 0,
    with_accuracy: bool = True,
) -> ExperimentResult:
    scales = scales if scales is not None else list(DEFAULT_SCALES)
    model = SyntheticFeatureModel(seed=seed)

    # Eq. 2 over same-brick reference/query pairs (the matching case).
    errors: dict[float, str] = {scale: "" for scale in scales}
    for scale in scales:
        per_pair = []
        try:
            for brick in range(n_pairs):
                ref = model.capture(brick, "reference").top(m).descriptors
                qry = model.capture(brick, "query").top(n).descriptors
                per_pair.append(compression_error(ref, qry, scale))
            errors[scale] = f"{float(np.mean(per_pair)):.4%}"
        except HalfPrecisionOverflowError:
            errors[scale] = "overflow"

    if with_accuracy:
        accuracy, fp32_acc = _accuracy_at(scales, n_bricks, m, n, seed)
    else:
        accuracy, fp32_acc = {s: "-" for s in scales}, float("nan")

    result = ExperimentResult(
        name=f"Table 2: FP16 compression error & accuracy vs scale factor "
        f"(m={m}, n={n}, {n_pairs} pairs, {n_bricks} bricks)",
        headers=["scale factor", "avg compression error", "top-1 accuracy"],
    )
    for scale in scales:
        label = _SCALE_LABELS.get(scale, f"{scale:g}")
        result.rows.append([label, errors[scale], accuracy[scale]])
    result.summary = {
        "fp32_accuracy": fp32_acc,
        "n_overflow_scales": sum(1 for s in scales if errors[s] == "overflow"),
    }
    result.notes.append(
        "paper: overflow at scale >= 2^-1; 0.1026% error plateau over "
        "2^-2..2^-12; accuracy 98.58% on the plateau, 98.31% at 2^-14/2^-16"
    )
    return result
