"""Table 1 — cuBLAS implementation performance (m = n = 768, d = 128,
Tesla P100, 10,000 cached reference matrices).

Columns: OpenCV CUDA baseline, Garcia et al. cuBLAS with insertion
sort, ours (register top-2 scan), ours + FP16.
"""

from __future__ import annotations

from ...baselines.cublas_garcia import garcia_memory_bytes
from ...baselines.opencv_cuda import opencv_memory_bytes, opencv_search_time_us
from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ...gpusim.engine_model import GPUDevice
from ..chains import algorithm1_steps
from ..tables import ExperimentResult

__all__ = ["run"]

PAPER_SPEEDS = {"CUDA (OpenCV)": 2012, "cuBLAS [9]": 3027, "cuBLAS (ours)": 6734, "cuBLAS+FP16 (ours)": 5917}
_STEP_ORDER = [
    "GEMM/step3",
    "Add N_R/step4",
    "Top-2 sort/step5",
    "Add N_Q and Sqrt/step6&7",
    "D2H copy/step8",
    "Post-processing/CPU",
]


def run(
    spec: DeviceSpec = TESLA_P100,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    cached_references: int = 10_000,
) -> ExperimentResult:
    cal = KernelCalibration.for_device(spec)
    device = GPUDevice(spec, cal)

    columns: dict[str, dict[str, float]] = {
        "cuBLAS [9]": algorithm1_steps(spec, cal, m, n, d, "fp32", "insertion"),
        "cuBLAS (ours)": algorithm1_steps(spec, cal, m, n, d, "fp32", "scan"),
        "cuBLAS+FP16 (ours)": algorithm1_steps(spec, cal, m, n, d, "fp16", "scan"),
    }
    opencv_total = opencv_search_time_us(device, m, n, d)
    totals = {"CUDA (OpenCV)": opencv_total}
    totals.update({name: sum(steps.values()) for name, steps in columns.items()})
    speeds = {name: 1e6 / total for name, total in totals.items()}
    memory_mb = {
        "CUDA (OpenCV)": opencv_memory_bytes(cached_references, m, d) / 1e6,
        "cuBLAS [9]": garcia_memory_bytes(cached_references, m, d, "fp32") / 1e6,
        "cuBLAS (ours)": garcia_memory_bytes(cached_references, m, d, "fp32") / 1e6,
        "cuBLAS+FP16 (ours)": garcia_memory_bytes(cached_references, m, d, "fp16") / 1e6,
    }

    names = list(totals.keys())
    result = ExperimentResult(
        name=f"Table 1: cuBLAS 2-NN pipeline, m={m} n={n} d={d}, {spec.name}",
        headers=["Execution step"] + names,
    )
    for step in _STEP_ORDER:
        result.rows.append(
            [step] + ["-" if name == "CUDA (OpenCV)" else round(columns[name][step], 2) for name in names]
        )
    result.rows.append(["Total time (us)"] + [round(totals[n_], 1) for n_ in names])
    result.rows.append(["Speed (images/s)"] + [int(round(speeds[n_])) for n_ in names])
    result.rows.append(["GPU memory (MB)"] + [int(round(memory_mb[n_])) for n_ in names])

    result.summary = {
        "scan_vs_insertion_sort_reduction": 1.0
        - columns["cuBLAS (ours)"]["Top-2 sort/step5"] / columns["cuBLAS [9]"]["Top-2 sort/step5"],
        "ours_vs_opencv_speedup": speeds["cuBLAS (ours)"] / speeds["CUDA (OpenCV)"],
        "fp16_memory_saving": 1.0 - memory_mb["cuBLAS+FP16 (ours)"] / memory_mb["cuBLAS (ours)"],
    }
    result.notes.append(
        "paper speeds: "
        + ", ".join(f"{k}={v}" for k, v in PAPER_SPEEDS.items())
    )
    return result
