"""Table 4 — GPU efficiency (Eq. 3) at batch 1024.

Paper: P100 45,539 img/s = 6.69 achieved TFLOPS = 35.8 % of 18.7;
V100 67,612 = 35.5 % of 28; V100 + tensor cores 86,519 = 11.4 % of 112.
HGEMM-only efficiency reaches 67.9 % / 65.7 % (Sec. 5.3).
"""

from __future__ import annotations

from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, TESLA_V100
from ...gpusim.kernels import gemm_us
from ...metrics.throughput import gemm_flops_per_image, gpu_efficiency
from ..chains import algorithm2_steps, chain_speed
from ..tables import ExperimentResult

__all__ = ["run"]


def run(batch: int = 1024, m: int = 768, n: int = 768, d: int = 128) -> ExperimentResult:
    configs = [
        ("Tesla P100 card", TESLA_P100, False),
        ("Tesla V100 card w/o Tensor Core", TESLA_V100, False),
        ("Tesla V100 card w/ Tensor Core", TESLA_V100, True),
    ]
    result = ExperimentResult(
        name=f"Table 4: GPU efficiency, m={m} n={n} d={d}, batch={batch}",
        headers=["GPU type", "Speed (img/s)", "Achieved TFLOPS",
                 "Theoretical TFLOPS (FP16)", "Efficiency", "HGEMM-only eff."],
    )
    for label, spec, tc in configs:
        cal = KernelCalibration.for_device(spec)
        steps = algorithm2_steps(spec, cal, m, n, d, batch, "fp16", tc)
        speed = chain_speed(steps, batch)
        report = gpu_efficiency(spec, speed, m, n, d, "fp16", tc)
        hgemm_time = gemm_us(spec, cal, m, n, d, batch, "fp16", tc)
        hgemm_eff = (
            gemm_flops_per_image(m, n, d) * batch / (hgemm_time * 1e-6)
        ) / (spec.peak_tflops("fp16", tc) * 1e12)
        result.rows.append(
            [
                label,
                int(round(speed)),
                round(report.achieved_tflops, 2),
                report.theoretical_tflops,
                f"{report.efficiency:.1%}",
                f"{hgemm_eff:.1%}",
            ]
        )
        result.summary[label] = report.efficiency
    result.notes.append(
        "paper: 35.8% / 35.5% / 11.4% whole-pipeline; 67.9% / 65.7% HGEMM-only"
    )
    return result
