"""Figure 1 — cumulative effect of the four optimization strategies.

The paper's headline: starting from the OpenCV CUDA baseline on one
P100 (16 GB GPU + 64 GB host), the four contributions stack up to
"20x larger capacity and 31x faster speed".  This experiment applies
them cumulatively and reports capacity (cacheable reference matrices)
and speed (image comparisons/s) after each stage.
"""

from __future__ import annotations

from ...baselines.opencv_cuda import opencv_search_time_us
from ...cache.capacity import plan_capacity
from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ...gpusim.engine_model import GPUDevice
from ...pipeline.scheduler import plan_streams
from ..chains import algorithm1_steps, algorithm2_steps, chain_speed
from ..tables import ExperimentResult

__all__ = ["run"]

GIB = 1024**3


def run(
    spec: DeviceSpec = TESLA_P100,
    host_cache_bytes: int = 64 * 10**9,
    d: int = 128,
) -> ExperimentResult:
    cal = KernelCalibration.for_device(spec)
    device = GPUDevice(spec, cal)

    def capacity(m: int, precision: str, with_norms: bool, host: int) -> int:
        plan = plan_capacity(
            m=m, d=d, precision=precision, with_norms=with_norms,
            gpu_mem_bytes=spec.mem_bytes, host_cache_bytes=host,
        )
        return plan.total_images

    stages: list[tuple[str, float, int]] = []

    # Stage 0: OpenCV CUDA baseline — FP32, GPU-resident only.
    stages.append((
        "baseline: OpenCV CUDA (FP32)",
        1e6 / opencv_search_time_us(device, 768, 768, d),
        capacity(768, "fp32", False, 0),
    ))
    # Stage 1: + cuBLAS Algorithm 1 with register top-2 scan (FP32).
    stages.append((
        "+ cuBLAS 2-NN (top-2 scan)",
        chain_speed(algorithm1_steps(spec, cal, 768, 768, d, "fp32", "scan")),
        capacity(768, "fp32", True, 0),
    ))
    # Stage 2: + FP16 storage (halves footprint; batch-1 speed dips).
    stages.append((
        "+ FP16 (scale factor)",
        chain_speed(algorithm1_steps(spec, cal, 768, 768, d, "fp16", "scan")),
        capacity(768, "fp16", True, 0),
    ))
    # Stage 3: + RootSIFT + batching (batch 1024, GPU-resident).
    stages.append((
        "+ RootSIFT + batching (1024)",
        chain_speed(algorithm2_steps(spec, cal, 768, 768, d, 1024, "fp16"), 1024),
        capacity(768, "fp16", False, 0),
    ))
    # Stage 4: + hybrid cache with 8 streams (references on host).
    plan8 = plan_streams(spec, cal, 8, 512, 768, 768, d, "fp16")
    stages.append((
        "+ hybrid cache + 8 streams",
        plan8.throughput_images_per_s,
        capacity(768, "fp16", False, host_cache_bytes),
    ))
    # Stage 5: + asymmetric extraction m=384 (transfer halves; the
    # pipeline becomes compute-bound, so GPU-resident speed applies).
    asym_speed = chain_speed(algorithm2_steps(spec, cal, 384, 768, d, 256, "fp16"), 256)
    plan_asym = plan_streams(spec, cal, 8, 512, 384, 768, d, "fp16")
    stages.append((
        "+ asymmetric m=384, n=768",
        min(asym_speed, plan_asym.theoretical_images_per_s),
        capacity(384, "fp16", False, host_cache_bytes),
    ))

    base_speed, base_cap = stages[0][1], stages[0][2]
    result = ExperimentResult(
        name=f"Fig. 1: optimization waterfall ({spec.name}, 16 GB GPU + "
        f"{host_cache_bytes/1e9:.0f} GB host)",
        headers=["stage", "speed (img/s)", "speedup", "capacity (images)", "capacity gain"],
    )
    for label, speed, cap in stages:
        result.rows.append(
            [label, int(round(speed)), f"{speed/base_speed:.1f}x", cap, f"{cap/base_cap:.1f}x"]
        )
    result.summary = {
        "final_speedup": stages[-1][1] / base_speed,
        "final_capacity_gain": stages[-1][2] / base_cap,
    }
    result.notes.append("paper: 31x faster search, 20x larger feature cache capacity")
    return result
