"""Section 8 — the distributed texture search system.

Paper: 14 Tesla P100 containers, each with 4 GB reserved of its 16 GB
card and 64 GB host memory (76 GB hybrid cache/container, 1,064 GB
total), caching 10.8 M reference matrices (m=384, FP16) and searching
872,984 images/s — million-scale search in ~1.15 s.

Two parts:

* **capacity/throughput arithmetic** at the paper's full scale, from
  the calibrated models (no functional compute needed);
* a **functional mini-cluster** (scaled-down descriptors) that actually
  enrols, shards, serialises and answers a search through the REST API,
  verifying the machinery end-to-end.
"""

from __future__ import annotations

import numpy as np

from ...cache.capacity import feature_matrix_bytes, plan_capacity
from ...core.config import EngineConfig
from ...distributed.cluster import DistributedSearchSystem
from ...distributed.rest import Request, build_api
from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import TESLA_P100, DeviceSpec
from ...pipeline.scheduler import plan_streams
from ..chains import algorithm2_steps, chain_speed
from ..tables import ExperimentResult

__all__ = ["run"]

GIB = 1024**3


def run(
    spec: DeviceSpec = TESLA_P100,
    n_nodes: int = 14,
    m: int = 384,
    n: int = 768,
    d: int = 128,
    host_cache_bytes: int = 64 * 10**9,
    gpu_reserved_bytes: int = 4 * GIB,
    functional_nodes: int = 3,
    functional_bricks: int = 12,
    seed: int = 0,
) -> ExperimentResult:
    cal = KernelCalibration.for_device(spec)

    # --- full-scale arithmetic -------------------------------------------
    per_node_plan = plan_capacity(
        m=m, d=d, precision="fp16",
        gpu_mem_bytes=spec.mem_bytes, gpu_reserved_bytes=gpu_reserved_bytes,
        host_cache_bytes=host_cache_bytes,
    )
    node_cache_bytes = per_node_plan.total_cache_bytes
    cluster_capacity = per_node_plan.total_images * n_nodes

    # Per-GPU speed: compute-bound chain at batch 256, capped by the
    # PCIe bound (which no longer binds at m=384 — the point of Sec. 7).
    compute_speed = chain_speed(algorithm2_steps(spec, cal, m, n, d, 256, "fp16"), 256)
    stream_plan = plan_streams(spec, cal, 8, 512, m, n, d, "fp16")
    per_gpu_speed = min(compute_speed, stream_plan.theoretical_images_per_s)
    cluster_speed = per_gpu_speed * n_nodes
    million_scale_s = 1_000_000 / cluster_speed

    result = ExperimentResult(
        name=f"Sec. 8: distributed system ({n_nodes} x {spec.name}, m={m} n={n} FP16)",
        headers=["quantity", "model", "paper"],
    )
    result.rows.append(["feature matrix bytes", feature_matrix_bytes(m, d, "fp16"), 98304])
    result.rows.append(["hybrid cache per container (GB)", round(node_cache_bytes / 1e9, 1), 76])
    result.rows.append(["total cache (GB)", round(node_cache_bytes * n_nodes / 1e9, 0), 1064])
    result.rows.append(["cached matrices (M)", round(cluster_capacity / 1e6, 2), 10.8])
    result.rows.append(["per-GPU speed (img/s)", int(round(per_gpu_speed)), 62356])
    result.rows.append(["cluster speed (img/s)", int(round(cluster_speed)), 872984])
    result.rows.append(["million-image search (s)", round(million_scale_s, 2), 1.15])

    # --- functional mini-cluster -----------------------------------------
    rng = np.random.default_rng(seed)
    config = EngineConfig(m=48, n=64, batch_size=4, min_matches=5)
    system = DistributedSearchSystem(functional_nodes, config, spec)
    api = build_api(system)
    descs = {}
    for brick in range(functional_bricks):
        raw = rng.random((d, 48)).astype(np.float32)
        descs[brick] = raw / np.linalg.norm(raw, axis=0, keepdims=True) * 512
        response = api.handle(
            Request("POST", "/textures", {"id": f"brick-{brick}", "descriptors": descs[brick].tolist()})
        )
        assert response.status == 201, response.body
    target = functional_bricks // 2
    query = np.abs(descs[target] + rng.normal(0, 3, descs[target].shape)).astype(np.float32)
    response = api.handle(Request("POST", "/search", {"descriptors": query.tolist()}))
    top = response.body["results"][0]
    result.summary = {
        "functional_top1_id": top["id"],
        "functional_top1_correct": top["id"] == f"brick-{target}",
        "functional_images_searched": response.body["images_searched"],
        "cluster_capacity_images": cluster_capacity,
        "cluster_speed_images_per_s": cluster_speed,
    }
    result.notes.append(
        f"functional mini-cluster: {functional_nodes} nodes, "
        f"{functional_bricks} bricks sharded round-robin via the REST API"
    )
    return result
