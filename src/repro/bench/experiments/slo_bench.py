"""SLO — burn-rate alert lead time on the overload trace.

The overload bench proved *that* an unprotected serving config
collapses; this experiment proves the new SLO layer *sees it coming*.
The same open-loop Poisson overload trace (4× calibrated capacity)
runs through two configurations with a
:class:`~repro.obs.timeseries.TimeSeriesRecorder` and an
:class:`~repro.obs.slo.SloEngine` installed:

* **unprotected** — unbounded queue, no deadlines: the queue grows
  without bound and end-to-end latency climbs past the SLO.  The
  multi-window burn-rate alert must escalate to **CRITICAL strictly
  before goodput collapses** (trailing-window good-completion rate
  falling below 25 % of capacity and staying there) — the lead time an
  autoscaler would have to add capacity.
* **protected** — bounded queue + per-request deadline (PR 5's
  defence): goodput holds near capacity and the alert must **never
  pass WARNING**.

Both the alert's error definition and the goodput timeline use the
*same* bucket-quantised SLO threshold (the smallest histogram bound at
or above ``_SLO_GROUPS`` fused-group times), so "alert error" and
"goodput miss" are the identical predicate — no definitional gap for
the lead time to hide in.

The third section prices the telemetry: the fused cluster sweep is
wall-clock timed with the recorder + engine installed vs not, and the
overhead must stay under the observability layer's 5 % budget while
simulated time stays bit-identical.

Results land in ``BENCH_slo.json`` (deterministic: seeded workload,
simulated clock, alert timeline a pure function of the trace).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from ...core.config import EngineConfig
from ...core.engine import TextureSearchEngine
from ...distributed import DistributedSearchSystem
from ...obs import default_registry
from ...obs.slo import (
    CRITICAL,
    OK,
    WARNING,
    BurnRateRule,
    SeriesSelection,
    SloEngine,
    SloPolicy,
    install_engine,
    uninstall_engine,
)
from ...obs.timeseries import (
    TimeSeriesRecorder,
    install_recorder,
    uninstall_recorder,
)
from ...serving import (
    BatchPolicy,
    FusedEngineExecutor,
    build_trace,
    poisson_arrivals,
    simulate_serving,
)
from ..tables import ExperimentResult
from .fault_tolerance import _make_descriptors, _noisy
from .overload_bench import _calibrate, _make_workload

__all__ = ["run"]

#: SLO as a multiple of one fused-group execution, *before* snapping up
#: to the latency histogram's bucket resolution (the snapped bound is
#: what both the alert and the goodput timeline evaluate against).
_SLO_GROUPS = 3.0

#: admission-queue bound for the protected configuration, in groups —
#: one group keeps worst-case latency ~2 group times, comfortably
#: inside the snapped SLO, so the protected run burns no budget.
_QUEUE_GROUPS = 1

#: offered load for the replay (the overload bench's worst multiplier).
_OVERLOAD_X = 4.0

#: goodput has collapsed when the trailing-window good rate falls below
#: this fraction of calibrated capacity (and stays there), after having
#: first reached _ARMED_FRAC — the startup ramp is not a collapse.
#: (the armed bar sits below half capacity because the trailing window
#: is longer than the healthy phase of the overload trace: the peak
#: *windowed* good rate never reaches the instantaneous one)
_COLLAPSE_FRAC = 0.25
_ARMED_FRAC = 0.35

_LATENCY_METRIC = "repro_serving_latency_us"


def _policies(name: str, slo_us: float, group_us: float) -> list[SloPolicy]:
    """The bench's burn-rate policy: objective 90 % of completions
    within the (bucket-snapped) SLO; critical = 3× burn over a
    2-group/6-group window pair, warning = 1× over 4/12 groups."""
    return [
        SloPolicy(
            name=name,
            kind="latency",
            objective=0.9,
            metric=_LATENCY_METRIC,
            threshold_us=slo_us,
            critical=BurnRateRule(2 * group_us, 6 * group_us, 3.0),
            warning=BurnRateRule(4 * group_us, 12 * group_us, 1.0),
            clear_hold_us=4 * group_us,
        )
    ]


def _latency_points(
    recorder: TimeSeriesRecorder, eff_slo_us: float
) -> list[tuple[float, int, int]]:
    """``(t_us, cumulative_good, cumulative_total)`` per sample, where
    good = completions with latency at or below the snapped SLO bound
    (cumulative across the process — callers difference samples)."""
    bounds = recorder.histogram_bounds(_LATENCY_METRIC)
    points: list[tuple[float, int, int]] = []
    for sample in recorder.samples:
        series = sample.data.get(_LATENCY_METRIC)
        if not series or () not in series:
            points.append((sample.t_us, 0, 0))
            continue
        counts, _, count = series[()]
        good = sum(n for b, n in zip(bounds, counts) if b <= eff_slo_us)
        points.append((sample.t_us, good, count))
    return points


def _goodput_rates(
    points: list[tuple[float, int, int]], window_us: float
) -> list[tuple[float, float | None]]:
    """Trailing-window good-completion rate (per second) at each sample
    (``None`` until a full window of history exists)."""
    rates: list[tuple[float, float | None]] = []
    for k, (t, good, _) in enumerate(points):
        j = None
        for i in range(k - 1, -1, -1):
            if points[i][0] <= t - window_us:
                j = i
                break
        if j is None:
            rates.append((t, None))
            continue
        span_us = t - points[j][0]
        rate = (good - points[j][1]) / (span_us / 1e6) if span_us > 0 else None
        rates.append((t, rate))
    return rates


def _collapse_us(
    rates: list[tuple[float, float | None]], capacity_rps: float
) -> float | None:
    """Earliest sample time where the good rate drops below
    ``_COLLAPSE_FRAC`` of capacity and never recovers (armed only after
    the rate first reaches ``_ARMED_FRAC`` — startup is not collapse)."""
    armed = False
    collapse: float | None = None
    for t, rate in rates:
        if rate is None:
            continue
        if not armed:
            armed = rate >= _ARMED_FRAC * capacity_rps
            continue
        if rate < _COLLAPSE_FRAC * capacity_rps:
            if collapse is None:
                collapse = t
        else:
            collapse = None
    return collapse


#: fused sweeps per timed block in the overhead measurement — block
#: timing averages per-sweep scheduler jitter out of each measurement.
_OVERHEAD_BLOCK = 5


def _time_cluster_sweeps(
    system, queries, repeats: int, recorder: TimeSeriesRecorder
) -> tuple[float, float, float, float]:
    """``(min_off_s, min_on_s, sim_off_us, sim_on_us)`` — minimum
    per-sweep wall-clock for the fused cluster sweep in each mode.

    The two modes are *interleaved* (one uninstrumented block, one with
    the recorder installed, repeated) so both minima sample the same
    scheduler/frequency environment — timing them in separate phases
    lets slow host drift masquerade as telemetry cost — and each
    measurement times a block of ``_OVERHEAD_BLOCK`` sweeps to average
    per-sweep jitter below the effect being measured."""
    best_off = best_on = float("inf")
    sim_off = sim_on = 0.0
    for _ in range(repeats):
        uninstall_recorder()
        start = time.perf_counter()
        for _ in range(_OVERHEAD_BLOCK):
            group = system.search_group(queries)
        best_off = min(best_off, (time.perf_counter() - start) / _OVERHEAD_BLOCK)
        sim_off = group.elapsed_us

        install_recorder(recorder)
        start = time.perf_counter()
        for _ in range(_OVERHEAD_BLOCK):
            group = system.search_group(queries)
        best_on = min(best_on, (time.perf_counter() - start) / _OVERHEAD_BLOCK)
        sim_on = group.elapsed_us
    uninstall_recorder()
    return best_off, best_on, sim_off, sim_on


def _time_scrapes(
    recorder: TimeSeriesRecorder, blocks: int = 7, per_block: int = 64
) -> float:
    """Minimum per-scrape wall-clock seconds for one scrape + SLO
    evaluation against the full live registry.

    This is the direct measurement behind the overhead budget: the
    telemetry cost is a few percent of a sweep, so differencing two
    nearly-equal sweep timings amplifies host jitter ~30-60x, while a
    tight loop over the scrape path itself measures the same cost with
    no differencing at all.  Each ``advance_by(interval)`` crosses
    exactly one scrape boundary, so the loop body is one sample plus
    one engine evaluation."""
    interval = recorder.interval_us
    best = float("inf")
    for _ in range(blocks):
        start = time.perf_counter()
        for _ in range(per_block):
            recorder.advance_by(interval)
        best = min(best, (time.perf_counter() - start) / per_block)
    return best


def run(
    quick: bool = False,
    json_path: str | Path = "BENCH_slo.json",
    seed: int = 0,
) -> ExperimentResult:
    config = EngineConfig(m=32, n=32, batch_size=4, min_matches=5, scale_factor=0.25)
    n_refs = 16
    max_batch = 8
    n_queries = 96 if quick else 240
    overhead_repeats = 7 if quick else 12

    refs, queries = _make_workload(n_refs, n_queries, seed, config)
    engine = TextureSearchEngine(config)
    for ref_id, desc in refs.items():
        engine.add_reference(ref_id, desc)
    executor = FusedEngineExecutor(engine)

    group_us = _calibrate(executor, queries, max_batch)
    capacity_rps = max_batch / group_us * 1e6
    interval_us = group_us / 2.0
    # snap the SLO up to the latency histogram's bucket resolution so
    # the alert predicate and the goodput predicate are identical
    bounds = default_registry().get(_LATENCY_METRIC).buckets
    slo_us = TimeSeriesRecorder.effective_threshold_us(
        bounds, _SLO_GROUPS * group_us
    )
    if not math.isfinite(slo_us):
        raise RuntimeError(
            f"SLO {_SLO_GROUPS}x group ({group_us:.0f}us) is past the last "
            f"latency bucket {bounds[-1]}"
        )
    critical_slow_us = 6 * group_us

    rate = capacity_rps * _OVERLOAD_X
    arrivals = poisson_arrivals(n_queries, rate, seed=seed + int(_OVERLOAD_X * 10))
    configs = (
        ("unprotected", BatchPolicy(max_batch=max_batch, max_wait_us=0.0), None),
        (
            "protected",
            BatchPolicy(
                max_batch=max_batch,
                max_wait_us=0.0,
                max_queue_depth=_QUEUE_GROUPS * max_batch,
                shed="reject-new",
            ),
            slo_us,
        ),
    )

    result = ExperimentResult(
        "SLO: burn-rate alert lead time on the overload trace",
        ["config", "worst state", "warning ms", "critical ms",
         "collapse ms", "lead ms", "good rps", "transitions"],
    )
    cells: list[dict] = []
    outcomes: dict[str, dict] = {}
    for label, policy, deadline_us in configs:
        recorder = TimeSeriesRecorder(interval_us=interval_us, retention=1024)
        install_recorder(recorder)
        slo_engine = SloEngine(_policies(f"latency-{label}", slo_us, group_us))
        slo_engine.attach(recorder)
        install_engine(slo_engine)
        try:
            trace = build_trace(arrivals, queries, deadline_us=deadline_us)
            report = simulate_serving(executor, trace, policy)
            recorder.flush()
        finally:
            uninstall_engine()
            uninstall_recorder()

        policy_name = f"latency-{label}"
        points = _latency_points(recorder, slo_us)
        rates = _goodput_rates(points, critical_slow_us)
        collapse = _collapse_us(rates, capacity_rps)
        first_warning = slo_engine.log.first_at(policy_name, WARNING)
        first_critical = slo_engine.log.first_at(policy_name, CRITICAL)
        worst = slo_engine.log.worst_state(policy_name)
        n_good = sum(1 for r in report.records if r.latency_us <= slo_us)
        span_s = report.makespan_us / 1e6
        goodput = n_good / span_s if span_s > 0 else 0.0
        lead_us = (
            collapse - first_critical.t_us
            if collapse is not None and first_critical is not None
            else None
        )
        outcomes[label] = {
            "worst_state": worst,
            "first_warning_us": first_warning.t_us if first_warning else None,
            "first_critical_us": first_critical.t_us if first_critical else None,
            "collapse_us": collapse,
            "lead_us": lead_us,
            "goodput_rps": goodput,
        }
        result.rows.append([
            label,
            worst,
            round(first_warning.t_us / 1e3, 2) if first_warning else "-",
            round(first_critical.t_us / 1e3, 2) if first_critical else "-",
            round(collapse / 1e3, 2) if collapse is not None else "-",
            round(lead_us / 1e3, 2) if lead_us is not None else "-",
            int(goodput),
            len(slo_engine.log),
        ])
        cells.append({
            "config": label,
            "goodput_rps": round(goodput, 3),
            "n_good": n_good,
            "n_rejected": report.n_rejected,
            "makespan_us": report.makespan_us,
            "alerts": slo_engine.log.to_dicts(),
            "goodput_rate_curve": [
                {"t_us": t, "good_rps": None if r is None else round(r, 3)}
                for t, r in rates
            ],
            "n_samples": len(recorder),
        })

    # ---- telemetry overhead on the fused cluster sweep ------------------
    rng = np.random.default_rng(seed + 1)
    system = DistributedSearchSystem(2, config)
    for i in range(n_refs):
        system.add(f"c{i}", _make_descriptors(rng, count=config.n, d=config.d))
    cluster_queries = [
        _noisy(rng, _make_descriptors(rng, count=config.n, d=config.d))
        for _ in range(max_batch)
    ]
    warm = system.search_group(cluster_queries)

    # one scrape per sweep: the realistic cadence (the serving-phase
    # recorder samples at half a group time because its windows are
    # group-sized; here the sweep itself is the unit of work)
    recorder = TimeSeriesRecorder(
        interval_us=max(warm.elapsed_us, 1.0), retention=1024
    )
    slo_engine = SloEngine(
        [
            SloPolicy(
                name="sweep-latency", kind="latency", objective=0.9,
                metric="repro_engine_sweep_us",
                threshold_us=float(
                    default_registry().get("repro_engine_sweep_us").buckets[-1]
                ),
                critical=BurnRateRule(2 * warm.elapsed_us, 6 * warm.elapsed_us, 3.0),
                warning=BurnRateRule(4 * warm.elapsed_us, 12 * warm.elapsed_us, 1.0),
            ),
            SloPolicy(
                name="search-availability", kind="availability", objective=0.99,
                error_series=(
                    SeriesSelection("repro_cluster_partial_results_total"),
                ),
                total_series=(SeriesSelection("repro_cluster_searches_total"),),
                critical=BurnRateRule(2 * warm.elapsed_us, 6 * warm.elapsed_us, 10.0),
                warning=BurnRateRule(4 * warm.elapsed_us, 12 * warm.elapsed_us, 2.0),
            ),
        ]
    )
    slo_engine.attach(recorder)
    install_engine(slo_engine)
    try:
        t_off, t_on, sim_off, sim_on = _time_cluster_sweeps(
            system, cluster_queries, overhead_repeats, recorder
        )
        scrape_s = _time_scrapes(recorder)
    finally:
        uninstall_engine()
        uninstall_recorder()
    if not math.isclose(sim_on, sim_off, rel_tol=1e-9):
        raise RuntimeError(
            f"telemetry changed simulated time: {sim_off} vs {sim_on}"
        )
    # recorder interval == one sweep's elapsed time, so the steady-state
    # cadence is one scrape per sweep; the differential A/B number is
    # kept in the JSON as a cross-check but is too noise-amplified to
    # gate the budget on (it differences two nearly-equal timings)
    overhead_pct = scrape_s / t_off * 100.0
    differential_pct = (t_on / t_off - 1.0) * 100.0

    unprot = outcomes["unprotected"]
    prot = outcomes["protected"]
    critical_fired = unprot["first_critical_us"] is not None
    critical_before_collapse = (
        critical_fired
        and unprot["collapse_us"] is not None
        and unprot["first_critical_us"] < unprot["collapse_us"]
    )
    protected_quiet = prot["worst_state"] in (OK, WARNING)
    result.summary = {
        "capacity_rps": round(capacity_rps, 1),
        "slo_us": round(slo_us, 1),
        "slo_groups_requested": _SLO_GROUPS,
        "critical_fired": critical_fired,
        "critical_before_collapse": critical_before_collapse,
        "alert_lead_us": (
            round(unprot["lead_us"], 1) if unprot["lead_us"] is not None else None
        ),
        "collapse_us": (
            round(unprot["collapse_us"], 1)
            if unprot["collapse_us"] is not None else None
        ),
        "protected_worst_state": prot["worst_state"],
        "protected_never_critical": protected_quiet,
        "telemetry_overhead_pct": round(overhead_pct, 2),
        "overhead_within_budget": overhead_pct < 5.0,
    }
    result.notes.append(
        f"SLO snapped to {slo_us:.0f}us (requested {_SLO_GROUPS:g}x group = "
        f"{_SLO_GROUPS * group_us:.0f}us); alert errors and goodput misses "
        "are the same bucket-quantised predicate"
    )
    result.notes.append(
        f"collapse = trailing {critical_slow_us / group_us:g}-group good rate "
        f"< {_COLLAPSE_FRAC:.0%} of capacity, sustained; "
        "overhead = direct scrape+evaluate timing / sweep wall-clock "
        f"(one scrape per sweep; A/B differential {differential_pct:+.2f}% "
        "kept as a cross-check)"
    )

    payload = {
        "experiment": "slo",
        "seed": seed,
        "quick": quick,
        "workload": {
            "n_refs": n_refs,
            "n_queries": n_queries,
            "max_batch": max_batch,
            "queue_depth": _QUEUE_GROUPS * max_batch,
            "overload_multiplier": _OVERLOAD_X,
            "interval_us": round(interval_us, 3),
            "engine": {"m": config.m, "n": config.n,
                       "batch_size": config.batch_size, "d": config.d},
        },
        "configs": cells,
        "overhead": {
            "sweep_ms_off": round(t_off * 1e3, 3),
            "sweep_ms_on": round(t_on * 1e3, 3),
            "scrape_us": round(scrape_s * 1e6, 3),
            "differential_pct": round(differential_pct, 2),
            "repeats": overhead_repeats,
        },
        "summary": result.summary,
    }
    Path(json_path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    result.notes.append(f"full timeline written to {json_path}")
    return result
