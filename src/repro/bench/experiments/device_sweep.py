"""Forward-looking device sweep.

The paper notes its FP16 design also targets newer cards ("such as
Tesla P100, V100, and A100", Sec. 4.2).  This experiment predicts the
production configuration's behaviour across the device registry:
GPU-resident speed, host-streamed speed (hybrid cache + 8 streams),
single-node capacity, and the PCIe bound that determines whether the
asymmetric optimization has moved the bottleneck.
"""

from __future__ import annotations

from ...cache.capacity import plan_capacity
from ...gpusim.calibration import KernelCalibration
from ...gpusim.device import DEVICE_REGISTRY
from ...pipeline.scheduler import plan_streams
from ..chains import algorithm2_steps, chain_speed
from ..tables import ExperimentResult

__all__ = ["run"]

GIB = 1024**3


def run(
    m: int = 384,
    n: int = 768,
    d: int = 128,
    batch: int = 256,
    streams: int = 8,
    host_cache_bytes: int = 64 * 10**9,
) -> ExperimentResult:
    result = ExperimentResult(
        name=f"Device sweep: production config m={m} n={n} FP16, batch {batch}, "
        f"{streams} streams",
        headers=["device", "GPU-resident (img/s)", "hybrid+streams (img/s)",
                 "PCIe bound (img/s)", "bottleneck", "capacity (images)"],
    )
    for key in ("p100", "v100", "a100"):
        spec = DEVICE_REGISTRY[key]
        cal = KernelCalibration.for_device(spec)
        resident = chain_speed(algorithm2_steps(spec, cal, m, n, d, batch, "fp16"), batch)
        plan = plan_streams(spec, cal, streams, batch, m, n, d, "fp16")
        hybrid = min(plan.throughput_images_per_s, resident)
        bottleneck = "PCIe" if plan.theoretical_images_per_s < resident else "compute"
        capacity = plan_capacity(
            m=m, d=d, precision="fp16", gpu_mem_bytes=spec.mem_bytes,
            gpu_reserved_bytes=4 * GIB, host_cache_bytes=host_cache_bytes,
        ).total_images
        result.rows.append(
            [spec.name, int(round(resident)), int(round(hybrid)),
             int(round(plan.theoretical_images_per_s)), bottleneck, capacity]
        )
        result.summary[key] = hybrid
    result.notes.append(
        "at m=384 the P100 is compute-bound (the Sec. 7 result); faster "
        "cards with the same PCIe Gen3 link flip back to transfer-bound "
        "unless the link improves with them (A100: PCIe Gen4)"
    )
    return result
