"""Serial-chain timing compositions shared by the experiments.

Tables 1, 3, 5 and Fig. 4 all measure the single-stream pipeline where
every stage serialises (one CPU thread drives the GPU synchronously).
These helpers compose the calibrated kernel models into those chains at
the paper's dimensions.
"""

from __future__ import annotations

from ..gpusim.calibration import KernelCalibration
from ..gpusim.device import DeviceSpec
from ..gpusim.kernels import (
    d2h_result_us,
    dtype_bytes,
    elementwise_us,
    gemm_us,
    insertion_sort_us,
    postprocess_us,
    top2_scan_us,
)
from ..gpusim.pcie import h2d_time_us

__all__ = ["algorithm1_steps", "algorithm2_steps", "chain_speed", "hybrid_speed"]


def algorithm1_steps(
    spec: DeviceSpec,
    cal: KernelCalibration,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    dtype: str = "fp32",
    sort_kind: str = "scan",
) -> dict[str, float]:
    """Per-image step times (us) of Algorithm 1, Table 1 layout."""
    if sort_kind == "scan":
        sort = top2_scan_us(spec, cal, m, n, dtype)
    elif sort_kind == "insertion":
        sort = insertion_sort_us(spec, cal, m, n, dtype)
    else:
        raise ValueError(f"unknown sort_kind {sort_kind!r}")
    return {
        "GEMM/step3": gemm_us(spec, cal, m, n, d, 1, dtype),
        "Add N_R/step4": elementwise_us(spec, cal, m * n, dtype),
        "Top-2 sort/step5": sort,
        "Add N_Q and Sqrt/step6&7": elementwise_us(spec, cal, 2 * n, dtype),
        "D2H copy/step8": d2h_result_us(spec, cal, n, 1, 2, dtype),
        "Post-processing/CPU": postprocess_us(cal, 1, dtype, n),
    }


def algorithm2_steps(
    spec: DeviceSpec,
    cal: KernelCalibration,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    batch: int = 1,
    dtype: str = "fp16",
    tensor_core: bool = False,
) -> dict[str, float]:
    """Per-*batch* step times (us) of Algorithm 2, Table 3 layout."""
    return {
        "HGEMM/step1": gemm_us(spec, cal, m, n, d, batch, dtype, tensor_core),
        "Sort and Sqrt/step2&3": top2_scan_us(spec, cal, m, batch * n, dtype)
        + elementwise_us(spec, cal, 2 * batch * n, dtype),
        "D2H memory copy/step4": d2h_result_us(spec, cal, n, batch, 2, dtype),
        "Post-processing/CPU": postprocess_us(cal, batch, dtype, n),
    }


def chain_speed(steps: dict[str, float], batch: int = 1) -> float:
    """Images/s of a serial chain: ``batch / sum(steps)``."""
    total = sum(steps.values())
    if total <= 0:
        raise ValueError("chain must have positive duration")
    return batch / total * 1e6


def hybrid_speed(
    spec: DeviceSpec,
    cal: KernelCalibration,
    location: str,
    m: int = 768,
    n: int = 768,
    d: int = 128,
    batch: int = 1024,
    dtype: str = "fp16",
) -> float:
    """Table 5: single-stream search speed by cache location.

    ``location``: "gpu", "host-pinned", or "host-pageable".  Host
    locations prepend the per-batch PCIe transfer to the serial chain.
    """
    steps = algorithm2_steps(spec, cal, m, n, d, batch, dtype)
    total = sum(steps.values())
    if location == "gpu":
        pass
    elif location in ("host-pinned", "host-pageable"):
        nbytes = batch * m * d * dtype_bytes(dtype)
        total += h2d_time_us(spec, nbytes, pinned=(location == "host-pinned"))
    else:
        raise ValueError(f"unknown location {location!r}")
    return batch / total * 1e6
