"""Benchmark harness: table formatting, serial-chain compositions, and
the per-table/figure experiment runners."""

from .chains import algorithm1_steps, algorithm2_steps, chain_speed, hybrid_speed
from .experiments import ALL_EXPERIMENTS
from .tables import ExperimentResult, fmt, format_table

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "algorithm1_steps",
    "algorithm2_steps",
    "chain_speed",
    "fmt",
    "format_table",
    "hybrid_speed",
]
