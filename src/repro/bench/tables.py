"""Table formatting for the experiment runners.

Every experiment returns an :class:`ExperimentResult`; the benchmark
harness prints it in the same row/column layout as the paper's table so
paper-vs-measured comparison is an eyeball diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentResult", "format_table", "fmt"]


def fmt(value: Any, digits: int = 2) -> str:
    """Human formatting: floats rounded, large ints with separators."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Structured output of one table/figure reproduction."""

    name: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: free-form scalar findings ("speedup": 7.9, ...), used by tests.
    summary: dict[str, Any] = field(default_factory=dict)

    def to_text(self) -> str:
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        if self.summary:
            pairs = ", ".join(f"{k}={fmt(v)}" for k, v in self.summary.items())
            text += f"\nsummary: {pairs}"
        return text

    def column(self, header: str) -> list[Any]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row_by(self, header: str, value: Any) -> list[Any]:
        idx = self.headers.index(header)
        for row in self.rows:
            if row[idx] == value:
                return row
        raise KeyError(f"no row with {header}={value!r}")
