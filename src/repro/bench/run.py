"""Command-line experiment runner.

Regenerate any of the paper's tables/figures from a shell::

    python -m repro.bench.run table1            # one experiment
    python -m repro.bench.run fig4 table6       # several
    python -m repro.bench.run all               # everything
    python -m repro.bench.run all --quick       # skip accuracy sweeps
    python -m repro.bench.run table7 --bricks 80 --queries 2

Exit code is non-zero if any requested experiment raises.
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import ALL_EXPERIMENTS

__all__ = ["main", "build_parser"]

#: experiments whose runtime is dominated by functional accuracy sweeps.
_ACCURACY_EXPERIMENTS = {"table2", "table7"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench.run",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(ALL_EXPERIMENTS))}, or 'all' "
        "(defaults to 'backends' when --backend is given)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        metavar="NAME",
        default=None,
        help="restrict the 'backends' experiment to these match-kernel "
        "backends (repeatable; e.g. --backend opencv --backend garcia)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the functional accuracy sweeps (Tables 2 and 7 accuracy columns)",
    )
    parser.add_argument(
        "--bricks",
        type=int,
        default=None,
        help="dataset size for the accuracy sweeps (default: experiment default)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=None,
        help="queries per brick for Table 7 (default: experiment default)",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record request-scoped spans across the run and export them "
        "as Perfetto/Chrome JSON to this path (open in ui.perfetto.dev)",
    )
    return parser


def _kwargs_for(name: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if name in _ACCURACY_EXPERIMENTS:
        if args.quick:
            kwargs["with_accuracy"] = False
        if args.bricks is not None:
            kwargs["n_bricks"] = args.bricks
        if name == "table7" and args.queries is not None:
            kwargs["queries_per_brick"] = args.queries
    if name == "backends" and args.backend:
        kwargs["backends"] = args.backend
    if name in ("serving", "overload", "routing", "cascade", "slo", "elastic") and args.quick:
        kwargs["quick"] = True
    return kwargs


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.experiments:
        if args.backend:
            args.experiments = ["backends"]
        else:
            parser.error("at least one EXPERIMENT (or --backend) is required")
    names = list(dict.fromkeys(args.experiments))  # de-dup, keep order
    if "all" in names:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(ALL_EXPERIMENTS))})",
            file=sys.stderr,
        )
        return 2

    tracer = None
    if args.trace:
        from ..obs import default_tracer

        tracer = default_tracer()
        tracer.reset()
        tracer.enable()

    failures = 0
    for name in names:
        started = time.perf_counter()
        try:
            result = ALL_EXPERIMENTS[name].run(**_kwargs_for(name, args))
        except Exception as exc:  # surface, keep going
            failures += 1
            print(f"[{name}] FAILED: {exc}", file=sys.stderr)
            continue
        elapsed = time.perf_counter() - started
        print(result.to_text())
        print(f"[{name}] completed in {elapsed:.1f}s\n")

    if tracer is not None:
        tracer.disable()
        tracer.export(args.trace)
        print(f"trace: {len(tracer.spans)} spans exported to {args.trace}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
