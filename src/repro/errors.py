"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DeviceError(ReproError):
    """Base class for simulated-GPU errors."""


class DeviceOutOfMemoryError(DeviceError):
    """Raised when a device allocation exceeds the remaining capacity.

    Mirrors ``cudaErrorMemoryAllocation``: the allocation that triggered the
    failure is reported together with the pool state so capacity-planning
    bugs are diagnosable.
    """

    def __init__(self, requested: int, free: int, total: int) -> None:
        self.requested = int(requested)
        self.free = int(free)
        self.total = int(total)
        super().__init__(
            f"device out of memory: requested {requested} B, "
            f"free {free} B of {total} B"
        )


class InvalidStreamError(DeviceError):
    """Raised when an operation references a stream of another device."""


class HalfPrecisionOverflowError(ReproError):
    """Raised when an FP16 conversion would overflow ``float16`` range.

    The paper (Table 2) marks scale factors ``1`` and ``2^-1`` as
    "overflow"; this exception is how the library surfaces that condition.
    """

    def __init__(self, scale: float, max_value: float) -> None:
        self.scale = float(scale)
        self.max_value = float(max_value)
        super().__init__(
            f"FP16 overflow with scale factor {scale!r}: "
            f"largest intermediate magnitude {max_value:.6g} exceeds "
            f"float16 max (65504)"
        )


class CacheError(ReproError):
    """Base class for hybrid-cache errors."""


class CacheCapacityError(CacheError):
    """Raised when an entry cannot fit even after evicting everything."""


class SerializationError(ReproError):
    """Raised when the wire format cannot decode a message."""


class KVConflictError(ReproError):
    """A versioned KV write lost a race: the key's current version did
    not match the version the writer read.  Carries enough state for
    the caller to re-read and retry."""

    def __init__(self, key: str, expected: int, actual: int) -> None:
        self.key = str(key)
        self.expected = int(expected)
        self.actual = int(actual)
        super().__init__(
            f"versioned write to {key!r} conflicts: expected version "
            f"{expected}, store is at {actual}"
        )


class ClusterError(ReproError):
    """Raised for distributed-system failures (missing shard, bad node)."""


class NodeError(ClusterError):
    """Base class for per-container failures; carries the node id."""

    def __init__(self, node_id: str, message: str) -> None:
        self.node_id = str(node_id)
        super().__init__(message)


class NodeDownError(NodeError):
    """The container is crashed/unreachable; the operation cannot succeed
    by retrying against the same node."""

    def __init__(self, node_id: str, reason: str = "node is down") -> None:
        super().__init__(node_id, f"node {node_id!r}: {reason}")


class TransientNodeError(NodeError):
    """A retryable per-request failure (dropped RPC, OOM blip, flaky
    link).  The node itself may still be healthy."""

    def __init__(self, node_id: str, reason: str = "transient failure") -> None:
        super().__init__(node_id, f"node {node_id!r}: {reason}")


class NodeTimeoutError(NodeError):
    """A node answered, but slower than the caller's per-attempt budget."""

    def __init__(self, node_id: str, elapsed_us: float, timeout_us: float) -> None:
        self.elapsed_us = float(elapsed_us)
        self.timeout_us = float(timeout_us)
        super().__init__(
            node_id,
            f"node {node_id!r}: answered in {elapsed_us:.0f} us, "
            f"budget was {timeout_us:.0f} us",
        )


class DegradedClusterError(ClusterError):
    """Too many shards were unsearchable to honour ``min_shard_fraction``."""

    def __init__(self, searched: int, total: int, min_fraction: float) -> None:
        self.searched = int(searched)
        self.total = int(total)
        self.min_fraction = float(min_fraction)
        super().__init__(
            f"only {searched}/{total} shards searchable, below the "
            f"min_shard_fraction={min_fraction} floor"
        )


class RestError(ReproError):
    """Raised by the REST layer; carries an HTTP-like status code."""

    def __init__(self, status: int, message: str) -> None:
        self.status = int(status)
        super().__init__(message)


class ServingError(ReproError):
    """Base class for serving-tier (admission/batching) failures."""


class ExecutorContractError(ServingError):
    """A :class:`~repro.serving.executors.GroupExecutor` broke its
    contract: the payload list must have exactly one entry per query in
    the group it was handed."""

    def __init__(self, expected: int, got: int, executor: str = "") -> None:
        self.expected = int(expected)
        self.got = int(got)
        self.executor = str(executor)
        who = f"executor {self.executor!r}" if self.executor else "executor"
        super().__init__(
            f"{who} returned {got} payloads for a group of {expected}"
        )
