"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DeviceError(ReproError):
    """Base class for simulated-GPU errors."""


class DeviceOutOfMemoryError(DeviceError):
    """Raised when a device allocation exceeds the remaining capacity.

    Mirrors ``cudaErrorMemoryAllocation``: the allocation that triggered the
    failure is reported together with the pool state so capacity-planning
    bugs are diagnosable.
    """

    def __init__(self, requested: int, free: int, total: int) -> None:
        self.requested = int(requested)
        self.free = int(free)
        self.total = int(total)
        super().__init__(
            f"device out of memory: requested {requested} B, "
            f"free {free} B of {total} B"
        )


class InvalidStreamError(DeviceError):
    """Raised when an operation references a stream of another device."""


class HalfPrecisionOverflowError(ReproError):
    """Raised when an FP16 conversion would overflow ``float16`` range.

    The paper (Table 2) marks scale factors ``1`` and ``2^-1`` as
    "overflow"; this exception is how the library surfaces that condition.
    """

    def __init__(self, scale: float, max_value: float) -> None:
        self.scale = float(scale)
        self.max_value = float(max_value)
        super().__init__(
            f"FP16 overflow with scale factor {scale!r}: "
            f"largest intermediate magnitude {max_value:.6g} exceeds "
            f"float16 max (65504)"
        )


class CacheError(ReproError):
    """Base class for hybrid-cache errors."""


class CacheCapacityError(CacheError):
    """Raised when an entry cannot fit even after evicting everything."""


class SerializationError(ReproError):
    """Raised when the wire format cannot decode a message."""


class ClusterError(ReproError):
    """Raised for distributed-system failures (missing shard, bad node)."""


class RestError(ReproError):
    """Raised by the REST layer; carries an HTTP-like status code."""

    def __init__(self, status: int, message: str) -> None:
        self.status = int(status)
        super().__init__(message)
