"""SLO-driven elastic autoscaling on the simulated event clock.

Millions of users means diurnal traffic, not the paper's fixed 14-node
fleet.  The :class:`Autoscaler` closes the loop between the telemetry
the obs layer already produces and the replica-group topology the
cluster now supports:

* **Control inputs.**  It subscribes to the installed
  :class:`~repro.obs.timeseries.TimeSeriesRecorder` as a sample
  listener, so decisions land exactly on the deterministic sample grid
  (byte-identical replays for identical event timelines), and to the
  :class:`~repro.obs.slo.SloEngine` as an
  :class:`~repro.obs.slo.AlertSink`, so a CRITICAL burn-rate page can
  boost the scale-up response ahead of the averaged signals.  The
  primary signal is serving queue depth (``repro_serving_queue_depth``)
  normalised per replica — the same target-tracking input real fleets
  use — cross-checked against goodput collapse
  (``repro_serving_completions_total{outcome=...}``) and breaker state.
* **Policy.**  Classic target tracking with a hysteresis band and
  per-direction cooldowns: scale out when the per-replica signal
  exceeds ``target * (1 + band)``, scale in when it falls below
  ``target * (1 - band)``, and never flap faster than the cooldowns
  allow.  All decisions derive from sampled telemetry and the policy —
  no randomness, no wall clock.
* **Actuation.**  Scaling out attaches replicas uniformly across
  shards (sorted order — deterministic) via
  :meth:`DistributedSearchSystem.add_replica`; the new replica warms
  its cache from the KV store and passes the readiness gate before it
  takes reads.  Scaling in drains replicas gracefully via
  :meth:`DistributedSearchSystem.remove_replica`; in-flight work
  finishes before the container is detached.

The autoscaler never drops below one replica per shard and never
exceeds ``max_replicas_per_shard``; cost is visible through
``DistributedSearchSystem.node_seconds`` and the stats v8 ``elastic``
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import default_registry, default_tracer
from ..obs.slo import CRITICAL, AlertEvent, SloEngine
from ..obs.timeseries import Sample, TimeSeriesRecorder

__all__ = ["Autoscaler", "AutoscalerPolicy", "ScalingEvent"]

_REG = default_registry()
_TRACER = default_tracer()
_DECISIONS = _REG.counter(
    "repro_autoscaler_decisions_total",
    "Autoscaler control decisions by action (hold decisions included "
    "so the decision cadence itself is observable)",
    ("action",),
)


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Target-tracking knobs (all times in simulated microseconds).

    ``target_queue_depth`` is the desired *per-replica* serving queue
    depth; the tracked signal is the sampled cluster queue depth
    divided by the serving replica count.  ``band`` is the hysteresis
    dead zone around the target: inside it the fleet holds, so small
    oscillations never flap the topology.  Scale-out adds
    ``step_out`` replicas per shard tier; scale-in removes
    ``step_in``.  Each direction has its own cooldown — fleets should
    grow eagerly and shrink reluctantly, so the defaults make scale-in
    an order of magnitude slower.  A CRITICAL SLO alert overrides the
    scale-out cooldown once per ``critical_boost_cooldown_us`` (the
    burn-rate pager outranks the averaged queue signal).
    """

    target_queue_depth: float = 4.0
    band: float = 0.25
    window_us: float = 200_000.0
    min_replicas_per_shard: int = 1
    max_replicas_per_shard: int = 4
    step_out: int = 1
    step_in: int = 1
    cooldown_out_us: float = 300_000.0
    cooldown_in_us: float = 2_000_000.0
    critical_boost_cooldown_us: float = 500_000.0

    def __post_init__(self) -> None:
        if self.target_queue_depth <= 0:
            raise ValueError("target_queue_depth must be positive")
        if not 0.0 <= self.band < 1.0:
            raise ValueError(f"band must be in [0, 1), got {self.band}")
        if self.window_us <= 0:
            raise ValueError("window_us must be positive")
        if self.min_replicas_per_shard < 1:
            raise ValueError("min_replicas_per_shard must be >= 1")
        if self.max_replicas_per_shard < self.min_replicas_per_shard:
            raise ValueError(
                "max_replicas_per_shard must be >= min_replicas_per_shard"
            )
        if self.step_out < 1 or self.step_in < 1:
            raise ValueError("scale steps must be >= 1")
        if min(self.cooldown_out_us, self.cooldown_in_us,
               self.critical_boost_cooldown_us) < 0:
            raise ValueError("cooldowns must be >= 0")


@dataclass(frozen=True)
class ScalingEvent:
    """One actuated topology change (for the bench / stats timeline)."""

    t_us: float
    action: str  # "scale_out" | "scale_in"
    reason: str
    signal: float
    replicas_before: int
    replicas_after: int

    def to_dict(self) -> dict:
        return {
            "t_us": self.t_us,
            "action": self.action,
            "reason": self.reason,
            "signal": self.signal,
            "replicas_before": self.replicas_before,
            "replicas_after": self.replicas_after,
        }


class Autoscaler:
    """Deterministic replica autoscaler for one
    :class:`~repro.distributed.cluster.DistributedSearchSystem`.

    Wire-up::

        scaler = Autoscaler(system, policy)
        scaler.attach(recorder)          # decisions on the sample grid
        slo_engine.add_sink(scaler.on_alert)   # optional CRITICAL boost

    Decisions fire from :meth:`on_sample` (one evaluation per telemetry
    sample) and actuate through the cluster's graceful replica
    lifecycle, so a scale-out is only visible to reads after warm-up
    and a scale-in never drops in-flight work.
    """

    def __init__(
        self,
        system,
        policy: AutoscalerPolicy | None = None,
    ) -> None:
        self.system = system
        self.policy = policy or AutoscalerPolicy()
        self.events: list[ScalingEvent] = []
        self._recorder: TimeSeriesRecorder | None = None
        self._last_out_us = -float("inf")
        self._last_in_us = -float("inf")
        self._last_boost_us = -float("inf")
        self._critical_pending = False
        system.autoscaler = self

    # -- wiring ---------------------------------------------------------
    def attach(self, recorder: TimeSeriesRecorder) -> None:
        if self._recorder is not None:
            self.detach()
        self._recorder = recorder
        recorder.add_listener(self.on_sample)

    def detach(self) -> None:
        if self._recorder is not None:
            self._recorder.remove_listener(self.on_sample)
            self._recorder = None

    def subscribe(self, engine: SloEngine) -> None:
        """Register as an :class:`AlertSink` on an SLO engine."""
        engine.add_sink(self.on_alert)

    # -- control inputs -------------------------------------------------
    def on_alert(self, event: AlertEvent) -> None:
        """AlertSink: a CRITICAL page arms a cooldown-bypassing
        scale-out boost consumed at the next sample."""
        if event.state == CRITICAL:
            self._critical_pending = True

    def on_sample(self, sample: Sample) -> None:
        """Sample listener: evaluate the policy at this grid point."""
        self.evaluate(sample.t_us)

    # -- signals --------------------------------------------------------
    def _serving_replicas(self) -> int:
        from .replica import ReplicaState

        return sum(
            1 for node in self.system.nodes
            if node.replica_state is ReplicaState.SERVING
        ) or 1

    def signal(self) -> float:
        """The tracked signal: sampled serving queue depth normalised
        per serving replica."""
        recorder = self._recorder
        if recorder is None:
            return 0.0
        depth = recorder.last("repro_serving_queue_depth")
        return depth / self._serving_replicas()

    def goodput_fraction(self) -> float:
        """Windowed goodput share (completions within deadline over all
        completions) — the cross-check signal: a fleet can have a short
        queue *because* admission is shedding everything."""
        recorder = self._recorder
        if recorder is None:
            return 1.0
        window = self.policy.window_us
        good = recorder.delta(
            "repro_serving_completions_total", window, {"outcome": "good"}
        )
        late = recorder.delta(
            "repro_serving_completions_total", window, {"outcome": "late"}
        )
        shed = recorder.delta("repro_serving_shed_total", window)
        total = good + late + shed
        if total <= 0:
            return 1.0
        return good / total

    def breakers_open(self) -> float:
        """Breaker-open transitions inside the window (capacity that
        exists on paper but is refusing traffic — scale-in veto)."""
        recorder = self._recorder
        if recorder is None:
            return 0.0
        return recorder.delta(
            "repro_breaker_transitions_total", self.policy.window_us,
            {"to": "open"},
        )

    # -- decision -------------------------------------------------------
    def evaluate(self, now_us: float) -> str:
        """One control-loop iteration; returns the action taken
        (``"scale_out"`` / ``"scale_in"`` / ``"hold"``)."""
        self.system.poll_lifecycle()
        policy = self.policy
        signal = self.signal()
        boost = False
        if self._critical_pending:
            self._critical_pending = False
            if now_us - self._last_boost_us >= policy.critical_boost_cooldown_us:
                boost = True
        high = policy.target_queue_depth * (1.0 + policy.band)
        low = policy.target_queue_depth * (1.0 - policy.band)
        degraded = self.goodput_fraction() < 0.99 or self.breakers_open() > 0

        action = "hold"
        if (signal > high and now_us - self._last_out_us >= policy.cooldown_out_us) or boost:
            if self._scale_out(now_us, signal, "critical-alert" if boost else "queue-depth"):
                action = "scale_out"
                self._last_out_us = now_us
                if boost:
                    self._last_boost_us = now_us
        elif (
            signal < low
            and not degraded  # a shedding/breaker-tripping fleet never shrinks
            and now_us - self._last_in_us >= policy.cooldown_in_us
        ):
            if self._scale_in(now_us, signal):
                action = "scale_in"
                self._last_in_us = now_us
        _DECISIONS.labels(action=action).inc()
        return action

    # -- actuation ------------------------------------------------------
    def _replica_counts(self) -> dict[str, int]:
        return {
            shard_id: len(group.active())
            for shard_id, group in self.system.groups.items()
        }

    def _scale_out(self, now_us: float, signal: float, reason: str) -> bool:
        """Attach ``step_out`` replicas to every shard below the cap
        (uniform tiers over sorted shards — deterministic)."""
        counts = self._replica_counts()
        before = sum(counts.values())
        added = 0
        with _TRACER.span(
            "autoscaler.scale_out", layer="autoscaler", reason=reason,
        ) as span:
            for _ in range(self.policy.step_out):
                for shard_id in sorted(counts):
                    if counts[shard_id] >= self.policy.max_replicas_per_shard:
                        continue
                    self.system.add_replica(shard_id)
                    counts[shard_id] += 1
                    added += 1
            if span is not None:
                span.set(added=added, signal=signal)
        if not added:
            return False
        self.events.append(ScalingEvent(
            t_us=now_us, action="scale_out", reason=reason, signal=signal,
            replicas_before=before, replicas_after=before + added,
        ))
        return True

    def _scale_in(self, now_us: float, signal: float) -> bool:
        """Drain ``step_in`` replicas from every shard above the floor."""
        counts = self._replica_counts()
        before = sum(counts.values())
        removed = 0
        floor = max(self.policy.min_replicas_per_shard, 1)
        with _TRACER.span(
            "autoscaler.scale_in", layer="autoscaler", reason="queue-depth",
        ) as span:
            for _ in range(self.policy.step_in):
                for shard_id in sorted(counts):
                    if counts[shard_id] <= floor:
                        continue
                    self.system.remove_replica(shard_id)
                    counts[shard_id] -= 1
                    removed += 1
            if span is not None:
                span.set(removed=removed, signal=signal)
        if not removed:
            return False
        self.events.append(ScalingEvent(
            t_us=now_us, action="scale_in", reason="queue-depth",
            signal=signal, replicas_before=before,
            replicas_after=before - removed,
        ))
        return True

    # -- introspection --------------------------------------------------
    def to_dict(self) -> dict:
        """The ``autoscaler`` side of the stats v8 ``elastic`` block."""
        policy = self.policy
        return {
            "policy": {
                "target_queue_depth": policy.target_queue_depth,
                "band": policy.band,
                "window_us": policy.window_us,
                "min_replicas_per_shard": policy.min_replicas_per_shard,
                "max_replicas_per_shard": policy.max_replicas_per_shard,
                "cooldown_out_us": policy.cooldown_out_us,
                "cooldown_in_us": policy.cooldown_in_us,
            },
            "signal": self.signal(),
            "events": [event.to_dict() for event in self.events],
            "n_events": len(self.events),
            "decisions": {
                action: _REG.value(
                    "repro_autoscaler_decisions_total", action=action
                )
                for action in ("scale_out", "scale_in", "hold")
            },
        }
