"""Per-node circuit breakers for the scatter-gather path.

The retry machinery (PR 1) makes one sick node *survivable*, but not
*cheap*: a node that keeps timing out is still attempted — and charged
against the gather's latency — on every single search until its
failure streak crosses the ``HealthTracker``'s ``down_after``
threshold (which one interleaved success resets).  A circuit breaker
layers a failure-*rate* view on top of the health tracker's
failure-*streak* view and stops sending traffic to a node that is
statistically sick:

``CLOSED``
    Normal operation; every outcome feeds a sliding window of the last
    ``window`` attempts.  When the window holds at least
    ``min_samples`` outcomes and the failure fraction reaches
    ``failure_rate``, the breaker opens.
``OPEN``
    The cluster skips the node without attempting it (its shard is
    reported unsearched, no timeout/backoff time is charged).  After
    ``cooldown_ops`` skipped operations the breaker moves to half-open
    — cooldown is counted in *operations*, not wall-clock, because the
    simulation has no global clock across requests (and it keeps the
    state machine deterministic under seeded faults).
``HALF_OPEN``
    Probe traffic flows again: ``probe_successes`` consecutive
    successes close the breaker (window cleared — the node earned a
    fresh record); any failure re-opens it for another cooldown.

The breaker is deliberately *stateless about why* an attempt failed —
crash, transient, timeout all count the same — so it composes with the
retry policy and fault injector without coordination.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from ..obs import default_registry

__all__ = ["BreakerPolicy", "BreakerState", "CircuitBreaker"]

_TRANSITIONS = default_registry().counter(
    "repro_breaker_transitions_total",
    "Circuit-breaker state transitions, by destination state",
    ("to",),
)


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds for the state machine above."""

    window: int = 10
    min_samples: int = 4
    failure_rate: float = 0.5
    cooldown_ops: int = 8
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError(
                f"min_samples must be in [1, window={self.window}], "
                f"got {self.min_samples}"
            )
        if not 0.0 < self.failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in (0, 1], got {self.failure_rate}"
            )
        if self.cooldown_ops < 1:
            raise ValueError(f"cooldown_ops must be >= 1, got {self.cooldown_ops}")
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


class CircuitBreaker:
    """Sliding-window failure-rate breaker; pure function of the
    outcome sequence, so seeded fault runs replay identically."""

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self.policy = policy or BreakerPolicy()
        self.state = BreakerState.CLOSED
        self._window: deque[bool] = deque(maxlen=self.policy.window)
        self._skips_while_open = 0
        self._probe_streak = 0
        self.total_skips = 0
        self.transitions: dict[str, int] = {s.value: 0 for s in BreakerState}

    # ------------------------------------------------------------------
    def _transition(self, state: BreakerState) -> None:
        if state is self.state:
            return
        self.state = state
        self.transitions[state.value] += 1
        _TRANSITIONS.labels(to=state.value).inc()
        if state is BreakerState.OPEN:
            self._skips_while_open = 0
        elif state is BreakerState.HALF_OPEN:
            self._probe_streak = 0
        elif state is BreakerState.CLOSED:
            self._window.clear()

    @property
    def failure_fraction(self) -> float:
        """Failure share of the sliding window (0.0 while empty)."""
        if not self._window:
            return 0.0
        return sum(1 for ok in self._window if not ok) / len(self._window)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Should the cluster attempt this node right now?

        ``False`` counts one skipped operation toward the open
        cooldown; once the cooldown elapses the breaker half-opens and
        the *next* call returns ``True`` (the probe).
        """
        if self.state is BreakerState.OPEN:
            self._skips_while_open += 1
            self.total_skips += 1
            if self._skips_while_open >= self.policy.cooldown_ops:
                self._transition(BreakerState.HALF_OPEN)
            return False
        return True

    def record_success(self) -> BreakerState:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_streak += 1
            if self._probe_streak >= self.policy.probe_successes:
                self._transition(BreakerState.CLOSED)
            return self.state
        self._window.append(True)
        return self.state

    def record_failure(self) -> BreakerState:
        if self.state is BreakerState.HALF_OPEN:
            # the probe failed: straight back to open for a new cooldown
            self._transition(BreakerState.OPEN)
            return self.state
        self._window.append(False)
        if (
            self.state is BreakerState.CLOSED
            and len(self._window) >= self.policy.min_samples
            and self.failure_fraction >= self.policy.failure_rate
        ):
            self._transition(BreakerState.OPEN)
        return self.state

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "failure_fraction": round(self.failure_fraction, 4),
            "window": len(self._window),
            "total_skips": self.total_skips,
            "transitions": dict(self.transitions),
        }
