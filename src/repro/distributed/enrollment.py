"""Online enrollment: the epoched-corpus mutation path.

The paper's system serves a fixed, pre-loaded reference corpus; this
module makes the corpus *live*.  Every mutation of a shard's reference
set — enroll, update, delete — advances that shard's monotonic **index
epoch**.  Epochs are the contract the rest of the system builds on:

* the cluster's :class:`EpochRegistry` persists each shard's latest
  epoch in the KV store (hash ``"epoch"``), so a restarted or failed-
  over node knows how far the corpus had advanced;
* deletions write a **tombstone** (:class:`TombstoneLog`, KV keys
  ``tombstone:<ref_id>``) that outlives the feature blob, so KV
  re-hydration after a crash can never resurrect a deleted reference;
* search results carry a ``corpus_epoch`` map (shard -> epoch observed
  while gathering), giving the enrolling client read-your-writes: a
  search issued after an :class:`EnrollmentAck` observes an epoch at
  least as new as the ack's on every healthy shard.

Acks are deliberately small value objects — the web tier serialises
them straight into REST responses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import default_registry
from .kvstore import KVStore

__all__ = [
    "DeletionAck",
    "EnrollmentAck",
    "EpochRegistry",
    "TombstoneLog",
]

_REG = default_registry()
_ENROLL_OPS = _REG.counter(
    "repro_enrollment_ops_total",
    "Corpus mutations through the enrollment path",
    ("op",),
)
_EPOCH_GAUGE = _REG.gauge(
    "repro_corpus_epoch",
    "Latest recorded index epoch per shard",
    ("node",),
)
_TOMBSTONES_LIVE = _REG.gauge(
    "repro_enrollment_tombstones_live",
    "Tombstoned (deleted, not yet compacted) references in the KV store",
)

#: KV key prefix guarding deleted references against resurrection.
TOMBSTONE_PREFIX = "tombstone:"
#: KV hash holding each shard's latest recorded epoch.
EPOCH_HASH_KEY = "epoch"


@dataclass(frozen=True)
class EnrollmentAck:
    """Receipt for one enroll/update.

    ``epoch`` is the shard's index epoch *after* the mutation; a
    search issued with this ack in hand that reports
    ``corpus_epoch[node_id] >= epoch`` observed the enrollment.
    ``updated`` distinguishes re-enrolling an existing id (update)
    from a first enrollment.
    """

    ref_id: str
    node_id: str
    epoch: int
    updated: bool = False


@dataclass(frozen=True)
class DeletionAck:
    """Receipt for one delete; ``deleted`` is False when the id was
    not enrolled (the tombstone is still written — deletes are
    idempotent and must survive racing re-hydration)."""

    ref_id: str
    node_id: str
    epoch: int
    deleted: bool = True


class EpochRegistry:
    """Durable per-shard epoch high-water marks.

    Backed by one KV hash so the registry survives anything the KV
    store survives.  ``record`` max-merges: replaying an old ack can
    never move a shard's epoch backwards.
    """

    def __init__(self, store: KVStore) -> None:
        self._store = store

    def get(self, node_id: str) -> int:
        raw = self._store.hget(EPOCH_HASH_KEY, str(node_id))
        return int(raw) if raw is not None else 0

    def record(self, node_id: str, epoch: int) -> int:
        """Advance (never regress) a shard's recorded epoch; returns
        the recorded high-water mark."""
        node_id = str(node_id)
        merged = max(int(epoch), self.get(node_id))
        self._store.hset(EPOCH_HASH_KEY, node_id, str(merged).encode())
        _EPOCH_GAUGE.labels(node=node_id).set(merged)
        return merged

    def forget(self, node_id: str) -> None:
        """Drop a decommissioned shard's mark (its references were
        re-homed; their epochs now live with the new owners)."""
        node_id = str(node_id)
        self._store.hdel(EPOCH_HASH_KEY, node_id)
        _EPOCH_GAUGE.labels(node=node_id).set(0)

    def snapshot(self) -> dict[str, int]:
        return {
            node: int(raw)
            for node, raw in sorted(self._store.hgetall(EPOCH_HASH_KEY).items())
        }


class TombstoneLog:
    """Deletion markers that outlive the deleted blob.

    A tombstone is written *before* the feature blob is deleted, so
    every replayer (failover re-hydration, warm restore, cache
    warming) sees it no matter when it crashed.  Re-enrolling the same
    id clears the tombstone — the new blob is a different logical
    record.
    """

    def __init__(self, store: KVStore) -> None:
        self._store = store

    def _key(self, ref_id: str) -> str:
        return f"{TOMBSTONE_PREFIX}{ref_id}"

    def mark(self, ref_id: str, node_id: str, epoch: int) -> None:
        self._store.set(
            self._key(ref_id), f"{node_id}:{int(epoch)}".encode()
        )
        _TOMBSTONES_LIVE.set(len(self))

    def clear(self, ref_id: str) -> bool:
        removed = self._store.delete(self._key(ref_id)) > 0
        _TOMBSTONES_LIVE.set(len(self))
        return removed

    def contains(self, ref_id: str) -> bool:
        return self._store.exists(self._key(ref_id))

    def get(self, ref_id: str) -> tuple[str, int] | None:
        """``(node_id, epoch)`` of the deletion, or ``None``."""
        raw = self._store.get(self._key(ref_id))
        if raw is None:
            return None
        node_id, _, epoch = raw.decode().rpartition(":")
        return node_id, int(epoch)

    def ref_ids(self) -> list[str]:
        start = len(TOMBSTONE_PREFIX)
        return [key[start:] for key in self._store.keys(f"{TOMBSTONE_PREFIX}*")]

    def __len__(self) -> int:
        return len(self._store.keys(f"{TOMBSTONE_PREFIX}*"))


def count_op(op: str) -> None:
    """Record one mutation in ``repro_enrollment_ops_total``."""
    _ENROLL_OPS.labels(op=op).inc()
