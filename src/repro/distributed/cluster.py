"""The distributed texture search system (Sec. 8, Fig. 6).

``DistributedSearchSystem`` shards reference matrices round-robin over
its GPU containers (the paper allocates them "equally to those 14 GPU
containers"), persists every record in the Redis-like store, and
answers searches by scatter-gather: the query fans out to all nodes,
each scans its shard, and the best match wins globally.

Simulated wall-clock of one search is the *maximum* node time (the
nodes run concurrently) plus a fixed web/network overhead; aggregate
throughput is the sum of node throughputs — this is the arithmetic
behind the paper's 872,984 img/s on 14 P100s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import EngineConfig
from ..core.results import ImageMatch, SearchResult
from ..errors import ClusterError
from ..gpusim.device import DeviceSpec, TESLA_P100
from .kvstore import KVStore
from .node import NodeConfig, SearchNode
from .serialization import FeatureRecord, serialize_record

__all__ = ["ClusterSearchResult", "DistributedSearchSystem"]

#: request routing + result aggregation overhead of the web tier per
#: search (REST parsing, Redis metadata lookups, fan-out RPC).
WEB_TIER_OVERHEAD_US = 2000.0


@dataclass
class ClusterSearchResult:
    """Scatter-gather outcome across the whole cluster."""

    matches: list[ImageMatch]
    per_node: dict[str, SearchResult]
    elapsed_us: float
    images_searched: int

    def best(self) -> ImageMatch | None:
        if not self.matches:
            return None
        return max(self.matches, key=lambda m: (m.score, m.reference_id != ""))

    def top(self, count: int = 1) -> list[ImageMatch]:
        return sorted(self.matches, key=lambda m: (-m.score, m.reference_id))[:count]

    @property
    def throughput_images_per_s(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.images_searched / (self.elapsed_us * 1e-6)


class DistributedSearchSystem:
    """Fourteen-GPU-container texture identification service (scalable
    to any node count)."""

    def __init__(
        self,
        n_nodes: int = 14,
        engine_config: EngineConfig | None = None,
        device_spec: DeviceSpec = TESLA_P100,
        node_config: NodeConfig | None = None,
        store: KVStore | None = None,
        placement: str = "round-robin",
    ) -> None:
        if n_nodes < 1:
            raise ClusterError("a cluster needs at least one node")
        self.engine_config = engine_config or EngineConfig(m=384, n=768)
        self.store = store or KVStore()
        self.nodes = [
            SearchNode(f"gpu-{i:02d}", self.engine_config, device_spec, node_config)
            for i in range(n_nodes)
        ]
        from .sharding import ConsistentHashPlacement, RoundRobinPlacement

        node_ids = [node.node_id for node in self.nodes]
        if placement == "round-robin":
            self.placement = RoundRobinPlacement(node_ids)
        elif placement == "consistent-hash":
            self.placement = ConsistentHashPlacement(node_ids)
        else:
            raise ClusterError(f"unknown placement policy {placement!r}")
        self._placement: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _node_by_id(self, node_id: str) -> SearchNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ClusterError(f"unknown node {node_id!r}")

    def add(self, ref_id: str, descriptors: np.ndarray) -> str:
        """Enrol a reference; returns the node that owns the shard.

        The raw descriptors are also persisted in the KV store (the
        system of record) so containers can re-hydrate after restarts.
        """
        ref_id = str(ref_id)
        record = FeatureRecord(
            ref_id=ref_id,
            matrix=np.asarray(descriptors, dtype=np.float32),
            precision="fp32",
            scale=1.0,
        )
        self.store.set(f"feature:{ref_id}", serialize_record(record))
        if ref_id in self._placement:
            node = self._node_by_id(self._placement[ref_id])  # update in place
        else:
            node = self._node_by_id(self.placement.place(ref_id))
            self._placement[ref_id] = node.node_id
        node.add(ref_id, descriptors)
        self.store.hset("placement", ref_id, node.node_id.encode())
        return node.node_id

    def remove(self, ref_id: str) -> bool:
        ref_id = str(ref_id)
        node_id = self._placement.pop(ref_id, None)
        if node_id is None:
            return False
        self._node_by_id(node_id).remove(ref_id)
        self.store.delete(f"feature:{ref_id}")
        self.store.hdel("placement", ref_id)
        return True

    def has(self, ref_id: str) -> bool:
        return str(ref_id) in self._placement

    def get_record_bytes(self, ref_id: str) -> bytes | None:
        return self.store.get(f"feature:{ref_id}")

    # ------------------------------------------------------------------
    # elasticity / failover
    # ------------------------------------------------------------------
    def add_node(self, device_spec: DeviceSpec | None = None) -> SearchNode:
        """Attach a fresh (empty) GPU container to the cluster."""
        node = SearchNode(
            f"gpu-{len(self.nodes):02d}",
            self.engine_config,
            device_spec or self.nodes[0].engine.device.spec,
        )
        self.nodes.append(node)
        self.placement.add_node(node.node_id)
        return node

    def remove_node(self, node_id: str) -> int:
        """Decommission a container, redistributing its shard.

        The KV store is the system of record (Sec. 8), so the departing
        node's references are re-hydrated from their serialized records
        onto the surviving nodes round-robin.  Returns the number of
        references reassigned.  Removing the last node raises.
        """
        if len(self.nodes) <= 1:
            raise ClusterError("cannot remove the last node")
        victim = self._node_by_id(node_id)
        self.nodes.remove(victim)
        self.placement.remove_node(node_id)
        orphaned = [ref for ref, owner in self._placement.items() if owner == node_id]
        from .serialization import deserialize_record

        for ref_id in orphaned:
            blob = self.store.get(f"feature:{ref_id}")
            if blob is None:
                # record lost with the node: drop the placement entry
                del self._placement[ref_id]
                self.store.hdel("placement", ref_id)
                continue
            node = self._node_by_id(self.placement.place(ref_id))
            node.add_record(deserialize_record(blob))
            self._placement[ref_id] = node.node_id
            self.store.hset("placement", ref_id, node.node_id.encode())
        return len(orphaned)

    # ------------------------------------------------------------------
    def search(self, query_descriptors: np.ndarray) -> ClusterSearchResult:
        """Scatter the query to all nodes, gather and rank the results."""
        per_node: dict[str, SearchResult] = {}
        matches: list[ImageMatch] = []
        slowest_us = 0.0
        images = 0
        for node in self.nodes:
            if node.n_references == 0:
                continue
            result = node.search(query_descriptors)
            per_node[node.node_id] = result
            matches.extend(result.matches)
            slowest_us = max(slowest_us, result.elapsed_us)
            images += result.images_searched
        return ClusterSearchResult(
            matches=matches,
            per_node=per_node,
            elapsed_us=slowest_us + WEB_TIER_OVERHEAD_US,
            images_searched=images,
        )

    def search_many(self, query_descriptor_list: list[np.ndarray]) -> list[ClusterSearchResult]:
        """Query-batched scatter-gather (Sec. 5.3 applied cluster-wide).

        Each node answers the whole query group in one sweep
        (:meth:`TextureSearchEngine.search_many`); per-query results are
        then gathered.  All queries share the group's completion time.
        """
        if not query_descriptor_list:
            return []
        n_queries = len(query_descriptor_list)
        per_query_matches: list[list[ImageMatch]] = [[] for _ in range(n_queries)]
        per_node_all: list[dict[str, SearchResult]] = [dict() for _ in range(n_queries)]
        slowest_us = 0.0
        images = 0
        for node in self.nodes:
            if node.n_references == 0:
                continue
            grouped = node.engine.search_many(query_descriptor_list)
            slowest_us = max(slowest_us, grouped[0].elapsed_us)
            images += grouped[0].images_searched
            for q, result in enumerate(grouped):
                per_query_matches[q].extend(result.matches)
                per_node_all[q][node.node_id] = result
        elapsed = slowest_us + WEB_TIER_OVERHEAD_US
        return [
            ClusterSearchResult(
                matches=per_query_matches[q],
                per_node=per_node_all[q],
                elapsed_us=elapsed,
                images_searched=images,
            )
            for q in range(n_queries)
        ]

    # ------------------------------------------------------------------
    @property
    def n_references(self) -> int:
        return len(self._placement)

    def capacity_images(self) -> int:
        """Cluster capacity (Sec. 8: 10.8 M at m=384 FP16, 14 nodes)."""
        return sum(node.capacity_images() for node in self.nodes)

    def aggregate_throughput_images_per_s(self) -> float:
        """Sum of per-node steady-state search throughputs."""
        total = 0.0
        for node in self.nodes:
            total += node.engine.stats.mean_throughput_images_per_s
        return total

    def stats(self) -> dict:
        return {
            "nodes": [node.stats() for node in self.nodes],
            "references": self.n_references,
            "capacity_images": self.capacity_images(),
            "kv_keys": self.store.dbsize(),
        }
